//! The paper's §3 walk-through: the same `foreach` syntax picks different
//! expansions by *static type* — `Enumeration` receivers get the general
//! loop, `maya.util.Vector.elements()` receivers get the allocation-free
//! loop (VForEach, selected by substructure + static-type dispatch), and
//! arrays get an index loop.
//!
//!     cargo run --example foreach_demo

use maya::macrolib::compiler_with_macros;

fn main() {
    let compiler = compiler_with_macros();
    let out = compiler
        .compile_and_run(
            "Main.maya",
            r#"
            import java.util.*;
            class Main {
                static void main() {
                    use Foreach;

                    Hashtable h = new Hashtable();
                    h.put("x", "1");
                    h.keys().foreach(String k) {
                        System.out.println("hashtable: " + k + "=" + h.get(k));
                    }

                    maya.util.Vector mv = new maya.util.Vector();
                    mv.addElement("fast");
                    mv.elements().foreach(String s) {
                        System.out.println("maya.util.Vector (optimized): " + s);
                    }

                    int[] squares = new int[4];
                    for (int i = 0; i < 4; i++) { squares[i] = i * i; }
                    squares.foreach(int q) {
                        System.out.println("array: " + q);
                    }
                }
            }
            "#,
            "Main",
        )
        .expect("compile and run");
    print!("{out}");
}
