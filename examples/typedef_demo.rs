//! Figure 3: `typedef` — a local type alias implemented with *local
//! Mayans* exported through a `UseStmt`, plus `assert` and `format` from
//! the macro library.
//!
//!     cargo run --example typedef_demo

use maya::macrolib::compiler_with_macros;

fn main() {
    let compiler = compiler_with_macros();
    let out = compiler
        .compile_and_run(
            "Main.maya",
            r#"
            import java.util.*;
            class Main {
                static void main() {
                    use Typedef;
                    use Assert;
                    use Format;
                    typedef (Registry = java.util.Hashtable) {
                        Registry users = new Registry();
                        users.put("ada", "admin");
                        users.put("grace", "staff");
                        assert(users.size() == 2);
                        System.out.println(format("%s users registered", users.size()));
                        System.out.println((String) users.get("ada"));
                    }
                }
            }
            "#,
            "Main",
        )
        .expect("compile and run");
    print!("{out}");
}
