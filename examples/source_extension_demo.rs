//! The full Figure 1 pipeline, end to end: an extension written in
//! MayaJava itself (Figure 2's EForEach, nearly verbatim) is compiled by
//! mayac into a metaprogram, then imported while compiling an application.
//! The Mayan's body — templates, reflection API and all — runs on the
//! interpreter at application compile time.
//!
//!     cargo run --example source_extension_demo

use maya::Compiler;

const EXTENSION: &str = r#"
    abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

    Statement syntax
    EForEach(Expression:java.util.Enumeration enumExp
             \. foreach(Formal var)
             lazy(BraceTree, BlockStmts) body)
    {
        StrictTypeName castType = StrictTypeName.make(var.getType());

        return new Statement {
            for (java.util.Enumeration enumVar = $enumExp;
                 enumVar.hasMoreElements(); ) {
                $(DeclStmt.make(var))
                $(Reference.makeExpr(var.getLocation()))
                    = ($castType) enumVar.nextElement();
                $body
            }
        };
    }
"#;

const APPLICATION: &str = r#"
    import java.util.*;
    class Main {
        static void main() {
            Hashtable h = new Hashtable();
            h.put("paper", "PLDI 2002");
            h.put("system", "Maya");
            use EForEach;
            h.keys().foreach(String st) {
                System.out.println(st + " -> " + h.get(st));
            }
        }
    }
"#;

fn main() {
    let compiler = Compiler::new();
    compiler
        .add_source("EForEach.maya", EXTENSION)
        .expect("extension compiles");
    compiler
        .add_source("Main.maya", APPLICATION)
        .expect("application parses");
    compiler.compile().expect("application compiles");
    print!("{}", compiler.run_main("Main").expect("application runs"));
}
