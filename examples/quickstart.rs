//! Quickstart: compile and run a MayaJava program, import a macro, and show
//! the expansion the compiler produced.
//!
//!     cargo run --example quickstart

use maya::ast::{normalize_generated_names, pretty_node};
use maya::macrolib::compiler_with_macros;

fn main() {
    let compiler = compiler_with_macros();
    let source = r#"
        import java.util.*;
        class Main {
            static void main() {
                Hashtable h = new Hashtable();
                h.put("alpha", "1");
                h.put("beta", "2");
                use EForEach;
                h.keys().foreach(String st) {
                    System.out.println(st + " = " + h.get(st));
                }
            }
        }
    "#;
    compiler.add_source("Main.maya", source).expect("parse");
    compiler.compile().expect("compile");

    // Show what foreach expanded to (paper §3).
    let classes = compiler.classes();
    let main = classes.by_fqcn_str("Main").unwrap();
    let info = classes.info(main);
    let info = info.borrow();
    let body = info.methods[0].body.as_ref().unwrap().forced_node().unwrap();
    println!("--- expansion of Main.main ---");
    println!("{}", normalize_generated_names(&pretty_node(&body)));

    println!("--- program output ---");
    print!("{}", compiler.run_main("Main").expect("run"));
}
