//! The paper's §1 motivation, side by side: the visitor pattern is a
//! workaround for multiple dispatch. Both programs compute the same
//! shape-intersection table; MultiJava needs one method per case, the
//! visitor needs a protocol spread across every class.
//!
//!     cargo run --example visitor_vs_multimethod

use maya::multijava::compiler_with_multijava;
use maya_bench::{multimethod_program, visitor_program};

fn main() {
    let pairs = 5;

    let mm = compiler_with_multijava();
    mm.add_source("MM.maya", &multimethod_program(pairs)).unwrap();
    mm.compile().unwrap();
    let mm_out = mm.run_main("Main").unwrap();

    let vis = compiler_with_multijava();
    vis.add_source("Vis.maya", &visitor_program(pairs)).unwrap();
    vis.compile().unwrap();
    let vis_out = vis.run_main("Main").unwrap();

    println!("multimethods: {}", mm_out.trim());
    println!("visitor:      {}", vis_out.trim());
    assert_eq!(mm_out, vis_out);
    println!("identical results; see `cargo bench -p maya-bench --bench multijava_vs_visitor`");
}
