//! MultiJava (paper §5): open classes and multimethods. The intro's
//! motivating claim — the visitor pattern is a workaround for multiple
//! dispatch — demonstrated by intersecting shapes on the dynamic types of
//! *both* arguments, plus an external method added to a closed class.
//!
//!     cargo run --example multijava_demo

use maya::multijava::compiler_with_multijava;

fn main() {
    let compiler = compiler_with_multijava();
    let out = compiler
        .compile_and_run(
            "Main.maya",
            r#"
            use MultiJava;
            class Shape { String name() { return "shape"; } }
            class Circle extends Shape { String name() { return "circle"; } }
            class Rect extends Shape { String name() { return "rect"; } }

            class Intersect {
                String test(Shape a, Shape b) { return "generic/generic"; }
                String test(Shape@Circle a, Shape@Rect b) { return "circle/rect (fast path)"; }
                String test(Shape@Circle a, Shape@Circle b) { return "circle/circle (radius check)"; }
            }

            // Open class: add a method to Shape without editing it.
            String Shape.describe() { return "a " + this.name(); }

            class Main {
                static void main() {
                    Intersect i = new Intersect();
                    Shape c = new Circle();
                    Shape r = new Rect();
                    System.out.println(i.test(c, r));
                    System.out.println(i.test(c, c));
                    System.out.println(i.test(r, r));
                    System.out.println(c.describe());
                    System.out.println(r.describe());
                }
            }
            "#,
            "Main",
        )
        .expect("compile and run");
    print!("{out}");
}
