//! Maya-rs: a Rust reproduction of *Maya: Multiple-Dispatch Syntax
//! Extension in Java* (Baker & Hsieh, PLDI 2002).
//!
//! Maya treats grammar productions as generic functions and semantic
//! actions (*Mayans*) as multimethods dispatched on the syntactic structure
//! and static types of the input. This facade crate re-exports the whole
//! system; see DESIGN.md for the crate map and EXPERIMENTS.md for the
//! paper-reproduction results.
//!
//! # Quickstart
//!
//! ```
//! use maya::macrolib::compiler_with_macros;
//!
//! let compiler = compiler_with_macros();
//! let out = compiler
//!     .compile_and_run(
//!         "Main.maya",
//!         r#"
//!         import java.util.*;
//!         class Main {
//!             static void main() {
//!                 Vector v = new Vector();
//!                 v.addElement("hello");
//!                 use Foreach;
//!                 v.elements().foreach(String st) {
//!                     System.out.println(st);
//!                 }
//!             }
//!         }
//!         "#,
//!         "Main",
//!     )
//!     .unwrap();
//! assert_eq!(out, "hello\n");
//! ```

pub use maya_ast as ast;
pub use maya_core as core;
pub use maya_dispatch as dispatch;
pub use maya_grammar as grammar;
pub use maya_interp as interp;
pub use maya_lexer as lexer;
pub use maya_macrolib as macrolib;
pub use maya_multijava as multijava;
pub use maya_parser as parser;
pub use maya_telemetry as telemetry;
pub use maya_template as template;
pub use maya_types as types;

pub use maya_core::{
    CompileError, CompileOptions, Compiler, ErrorFormat, Outcome, RequestOpts, Session,
    SessionStats,
};
