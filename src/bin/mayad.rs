//! `mayad`: the persistent Maya compile server.
//!
//! Usage:
//!
//! ```text
//! mayad --socket=PATH [--max-inflight=N] [--jobs=N]
//!       [--table-cache=DIR] [--stats=FILE]
//! ```
//!
//! `mayad` keeps one incremental [`Session`] resident and serves compile
//! requests over a unix domain socket, one newline-delimited JSON object
//! per request (see README.md § Incremental compilation). Because the
//! session, the process-global interner, and the thread-local LALR table
//! memo all stay warm, a request that recompiles one changed file skips
//! most of the work a cold `mayac` run would do — while producing
//! byte-identical `stdout`/`stderr`.
//!
//! ## Protocol
//!
//! Compile request (any field but `files` may be omitted):
//!
//! ```json
//! {"files": ["a.maya"], "main": "Main", "run": true, "expand": false,
//!  "error_format": "human", "max_errors": 20, "deny_warnings": false,
//!  "uses": []}
//! ```
//!
//! Response:
//!
//! ```json
//! {"ok": true, "success": true, "stdout": "...", "stderr": "...",
//!  "full_reuse": false, "files_changed": 1, "files_reused": 2,
//!  "files_recompiled": 1, "grammar_reuses": 3}
//! ```
//!
//! Control requests: `{"cmd": "ping"}`, `{"cmd": "stats"}`, and
//! `{"cmd": "shutdown"}`. A malformed line gets
//! `{"ok": false, "error": "..."}` and the connection stays open.
//!
//! `stats` reports the cumulative session counters plus the warm LALR memo
//! size, a per-request latency histogram (`count`, `mean_ms`,
//! `p50_ms`/`p95_ms`/`p99_ms`, and the non-empty log₂ `buckets`), the
//! per-phase time breakdown aggregated over every compile request, and the
//! lifetime hit/miss/size gauges of each pipeline cache — every compile
//! request runs under its own telemetry session, merged into one
//! aggregate. `--stats=FILE` writes that aggregate (schema
//! `maya-telemetry/1`) at shutdown.
//!
//! ## Concurrency
//!
//! The compiler is single-threaded by design (`Rc` everywhere), so the
//! session lives on the main thread. An acceptor thread takes
//! connections; one reader thread per connection decodes lines and feeds
//! them through a bounded queue of `--max-inflight` (default 8) pending
//! requests — the batching knob: past that, clients block in `write`
//! rather than ballooning the server's memory. Requests are answered in
//! queue order.

use maya::core::json::{parse_json, Json};
use maya::core::{ErrorFormat, Outcome, RequestOpts, Session, SessionStats};
use maya::telemetry::{self, CacheId, Histogram, JsonWriter, Phase, Report};
use maya::{CompileOptions, Compiler};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::mpsc;

#[derive(Default)]
struct Cli {
    socket: Option<String>,
    max_inflight: Option<usize>,
    jobs: Option<usize>,
    table_cache: Option<String>,
    stats: Option<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    for a in args {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            other => {
                if let Some(p) = other.strip_prefix("--socket=") {
                    if p.is_empty() {
                        return Err("missing path after --socket=".into());
                    }
                    cli.socket = Some(p.to_owned());
                } else if let Some(n) = other.strip_prefix("--max-inflight=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => cli.max_inflight = Some(n),
                        _ => return Err(format!("invalid --max-inflight value {n:?}")),
                    }
                } else if let Some(n) = other.strip_prefix("--jobs=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => cli.jobs = Some(n),
                        _ => return Err(format!("invalid --jobs value {n:?}")),
                    }
                } else if let Some(d) = other.strip_prefix("--table-cache=") {
                    if d.is_empty() {
                        return Err("missing directory after --table-cache=".into());
                    }
                    cli.table_cache = Some(d.to_owned());
                } else if let Some(f) = other.strip_prefix("--stats=") {
                    if f.is_empty() {
                        return Err("missing file after --stats=".into());
                    }
                    cli.stats = Some(f.to_owned());
                } else {
                    return Err(format!("unknown option {other}"));
                }
            }
        }
    }
    if cli.socket.is_none() {
        return Err("missing --socket=PATH".into());
    }
    Ok(cli)
}

/// One decoded line from some connection, awaiting the session's answer.
enum Job {
    Request {
        line: String,
        reply: mpsc::Sender<String>,
    },
    /// The client asked to shut down; its reader already flushed the
    /// farewell reply.
    Shutdown,
}

/// Lifetime aggregates over every request served, fed by the per-request
/// telemetry sessions in the main loop.
#[derive(Default)]
struct ServerMetrics {
    /// Wall time of each compile request, in nanoseconds (control
    /// requests carry no `request_ns` sample and don't land here).
    latency: Histogram,
    /// Every per-request [`Report`] merged together: phase times and
    /// counters accumulate across requests.
    aggregate: Option<Report>,
}

impl ServerMetrics {
    fn record(&mut self, report: Report) {
        if let Some(h) = report.hist("request_ns") {
            self.latency.merge(h);
        }
        match &mut self.aggregate {
            Some(agg) => agg.merge(&report),
            None => self.aggregate = Some(report),
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => return usage(&e),
    };
    let socket_path = cli.socket.clone().expect("validated");

    if let Some(dir) = &cli.table_cache {
        let _ = std::fs::create_dir_all(dir);
        maya::grammar::set_table_cache_dir(Some(std::path::PathBuf::from(dir)));
    }
    let jobs = cli.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    let installer = Rc::new(|c: &Compiler| {
        maya::macrolib::install(c);
        maya::multijava::install(c);
    }) as Rc<dyn Fn(&Compiler)>;
    let mut session = Session::new(
        CompileOptions {
            echo_output: false,
            jobs,
            ..CompileOptions::default()
        },
        Some(installer),
    );
    let mut metrics = ServerMetrics::default();

    // A stale socket file from a crashed server would make bind fail.
    let _ = std::fs::remove_file(&socket_path);
    let listener = match UnixListener::bind(&socket_path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mayad: cannot bind {socket_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("mayad: listening on {socket_path}");

    let max_inflight = cli.max_inflight.unwrap_or(8);
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(max_inflight);
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { break };
            let tx = job_tx.clone();
            std::thread::spawn(move || serve_connection(stream, &tx));
        }
    });

    // The session loop: single-threaded, in queue order, so every request
    // sees the warm caches of the one before it. Each request runs under
    // its own telemetry session; the per-request reports are merged into
    // one lifetime aggregate so `stats` can serve latency percentiles and
    // phase breakdowns at any point.
    for job in job_rx {
        match job {
            Job::Request { line, reply } => {
                let t = telemetry::Session::start(telemetry::Config::default());
                // The session sandboxes the compile pipeline itself, but a
                // panic in request decoding, change detection, or response
                // rendering would otherwise unwind past this loop and kill
                // the server for every client. Isolate it: the one client
                // gets an error reply, the session is reset to a coherent
                // (cold) state, and the server keeps serving.
                let response = match maya::core::catch_ice(std::panic::AssertUnwindSafe(|| {
                    handle_line(&mut session, &metrics, &line)
                })) {
                    Ok(r) => r,
                    Err(panic_msg) => {
                        telemetry::count(telemetry::Counter::ServerPanicsIsolated);
                        session.reset();
                        error_response(&format!("request panicked (isolated): {panic_msg}"))
                    }
                };
                metrics.record(t.finish());
                let _ = reply.send(response);
            }
            Job::Shutdown => break,
        }
    }

    if let Some(path) = cli.stats.as_deref() {
        let report = metrics.aggregate.take().unwrap_or_else(|| {
            telemetry::Session::start(telemetry::Config::default()).finish()
        });
        if let Err(e) = write_creating_dirs(path, &report.to_json()) {
            eprintln!("mayad: cannot write {path}: {e}");
        }
    }
    let _ = std::fs::remove_file(&socket_path);
    eprintln!("mayad: shut down");
    ExitCode::SUCCESS
}

/// Reader thread: one line in, one line out, until EOF. The farewell for
/// `shutdown` is written *and flushed* before the main loop is told, so
/// the client always sees its reply.
fn serve_connection(stream: UnixStream, jobs: &mpsc::SyncSender<Job>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let is_shutdown = parse_json(&line)
            .ok()
            .and_then(|v| v.get("cmd").and_then(Json::as_str).map(|c| c == "shutdown"))
            .unwrap_or(false);
        if is_shutdown {
            let _ = writeln!(writer, "{}", r#"{"ok": true, "bye": true}"#);
            let _ = writer.flush();
            let _ = jobs.send(Job::Shutdown);
            return;
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        if jobs
            .send(Job::Request {
                line,
                reply: reply_tx,
            })
            .is_err()
        {
            return;
        }
        let Ok(response) = reply_rx.recv() else { return };
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Decodes one request line, runs it against the session, encodes the
/// response. Never panics the server: a malformed request is an `ok:
/// false` reply, and the session converts compiler panics into ICE
/// diagnostics itself.
fn handle_line(session: &mut Session, metrics: &ServerMetrics, line: &str) -> String {
    let parsed = match parse_json(line) {
        Ok(v) => v,
        Err(e) => return error_response(&format!("malformed request: {e}")),
    };
    match parsed.get("cmd").and_then(Json::as_str) {
        Some("ping") => return r#"{"ok": true, "pong": true}"#.to_owned(),
        Some("stats") => return stats_response(&session.stats(), metrics),
        Some(other) => return error_response(&format!("unknown cmd {other:?}")),
        None => {}
    }
    let Some(files) = parsed.get("files").and_then(Json::as_arr) else {
        return error_response("missing \"files\" array");
    };
    let mut paths = Vec::new();
    for f in files {
        match f.as_str() {
            Some(s) => paths.push(s.to_owned()),
            None => return error_response("\"files\" entries must be strings"),
        }
    }
    if paths.is_empty() {
        return error_response("\"files\" must not be empty");
    }
    let mut opts = RequestOpts::default();
    if let Some(m) = parsed.get("main").and_then(Json::as_str) {
        opts.main_class = m.to_owned();
    }
    if let Some(r) = parsed.get("run").and_then(Json::as_bool) {
        opts.run = r;
    }
    if let Some(x) = parsed.get("expand").and_then(Json::as_bool) {
        opts.expand = x;
    }
    if let Some(d) = parsed.get("deny_warnings").and_then(Json::as_bool) {
        opts.deny_warnings = d;
    }
    if let Some(n) = parsed.get("max_errors").and_then(Json::as_u64) {
        if n == 0 {
            return error_response("\"max_errors\" must be positive");
        }
        opts.max_errors = n as usize;
    }
    match parsed.get("error_format").and_then(Json::as_str) {
        None | Some("human") => opts.error_format = ErrorFormat::Human,
        Some("json") => opts.error_format = ErrorFormat::Json,
        Some(other) => return error_response(&format!("unknown error format {other:?}")),
    }
    if let Some(uses) = parsed.get("uses").and_then(Json::as_arr) {
        for u in uses {
            match u.as_str() {
                Some(s) => opts.uses.push(s.to_owned()),
                None => return error_response("\"uses\" entries must be strings"),
            }
        }
    }
    // Fault site for the request-level isolation above: a panic here is
    // outside the session's compile sandbox, exactly the class of failure
    // the catch in the main loop exists for.
    if let Err(e) = maya::core::faults::trip("server") {
        return error_response(&e);
    }
    let outcome = session.compile(&paths, &opts);
    compile_response(&outcome)
}

fn error_response(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_bool("ok", false)
        .field_str("error", message)
        .end_obj();
    w.finish()
}

fn compile_response(o: &Outcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_bool("ok", true)
        .field_bool("success", o.success)
        .field_str("stdout", &o.stdout)
        .field_str("stderr", &o.stderr)
        .field_bool("full_reuse", o.full_reuse)
        .field_u64("files_changed", o.files_changed as u64)
        .field_u64("files_reused", o.files_reused as u64)
        .field_u64("files_recompiled", o.files_recompiled as u64)
        .field_u64("grammar_reuses", o.grammar_reuses as u64)
        .end_obj();
    w.finish()
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn stats_response(s: &SessionStats, m: &ServerMetrics) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj().field_bool("ok", true).key("stats").begin_obj();
    w.field_u64("requests", s.requests)
        .field_u64("full_reuses", s.full_reuses)
        .field_u64("files_changed", s.files_changed)
        .field_u64("files_reused", s.files_reused)
        .field_u64("files_recompiled", s.files_recompiled)
        .field_u64("grammar_reuses", s.grammar_reuses)
        .field_u64("table_memo", maya::grammar::table_cache_len() as u64);

    // Compile-request latency: percentiles over every served request.
    let h = &m.latency;
    w.key("latency").begin_obj();
    w.field_u64("count", h.count())
        .field_f64("mean_ms", h.mean() / 1e6)
        .field_f64("p50_ms", ns_to_ms(h.percentile(50.0)))
        .field_f64("p95_ms", ns_to_ms(h.percentile(95.0)))
        .field_f64("p99_ms", ns_to_ms(h.percentile(99.0)))
        .field_f64("max_ms", ns_to_ms(h.max()));
    w.key("buckets").begin_arr();
    for (lo, hi, n) in h.buckets() {
        w.begin_obj()
            .field_f64("lo_ms", ns_to_ms(lo))
            .field_f64("hi_ms", ns_to_ms(hi))
            .field_u64("count", n)
            .end_obj();
    }
    w.end_arr().end_obj();

    // Per-phase breakdown, aggregated across requests.
    w.key("phases").begin_obj();
    if let Some(agg) = &m.aggregate {
        for p in Phase::ALL {
            let calls = agg.phase_calls(p);
            if calls == 0 {
                continue;
            }
            w.key(p.name()).begin_obj();
            w.field_f64("ms", agg.phase_time(p).as_secs_f64() * 1e3)
                .field_u64("calls", calls)
                .end_obj();
        }
    }
    w.end_obj();

    // Lifetime cache gauges (cumulative since server start, not deltas).
    w.key("caches").begin_obj();
    let snap = telemetry::cache_snapshot();
    for (id, cs) in CacheId::ALL.iter().zip(snap.iter()) {
        w.key(id.name()).begin_obj();
        w.field_u64("hits", cs.hits)
            .field_u64("misses", cs.misses)
            .field_u64("size", cs.size)
            .field_u64("evictions", cs.evictions)
            .field_f64("hit_ratio", cs.hit_ratio())
            .end_obj();
    }
    w.end_obj();

    w.end_obj().end_obj();
    w.finish()
}

/// Writes `contents` to `path`, creating missing parent directories.
fn write_creating_dirs(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mayad: {err}");
    }
    eprintln!(
        "usage: mayad --socket=PATH [--max-inflight=N] [--jobs=N]\n\
         \x20            [--table-cache=DIR] [--stats=FILE]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
