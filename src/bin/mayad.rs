//! `mayad`: the persistent Maya compile server.
//!
//! Usage:
//!
//! ```text
//! mayad --socket=PATH [--tcp=ADDR] [--workers=N] [--queue-cap=N]
//!       [--max-inflight=N] [--max-request-bytes=N] [--fuel=N]
//!       [--jobs=N] [--cache-dir=DIR] [--cache-max-mb=N] [--stats=FILE]
//! ```
//!
//! `--cache-dir=DIR` (default `$MAYA_CACHE_DIR`; deprecated alias
//! `--table-cache=DIR`) opens the persistent compilation cache and shares
//! it across every worker: a restarted daemon starts warm from the
//! artifacts the previous one persisted. See README.md § Persistent
//! compilation cache.
//!
//! `mayad` serves compile requests over a unix domain socket (and, with
//! `--tcp=ADDR`, over TCP with the same protocol), one newline-delimited
//! JSON object per request (see README.md § Incremental compilation).
//! Requests are executed by a pool of `--workers` threads
//! ([`maya::core::service::CompilePool`]); each *client* (the optional
//! `"client"` request field, default `"default"`) is pinned to one worker
//! and gets its own warm incremental [`Session`], while the workers share
//! the process-global interner, LALR table memo, and lexed-tree cache —
//! so a request that recompiles one changed file skips most of the work a
//! cold `mayac` run would do, while producing byte-identical
//! `stdout`/`stderr`.
//!
//! ## Protocol
//!
//! Compile request (any field but `files` may be omitted):
//!
//! ```json
//! {"files": ["a.maya"], "client": "default", "main": "Main", "run": true,
//!  "expand": false, "error_format": "human", "max_errors": 20,
//!  "deny_warnings": false, "uses": [], "fuel": 500000}
//! ```
//!
//! Response:
//!
//! ```json
//! {"ok": true, "success": true, "stdout": "...", "stderr": "...",
//!  "full_reuse": false, "files_changed": 1, "files_reused": 2,
//!  "files_recompiled": 1, "grammar_reuses": 3}
//! ```
//!
//! Control requests: `{"cmd": "ping"}`, `{"cmd": "stats"}`,
//! `{"cmd": "sleep", "ms": N}` (test aid; occupies one worker), and
//! `{"cmd": "shutdown"}`. A malformed line gets
//! `{"ok": false, "error": "..."}` and the connection stays open.
//!
//! ## Quotas and backpressure
//!
//! A client may pipeline up to `--max-inflight` requests (default 8);
//! more get an immediate `{"ok": false, "quota": "max_inflight"}` reply.
//! Requests over `--max-request-bytes` are refused with
//! `"quota": "request_bytes"`. When a worker's queue stays full past a
//! bounded wait the reply is `{"ok": false, "overloaded": true}` — the
//! server never hangs a client and the connection stays usable. Replies
//! always arrive in request order per connection.
//!
//! ## Shutdown
//!
//! `{"cmd": "shutdown"}` is answered with a farewell, then the server
//! stops accepting connections, *drains* every queued request (each gets
//! its real reply), joins the worker and acceptor threads, writes
//! `--stats=FILE` if asked, and removes the socket file. A SIGKILL'd or
//! crashed server leaves a stale socket file behind; the next start
//! removes it before binding.

use maya::core::json::{parse_json, Json};
use maya::core::service::{error_response, CompilePool, PoolConfig, PoolRequest};
use maya::Compiler;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Default)]
struct Cli {
    socket: Option<String>,
    tcp: Option<String>,
    workers: Option<usize>,
    queue_cap: Option<usize>,
    max_inflight: Option<usize>,
    max_request_bytes: Option<usize>,
    fuel: Option<u64>,
    jobs: Option<usize>,
    cache_dir: Option<String>,
    cache_max_mb: Option<u64>,
    stats: Option<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    fn positive<T: std::str::FromStr + PartialOrd + From<u8>>(
        flag: &str,
        n: &str,
    ) -> Result<T, String> {
        match n.parse::<T>() {
            Ok(v) if v >= T::from(1u8) => Ok(v),
            _ => Err(format!("invalid {flag} value {n:?}")),
        }
    }
    let mut cli = Cli::default();
    for a in args {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            other => {
                if let Some(p) = other.strip_prefix("--socket=") {
                    if p.is_empty() {
                        return Err("missing path after --socket=".into());
                    }
                    cli.socket = Some(p.to_owned());
                } else if let Some(addr) = other.strip_prefix("--tcp=") {
                    if addr.is_empty() {
                        return Err("missing address after --tcp=".into());
                    }
                    cli.tcp = Some(addr.to_owned());
                } else if let Some(n) = other.strip_prefix("--workers=") {
                    cli.workers = Some(positive("--workers", n)?);
                } else if let Some(n) = other.strip_prefix("--queue-cap=") {
                    cli.queue_cap = Some(positive("--queue-cap", n)?);
                } else if let Some(n) = other.strip_prefix("--max-inflight=") {
                    cli.max_inflight = Some(positive("--max-inflight", n)?);
                } else if let Some(n) = other.strip_prefix("--max-request-bytes=") {
                    cli.max_request_bytes = Some(positive("--max-request-bytes", n)?);
                } else if let Some(n) = other.strip_prefix("--fuel=") {
                    cli.fuel = Some(positive("--fuel", n)?);
                } else if let Some(n) = other.strip_prefix("--jobs=") {
                    cli.jobs = Some(positive("--jobs", n)?);
                } else if let Some(d) = other.strip_prefix("--cache-dir=") {
                    if d.is_empty() {
                        return Err("missing directory after --cache-dir=".into());
                    }
                    cli.cache_dir = Some(d.to_owned());
                } else if let Some(n) = other.strip_prefix("--cache-max-mb=") {
                    cli.cache_max_mb = Some(positive("--cache-max-mb", n)?);
                } else if let Some(d) = other.strip_prefix("--table-cache=") {
                    // Deprecated alias for --cache-dir.
                    if d.is_empty() {
                        return Err("missing directory after --table-cache=".into());
                    }
                    cli.cache_dir = Some(d.to_owned());
                } else if let Some(f) = other.strip_prefix("--stats=") {
                    if f.is_empty() {
                        return Err("missing file after --stats=".into());
                    }
                    cli.stats = Some(f.to_owned());
                } else {
                    return Err(format!("unknown option {other}"));
                }
            }
        }
    }
    if cli.socket.is_none() {
        return Err("missing --socket=PATH".into());
    }
    Ok(cli)
}

/// Replies still owed to some connection's writer thread. Shutdown waits
/// (bounded) for this to reach zero so a drained request's reply is
/// actually flushed to its client before the process exits.
#[derive(Default)]
struct PendingWrites {
    n: Mutex<u64>,
    cv: Condvar,
}

impl PendingWrites {
    fn inc(&self) {
        *self.n.lock().expect("pending poisoned") += 1;
    }

    fn dec(&self) {
        let mut n = self.n.lock().expect("pending poisoned");
        *n -= 1;
        if *n == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_zero(&self, timeout: Duration) {
        let n = self.n.lock().expect("pending poisoned");
        let _ = self
            .cv
            .wait_timeout_while(n, timeout, |n| *n != 0)
            .expect("pending poisoned");
    }
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => return usage(&e),
    };
    let socket_path = cli.socket.clone().expect("validated");

    let cache_dir = cli
        .cache_dir
        .clone()
        .or_else(|| std::env::var("MAYA_CACHE_DIR").ok().filter(|d| !d.is_empty()));
    let store = cache_dir.and_then(|dir| {
        match maya::core::store::ArtifactStore::open(std::path::Path::new(&dir), cli.cache_max_mb) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("mayad: cache disabled, cannot open {dir}: {e}");
                None
            }
        }
    });
    let workers = cli.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    let mut config = PoolConfig {
        workers,
        jobs: cli.jobs.unwrap_or(1),
        installer: Some(Arc::new(|c: &Compiler| {
            maya::macrolib::install(c);
            maya::multijava::install(c);
        })),
        store,
        ..PoolConfig::default()
    };
    if let Some(n) = cli.queue_cap {
        config.queue_cap = n;
    }
    if let Some(n) = cli.max_inflight {
        config.max_inflight = n;
    }
    if let Some(n) = cli.max_request_bytes {
        config.max_request_bytes = n;
    }
    if let Some(f) = cli.fuel {
        config.fuel = f;
    }
    let pool = Arc::new(CompilePool::start(config));

    // A stale socket file from a crashed server would make bind fail.
    let _ = std::fs::remove_file(&socket_path);
    let unix_listener = match UnixListener::bind(&socket_path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mayad: cannot bind {socket_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tcp_listener = match &cli.tcp {
        Some(addr) => match TcpListener::bind(addr) {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("mayad: cannot bind tcp {addr}: {e}");
                let _ = std::fs::remove_file(&socket_path);
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let tcp_addr = tcp_listener.as_ref().and_then(|l| l.local_addr().ok());
    match tcp_addr {
        Some(addr) => eprintln!("mayad: listening on {socket_path} and tcp {addr}"),
        None => eprintln!("mayad: listening on {socket_path}"),
    }

    let closing = Arc::new(AtomicBool::new(false));
    let pending = Arc::new(PendingWrites::default());
    let (done_tx, done_rx) = mpsc::channel::<()>();

    // Unix acceptor (joined at shutdown, unlike the old detached thread).
    let unix_acceptor = {
        let pool = pool.clone();
        let closing = closing.clone();
        let pending = pending.clone();
        let done = done_tx.clone();
        std::thread::spawn(move || {
            for conn in unix_listener.incoming() {
                if closing.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let pool = pool.clone();
                let pending = pending.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else { return };
                    serve_connection(read_half, stream, &pool, &pending, &done);
                });
            }
        })
    };
    let tcp_acceptor = tcp_listener.map(|listener| {
        let pool = pool.clone();
        let closing = closing.clone();
        let pending = pending.clone();
        let done = done_tx.clone();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if closing.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let pool = pool.clone();
                let pending = pending.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else { return };
                    serve_connection(read_half, stream, &pool, &pending, &done);
                });
            }
        })
    });
    drop(done_tx);

    // Block until some client requests shutdown (or every acceptor dies).
    let _ = done_rx.recv();

    // Stop the acceptors: raise the flag, then poke each listener with a
    // throwaway connection so `incoming()` returns and the loop sees it.
    closing.store(true, Ordering::SeqCst);
    let _ = UnixStream::connect(&socket_path);
    if let Some(addr) = tcp_addr {
        let _ = TcpStream::connect(addr);
    }
    let _ = unix_acceptor.join();
    if let Some(t) = tcp_acceptor {
        let _ = t.join();
    }

    // Drain the pool (every queued request gets its real reply), then
    // give the connection writers a bounded window to flush those
    // replies to their clients.
    let report = pool.shutdown();
    pending.wait_zero(Duration::from_secs(5));

    if let Some(path) = cli.stats.as_deref() {
        let report = report.unwrap_or_else(|| {
            maya::telemetry::Session::start(maya::telemetry::Config::default()).finish()
        });
        if let Err(e) = write_creating_dirs(path, &report.to_json()) {
            eprintln!("mayad: cannot write {path}: {e}");
        }
    }
    let _ = std::fs::remove_file(&socket_path);
    eprintln!("mayad: shut down");
    ExitCode::SUCCESS
}

/// What the connection's writer thread emits next. `Pending` replies are
/// resolved in submission order, so pipelined clients read answers in the
/// order they asked.
enum ConnReply {
    Pending(mpsc::Receiver<String>),
    Immediate(String),
}

/// One connection: this (reader) thread decodes lines and submits them to
/// the pool; a writer thread flushes replies in order. The split lets a
/// client pipeline requests without losing reply ordering.
fn serve_connection<R, W>(
    read_half: R,
    write_half: W,
    pool: &Arc<CompilePool>,
    pending: &Arc<PendingWrites>,
    done: &mpsc::Sender<()>,
) where
    R: std::io::Read,
    W: Write + Send + 'static,
{
    let (order_tx, order_rx) = mpsc::channel::<ConnReply>();
    let writer = {
        let pending = pending.clone();
        std::thread::spawn(move || {
            let mut w = std::io::BufWriter::new(write_half);
            let mut broken = false;
            for r in order_rx {
                let line = match r {
                    ConnReply::Pending(rx) => {
                        let line = rx.recv().unwrap_or_default();
                        pending.dec();
                        line
                    }
                    ConnReply::Immediate(line) => line,
                };
                if broken || line.is_empty() {
                    continue;
                }
                if writeln!(w, "{line}").is_err() || w.flush().is_err() {
                    // Keep draining so pending counts stay balanced, but
                    // stop touching the dead socket.
                    broken = true;
                }
            }
        })
    };
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_json(&line).ok();
        let cmd = parsed
            .as_ref()
            .and_then(|v| v.get("cmd").and_then(Json::as_str));
        if cmd == Some("shutdown") {
            // The farewell is flushed (writer joined) before the main
            // thread is told, so the client always sees its reply.
            let _ = order_tx.send(ConnReply::Immediate(r#"{"ok": true, "bye": true}"#.to_owned()));
            drop(order_tx);
            let _ = writer.join();
            let _ = done.send(());
            return;
        }
        let client = match parsed.as_ref().and_then(|v| v.get("client")) {
            None => "default".to_owned(),
            Some(c) => match c.as_str() {
                Some(s) if !s.is_empty() => s.to_owned(),
                _ => {
                    let r = error_response("\"client\" must be a non-empty string");
                    if order_tx.send(ConnReply::Immediate(r)).is_err() {
                        break;
                    }
                    continue;
                }
            },
        };
        pending.inc();
        let rx = pool.submit(&client, PoolRequest::Line(line));
        if order_tx.send(ConnReply::Pending(rx)).is_err() {
            pending.dec();
            break;
        }
    }
    drop(order_tx);
    let _ = writer.join();
}

/// Writes `contents` to `path`, creating missing parent directories.
fn write_creating_dirs(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mayad: {err}");
    }
    eprintln!(
        "usage: mayad --socket=PATH [--tcp=ADDR] [--workers=N] [--queue-cap=N]\n\
         \x20            [--max-inflight=N] [--max-request-bytes=N] [--fuel=N]\n\
         \x20            [--jobs=N] [--cache-dir=DIR] [--cache-max-mb=N] [--stats=FILE]\n\
         \x20\n\
         \x20      --table-cache=DIR is a deprecated alias for --cache-dir=DIR;\n\
         \x20      MAYA_CACHE_DIR supplies a default cache directory."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
