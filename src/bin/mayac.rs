//! `mayac`: the Maya compiler driver (paper Figure 1).
//!
//! Usage:
//!
//! ```text
//! mayac [-use NAME]... [--main CLASS] [--expand]
//!       [--time-passes] [--stats[=FILE]] [--trace-expansion[=FILTER]]
//!       FILE...
//! ```
//!
//! Compiles the given MayaJava sources with the macro library and MultiJava
//! registered, then runs `CLASS.main()` (default `Main`). `-use NAME`
//! imports a metaprogram for the whole compilation (the paper's `-use`
//! command-line option, §3.3); `--expand` prints every compiled method
//! body after Mayan expansion.
//!
//! Observability flags (see README.md § Observability):
//!
//! * `--time-passes` — per-phase wall-clock table on stderr;
//! * `--stats` — machine-readable counters (schema `maya-telemetry/1`) on
//!   stderr, or to a file with `--stats=FILE`;
//! * `--trace-expansion` — stream each dispatch/force/import/template
//!   event to stderr as it happens; `--trace-expansion=FILTER` keeps only
//!   events whose kind, target, or detail contains FILTER.
//!
//! Without these flags a successful run writes nothing to stderr.

use maya::ast::{normalize_generated_names, pretty_node};
use maya::telemetry;
use maya::{CompileError, CompileOptions, Compiler};
use std::process::ExitCode;
use std::rc::Rc;

#[derive(Default)]
struct Cli {
    uses: Vec<String>,
    files: Vec<String>,
    main_class: Option<String>,
    expand: bool,
    time_passes: bool,
    /// `Some(None)` = stats to stderr; `Some(Some(path))` = stats to file.
    stats: Option<Option<String>>,
    /// `Some(filter)`; an empty filter passes everything.
    trace: Option<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-use" | "--use" => match args.next() {
                Some(n) => cli.uses.push(n),
                None => return Err("missing name after -use".into()),
            },
            "--main" => match args.next() {
                Some(n) => cli.main_class = Some(n),
                None => return Err("missing class after --main".into()),
            },
            "--expand" => cli.expand = true,
            "--time-passes" => cli.time_passes = true,
            "--stats" => cli.stats = Some(None),
            "--trace-expansion" => cli.trace = Some(String::new()),
            "-h" | "--help" => return Err(String::new()),
            other => {
                if let Some(path) = other.strip_prefix("--stats=") {
                    if path.is_empty() {
                        return Err("missing file after --stats=".into());
                    }
                    cli.stats = Some(Some(path.to_owned()));
                } else if let Some(filter) = other.strip_prefix("--trace-expansion=") {
                    cli.trace = Some(filter.to_owned());
                } else if !other.starts_with('-') {
                    cli.files.push(other.to_owned());
                } else {
                    return Err(format!("unknown option {other}"));
                }
            }
        }
    }
    if cli.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => return usage(&e),
    };

    let telemetry_on = cli.time_passes || cli.stats.is_some() || cli.trace.is_some();
    let session = telemetry_on.then(|| {
        telemetry::Session::start(telemetry::Config {
            capture_events: false,
            event_filter: cli.trace.clone().filter(|f| !f.is_empty()),
            sink: cli.trace.is_some().then(|| {
                Rc::new(|e: &telemetry::TraceEvent| eprintln!("mayac: {}", e.render()))
                    as telemetry::TraceSink
            }),
        })
    });

    let compiler = Compiler::with_options(CompileOptions {
        echo_output: false,
        uses: cli.uses.clone(),
    });
    maya::macrolib::install(&compiler);
    maya::multijava::install(&compiler);

    let result = run(&compiler, &cli);

    // Telemetry output is emitted even when compilation fails: a phase
    // table for a failing run is still a phase table.
    if let Some(session) = session {
        let report = session.finish();
        if cli.time_passes {
            eprint!("{}", report.time_passes_table());
        }
        match &cli.stats {
            Some(Some(path)) => {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("mayac: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Some(None) => eprint!("{}", report.to_json()),
            None => {}
        }
    }

    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mayac: {}", render_error(&compiler, &e));
            ExitCode::FAILURE
        }
    }
}

fn run(compiler: &Compiler, cli: &Cli) -> Result<String, CompileError> {
    for f in &cli.files {
        let text = std::fs::read_to_string(f)
            .map_err(|e| CompileError::new(format!("cannot read {f}: {e}"), maya::lexer::Span::DUMMY))?;
        compiler.add_source(f, &text)?;
    }
    compiler.compile()?;

    if cli.expand {
        let classes = compiler.classes();
        for idx in 0..classes.len() {
            let id = maya::types::ClassId(idx as u32);
            let info = classes.info(id);
            let info = info.borrow();
            if info.fqcn.as_str().starts_with("java.") || info.fqcn.as_str().starts_with("maya.") {
                continue;
            }
            for m in &info.methods {
                if let Some(body) = &m.body {
                    if let Some(node) = body.forced_node() {
                        println!("--- {}.{} ---", info.fqcn, m.name);
                        println!("{}", normalize_generated_names(&pretty_node(&node)));
                    }
                }
            }
        }
    }

    let main_class = cli.main_class.as_deref().unwrap_or("Main");
    compiler.run_main(main_class)
}

/// `file:line:col: message` when the error carries a real span.
fn render_error(compiler: &Compiler, e: &CompileError) -> String {
    if e.span.is_dummy() {
        return e.message.clone();
    }
    let loc = compiler.inner().sm.borrow().describe(e.span);
    format!("{loc}: {}", e.message)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mayac: {err}");
    }
    eprintln!(
        "usage: mayac [-use NAME]... [--main CLASS] [--expand]\n\
         \x20            [--time-passes] [--stats[=FILE]] [--trace-expansion[=FILTER]] FILE..."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
