//! `mayac`: the Maya compiler driver (paper Figure 1).
//!
//! Usage:
//!
//! ```text
//! mayac [-use NAME]... [--main CLASS] [--expand] [--dump-bytecode[=METHOD]]
//!       [--max-errors=N] [--error-format=human|json] [--deny-warnings]
//!       [--time-passes[=tree]] [--stats[=FILE]] [--trace-expansion[=FILTER]]
//!       [--trace-out=FILE] [--profile-interp[=N]]
//!       [--jobs=N] [--table-cache=DIR] [--watch]
//!       FILE...
//! ```
//!
//! Compiles the given MayaJava sources with the macro library and MultiJava
//! registered, then runs `CLASS.main()` (default `Main`). `-use NAME`
//! imports a metaprogram for the whole compilation (the paper's `-use`
//! command-line option, §3.3); `--expand` prints every compiled method
//! body after Mayan expansion; `--dump-bytecode[=METHOD]` disassembles the
//! register bytecode of every forced method (or just METHOD) after the run.
//!
//! Robustness flags (see README.md § Robustness):
//!
//! * `--max-errors=N` — stop reporting after N errors (default 20);
//! * `--error-format=json` — emit diagnostics as one JSON document
//!   (schema `maya-diagnostics/1`) on stderr instead of per-line text;
//! * `--deny-warnings` — exit nonzero when any warning was reported.
//!
//! The driver never aborts on a compiler bug: panics anywhere in the
//! pipeline (including inside Mayan expansion) become internal-compiler-
//! error diagnostics and a clean nonzero exit.
//!
//! Observability flags (see README.md § Observability):
//!
//! * `--time-passes` — per-phase wall-clock table on stderr;
//!   `--time-passes=tree` prints the hierarchical span tree instead
//!   (nested activations, calls, total and self time);
//! * `--stats` — machine-readable counters (schema `maya-telemetry/1`) on
//!   stderr, or to a file with `--stats=FILE` (missing parent directories
//!   are created);
//! * `--trace-expansion` — stream each dispatch/force/import/template
//!   event to stderr as it happens; `--trace-expansion=FILTER` keeps only
//!   events whose kind, target, or detail contains FILTER;
//! * `--trace-out=FILE` — write the compile's span tree as Chrome
//!   trace-event JSON to FILE, loadable in Perfetto or `chrome://tracing`;
//! * `--profile-interp[=N]` — profile the interpreter: top-N methods by
//!   exclusive time, call sites with inline-cache hit rates, and hot
//!   nested binary-op pairs, printed to stderr (default N = 10).
//!
//! Without these flags a successful run writes nothing to stderr.
//!
//! Performance flags (see README.md § Performance):
//!
//! * `--jobs=N` — lex independent source files on N worker threads
//!   (default: available parallelism). Output, diagnostics, and their
//!   order are identical for every N.
//! * `--cache-dir=DIR` — the persistent compilation cache (see README.md
//!   § Persistent compilation cache): LALR tables, lexed token trees,
//!   lowered bodies + bytecode, and whole-request outcomes are stored
//!   under DIR keyed by content hash, so later *processes* start warm.
//!   The `MAYA_CACHE_DIR` environment variable supplies a default; the
//!   directory (with any missing parents) is created; corrupt or stale
//!   entries are ignored and rebuilt silently.
//! * `--cache-max-mb=N` — size-cap the cache: saves that push past N MB
//!   evict least-recently-used entries automatically.
//! * `--table-cache=DIR` — deprecated alias for `--cache-dir=DIR` (kept
//!   from when only LALR tables were persisted).
//!
//! Cache maintenance: `mayac cache stats|gc|clear [--cache-dir=DIR]`
//! prints per-kind entry counts and sizes, evicts to the cap, or empties
//! the store.
//!
//! Incremental mode (see README.md § Incremental compilation):
//!
//! * `--watch` — stay resident after the first compile, poll the input
//!   files, and recompile through the incremental [`Session`] whenever
//!   one changes. Only the downstream cone of the change is rebuilt; a
//!   byte-identical (or token-identical) rewrite rebuilds nothing.
//!   Each round's output is exactly what a cold run would print.
//!   `mayad` offers the same engine as a unix-socket server.

use maya::core::{ErrorFormat, RequestOpts, Session};
use maya::telemetry;
use maya::{CompileOptions, Compiler};
use std::process::ExitCode;
use std::rc::Rc;

#[derive(Default)]
struct Cli {
    uses: Vec<String>,
    files: Vec<String>,
    main_class: Option<String>,
    expand: bool,
    /// `Some("")` = dump all methods; `Some(name)` = filter.
    dump_bytecode: Option<String>,
    max_errors: Option<usize>,
    error_format: ErrorFormat,
    deny_warnings: bool,
    time_passes: bool,
    /// `--time-passes=tree`: print the span tree instead of the flat table.
    time_passes_tree: bool,
    /// `Some(None)` = stats to stderr; `Some(Some(path))` = stats to file.
    stats: Option<Option<String>>,
    /// `Some(filter)`; an empty filter passes everything.
    trace: Option<String>,
    /// Chrome trace-event JSON output file.
    trace_out: Option<String>,
    /// Interpreter profiler: report the top N entries.
    profile_interp: Option<usize>,
    /// Front-end worker threads; `None` = available parallelism.
    jobs: Option<usize>,
    /// Persistent artifact store directory (`--cache-dir`, or its
    /// deprecated alias `--table-cache`).
    cache_dir: Option<String>,
    /// Automatic-eviction threshold for the store, in megabytes.
    cache_max_mb: Option<u64>,
    /// Stay resident and recompile on change.
    watch: bool,
}

/// The `--cache-dir` in effect: the flag, or the `MAYA_CACHE_DIR`
/// environment default.
fn effective_cache_dir(cli_dir: &Option<String>) -> Option<String> {
    cli_dir
        .clone()
        .or_else(|| std::env::var("MAYA_CACHE_DIR").ok().filter(|d| !d.is_empty()))
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-use" | "--use" => match args.next() {
                Some(n) => cli.uses.push(n),
                None => return Err("missing name after -use".into()),
            },
            "--main" => match args.next() {
                Some(n) => cli.main_class = Some(n),
                None => return Err("missing class after --main".into()),
            },
            "--expand" => cli.expand = true,
            "--dump-bytecode" => cli.dump_bytecode = Some(String::new()),
            "--deny-warnings" => cli.deny_warnings = true,
            "--time-passes" => cli.time_passes = true,
            "--time-passes=tree" => {
                cli.time_passes = true;
                cli.time_passes_tree = true;
            }
            "--stats" => cli.stats = Some(None),
            "--trace-expansion" => cli.trace = Some(String::new()),
            "--profile-interp" => cli.profile_interp = Some(10),
            "--watch" => cli.watch = true,
            "-h" | "--help" => return Err(String::new()),
            other => {
                if let Some(name) = other.strip_prefix("--dump-bytecode=") {
                    if name.is_empty() {
                        return Err("missing method after --dump-bytecode=".into());
                    }
                    cli.dump_bytecode = Some(name.to_owned());
                } else if let Some(path) = other.strip_prefix("--stats=") {
                    if path.is_empty() {
                        return Err("missing file after --stats=".into());
                    }
                    cli.stats = Some(Some(path.to_owned()));
                } else if let Some(filter) = other.strip_prefix("--trace-expansion=") {
                    cli.trace = Some(filter.to_owned());
                } else if let Some(path) = other.strip_prefix("--trace-out=") {
                    if path.is_empty() {
                        return Err("missing file after --trace-out=".into());
                    }
                    cli.trace_out = Some(path.to_owned());
                } else if let Some(n) = other.strip_prefix("--profile-interp=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => cli.profile_interp = Some(n),
                        _ => return Err(format!("invalid --profile-interp value {n:?}")),
                    }
                } else if let Some(mode) = other.strip_prefix("--time-passes=") {
                    return Err(format!("unknown --time-passes mode {mode:?} (try tree)"));
                } else if let Some(n) = other.strip_prefix("--max-errors=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => cli.max_errors = Some(n),
                        _ => return Err(format!("invalid --max-errors value {n:?}")),
                    }
                } else if let Some(n) = other.strip_prefix("--jobs=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => cli.jobs = Some(n),
                        _ => return Err(format!("invalid --jobs value {n:?}")),
                    }
                } else if let Some(dir) = other.strip_prefix("--cache-dir=") {
                    if dir.is_empty() {
                        return Err("missing directory after --cache-dir=".into());
                    }
                    cli.cache_dir = Some(dir.to_owned());
                } else if let Some(n) = other.strip_prefix("--cache-max-mb=") {
                    match n.parse::<u64>() {
                        Ok(n) if n > 0 => cli.cache_max_mb = Some(n),
                        _ => return Err(format!("invalid --cache-max-mb value {n:?}")),
                    }
                } else if let Some(dir) = other.strip_prefix("--table-cache=") {
                    // Deprecated alias: the table cache grew into the
                    // artifact store; same directory, same key scheme.
                    if dir.is_empty() {
                        return Err("missing directory after --table-cache=".into());
                    }
                    cli.cache_dir = Some(dir.to_owned());
                } else if let Some(fmt) = other.strip_prefix("--error-format=") {
                    cli.error_format = match fmt {
                        "human" => ErrorFormat::Human,
                        "json" => ErrorFormat::Json,
                        _ => return Err(format!("unknown error format {fmt:?}")),
                    };
                } else if !other.starts_with('-') {
                    cli.files.push(other.to_owned());
                } else {
                    return Err(format!("unknown option {other}"));
                }
            }
        }
    }
    if cli.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(cli)
}

/// Writes `contents` to `path`, creating missing parent directories.
fn write_creating_dirs(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

fn request_opts(cli: &Cli) -> RequestOpts {
    RequestOpts {
        uses: cli.uses.clone(),
        main_class: cli.main_class.clone().unwrap_or_else(|| "Main".to_owned()),
        run: true,
        expand: cli.expand,
        dump_bytecode: cli.dump_bytecode.clone(),
        error_format: cli.error_format,
        max_errors: cli.max_errors.unwrap_or(20),
        deny_warnings: cli.deny_warnings,
        fuel: None,
    }
}

fn start_telemetry(cli: &Cli) -> Option<telemetry::Session> {
    let telemetry_on = cli.time_passes
        || cli.stats.is_some()
        || cli.trace.is_some()
        || cli.trace_out.is_some()
        || cli.profile_interp.is_some();
    telemetry_on.then(|| {
        telemetry::Session::start(telemetry::Config {
            event_filter: cli.trace.clone().filter(|f| !f.is_empty()),
            sink: cli.trace.is_some().then(|| {
                Rc::new(|e: &telemetry::TraceEvent| eprintln!("mayac: {}", e.render()))
                    as telemetry::TraceSink
            }),
            capture_spans: cli.trace_out.is_some() || cli.time_passes_tree,
            profile_interp: cli.profile_interp,
            ..telemetry::Config::default()
        })
    })
}

/// Emits telemetry output for one compile round. Returns `false` when the
/// stats or trace file could not be written.
fn finish_telemetry(cli: &Cli, session: Option<telemetry::Session>) -> bool {
    let Some(session) = session else { return true };
    let report = session.finish();
    if cli.time_passes_tree {
        eprint!("{}", report.time_passes_tree());
    } else if cli.time_passes {
        eprint!("{}", report.time_passes_table());
    }
    if let Some(profile) = &report.interp_profile {
        eprint!("{}", profile.render());
    }
    let mut ok = true;
    if let Some(path) = &cli.trace_out {
        if let Err(e) = write_creating_dirs(path, &report.chrome_trace_json()) {
            eprintln!("mayac: cannot write {path}: {e}");
            ok = false;
        }
    }
    match &cli.stats {
        Some(Some(path)) => {
            if let Err(e) = write_creating_dirs(path, &report.to_json()) {
                eprintln!("mayac: cannot write {path}: {e}");
                ok = false;
            }
        }
        Some(None) => eprint!("{}", report.to_json()),
        None => {}
    }
    ok
}

/// Fallback eviction cap for `mayac cache gc` when no `--cache-max-mb`
/// is given.
const DEFAULT_CACHE_MAX_MB: u64 = 512;

/// `mayac cache stats|gc|clear`: maintenance on the persistent store.
/// Runs against `--cache-dir` / `--table-cache` / `$MAYA_CACHE_DIR`.
fn cache_command(args: &[String]) -> ExitCode {
    let mut action = None;
    let mut dir = None;
    let mut max_mb = None;
    for a in args {
        if let Some(d) = a.strip_prefix("--cache-dir=").or_else(|| a.strip_prefix("--table-cache="))
        {
            dir = Some(d.to_owned());
        } else if let Some(n) = a.strip_prefix("--cache-max-mb=") {
            match n.parse::<u64>() {
                Ok(n) if n > 0 => max_mb = Some(n),
                _ => return usage(&format!("invalid --cache-max-mb value {n:?}")),
            }
        } else if action.is_none() && !a.starts_with('-') {
            action = Some(a.as_str());
        } else {
            return usage(&format!("unexpected cache argument {a:?}"));
        }
    }
    let Some(action) = action else {
        return usage("cache needs an action: stats, gc, or clear");
    };
    let Some(dir) = effective_cache_dir(&dir) else {
        return usage("cache needs --cache-dir=DIR (or MAYA_CACHE_DIR)");
    };
    let store = match maya::core::store::ArtifactStore::open(std::path::Path::new(&dir), max_mb) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mayac: cannot open cache {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match action {
        "stats" => {
            let stats = store.stats();
            let (mut entries, mut bytes) = (0u64, 0u64);
            for (kind, s) in &stats {
                println!("{:<10} {:>8} entries {:>12} bytes", kind.label(), s.entries, s.bytes);
                entries += s.entries;
                bytes += s.bytes;
            }
            println!("{:<10} {entries:>8} entries {bytes:>12} bytes", "total");
        }
        "gc" => {
            let cap = max_mb.unwrap_or(DEFAULT_CACHE_MAX_MB) * 1024 * 1024;
            let (evicted, freed) = store.gc(cap);
            let kept: u64 = store.stats().iter().map(|(_, s)| s.bytes).sum();
            println!("evicted {evicted} entries ({freed} bytes), kept {kept} bytes (cap {cap})");
        }
        "clear" => {
            let removed = store.clear();
            println!("removed {removed} entries");
        }
        other => return usage(&format!("unknown cache action {other:?}")),
    }
    ExitCode::SUCCESS
}

/// Opens the persistent store (if configured) and installs it on this
/// thread. Open failure only disables the cache, exactly like any later
/// cache-write failure.
fn install_store(cli: &Cli) {
    if let Some(dir) = effective_cache_dir(&cli.cache_dir) {
        match maya::core::store::ArtifactStore::open(std::path::Path::new(&dir), cli.cache_max_mb) {
            Ok(store) => maya::core::store::install_thread(Some(store)),
            Err(e) => eprintln!("mayac: cache disabled, cannot open {dir}: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("cache") {
        return cache_command(&raw[1..]);
    }
    let cli = match parse_args(raw.into_iter()) {
        Ok(cli) => cli,
        Err(e) => return usage(&e),
    };

    install_store(&cli);
    let jobs = cli.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    let installer = Rc::new(|c: &Compiler| {
        maya::macrolib::install(c);
        maya::multijava::install(c);
    }) as Rc<dyn Fn(&Compiler)>;
    let mut session = Session::new(
        CompileOptions {
            echo_output: false,
            jobs,
            ..CompileOptions::default()
        },
        Some(installer),
    );
    let opts = request_opts(&cli);

    if cli.watch {
        return watch(&mut session, &cli, &opts);
    }

    let tsession = start_telemetry(&cli);
    let outcome = session.compile(&cli.files, &opts);
    // Telemetry output is emitted even when compilation fails: a phase
    // table for a failing run is still a phase table.
    let stats_ok = finish_telemetry(&cli, tsession);
    eprint!("{}", outcome.stderr);
    if !stats_ok {
        return ExitCode::FAILURE;
    }
    if !outcome.success {
        return ExitCode::FAILURE;
    }
    print!("{}", outcome.stdout);
    ExitCode::SUCCESS
}

/// `--watch`: compile, then poll the inputs (mtime + size + inode at
/// 200ms) and recompile through the same [`Session`] on every change.
/// Each round prints exactly what a cold run would, preceded by a
/// `mayac: [watch]` status line on stderr. A file deleted and re-created
/// between polls is detected by its inode; one that stays deleted gets a
/// grace window, then a diagnostic and a rebuild without it.
fn watch(session: &mut Session, cli: &Cli, opts: &RequestOpts) -> ExitCode {
    use std::io::Write as _;
    let mut round = 0u64;
    loop {
        round += 1;
        let tsession = start_telemetry(cli);
        let outcome = session.compile(&cli.files, opts);
        finish_telemetry(cli, tsession);
        eprint!("{}", outcome.stderr);
        if outcome.success {
            print!("{}", outcome.stdout);
        }
        let _ = std::io::stdout().flush();
        eprintln!(
            "mayac: [watch] round {round}: {} ({} changed, {} recompiled, {} reused{})",
            if outcome.success { "ok" } else { "failed" },
            outcome.files_changed,
            outcome.files_recompiled,
            outcome.files_reused,
            if outcome.full_reuse { ", full reuse" } else { "" },
        );
        let baseline = fingerprint(&cli.files);
        // Editors commonly save by delete-then-create (or rename-over), so
        // a file vanishing between polls is usually transient. Give each
        // disappeared file a short grace window before rebuilding: if it
        // reappears unchanged nothing happens, if it reappears changed the
        // inode in the fingerprint catches it even when (mtime, size)
        // round-trips identically, and if it stays gone we say so once and
        // rebuild (the read error becomes an ordinary diagnostic while the
        // file keeps being watched for re-creation).
        const GRACE_POLLS: u32 = 10; // × 200ms = 2s
        let mut missing_polls = vec![0u32; cli.files.len()];
        'poll: loop {
            std::thread::sleep(std::time::Duration::from_millis(200));
            let now = fingerprint(&cli.files);
            if now == baseline {
                missing_polls.iter_mut().for_each(|p| *p = 0);
                continue;
            }
            for (i, (b, n)) in baseline.iter().zip(now.iter()).enumerate() {
                if b.is_some() && n.is_none() {
                    missing_polls[i] += 1;
                    if missing_polls[i] == GRACE_POLLS {
                        eprintln!(
                            "mayac: [watch] {} disappeared and did not come back; \
                             rebuilding without it (still watching for re-creation)",
                            cli.files[i]
                        );
                        break 'poll;
                    }
                } else if n != b {
                    // Changed, appeared, or re-created (new inode even if
                    // mtime and size happen to match).
                    break 'poll;
                }
            }
        }
    }
}

/// A cheap change fingerprint: (mtime, size, inode) per file; unreadable
/// files fingerprint as `None` so appearing/disappearing also triggers,
/// and the inode distinguishes a re-created file from the original even
/// when (mtime, size) collide.
fn fingerprint(files: &[String]) -> Vec<Option<(std::time::SystemTime, u64, u64)>> {
    use std::os::unix::fs::MetadataExt as _;
    files
        .iter()
        .map(|f| {
            std::fs::metadata(f)
                .ok()
                .and_then(|m| m.modified().ok().map(|t| (t, m.len(), m.ino())))
        })
        .collect()
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mayac: {err}");
    }
    eprintln!(
        "usage: mayac [-use NAME]... [--main CLASS] [--expand] [--dump-bytecode[=METHOD]]\n\
         \x20            [--max-errors=N] [--error-format=human|json] [--deny-warnings]\n\
         \x20            [--time-passes[=tree]] [--stats[=FILE]] [--trace-expansion[=FILTER]]\n\
         \x20            [--trace-out=FILE] [--profile-interp[=N]]\n\
         \x20            [--jobs=N] [--cache-dir=DIR] [--cache-max-mb=N] [--watch] FILE...\n\
         \x20      mayac cache stats|gc|clear [--cache-dir=DIR] [--cache-max-mb=N]\n\
         \x20\n\
         \x20      --table-cache=DIR is a deprecated alias for --cache-dir=DIR;\n\
         \x20      MAYA_CACHE_DIR supplies a default cache directory."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
