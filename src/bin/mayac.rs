//! `mayac`: the Maya compiler driver (paper Figure 1).
//!
//! Usage:
//!
//! ```text
//! mayac [-use NAME]... [--main CLASS] [--expand]
//!       [--max-errors=N] [--error-format=human|json] [--deny-warnings]
//!       [--time-passes] [--stats[=FILE]] [--trace-expansion[=FILTER]]
//!       [--jobs=N] [--table-cache=DIR]
//!       FILE...
//! ```
//!
//! Compiles the given MayaJava sources with the macro library and MultiJava
//! registered, then runs `CLASS.main()` (default `Main`). `-use NAME`
//! imports a metaprogram for the whole compilation (the paper's `-use`
//! command-line option, §3.3); `--expand` prints every compiled method
//! body after Mayan expansion.
//!
//! Robustness flags (see README.md § Robustness):
//!
//! * `--max-errors=N` — stop reporting after N errors (default 20);
//! * `--error-format=json` — emit diagnostics as one JSON document
//!   (schema `maya-diagnostics/1`) on stderr instead of per-line text;
//! * `--deny-warnings` — exit nonzero when any warning was reported.
//!
//! The driver never aborts on a compiler bug: panics anywhere in the
//! pipeline (including inside Mayan expansion) become internal-compiler-
//! error diagnostics and a clean nonzero exit.
//!
//! Observability flags (see README.md § Observability):
//!
//! * `--time-passes` — per-phase wall-clock table on stderr;
//! * `--stats` — machine-readable counters (schema `maya-telemetry/1`) on
//!   stderr, or to a file with `--stats=FILE`;
//! * `--trace-expansion` — stream each dispatch/force/import/template
//!   event to stderr as it happens; `--trace-expansion=FILTER` keeps only
//!   events whose kind, target, or detail contains FILTER.
//!
//! Without these flags a successful run writes nothing to stderr.
//!
//! Performance flags (see README.md § Performance):
//!
//! * `--jobs=N` — lex independent source files on N worker threads
//!   (default: available parallelism). Output, diagnostics, and their
//!   order are identical for every N.
//! * `--table-cache=DIR` — persist built LALR tables under DIR, keyed by
//!   a grammar content hash, so later runs skip table construction. A
//!   corrupt or stale cache file is ignored and rebuilt silently.

use maya::ast::{normalize_generated_names, pretty_node};
use maya::core::Diagnostics;
use maya::telemetry;
use maya::{CompileOptions, Compiler};
use std::process::ExitCode;
use std::rc::Rc;

#[derive(Clone, Copy, PartialEq, Eq, Default)]
enum ErrorFormat {
    #[default]
    Human,
    Json,
}

#[derive(Default)]
struct Cli {
    uses: Vec<String>,
    files: Vec<String>,
    main_class: Option<String>,
    expand: bool,
    max_errors: Option<usize>,
    error_format: ErrorFormat,
    deny_warnings: bool,
    time_passes: bool,
    /// `Some(None)` = stats to stderr; `Some(Some(path))` = stats to file.
    stats: Option<Option<String>>,
    /// `Some(filter)`; an empty filter passes everything.
    trace: Option<String>,
    /// Front-end worker threads; `None` = available parallelism.
    jobs: Option<usize>,
    /// On-disk LALR table cache directory.
    table_cache: Option<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-use" | "--use" => match args.next() {
                Some(n) => cli.uses.push(n),
                None => return Err("missing name after -use".into()),
            },
            "--main" => match args.next() {
                Some(n) => cli.main_class = Some(n),
                None => return Err("missing class after --main".into()),
            },
            "--expand" => cli.expand = true,
            "--deny-warnings" => cli.deny_warnings = true,
            "--time-passes" => cli.time_passes = true,
            "--stats" => cli.stats = Some(None),
            "--trace-expansion" => cli.trace = Some(String::new()),
            "-h" | "--help" => return Err(String::new()),
            other => {
                if let Some(path) = other.strip_prefix("--stats=") {
                    if path.is_empty() {
                        return Err("missing file after --stats=".into());
                    }
                    cli.stats = Some(Some(path.to_owned()));
                } else if let Some(filter) = other.strip_prefix("--trace-expansion=") {
                    cli.trace = Some(filter.to_owned());
                } else if let Some(n) = other.strip_prefix("--max-errors=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => cli.max_errors = Some(n),
                        _ => return Err(format!("invalid --max-errors value {n:?}")),
                    }
                } else if let Some(n) = other.strip_prefix("--jobs=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => cli.jobs = Some(n),
                        _ => return Err(format!("invalid --jobs value {n:?}")),
                    }
                } else if let Some(dir) = other.strip_prefix("--table-cache=") {
                    if dir.is_empty() {
                        return Err("missing directory after --table-cache=".into());
                    }
                    cli.table_cache = Some(dir.to_owned());
                } else if let Some(fmt) = other.strip_prefix("--error-format=") {
                    cli.error_format = match fmt {
                        "human" => ErrorFormat::Human,
                        "json" => ErrorFormat::Json,
                        _ => return Err(format!("unknown error format {fmt:?}")),
                    };
                } else if !other.starts_with('-') {
                    cli.files.push(other.to_owned());
                } else {
                    return Err(format!("unknown option {other}"));
                }
            }
        }
    }
    if cli.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => return usage(&e),
    };

    let telemetry_on = cli.time_passes || cli.stats.is_some() || cli.trace.is_some();
    let session = telemetry_on.then(|| {
        telemetry::Session::start(telemetry::Config {
            capture_events: false,
            event_filter: cli.trace.clone().filter(|f| !f.is_empty()),
            sink: cli.trace.is_some().then(|| {
                Rc::new(|e: &telemetry::TraceEvent| eprintln!("mayac: {}", e.render()))
                    as telemetry::TraceSink
            }),
        })
    });

    if let Some(dir) = &cli.table_cache {
        maya::grammar::set_table_cache_dir(Some(std::path::PathBuf::from(dir)));
    }
    let jobs = cli.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    let compiler = Compiler::with_options(CompileOptions {
        echo_output: false,
        uses: cli.uses.clone(),
        jobs,
        ..CompileOptions::default()
    });
    maya::macrolib::install(&compiler);
    maya::multijava::install(&compiler);

    let diags = Diagnostics::with_limits(cli.max_errors.unwrap_or(20), cli.deny_warnings);
    // Last-resort safety net: any panic that escapes the per-phase
    // sandboxes still becomes an ICE diagnostic, never an abort.
    let output = match maya::core::catch_ice(|| run(&compiler, &cli, &diags)) {
        Ok(out) => out,
        Err(panic_msg) => {
            diags.error(format!("internal: {panic_msg}"), maya::lexer::Span::DUMMY);
            None
        }
    };

    // Telemetry output is emitted even when compilation fails: a phase
    // table for a failing run is still a phase table.
    if let Some(session) = session {
        let report = session.finish();
        if cli.time_passes {
            eprint!("{}", report.time_passes_table());
        }
        match &cli.stats {
            Some(Some(path)) => {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("mayac: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Some(None) => eprint!("{}", report.to_json()),
            None => {}
        }
    }

    if !diags.is_empty() || diags.should_fail() {
        let sm = compiler.inner().sm.borrow();
        match cli.error_format {
            ErrorFormat::Human => {
                for line in diags.render_human(&sm).lines() {
                    eprintln!("mayac: {line}");
                }
            }
            ErrorFormat::Json => eprint!("{}", diags.render_json(&sm)),
        }
    }

    if diags.should_fail() {
        return ExitCode::FAILURE;
    }
    if let Some(out) = output {
        print!("{out}");
    }
    ExitCode::SUCCESS
}

/// The whole pipeline in multi-error mode: read, parse (with recovery),
/// compile (per-class isolation), run. Returns the program output when
/// everything succeeded.
fn run(compiler: &Compiler, cli: &Cli, diags: &Diagnostics) -> Option<String> {
    // Read everything up front (read errors come out first, in file
    // order), then hand the batch to the compiler so independent files can
    // be lexed on worker threads. Units, diagnostics, and output stay in
    // file order regardless of --jobs.
    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &cli.files {
        match std::fs::read_to_string(f) {
            Ok(t) => sources.push((f.clone(), t)),
            Err(e) => diags.error(format!("cannot read {f}: {e}"), maya::lexer::Span::DUMMY),
        }
    }
    compiler.add_sources_diags(&sources, diags);
    if diags.at_cap() {
        return None;
    }
    compiler.compile_diags(diags);

    if cli.expand && !diags.should_fail() {
        let classes = compiler.classes();
        for idx in 0..classes.len() {
            let id = maya::types::ClassId(idx as u32);
            let info = classes.info(id);
            let info = info.borrow();
            if info.fqcn.as_str().starts_with("java.") || info.fqcn.as_str().starts_with("maya.") {
                continue;
            }
            for m in &info.methods {
                if let Some(body) = &m.body {
                    if let Some(node) = body.forced_node() {
                        println!("--- {}.{} ---", info.fqcn, m.name);
                        println!("{}", normalize_generated_names(&pretty_node(&node)));
                    }
                }
            }
        }
    }

    if diags.should_fail() {
        return None;
    }
    let main_class = cli.main_class.as_deref().unwrap_or("Main");
    compiler.run_main_diags(main_class, diags)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mayac: {err}");
    }
    eprintln!(
        "usage: mayac [-use NAME]... [--main CLASS] [--expand]\n\
         \x20            [--max-errors=N] [--error-format=human|json] [--deny-warnings]\n\
         \x20            [--time-passes] [--stats[=FILE]] [--trace-expansion[=FILTER]]\n\
         \x20            [--jobs=N] [--table-cache=DIR] FILE..."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
