//! `mayac`: the Maya compiler driver (paper Figure 1).
//!
//! Usage:
//!
//! ```text
//! mayac [-use NAME]... [--main CLASS] [--expand] FILE...
//! ```
//!
//! Compiles the given MayaJava sources with the macro library and MultiJava
//! registered, then runs `CLASS.main()` (default `Main`). `-use NAME`
//! imports a metaprogram for the whole compilation (the paper's `-use`
//! command-line option, §3.3); `--expand` prints every compiled method
//! body after Mayan expansion.

use maya::ast::{normalize_generated_names, pretty_node};
use maya::{CompileOptions, Compiler};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut uses = Vec::new();
    let mut files = Vec::new();
    let mut main_class = "Main".to_owned();
    let mut expand = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-use" | "--use" => match args.next() {
                Some(n) => uses.push(n),
                None => return usage("missing name after -use"),
            },
            "--main" => match args.next() {
                Some(n) => main_class = n,
                None => return usage("missing class after --main"),
            },
            "--expand" => expand = true,
            "-h" | "--help" => return usage(""),
            f if !f.starts_with('-') => files.push(f.to_owned()),
            other => return usage(&format!("unknown option {other}")),
        }
    }
    if files.is_empty() {
        return usage("no input files");
    }

    let compiler = Compiler::with_options(CompileOptions {
        echo_output: false,
        uses,
    });
    maya::macrolib::install(&compiler);
    maya::multijava::install(&compiler);

    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mayac: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = compiler.add_source(f, &text) {
            eprintln!("mayac: {f}: {}", e.message);
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = compiler.compile() {
        eprintln!("mayac: {}", e.message);
        return ExitCode::FAILURE;
    }

    if expand {
        let classes = compiler.classes();
        for f in &files {
            let _ = f;
        }
        for idx in 0..classes.len() {
            let id = maya::types::ClassId(idx as u32);
            let info = classes.info(id);
            let info = info.borrow();
            if info.fqcn.as_str().starts_with("java.")
                || info.fqcn.as_str().starts_with("maya.")
            {
                continue;
            }
            for m in &info.methods {
                if let Some(body) = &m.body {
                    if let Some(node) = body.forced_node() {
                        println!("--- {}.{} ---", info.fqcn, m.name);
                        println!("{}", normalize_generated_names(&pretty_node(&node)));
                    }
                }
            }
        }
    }

    match compiler.run_main(&main_class) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mayac: {}", e.message);
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mayac: {err}");
    }
    eprintln!("usage: mayac [-use NAME]... [--main CLASS] [--expand] FILE...");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
