//! Property tests: grammar snapshots and LALR generation.

use maya_ast::NodeKind;
use maya_grammar::{Assoc, GrammarBuilder, RhsItem, Terminal};
use maya_lexer::TokenKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stratified_binary_grammars_are_always_lalr1(ops in proptest::sample::subsequence(
        vec![TokenKind::Plus, TokenKind::Minus, TokenKind::Star, TokenKind::Slash,
             TokenKind::Amp, TokenKind::Pipe, TokenKind::Caret, TokenKind::Lt],
        1..8,
    )) {
        let mut b = GrammarBuilder::new();
        for (i, op) in ops.iter().enumerate() {
            b.set_prec(Terminal::Tok(*op), (i + 1) as u16, Assoc::Left);
            b.add_production(
                NodeKind::Expression,
                &[
                    RhsItem::Kind(NodeKind::Expression),
                    RhsItem::tok(*op),
                    RhsItem::Kind(NodeKind::Expression),
                ],
                None,
            ).unwrap();
        }
        b.add_production(NodeKind::Expression, &[RhsItem::tok(TokenKind::IntLit)], None).unwrap();
        let g = b.finish();
        prop_assert!(g.tables().is_ok());
    }

    #[test]
    fn extension_preserves_production_ids(extra in 1usize..6) {
        let mut b = GrammarBuilder::new();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None).unwrap();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::KwBreak), RhsItem::tok(TokenKind::Semi)], None).unwrap();
        let g1 = b.finish();
        let mut ext = g1.extend();
        for i in 0..extra {
            ext.add_production(
                NodeKind::Statement,
                &[RhsItem::word(Box::leak(format!("w{i}").into_boxed_str())), RhsItem::tok(TokenKind::Semi)],
                None,
            ).unwrap();
        }
        let g2 = ext.finish();
        // Old ids denote the same productions in the extension.
        for i in 0..g1.productions().len() {
            let id = maya_grammar::ProdId(i as u32);
            prop_assert_eq!(
                g1.production(id).rhs.clone(),
                g2.production(id).rhs.clone()
            );
        }
        prop_assert_eq!(g2.productions().len(), g1.productions().len() + extra);
    }

    #[test]
    fn duplicate_productions_dedup(n in 1usize..10) {
        let mut b = GrammarBuilder::new();
        let mut ids = vec![];
        for _ in 0..n {
            ids.push(b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None).unwrap());
        }
        prop_assert!(ids.windows(2).all(|w| w[0] == w[1]));
        prop_assert_eq!(b.finish().productions().len(), 1);
    }
}
