//! Property-style tests: grammar snapshots and LALR generation.
//!
//! Inputs are enumerated exhaustively or drawn from a deterministic
//! xorshift PRNG (no registry access in the build container, so `proptest`
//! is unavailable); every failure reproduces exactly.

use maya_ast::NodeKind;
use maya_grammar::{Assoc, GrammarBuilder, RhsItem, Terminal};
use maya_lexer::TokenKind;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
}

#[test]
fn stratified_binary_grammars_are_always_lalr1() {
    let pool = [
        TokenKind::Plus,
        TokenKind::Minus,
        TokenKind::Star,
        TokenKind::Slash,
        TokenKind::Amp,
        TokenKind::Pipe,
        TokenKind::Caret,
        TokenKind::Lt,
    ];
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        // A random non-empty subsequence of the operator pool.
        let mask = (rng.next() % 255) as u8 | 1;
        let ops: Vec<TokenKind> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, t)| *t)
            .collect();
        let mut b = GrammarBuilder::new();
        for (i, op) in ops.iter().enumerate() {
            b.set_prec(Terminal::Tok(*op), (i + 1) as u16, Assoc::Left);
            b.add_production(
                NodeKind::Expression,
                &[
                    RhsItem::Kind(NodeKind::Expression),
                    RhsItem::tok(*op),
                    RhsItem::Kind(NodeKind::Expression),
                ],
                None,
            )
            .unwrap();
        }
        b.add_production(NodeKind::Expression, &[RhsItem::tok(TokenKind::IntLit)], None)
            .unwrap();
        let g = b.finish();
        assert!(g.tables().is_ok(), "seed {seed} ops {ops:?}");
    }
}

#[test]
fn extension_preserves_production_ids() {
    for extra in 1usize..6 {
        let mut b = GrammarBuilder::new();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
            .unwrap();
        b.add_production(
            NodeKind::Statement,
            &[RhsItem::tok(TokenKind::KwBreak), RhsItem::tok(TokenKind::Semi)],
            None,
        )
        .unwrap();
        let g1 = b.finish();
        let mut ext = g1.extend();
        for i in 0..extra {
            ext.add_production(
                NodeKind::Statement,
                &[
                    RhsItem::word(Box::leak(format!("w{i}").into_boxed_str())),
                    RhsItem::tok(TokenKind::Semi),
                ],
                None,
            )
            .unwrap();
        }
        let g2 = ext.finish();
        // Old ids denote the same productions in the extension.
        for i in 0..g1.productions().len() {
            let id = maya_grammar::ProdId(i as u32);
            assert_eq!(g1.production(id).rhs, g2.production(id).rhs);
        }
        assert_eq!(g2.productions().len(), g1.productions().len() + extra);
    }
}

#[test]
fn duplicate_productions_dedup() {
    for n in 1usize..10 {
        let mut b = GrammarBuilder::new();
        let mut ids = vec![];
        for _ in 0..n {
            ids.push(
                b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
                    .unwrap(),
            );
        }
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(b.finish().productions().len(), 1);
    }
}
