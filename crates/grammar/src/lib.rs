//! The extensible LALR(1) grammar of Maya (paper §3.1, §4.1).
//!
//! Maya productions are written in a high-level metagrammar with three kinds
//! of right-hand-side items beyond plain terminals and node-type
//! nonterminals:
//!
//! * **matching-delimiter subtrees** — `(Formal)` means "a `ParenTree` whose
//!   contents parse to a `Formal`";
//! * **`lazy(BraceTree, BlockStmts)`** — a subtree that is *not* parsed until
//!   its AST is demanded;
//! * **`list(X, sep)`** — a possibly-empty separated repetition.
//!
//! Lowering translates each of these into helper productions on synthesized
//! nonterminals (the paper's `G0`, `G1`), shared between productions that use
//! the same parameterized symbol. The result is a pure LALR(1) grammar; the
//! generator ([`Grammar::tables`]) computes LALR(1) lookaheads by
//! propagation, resolves conflicts with operator-precedence relations, and —
//! like Maya and unlike YACC — **rejects** grammars with unresolved
//! conflicts rather than resolving them silently.
//!
//! A [`Grammar`] is a persistent snapshot: extending it yields a new
//! snapshot, so lexically scoped imports can restore the previous grammar by
//! simply keeping the old handle.

mod bitset;
mod build;
mod cache;
mod lalr;
mod prod;
mod symbol;
mod tables;

pub use bitset::BitSet;
pub use build::{Grammar, GrammarBuilder, GrammarError, RhsItem};
pub use cache::{
    clear_table_cache, set_table_cache_enabled, set_table_cache_shared, set_table_disk,
    table_cache_contains, table_cache_enabled, table_cache_len, table_cache_shared, TableDisk,
};
pub use prod::{Action, Assoc, BuiltinAction, ProdId, Production};
pub use symbol::{NtDef, NtId, Sym, Terminal};
pub use tables::{ActionEntry, Conflict, Tables, TermId};
