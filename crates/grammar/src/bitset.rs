//! A small fixed-capacity bit set used for FIRST sets and lookaheads.

/// A growable bit set over `u32` indices.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// An empty set with capacity for indices `< n` without reallocation.
    pub fn with_capacity(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Membership test.
    pub fn contains(&self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (w, &o) in self.words.iter_mut().zip(other.words.iter()) {
            let new = *w | o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    /// Iterates set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| (wi * 64 + b) as u32)
        })
    }

    /// True when no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (for serialization).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from backing words (for deserialization).
    pub(crate) fn from_words(words: Vec<u64>) -> BitSet {
        BitSet { words }
    }
}

impl FromIterator<u32> for BitSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> BitSet {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3));
        assert!(s.contains(100));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 100]);
    }

    #[test]
    fn union() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let mut b: BitSet = [3, 4].into_iter().collect();
        assert!(b.union_with(&a));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert!(!b.union_with(&a), "no change on re-union");
    }

    #[test]
    fn capacity() {
        let s = BitSet::with_capacity(130);
        assert!(s.is_empty());
        assert!(!s.contains(129));
    }
}
