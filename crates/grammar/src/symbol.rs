//! Grammar symbols: terminals and nonterminals.

use maya_ast::NodeKind;
use maya_lexer::{Delim, Symbol, TokenKind};
use std::fmt;

/// A terminal of the extensible grammar.
///
/// Beyond plain token kinds, Maya grammars use:
///
/// * [`Terminal::Word`] — an identifier with a specific text (`typedef` in
///   Figure 3). At parse time a `Word` action takes precedence over the plain
///   [`TokenKind::Ident`] action in the same state, which is how contextual
///   keywords work without reserving words globally.
/// * [`Terminal::Tree`] — a matched-delimiter subtree from the stream lexer.
/// * [`Terminal::Goal`] — an internal marker injected before the input to
///   select the start symbol (each nonterminal is startable, which is what
///   recursive subtree parsing needs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Terminal {
    /// Any token of this kind.
    Tok(TokenKind),
    /// An identifier token with exactly this text.
    Word(Symbol),
    /// A delimiter subtree (`ParenTree`, `BraceTree`, `BrackTree`).
    Tree(Delim),
    /// Internal: selects the start symbol.
    Goal(NtId),
    /// Internal: end of input for a parse whose start symbol is this
    /// nonterminal. Per-goal end terminals keep the lookahead sets of
    /// different goals disjoint under LALR state merging.
    EndOf(NtId),
    /// End of input (unused placeholder kept for display).
    End,
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminal::Tok(k) => write!(f, "'{}'", k.name()),
            Terminal::Word(s) => write!(f, "\"{s}\""),
            Terminal::Tree(d) => f.write_str(d.tree_name()),
            Terminal::Goal(nt) => write!(f, "<goal:{}>", nt.0),
            Terminal::EndOf(_) | Terminal::End => f.write_str("<end>"),
        }
    }
}

/// Identifies a nonterminal within one grammar lineage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NtId(pub u32);

/// Definition of a nonterminal.
#[derive(Clone, Debug)]
pub struct NtDef {
    /// Display name (`Statement`, or a synthesized `%sub(ParenTree,Formal)`).
    pub name: Symbol,
    /// The node kind this nonterminal corresponds to, for node-type
    /// nonterminals. Helper nonterminals have `None`.
    pub kind: Option<NodeKind>,
}

/// A grammar symbol: terminal or nonterminal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sym {
    T(Terminal),
    N(NtId),
}

impl Sym {
    /// The terminal, if this is one.
    pub fn terminal(self) -> Option<Terminal> {
        match self {
            Sym::T(t) => Some(t),
            Sym::N(_) => None,
        }
    }

    /// The nonterminal, if this is one.
    pub fn nonterminal(self) -> Option<NtId> {
        match self {
            Sym::T(_) => None,
            Sym::N(n) => Some(n),
        }
    }
}

impl From<Terminal> for Sym {
    fn from(t: Terminal) -> Sym {
        Sym::T(t)
    }
}

impl From<NtId> for Sym {
    fn from(n: NtId) -> Sym {
        Sym::N(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::sym;

    #[test]
    fn sym_accessors() {
        let t = Sym::from(Terminal::Tok(TokenKind::Semi));
        assert_eq!(t.terminal(), Some(Terminal::Tok(TokenKind::Semi)));
        assert_eq!(t.nonterminal(), None);
        let n = Sym::from(NtId(4));
        assert_eq!(n.nonterminal(), Some(NtId(4)));
        assert_eq!(n.terminal(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Terminal::Tok(TokenKind::Dot).to_string(), "'.'");
        assert_eq!(Terminal::Word(sym("typedef")).to_string(), "\"typedef\"");
        assert_eq!(Terminal::Tree(Delim::Paren).to_string(), "ParenTree");
        assert_eq!(Terminal::End.to_string(), "<end>");
    }
}
