//! LALR(1) parse tables.

use crate::{BitSet, NtId, ProdId, Terminal};
use maya_lexer::{Delim, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// Dense terminal id within one table set.
pub type TermId = u32;

/// A parse action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionEntry {
    Shift(u32),
    Reduce(ProdId),
    /// Reduction of an internal start production: parsing of the goal is
    /// complete.
    Accept,
}

/// An unresolved LALR(1) conflict. Maya rejects grammars containing these
/// (paper §4.1).
#[derive(Clone, Debug)]
pub struct Conflict {
    pub state: u32,
    pub on: Terminal,
    pub description: String,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state {} on {}: {}", self.state, self.on, self.description)
    }
}

/// The generated tables: ACTION, GOTO, FIRST sets, and terminal interning.
pub struct Tables {
    pub(crate) n_states: u32,
    pub(crate) action: HashMap<(u32, TermId), ActionEntry>,
    pub(crate) goto_: HashMap<(u32, NtId), u32>,
    pub(crate) terms: Vec<Terminal>,
    pub(crate) term_ids: HashMap<Terminal, TermId>,
    /// FIRST sets over terminal ids, per nonterminal.
    pub(crate) first_nt: Vec<BitSet>,
    pub(crate) nullable_nt: Vec<bool>,
    /// States whose only possible move is one reduction: performed without
    /// consulting the lookahead (like yacc default reductions). Needed for
    /// productions followed by marker nonterminals with empty FIRST sets.
    pub(crate) default_reduce: HashMap<u32, ProdId>,
}

impl Tables {
    /// The initial state. The first input symbol must be the goal marker
    /// ([`Tables::goal_term`]).
    pub fn start_state(&self) -> u32 {
        0
    }

    /// Number of LR states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Number of distinct terminals.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// The id of a terminal in this table set.
    pub fn term_id(&self, t: Terminal) -> Option<TermId> {
        self.term_ids.get(&t).copied()
    }

    /// The terminal for an id.
    pub fn term(&self, id: TermId) -> Terminal {
        self.terms[id as usize]
    }

    /// The end-of-input terminal id for a parse with start symbol `nt`.
    pub fn end_of(&self, nt: NtId) -> Option<TermId> {
        self.term_id(Terminal::EndOf(nt))
    }

    /// The goal-marker terminal id for a startable nonterminal.
    pub fn goal_term(&self, nt: NtId) -> Option<TermId> {
        self.term_id(Terminal::Goal(nt))
    }

    /// The action for `(state, terminal id)`; falls back to the state's
    /// default reduction.
    pub fn action(&self, state: u32, t: TermId) -> Option<ActionEntry> {
        self.action
            .get(&(state, t))
            .copied()
            .or_else(|| self.default_reduce.get(&state).map(|p| ActionEntry::Reduce(*p)))
    }

    /// Resolves a concrete token to the terminal id the current state acts
    /// on: a [`Terminal::Word`] entry for identifiers takes precedence over
    /// the generic identifier terminal.
    pub fn action_for_token(&self, state: u32, tok: &Token) -> Option<(TermId, ActionEntry)> {
        if tok.kind == TokenKind::Ident {
            if let Some(id) = self.term_id(Terminal::Word(tok.text)) {
                if let Some(a) = self.action(state, id) {
                    return Some((id, a));
                }
            }
        }
        let id = self.term_id(Terminal::Tok(tok.kind))?;
        self.action(state, id).map(|a| (id, a))
    }

    /// The action for a delimiter subtree in `state`.
    pub fn action_for_tree(&self, state: u32, delim: Delim) -> Option<(TermId, ActionEntry)> {
        let id = self.term_id(Terminal::Tree(delim))?;
        self.action(state, id).map(|a| (id, a))
    }

    /// The GOTO entry for `(state, nonterminal)`.
    pub fn goto(&self, state: u32, nt: NtId) -> Option<u32> {
        self.goto_.get(&(state, nt)).copied()
    }

    /// FIRST set (terminal ids) of a nonterminal.
    pub fn first_of_nt(&self, nt: NtId) -> &BitSet {
        &self.first_nt[nt.0 as usize]
    }

    /// Whether a nonterminal derives ε.
    pub fn nullable(&self, nt: NtId) -> bool {
        self.nullable_nt[nt.0 as usize]
    }

    /// Terminals with actions in `state` — for diagnostics.
    pub fn expected_in(&self, state: u32) -> Vec<Terminal> {
        let mut v: Vec<Terminal> = self
            .action
            .keys()
            .filter(|(s, _)| *s == state)
            .map(|(_, t)| self.terms[*t as usize])
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Total number of ACTION entries (table size metric for benches).
    pub fn action_entries(&self) -> usize {
        self.action.len()
    }
}

impl fmt::Debug for Tables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tables")
            .field("states", &self.n_states)
            .field("terminals", &self.terms.len())
            .field("actions", &self.action.len())
            .field("gotos", &self.goto_.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{GrammarBuilder, NtId, RhsItem};
    use maya_ast::NodeKind;
    use maya_lexer::{sym, TokenKind};

    #[test]
    fn word_terminals_take_precedence_over_identifiers() {
        let mut b = GrammarBuilder::new();
        b.add_production(NodeKind::Statement, &[RhsItem::word("gizmo")], None)
            .unwrap();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Ident)], None)
            .unwrap();
        let g = b.finish();
        let t = g.tables().unwrap();
        let start = {
            let nt = g.nt_for_kind(NodeKind::Statement).unwrap();
            let gt = t.goal_term(nt).unwrap();
            match t.action(t.start_state(), gt) {
                Some(crate::ActionEntry::Shift(s)) => s,
                other => panic!("expected shift, got {other:?}"),
            }
        };
        let gizmo = maya_lexer::Token::synth(TokenKind::Ident, sym("gizmo"));
        let plain = maya_lexer::Token::synth(TokenKind::Ident, sym("other"));
        let (gid, _) = t.action_for_token(start, &gizmo).unwrap();
        let (pid, _) = t.action_for_token(start, &plain).unwrap();
        assert_ne!(gid, pid, "gizmo resolves to its Word terminal");
    }

    #[test]
    fn expected_terminals_exclude_goal_markers() {
        let mut b = GrammarBuilder::new();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
            .unwrap();
        let g = b.finish();
        let t = g.tables().unwrap();
        // Every nonterminal has an end terminal.
        for i in 1..g.nt_count() {
            assert!(t.end_of(NtId(i as u32)).is_some());
        }
    }
}
