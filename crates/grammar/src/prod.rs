//! Productions, semantic-action kinds, and precedence.

use crate::{NtId, Sym};
use maya_ast::NodeKind;

/// Identifies a production. Stable across grammar extension: snapshots only
/// append, so the Mayan dispatcher can key its method tables by `ProdId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProdId(pub u32);

/// Operator associativity for precedence-based conflict resolution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Assoc {
    Left,
    Right,
    /// Neither: a conflict at equal precedence is a syntax error.
    NonAssoc,
}

/// Engine-level semantic actions for helper productions produced by
/// lowering. These are not dispatchable: they are the plumbing under the
/// paper's parameterized grammar symbols.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuiltinAction {
    /// Value of the production is the value of RHS element `i`.
    PassThrough(usize),
    /// Produce an empty `Node::List`.
    EmptyList,
    /// Produce a singleton `Node::List` from RHS element 0.
    ListSingle,
    /// Append the last RHS element to the list in element 0 (`with_sep`
    /// indicates a separator token sits between them).
    ListAppend { with_sep: bool },
    /// Recursively parse the delimiter subtree in element 0 with `goal`.
    ParseSubtree { goal: NtId },
    /// Wrap the delimiter subtree in element 0 as an unforced lazy node
    /// with goal nonterminal `goal` and node kind `kind`.
    LazySubtree { goal: NtId, kind: NodeKind },
    /// The `__Start → <goal-marker> G` production: value is element 1.
    StartAccept,
    /// Bundle all RHS values into a `Node::List` (anonymous sequence
    /// nonterminals inside subtree patterns).
    Bundle,
}

/// How a production computes its value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Dispatch to the most applicable Mayan (paper §4.4). All node-type
    /// productions — built-in and user-defined — use this.
    Dispatch,
    /// An engine-level helper action.
    Builtin(BuiltinAction),
}

/// A lowered production: `lhs → rhs`, with its action and precedence.
#[derive(Clone, Debug)]
pub struct Production {
    pub lhs: NtId,
    pub rhs: Vec<Sym>,
    pub action: Action,
    /// Explicit precedence (level, associativity). When absent, conflict
    /// resolution falls back to the precedence of the last terminal in `rhs`.
    pub prec: Option<(u16, Assoc)>,
}

impl Production {
    /// The dedup signature: productions are identified by shape, so adding
    /// an existing production returns the existing [`ProdId`] (paper §4.1:
    /// "If the productions and actions already exist in the grammar, they
    /// are not added again").
    pub fn signature(&self) -> (NtId, &[Sym]) {
        (self.lhs, &self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Terminal;
    use maya_lexer::TokenKind;

    #[test]
    fn signature_ignores_action_and_prec() {
        let a = Production {
            lhs: NtId(1),
            rhs: vec![Sym::T(Terminal::Tok(TokenKind::Semi))],
            action: Action::Dispatch,
            prec: None,
        };
        let b = Production {
            lhs: NtId(1),
            rhs: vec![Sym::T(Terminal::Tok(TokenKind::Semi))],
            action: Action::Builtin(BuiltinAction::PassThrough(0)),
            prec: Some((3, Assoc::Left)),
        };
        assert_eq!(a.signature(), b.signature());
    }
}
