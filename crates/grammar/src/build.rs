//! Grammar snapshots and the builder/lowering layer.

use crate::prod::{Action, Assoc, BuiltinAction, ProdId, Production};
use crate::symbol::{NtDef, NtId, Sym, Terminal};
use crate::tables::{Conflict, Tables};
use maya_ast::NodeKind;
use maya_lexer::{sym, Delim, Span, Symbol};
use std::cell::OnceCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// An error from grammar construction or table generation.
#[derive(Clone, Debug)]
pub enum GrammarError {
    /// The grammar is not LALR(1) after precedence resolution; Maya rejects
    /// it (paper §4.1).
    Conflicts(Vec<Conflict>),
    /// A malformed production (bad LHS, empty alternatives, …).
    Invalid {
        message: String,
        /// The offending production's LHS name, when known.
        production: Option<String>,
        /// The declaration's source location, when known.
        span: Span,
    },
}

impl GrammarError {
    /// Builds an [`GrammarError::Invalid`] with no location yet.
    pub fn invalid(message: impl Into<String>) -> GrammarError {
        GrammarError::Invalid {
            message: message.into(),
            production: None,
            span: Span::DUMMY,
        }
    }

    /// Names the production the error occurred in (first writer wins, so
    /// the innermost context is kept).
    pub fn in_production(mut self, name: impl Into<String>) -> GrammarError {
        if let GrammarError::Invalid { production, .. } = &mut self {
            if production.is_none() {
                *production = Some(name.into());
            }
        }
        self
    }

    /// Attaches the declaration's source span (first writer wins).
    pub fn with_span(mut self, s: Span) -> GrammarError {
        if let GrammarError::Invalid { span, .. } = &mut self {
            if span.is_dummy() {
                *span = s;
            }
        }
        self
    }

    /// The best-known source location (dummy for whole-grammar conflicts,
    /// which have no single declaration site).
    pub fn span(&self) -> Span {
        match self {
            GrammarError::Conflicts(_) => Span::DUMMY,
            GrammarError::Invalid { span, .. } => *span,
        }
    }
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Conflicts(cs) => {
                writeln!(f, "grammar has {} unresolved LALR(1) conflict(s):", cs.len())?;
                for c in cs {
                    writeln!(f, "  {c}")?;
                }
                Ok(())
            }
            GrammarError::Invalid {
                message,
                production,
                ..
            } => {
                f.write_str(message)?;
                if let Some(p) = production {
                    write!(f, " (in production {p})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for GrammarError {}

/// A high-level right-hand-side item of the Maya metagrammar, before
/// lowering (paper §4.1: "token literals, node types, matching-delimiter
/// subtrees, or parameterized symbols").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RhsItem {
    /// A terminal.
    Term(Terminal),
    /// A node-type nonterminal.
    Kind(NodeKind),
    /// A raw nonterminal (advanced; used for internal grammar plumbing).
    Nt(NtId),
    /// A delimiter subtree whose contents are parsed *eagerly* against the
    /// inner sequence: `(Formal)` or `(Identifier = StrictClassName)` in the
    /// paper. A multi-symbol sequence is lowered to an anonymous
    /// nonterminal whose value bundles the parts into a `Node::List`.
    Subtree(Delim, Vec<RhsItem>),
    /// `lazy(BraceTree, BlockStmts)`: a subtree parsed on demand.
    Lazy(Delim, NodeKind),
    /// `list(X)` / `list(X, sep)`: possibly-empty repetition.
    List(Box<RhsItem>, Option<Terminal>),
}

impl RhsItem {
    /// Shorthand for a token-kind terminal.
    pub fn tok(kind: maya_lexer::TokenKind) -> RhsItem {
        RhsItem::Term(Terminal::Tok(kind))
    }

    /// Shorthand for a contextual keyword (identifier with exact text).
    pub fn word(text: &str) -> RhsItem {
        RhsItem::Term(Terminal::Word(sym(text)))
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum HelperKey {
    Subtree(Delim, Sym),
    Seq(Vec<Sym>),
    Lazy(Delim, NodeKind),
    List(Sym, Option<Terminal>),
    List1(Sym, Option<Terminal>),
}

/// The immutable payload of a grammar snapshot.
pub(crate) struct GrammarData {
    pub(crate) nts: Vec<NtDef>,
    pub(crate) nt_by_kind: HashMap<NodeKind, NtId>,
    nt_by_name: HashMap<Symbol, NtId>,
    pub(crate) prods: Vec<Production>,
    prods_by_sig: HashMap<(NtId, Vec<Sym>), ProdId>,
    helper_cache: HashMap<HelperKey, NtId>,
    pub(crate) term_prec: HashMap<Terminal, (u16, Assoc)>,
    version: u64,
    tables: OnceCell<Result<Arc<Tables>, GrammarError>>,
    /// Lazily computed content hash (see [`crate::cache`]).
    hash: OnceCell<u128>,
}

impl Clone for GrammarData {
    fn clone(&self) -> GrammarData {
        GrammarData {
            nts: self.nts.clone(),
            nt_by_kind: self.nt_by_kind.clone(),
            nt_by_name: self.nt_by_name.clone(),
            prods: self.prods.clone(),
            prods_by_sig: self.prods_by_sig.clone(),
            helper_cache: self.helper_cache.clone(),
            term_prec: self.term_prec.clone(),
            version: self.version,
            tables: OnceCell::new(), // tables are per-snapshot
            hash: OnceCell::new(),   // content may change under the builder
        }
    }
}

/// A persistent grammar snapshot. Cloning is cheap (`Rc`); extension via
/// [`Grammar::extend`] produces a *new* snapshot, leaving this one valid —
/// that is how lexically scoped syntax imports restore the outer grammar.
///
/// # Example
///
/// ```
/// use maya_ast::NodeKind;
/// use maya_grammar::{GrammarBuilder, RhsItem};
/// use maya_lexer::TokenKind;
///
/// let mut b = GrammarBuilder::new();
/// b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
///     .unwrap();
/// let g = b.finish();
/// let tables = g.tables().unwrap();
/// assert!(tables.n_states() > 0);
/// ```
#[derive(Clone)]
pub struct Grammar {
    inner: Rc<GrammarData>,
}

impl fmt::Debug for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grammar")
            .field("version", &self.inner.version)
            .field("nonterminals", &self.inner.nts.len())
            .field("productions", &self.inner.prods.len())
            .finish()
    }
}

impl Grammar {
    /// An empty grammar (no nonterminals but the reserved start symbol).
    pub fn empty() -> Grammar {
        GrammarBuilder::new().finish()
    }

    /// Starts an extension of this snapshot.
    pub fn extend(&self) -> GrammarBuilder {
        maya_telemetry::count(maya_telemetry::Counter::GrammarExtensions);
        GrammarBuilder {
            data: (*self.inner).clone(),
        }
    }

    /// The snapshot version (monotonically increasing along an extension
    /// chain).
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// All productions, indexed by [`ProdId`].
    pub fn productions(&self) -> &[Production] {
        &self.inner.prods
    }

    /// A production by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this snapshot.
    pub fn production(&self, id: ProdId) -> &Production {
        &self.inner.prods[id.0 as usize]
    }

    /// The definition of a nonterminal.
    pub fn nt_def(&self, id: NtId) -> &NtDef {
        &self.inner.nts[id.0 as usize]
    }

    /// Number of nonterminals.
    pub fn nt_count(&self) -> usize {
        self.inner.nts.len()
    }

    /// The nonterminal for a node kind, if registered.
    pub fn nt_for_kind(&self, kind: NodeKind) -> Option<NtId> {
        self.inner.nt_by_kind.get(&kind).copied()
    }

    /// The nearest registered nonterminal for `kind`, walking up the node
    /// lattice. This is how a pattern symbol declared at a finer node type
    /// (`CallExpr`) maps onto the grammar nonterminal that produces it
    /// (`Expression`).
    pub fn nt_for_kind_lattice(&self, kind: NodeKind) -> Option<NtId> {
        let mut k = kind;
        loop {
            if let Some(nt) = self.nt_for_kind(k) {
                return Some(nt);
            }
            k = k.parent()?;
        }
    }

    /// Looks up a nonterminal by display name.
    pub fn nt_by_name(&self, name: Symbol) -> Option<NtId> {
        self.inner.nt_by_name.get(&name).copied()
    }

    /// Finds a production by signature.
    pub fn find_production(&self, lhs: NtId, rhs: &[Sym]) -> Option<ProdId> {
        self.inner
            .prods_by_sig
            .get(&(lhs, rhs.to_vec()))
            .copied()
    }

    /// The LALR(1) tables for this snapshot, built on first use and cached.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::Conflicts`] when the grammar has conflicts
    /// that operator precedence does not resolve.
    pub fn tables(&self) -> Result<Arc<Tables>, GrammarError> {
        self.inner
            .tables
            .get_or_init(|| crate::cache::tables_for(self))
            .clone()
    }

    /// A process-independent hash of this snapshot's content (productions,
    /// actions, precedence) — the table-cache key. Equal hashes mean
    /// equal grammars for every purpose table construction cares about.
    pub fn content_hash(&self) -> u128 {
        *self
            .inner
            .hash
            .get_or_init(|| crate::cache::content_hash(&self.inner))
    }

    /// The raw snapshot payload (cache-internal).
    pub(crate) fn data(&self) -> &GrammarData {
        &self.inner
    }

    /// The helper nonterminal for a `lazy(delim, kind)` symbol, if this
    /// snapshot has one (used to type named lazy parameters in Mayan
    /// declarations).
    pub fn lazy_helper(&self, delim: Delim, kind: NodeKind) -> Option<NtId> {
        self.inner
            .helper_cache
            .get(&HelperKey::Lazy(delim, kind))
            .copied()
    }

    /// The helper nonterminal for a `list(item, sep)` symbol over a
    /// node-kind item, if present.
    pub fn list_helper(&self, item: NodeKind, sep: Option<Terminal>) -> Option<NtId> {
        let nt = self.nt_for_kind(item)?;
        self.inner
            .helper_cache
            .get(&HelperKey::List(Sym::N(nt), sep))
            .copied()
    }

    /// Terminal precedence table (for diagnostics and tests).
    pub fn term_prec(&self, t: Terminal) -> Option<(u16, Assoc)> {
        self.inner.term_prec.get(&t).copied()
    }

    /// True when the two snapshots are the same object.
    pub fn same_snapshot(&self, other: &Grammar) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// A human-readable listing of every production (for docs, debugging,
    /// and grammar diffing in tests).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, p) in self.inner.prods.iter().enumerate() {
            let _ = write!(out, "{i:4}  {} →", self.nt_def(p.lhs).name);
            for s in &p.rhs {
                match s {
                    Sym::T(t) => {
                        let _ = write!(out, " {t}");
                    }
                    Sym::N(nt) => {
                        let _ = write!(out, " {}", self.nt_def(*nt).name);
                    }
                }
            }
            if let Some((level, _)) = p.prec {
                let _ = write!(out, "  %prec {level}");
            }
            out.push('\n');
        }
        out
    }
}

/// Builds or extends a [`Grammar`].
pub struct GrammarBuilder {
    data: GrammarData,
}

impl Default for GrammarBuilder {
    fn default() -> GrammarBuilder {
        GrammarBuilder::new()
    }
}

impl GrammarBuilder {
    /// Starts an empty grammar.
    pub fn new() -> GrammarBuilder {
        GrammarBuilder {
            data: GrammarData {
                nts: vec![NtDef {
                    name: sym("__Start"),
                    kind: None,
                }],
                nt_by_kind: HashMap::new(),
                nt_by_name: HashMap::new(),
                prods: Vec::new(),
                prods_by_sig: HashMap::new(),
                helper_cache: HashMap::new(),
                term_prec: HashMap::new(),
                version: 0,
                tables: OnceCell::new(),
                hash: OnceCell::new(),
            },
        }
    }

    fn fresh_nt(&mut self, name: String, kind: Option<NodeKind>) -> NtId {
        let id = NtId(self.data.nts.len() as u32);
        let name = sym(&name);
        self.data.nts.push(NtDef { name, kind });
        self.data.nt_by_name.insert(name, id);
        id
    }

    /// Creates a fresh nonterminal with no node kind (e.g. marker
    /// nonterminals that are only ever shifted through the pattern-parser
    /// protocol).
    pub fn fresh_nonterminal(&mut self, name: &str) -> NtId {
        self.fresh_nt(name.to_owned(), None)
    }

    /// The nonterminal for a node kind, creating it if needed.
    pub fn nt_for_kind(&mut self, kind: NodeKind) -> NtId {
        if let Some(&nt) = self.data.nt_by_kind.get(&kind) {
            return nt;
        }
        let id = self.fresh_nt(kind.name().to_owned(), Some(kind));
        self.data.nt_by_kind.insert(kind, id);
        id
    }

    /// Sets the precedence of a terminal.
    pub fn set_prec(&mut self, t: Terminal, level: u16, assoc: Assoc) -> &mut Self {
        self.data.term_prec.insert(t, (level, assoc));
        self
    }

    fn add_raw(&mut self, prod: Production) -> ProdId {
        let sig = (prod.lhs, prod.rhs.clone());
        if let Some(&id) = self.data.prods_by_sig.get(&sig) {
            return id;
        }
        let id = ProdId(self.data.prods.len() as u32);
        self.data.prods.push(prod);
        self.data.prods_by_sig.insert(sig, id);
        id
    }

    /// Lowers one metagrammar item to a grammar symbol, creating helper
    /// productions as needed (the paper's `G0`/`G1` translation, §4.1).
    pub fn lower_item(&mut self, item: &RhsItem) -> Result<Sym, GrammarError> {
        Ok(match item {
            RhsItem::Term(t) => Sym::T(*t),
            RhsItem::Kind(k) => {
                if !k.is_definable() {
                    return Err(GrammarError::invalid(format!(
                        "node kind {} may not appear in productions",
                        k.name()
                    )));
                }
                Sym::N(self.nt_for_kind(*k))
            }
            RhsItem::Nt(nt) => Sym::N(*nt),
            RhsItem::Subtree(delim, inner_items) => {
                if inner_items.is_empty() {
                    return Err(GrammarError::invalid(
                        "subtree pattern must contain at least one symbol",
                    ));
                }
                let inner_syms = inner_items
                    .iter()
                    .map(|i| self.lower_item(i))
                    .collect::<Result<Vec<_>, _>>()?;
                let goal = if inner_syms.len() == 1 {
                    match inner_syms[0] {
                        Sym::N(nt) => nt,
                        Sym::T(t) => {
                            return Err(GrammarError::invalid(format!(
                                "subtree contents must include a nonterminal, found only {t}"
                            )))
                        }
                    }
                } else {
                    // Anonymous sequence nonterminal bundling the parts.
                    let key = HelperKey::Seq(inner_syms.clone());
                    match self.data.helper_cache.get(&key) {
                        Some(&nt) => nt,
                        None => {
                            let seq = self.fresh_nt(
                                format!("%seq{}", self.data.nts.len()),
                                None,
                            );
                            self.data.helper_cache.insert(key, seq);
                            self.add_raw(Production {
                                lhs: seq,
                                rhs: inner_syms.clone(),
                                action: Action::Builtin(BuiltinAction::Bundle),
                                prec: None,
                            });
                            seq
                        }
                    }
                };
                let inner_sym = Sym::N(goal);
                let key = HelperKey::Subtree(*delim, inner_sym);
                if let Some(&nt) = self.data.helper_cache.get(&key) {
                    return Ok(Sym::N(nt));
                }
                let helper = self.fresh_nt(
                    format!(
                        "%sub({},{})",
                        delim.tree_name(),
                        self.data.nts[goal.0 as usize].name
                    ),
                    None,
                );
                self.data.helper_cache.insert(key, helper);
                self.add_raw(Production {
                    lhs: helper,
                    rhs: vec![Sym::T(Terminal::Tree(*delim))],
                    action: Action::Builtin(BuiltinAction::ParseSubtree { goal }),
                    prec: None,
                });
                Sym::N(helper)
            }
            RhsItem::Lazy(delim, kind) => {
                let goal = self.nt_for_kind(*kind);
                let key = HelperKey::Lazy(*delim, *kind);
                if let Some(&nt) = self.data.helper_cache.get(&key) {
                    return Ok(Sym::N(nt));
                }
                let helper = self.fresh_nt(
                    format!("%lazy({},{})", delim.tree_name(), kind.name()),
                    None,
                );
                self.data.helper_cache.insert(key, helper);
                self.add_raw(Production {
                    lhs: helper,
                    rhs: vec![Sym::T(Terminal::Tree(*delim))],
                    action: Action::Builtin(BuiltinAction::LazySubtree { goal, kind: *kind }),
                    prec: None,
                });
                Sym::N(helper)
            }
            RhsItem::List(inner, sep) => {
                let inner_sym = self.lower_item(inner)?;
                let key = HelperKey::List(inner_sym, *sep);
                if let Some(&nt) = self.data.helper_cache.get(&key) {
                    return Ok(Sym::N(nt));
                }
                let base_name = match inner_sym {
                    Sym::N(nt) => self.data.nts[nt.0 as usize].name.to_string(),
                    Sym::T(t) => t.to_string(),
                };
                let list = self.fresh_nt(format!("%list({base_name})"), None);
                let list1 = self.fresh_nt(format!("%list1({base_name})"), None);
                self.data.helper_cache.insert(key, list);
                self.data
                    .helper_cache
                    .insert(HelperKey::List1(inner_sym, *sep), list1);
                // list → ε | list1
                self.add_raw(Production {
                    lhs: list,
                    rhs: vec![],
                    action: Action::Builtin(BuiltinAction::EmptyList),
                    prec: None,
                });
                self.add_raw(Production {
                    lhs: list,
                    rhs: vec![Sym::N(list1)],
                    action: Action::Builtin(BuiltinAction::PassThrough(0)),
                    prec: None,
                });
                // list1 → item | list1 (sep) item
                self.add_raw(Production {
                    lhs: list1,
                    rhs: vec![inner_sym],
                    action: Action::Builtin(BuiltinAction::ListSingle),
                    prec: None,
                });
                let mut rep = vec![Sym::N(list1)];
                if let Some(s) = sep {
                    rep.push(Sym::T(*s));
                }
                rep.push(inner_sym);
                self.add_raw(Production {
                    lhs: list1,
                    rhs: rep,
                    action: Action::Builtin(BuiltinAction::ListAppend {
                        with_sep: sep.is_some(),
                    }),
                    prec: None,
                });
                Sym::N(list)
            }
        })
    }

    /// Adds a production on a node-type LHS, lowering parameterized symbols.
    ///
    /// Duplicate productions (same lowered signature) return the existing
    /// [`ProdId`] without change.
    ///
    /// # Errors
    ///
    /// Rejects non-definable LHS kinds and invalid parameterized symbols.
    pub fn add_production(
        &mut self,
        lhs: NodeKind,
        rhs: &[RhsItem],
        prec: Option<(u16, Assoc)>,
    ) -> Result<ProdId, GrammarError> {
        if !lhs.is_definable() {
            return Err(GrammarError::invalid(format!(
                "productions may not be defined on {}",
                lhs.name()
            )));
        }
        let lhs_nt = self.nt_for_kind(lhs);
        let mut rhs_syms = Vec::with_capacity(rhs.len());
        for item in rhs {
            rhs_syms.push(
                self.lower_item(item)
                    .map_err(|e| e.in_production(lhs.name()))?,
            );
        }
        Ok(self.add_raw(Production {
            lhs: lhs_nt,
            rhs: rhs_syms,
            action: Action::Dispatch,
            prec,
        }))
    }

    /// Adds an already-lowered production with an explicit action.
    pub fn add_lowered(
        &mut self,
        lhs: NtId,
        rhs: Vec<Sym>,
        action: Action,
        prec: Option<(u16, Assoc)>,
    ) -> ProdId {
        self.add_raw(Production {
            lhs,
            rhs,
            action,
            prec,
        })
    }

    /// Finishes the builder, producing a new snapshot.
    pub fn finish(mut self) -> Grammar {
        self.data.version += 1;
        Grammar {
            inner: Rc::new(self.data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::TokenKind;

    #[test]
    fn dedup_productions() {
        let mut b = GrammarBuilder::new();
        let p1 = b
            .add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
            .unwrap();
        let p2 = b
            .add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
            .unwrap();
        assert_eq!(p1, p2);
        let g = b.finish();
        assert_eq!(g.productions().len(), 1);
    }

    #[test]
    fn helper_sharing_matches_paper() {
        // Two productions using `(Formal)` share the same helper (the G0 of
        // §4.1 is "used to parse both foreach and catch clauses").
        let mut b = GrammarBuilder::new();
        b.add_production(
            NodeKind::Statement,
            &[
                RhsItem::Kind(NodeKind::MethodName),
                RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::Formal)]),
                RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts),
            ],
            None,
        )
        .unwrap();
        b.nt_for_kind(NodeKind::CatchClause);
        let before = b.data.nts.len();
        b.add_production(
            NodeKind::CatchClause,
            &[
                RhsItem::tok(TokenKind::KwCatch),
                RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::Formal)]),
                RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts),
            ],
            None,
        )
        .unwrap();
        assert_eq!(b.data.nts.len(), before, "helpers are shared, not duplicated");
        let g = b.finish();
        // Statement production + catch production + 2 helper productions.
        assert_eq!(g.productions().len(), 4);
    }

    #[test]
    fn extension_preserves_old_snapshot() {
        let mut b = GrammarBuilder::new();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
            .unwrap();
        let g1 = b.finish();
        let mut ext = g1.extend();
        ext.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::KwBreak)], None)
            .unwrap();
        let g2 = ext.finish();
        assert_eq!(g1.productions().len(), 1);
        assert_eq!(g2.productions().len(), 2);
        assert!(g2.version() > g1.version());
        // ProdIds are stable across extension.
        assert_eq!(
            g1.production(ProdId(0)).signature(),
            g2.production(ProdId(0)).signature()
        );
    }

    #[test]
    fn list_lowering() {
        let mut b = GrammarBuilder::new();
        b.add_production(
            NodeKind::ArgumentList,
            &[RhsItem::List(
                Box::new(RhsItem::Kind(NodeKind::Expression)),
                Some(Terminal::Tok(TokenKind::Comma)),
            )],
            None,
        )
        .unwrap();
        let g = b.finish();
        // 1 user production + 4 list productions.
        assert_eq!(g.productions().len(), 5);
    }

    #[test]
    fn rejects_undefinable_lhs() {
        let mut b = GrammarBuilder::new();
        assert!(b
            .add_production(NodeKind::TokenNode, &[RhsItem::tok(TokenKind::Semi)], None)
            .is_err());
        assert!(b
            .add_production(
                NodeKind::Statement,
                &[RhsItem::Subtree(Delim::Paren, vec![RhsItem::tok(TokenKind::Semi)])],
                None
            )
            .is_err());
    }

    #[test]
    fn kind_lattice_lookup() {
        let mut b = GrammarBuilder::new();
        b.nt_for_kind(NodeKind::Expression);
        let g = b.finish();
        assert!(g.nt_for_kind(NodeKind::CallExpr).is_none());
        assert_eq!(
            g.nt_for_kind_lattice(NodeKind::CallExpr),
            g.nt_for_kind(NodeKind::Expression)
        );
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;
    use maya_ast::NodeKind;
    use maya_lexer::TokenKind;

    #[test]
    fn dump_lists_productions() {
        let mut b = GrammarBuilder::new();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
            .unwrap();
        let g = b.finish();
        let dump = g.dump();
        assert!(dump.contains("Statement →"), "{dump}");
        assert!(dump.contains("';'"), "{dump}");
    }
}
