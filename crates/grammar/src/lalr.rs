//! The LALR(1) generator: LR(0) automaton, lookaheads by propagation
//! (Dragon-book §4.7 algorithm), and table construction with
//! operator-precedence conflict resolution.
//!
//! Unlike YACC, unresolved shift/reduce conflicts are *not* resolved in
//! favor of shifts, and reduce/reduce conflicts are *not* resolved by
//! production order: the grammar is rejected (paper §4.1).

use crate::build::{GrammarData, GrammarError};
use crate::prod::{Assoc, ProdId};
use crate::symbol::{NtId, Sym, Terminal};
use crate::tables::{ActionEntry, Conflict, Tables, TermId};
use crate::BitSet;
use std::collections::{HashMap, HashSet, VecDeque};

/// `(extended production index, dot position)`.
type Item = (u32, u16);

/// Interns every terminal of the extended grammar in a deterministic order:
/// the real productions' terminals in rhs order, then each synthetic start
/// production's `Goal(nt)` marker, then the per-goal `EndOf(nt)` terminals.
/// This order is a pure function of [`GrammarData`], which is what lets the
/// on-disk table cache store bare [`TermId`]s and recompute the terminal
/// vector on load instead of serializing interner state.
pub(crate) fn intern_terms(g: &GrammarData) -> (Vec<Terminal>, HashMap<Terminal, TermId>) {
    let mut terms = Vec::new();
    let mut term_ids = HashMap::new();
    let mut intern = |t: Terminal, terms: &mut Vec<Terminal>| {
        term_ids.entry(t).or_insert_with(|| {
            terms.push(t);
            (terms.len() - 1) as TermId
        });
    };
    for p in &g.prods {
        for s in &p.rhs {
            if let Sym::T(t) = s {
                intern(*t, &mut terms);
            }
        }
    }
    for nt_idx in 1..g.nts.len() {
        intern(Terminal::Goal(NtId(nt_idx as u32)), &mut terms);
    }
    // Per-goal end terminals (see Terminal::EndOf).
    for nt_idx in 1..g.nts.len() {
        intern(Terminal::EndOf(NtId(nt_idx as u32)), &mut terms);
    }
    (terms, term_ids)
}

struct Gen<'g> {
    g: &'g GrammarData,
    /// Real productions followed by synthetic start productions
    /// `__Start → Goal(nt) nt` for every nonterminal.
    ext: Vec<(NtId, Vec<Sym>)>,
    real_count: usize,
    prods_by_lhs: HashMap<NtId, Vec<u32>>,
    terms: Vec<Terminal>,
    term_ids: HashMap<Terminal, TermId>,
    /// Sentinel lookahead used during propagation.
    hash_id: TermId,
    first_nt: Vec<BitSet>,
    nullable_nt: Vec<bool>,
    /// Per-item cache of FIRST(β)/nullable(β) for the suffix after the
    /// symbol following the dot — the hot path of LR(1) closures.
    beta_first: HashMap<Item, (BitSet, bool)>,
}

impl<'g> Gen<'g> {
    fn new(g: &'g GrammarData) -> Gen<'g> {
        let mut ext: Vec<(NtId, Vec<Sym>)> = g
            .prods
            .iter()
            .map(|p| (p.lhs, p.rhs.clone()))
            .collect();
        let real_count = ext.len();
        for nt_idx in 1..g.nts.len() {
            let nt = NtId(nt_idx as u32);
            ext.push((
                NtId(0),
                vec![Sym::T(Terminal::Goal(nt)), Sym::N(nt)],
            ));
        }

        let (terms, term_ids) = intern_terms(g);
        let hash_id = terms.len() as TermId;

        let mut prods_by_lhs: HashMap<NtId, Vec<u32>> = HashMap::new();
        for (i, (lhs, _)) in ext.iter().enumerate() {
            prods_by_lhs.entry(*lhs).or_default().push(i as u32);
        }

        let mut gen = Gen {
            g,
            ext,
            real_count,
            prods_by_lhs,
            terms,
            term_ids,
            hash_id,
            first_nt: vec![BitSet::new(); g.nts.len()],
            nullable_nt: vec![false; g.nts.len()],
            beta_first: HashMap::new(),
        };
        gen.compute_first();
        gen.compute_beta_first();
        gen
    }

    fn compute_beta_first(&mut self) {
        let mut cache = HashMap::new();
        for (p, (_, rhs)) in self.ext.iter().enumerate() {
            for dot in 0..rhs.len() {
                let beta = &rhs[dot + 1..];
                cache.insert((p as u32, dot as u16), self.first_of_seq(beta));
            }
        }
        self.beta_first = cache;
    }

    fn compute_first(&mut self) {
        loop {
            let mut changed = false;
            for (lhs, rhs) in &self.ext {
                let lhs_i = lhs.0 as usize;
                let mut all_nullable = true;
                let mut acc = BitSet::new();
                for s in rhs {
                    match s {
                        Sym::T(t) => {
                            acc.insert(self.term_ids[t]);
                            all_nullable = false;
                        }
                        Sym::N(nt) => {
                            acc.union_with(&self.first_nt[nt.0 as usize]);
                            if !self.nullable_nt[nt.0 as usize] {
                                all_nullable = false;
                            }
                        }
                    }
                    if !all_nullable {
                        break;
                    }
                }
                changed |= self.first_nt[lhs_i].union_with(&acc);
                if all_nullable && !self.nullable_nt[lhs_i] {
                    self.nullable_nt[lhs_i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// FIRST of a symbol sequence; returns the terminal set and whether the
    /// whole sequence is nullable.
    fn first_of_seq(&self, syms: &[Sym]) -> (BitSet, bool) {
        let mut acc = BitSet::new();
        for s in syms {
            match s {
                Sym::T(t) => {
                    acc.insert(self.term_ids[t]);
                    return (acc, false);
                }
                Sym::N(nt) => {
                    acc.union_with(&self.first_nt[nt.0 as usize]);
                    if !self.nullable_nt[nt.0 as usize] {
                        return (acc, false);
                    }
                }
            }
        }
        (acc, true)
    }

    fn rhs(&self, prod: u32) -> &[Sym] {
        &self.ext[prod as usize].1
    }

    fn next_sym(&self, item: Item) -> Option<Sym> {
        self.rhs(item.0).get(item.1 as usize).copied()
    }

    fn closure0(&self, kernel: &[Item]) -> Vec<Item> {
        let mut set: HashSet<Item> = kernel.iter().copied().collect();
        let mut work: Vec<Item> = kernel.to_vec();
        while let Some(item) = work.pop() {
            if let Some(Sym::N(nt)) = self.next_sym(item) {
                if let Some(prods) = self.prods_by_lhs.get(&nt) {
                    for &p in prods {
                        let new = (p, 0);
                        if set.insert(new) {
                            work.push(new);
                        }
                    }
                }
            }
        }
        let mut v: Vec<Item> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Analyzes one state's LR(0) closure for LALR lookahead computation:
    /// for every closure item, the *spontaneously generated* lookaheads
    /// flowing into it, and the set of kernel items whose lookaheads
    /// propagate to it (reached through nullable-suffix closure edges).
    fn analyze_state(&self, kernel: &[Item]) -> StateClosure {
        let items = self.closure0(kernel);
        let index: HashMap<Item, usize> =
            items.iter().enumerate().map(|(i, it)| (*it, i)).collect();
        let n = items.len();
        let mut spont = vec![BitSet::new(); n];
        let mut reach: Vec<BitSet> = vec![BitSet::new(); n];
        for (ki, k) in kernel.iter().enumerate() {
            reach[index[k]].insert(ki as u32);
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, item) in items.iter().enumerate() {
            if let Some(Sym::N(nt)) = self.next_sym(*item) {
                let (beta_firsts, beta_nullable) = &self.beta_first[item];
                if let Some(prods) = self.prods_by_lhs.get(&nt) {
                    for &p in prods {
                        let j = index[&(p, 0)];
                        spont[j].union_with(beta_firsts);
                        if *beta_nullable {
                            edges[i].push(j);
                        }
                    }
                }
            }
        }
        // Fixpoint over the (small, possibly cyclic) nullable-edge graph.
        loop {
            let mut changed = false;
            for i in 0..n {
                for e in 0..edges[i].len() {
                    let j = edges[i][e];
                    if i == j {
                        continue;
                    }
                    let (src_spont, src_reach) = (spont[i].clone(), reach[i].clone());
                    changed |= spont[j].union_with(&src_spont);
                    changed |= reach[j].union_with(&src_reach);
                }
            }
            if !changed {
                break;
            }
        }
        StateClosure {
            items,
            spont,
            reach,
        }
    }
}

/// Per-state closure analysis results.
struct StateClosure {
    items: Vec<Item>,
    /// Spontaneous lookaheads flowing into each closure item.
    spont: Vec<BitSet>,
    /// Kernel-item indices whose lookaheads propagate to each closure item.
    reach: Vec<BitSet>,
}

struct Automaton {
    /// Kernel items per state.
    kernels: Vec<Vec<Item>>,
    trans: HashMap<(u32, Sym), u32>,
}

fn build_lr0(gen: &Gen<'_>) -> Automaton {
    let start_kernel: Vec<Item> = (gen.real_count..gen.ext.len())
        .map(|i| (i as u32, 0u16))
        .collect();
    let mut kernels = vec![start_kernel.clone()];
    let mut state_map: HashMap<Vec<Item>, u32> = HashMap::new();
    state_map.insert(start_kernel, 0);
    let mut trans = HashMap::new();
    let mut work = VecDeque::from([0u32]);
    while let Some(i) = work.pop_front() {
        let full = gen.closure0(&kernels[i as usize]);
        let mut by_sym: HashMap<Sym, Vec<Item>> = HashMap::new();
        for item in full {
            if let Some(s) = gen.next_sym(item) {
                by_sym.entry(s).or_default().push((item.0, item.1 + 1));
            }
        }
        let mut entries: Vec<(Sym, Vec<Item>)> = by_sym.into_iter().collect();
        entries.sort_unstable_by_key(|(s, _)| *s);
        for (s, mut kernel) in entries {
            kernel.sort_unstable();
            kernel.dedup();
            let j = *state_map.entry(kernel.clone()).or_insert_with(|| {
                kernels.push(kernel);
                work.push_back((kernels.len() - 1) as u32);
                (kernels.len() - 1) as u32
            });
            trans.insert((i, s), j);
        }
    }
    Automaton { kernels, trans }
}

/// LALR(1) lookaheads for every kernel item, by spontaneous generation and
/// propagation, plus the per-state closure analyses (reused to compute
/// reductions).
fn lalr_lookaheads(
    gen: &Gen<'_>,
    aut: &Automaton,
) -> (Vec<HashMap<Item, BitSet>>, Vec<StateClosure>) {
    let n = aut.kernels.len();
    let mut la: Vec<HashMap<Item, BitSet>> = vec![HashMap::new(); n];
    for &item in &aut.kernels[0] {
        // A start item `__Start → . Goal(nt) nt` gets the end terminal of
        // its own goal, keeping goals' lookaheads disjoint.
        let goal_nt = match gen.rhs(item.0).first() {
            Some(Sym::T(Terminal::Goal(nt))) => *nt,
            _ => continue,
        };
        let end = gen.term_ids[&Terminal::EndOf(goal_nt)];
        la[0].entry(item).or_default().insert(end);
    }

    let analyses: Vec<StateClosure> = aut
        .kernels
        .iter()
        .map(|kernel| gen.analyze_state(kernel))
        .collect();

    let mut links: Vec<((u32, Item), (u32, Item))> = Vec::new();
    for (i, sc) in analyses.iter().enumerate() {
        let kernel = &aut.kernels[i];
        for (idx, item) in sc.items.iter().enumerate() {
            if let Some(x) = gen.next_sym(*item) {
                let j = aut.trans[&(i as u32, x)];
                let adv = (item.0, item.1 + 1);
                if !sc.spont[idx].is_empty() {
                    la[j as usize]
                        .entry(adv)
                        .or_default()
                        .union_with(&sc.spont[idx]);
                }
                for ki in sc.reach[idx].iter() {
                    links.push(((i as u32, kernel[ki as usize]), (j, adv)));
                }
            }
        }
    }
    // Propagate to fixpoint.
    loop {
        let mut changed = false;
        for ((i, k), (j, adv)) in &links {
            let from = la[*i as usize].get(k).cloned().unwrap_or_default();
            if from.is_empty() {
                continue;
            }
            let entry = la[*j as usize].entry(*adv).or_default();
            changed |= entry.union_with(&from);
        }
        if !changed {
            break;
        }
    }
    (la, analyses)
}

/// The effective precedence of a production: explicit, else that of its
/// rightmost terminal.
fn prod_prec(gen: &Gen<'_>, prod: u32) -> Option<(u16, Assoc)> {
    if (prod as usize) < gen.real_count {
        if let Some(p) = gen.g.prods[prod as usize].prec {
            return Some(p);
        }
    }
    let rhs = gen.rhs(prod);
    for s in rhs.iter().rev() {
        if let Sym::T(t) = s {
            return gen.g.term_prec.get(t).copied();
        }
    }
    None
}

pub(crate) fn build_tables(g: &GrammarData) -> Result<Tables, GrammarError> {
    let _p = maya_telemetry::phase(maya_telemetry::Phase::TableBuild);
    maya_telemetry::count(maya_telemetry::Counter::TablesBuilt);
    let t0 = std::time::Instant::now();
    let gen = Gen::new(g);
    let t1 = std::time::Instant::now();
    let aut = build_lr0(&gen);
    let t2 = std::time::Instant::now();
    let (la, analyses) = lalr_lookaheads(&gen, &aut);
    let t3 = std::time::Instant::now();
    maya_telemetry::trace(maya_telemetry::TraceKind::TableBuild, || {
        (
            format!("{} productions, {} LR(0) states", g.prods.len(), aut.kernels.len()),
            format!("gen={:?} lr0={:?} la={:?}", t1 - t0, t2 - t1, t3 - t2),
        )
    });

    let mut action: HashMap<(u32, TermId), ActionEntry> = HashMap::new();
    let mut goto_: HashMap<(u32, NtId), u32> = HashMap::new();
    let mut conflicts: Vec<Conflict> = Vec::new();
    // Entries killed by non-associativity: explicit syntax errors.
    let mut killed: HashSet<(u32, TermId)> = HashSet::new();

    // Reduce and accept actions: a complete closure item reduces on its
    // spontaneous lookaheads plus the lookaheads of every kernel item that
    // propagates to it.
    for (i, sc) in analyses.iter().enumerate() {
        let kernel = &aut.kernels[i];
        for (idx, item) in sc.items.iter().enumerate() {
            let item = *item;
            if gen.next_sym(item).is_some() {
                continue;
            }
            let mut las = sc.spont[idx].clone();
            for ki in sc.reach[idx].iter() {
                if let Some(kla) = la[i].get(&kernel[ki as usize]) {
                    las.union_with(kla);
                }
            }
            let is_start = item.0 as usize >= gen.real_count;
            for t in las.iter() {
                if t == gen.hash_id {
                    continue;
                }
                let entry = if is_start {
                    ActionEntry::Accept
                } else {
                    ActionEntry::Reduce(ProdId(item.0))
                };
                match action.get(&(i as u32, t)) {
                    None => {
                        action.insert((i as u32, t), entry);
                    }
                    Some(existing) if *existing == entry => {}
                    Some(ActionEntry::Reduce(other)) => {
                        conflicts.push(Conflict {
                            state: i as u32,
                            on: gen.terms[t as usize],
                            description: format!(
                                "reduce/reduce conflict between productions {} and {}",
                                other.0, item.0
                            ),
                        });
                    }
                    Some(other) => {
                        conflicts.push(Conflict {
                            state: i as u32,
                            on: gen.terms[t as usize],
                            description: format!(
                                "conflict between {entry:?} and {other:?}"
                            ),
                        });
                    }
                }
            }
        }
    }

    // Shift actions and gotos, with precedence-based shift/reduce resolution.
    for ((i, sym), j) in &aut.trans {
        match sym {
            Sym::N(nt) => {
                goto_.insert((*i, *nt), *j);
            }
            Sym::T(t) => {
                let tid = gen.term_ids[t];
                let key = (*i, tid);
                match action.get(&key) {
                    None => {
                        if !killed.contains(&key) {
                            action.insert(key, ActionEntry::Shift(*j));
                        }
                    }
                    Some(ActionEntry::Reduce(prod)) => {
                        let pp = prod_prec(&gen, prod.0);
                        let tp = gen.g.term_prec.get(t).copied();
                        match (pp, tp) {
                            (Some((pl, _)), Some((tl, ta))) => {
                                if pl > tl {
                                    // keep reduce
                                } else if pl < tl {
                                    action.insert(key, ActionEntry::Shift(*j));
                                } else {
                                    match ta {
                                        Assoc::Left => {} // keep reduce
                                        Assoc::Right => {
                                            action.insert(key, ActionEntry::Shift(*j));
                                        }
                                        Assoc::NonAssoc => {
                                            action.remove(&key);
                                            killed.insert(key);
                                        }
                                    }
                                }
                            }
                            _ => {
                                conflicts.push(Conflict {
                                    state: *i,
                                    on: *t,
                                    description: format!(
                                        "shift/reduce conflict (reduce production {}) not \
                                         resolved by precedence",
                                        prod.0
                                    ),
                                });
                            }
                        }
                    }
                    Some(other) => {
                        conflicts.push(Conflict {
                            state: *i,
                            on: *t,
                            description: format!("shift conflicts with {other:?}"),
                        });
                    }
                }
            }
        }
    }

    if !conflicts.is_empty() {
        conflicts.sort_by_key(|c| c.state);
        return Err(GrammarError::Conflicts(conflicts));
    }

    // Default reductions: a state with no shifts and exactly one complete
    // (non-start) item reduces unconditionally.
    let mut default_reduce: HashMap<u32, ProdId> = HashMap::new();
    for (i, sc) in analyses.iter().enumerate() {
        let mut complete: Option<u32> = None;
        let mut ok = true;
        for item in &sc.items {
            match gen.next_sym(*item) {
                Some(Sym::T(_)) => {
                    ok = false;
                    break;
                }
                Some(Sym::N(_)) => {}
                None => match complete {
                    None if (item.0 as usize) < gen.real_count => complete = Some(item.0),
                    _ => {
                        ok = false;
                        break;
                    }
                },
            }
        }
        if ok {
            if let Some(p) = complete {
                default_reduce.insert(i as u32, ProdId(p));
            }
        }
    }

    Ok(Tables {
        n_states: aut.kernels.len() as u32,
        action,
        goto_,
        terms: gen.terms,
        term_ids: gen.term_ids,
        first_nt: gen.first_nt,
        nullable_nt: gen.nullable_nt,
        default_reduce,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{GrammarBuilder, RhsItem};
    use maya_ast::NodeKind;
    use maya_lexer::TokenKind;

    /// The grammar of Figure 6(a):
    /// `A → a | b | c;  D → d;  F → f;  S → D e A | F A`.
    fn figure6() -> crate::Grammar {
        let mut b = GrammarBuilder::new();
        // Reuse node kinds as stand-ins for the paper's nonterminals.
        let a = NodeKind::Expression; // A
        let d = NodeKind::Statement; // D
        let f_nt = NodeKind::Formal; // F
        let s = NodeKind::CompilationUnit; // S
        for t in ["a", "b", "c"] {
            b.add_production(a, &[RhsItem::word(t)], None).unwrap();
        }
        b.add_production(d, &[RhsItem::word("d")], None).unwrap();
        b.add_production(f_nt, &[RhsItem::word("f")], None).unwrap();
        b.add_production(s, &[RhsItem::Kind(d), RhsItem::word("e"), RhsItem::Kind(a)], None)
            .unwrap();
        b.add_production(s, &[RhsItem::Kind(f_nt), RhsItem::Kind(a)], None)
            .unwrap();
        b.finish()
    }

    #[test]
    fn figure6_builds() {
        let g = figure6();
        let t = g.tables().expect("figure 6 grammar is LALR(1)");
        assert!(t.n_states() > 5);
        // FIRST(A) = {a, b, c}
        let a_nt = g.nt_for_kind(NodeKind::Expression).unwrap();
        let first: Vec<Terminal> = t.first_of_nt(a_nt).iter().map(|i| t.term(i)).collect();
        assert_eq!(first.len(), 3);
        assert!(!t.nullable(a_nt));
    }

    #[test]
    fn ambiguous_grammar_rejected() {
        // E → E + E without precedence: shift/reduce conflict must reject.
        let mut b = GrammarBuilder::new();
        b.add_production(
            NodeKind::Expression,
            &[
                RhsItem::Kind(NodeKind::Expression),
                RhsItem::tok(TokenKind::Plus),
                RhsItem::Kind(NodeKind::Expression),
            ],
            None,
        )
        .unwrap();
        b.add_production(NodeKind::Expression, &[RhsItem::tok(TokenKind::IntLit)], None)
            .unwrap();
        let g = b.finish();
        match g.tables() {
            Err(GrammarError::Conflicts(cs)) => assert!(!cs.is_empty()),
            other => panic!("expected conflicts, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn precedence_resolves_expression_grammar() {
        let mut b = GrammarBuilder::new();
        b.set_prec(Terminal::Tok(TokenKind::Plus), 10, Assoc::Left);
        b.set_prec(Terminal::Tok(TokenKind::Star), 20, Assoc::Left);
        for op in [TokenKind::Plus, TokenKind::Star] {
            b.add_production(
                NodeKind::Expression,
                &[
                    RhsItem::Kind(NodeKind::Expression),
                    RhsItem::tok(op),
                    RhsItem::Kind(NodeKind::Expression),
                ],
                None,
            )
            .unwrap();
        }
        b.add_production(NodeKind::Expression, &[RhsItem::tok(TokenKind::IntLit)], None)
            .unwrap();
        let g = b.finish();
        let t = g.tables().expect("precedence resolves all conflicts");
        assert!(t.n_states() > 3);
    }

    #[test]
    fn nonassoc_kills_entry() {
        let mut b = GrammarBuilder::new();
        b.set_prec(Terminal::Tok(TokenKind::EqEq), 10, Assoc::NonAssoc);
        b.add_production(
            NodeKind::Expression,
            &[
                RhsItem::Kind(NodeKind::Expression),
                RhsItem::tok(TokenKind::EqEq),
                RhsItem::Kind(NodeKind::Expression),
            ],
            None,
        )
        .unwrap();
        b.add_production(NodeKind::Expression, &[RhsItem::tok(TokenKind::IntLit)], None)
            .unwrap();
        let g = b.finish();
        // Grammar builds: `a == b == c` will simply fail to parse at runtime.
        g.tables().expect("nonassoc resolves the conflict by erroring");
    }

    #[test]
    fn epsilon_productions() {
        // L → ε | L x  (via list lowering)
        let mut b = GrammarBuilder::new();
        b.add_production(
            NodeKind::ModifierList,
            &[RhsItem::List(Box::new(RhsItem::word("mod")), None)],
            None,
        )
        .unwrap();
        let g = b.finish();
        let t = g.tables().unwrap();
        let nt = g.nt_for_kind(NodeKind::ModifierList).unwrap();
        assert!(t.nullable(nt));
    }

    #[test]
    fn goal_markers_exist_for_all_nts() {
        let g = figure6();
        let t = g.tables().unwrap();
        for idx in 1..g.nt_count() {
            assert!(
                t.goal_term(NtId(idx as u32)).is_some(),
                "missing goal marker for nt {idx}"
            );
        }
    }
}
