//! Content-hash keyed caching of LALR(1) tables.
//!
//! Maya programs re-derive near-identical grammars constantly: every `use`
//! of the same extension set composes the same productions onto the same
//! base and would rebuild the same tables. This module gives table
//! construction three cache layers in front of it, all keyed by a
//! **content hash** of the grammar (productions, actions, precedence —
//! everything [`build_tables`] reads):
//!
//! 1. an in-process, thread-local `hash → Arc<Tables>` memo,
//! 2. an opt-in **process-global** memo ([`set_table_cache_shared`])
//!    behind an `RwLock`, so the worker threads of a compile-service pool
//!    share one warm set of tables instead of building N cold ones —
//!    `Tables` is immutable plain data, so handing the same `Arc` to every
//!    thread is sound by construction (content-hash keys never need
//!    invalidation), and
//! 3. an optional persistent layer behind the [`TableDisk`] hook
//!    (`mayac --cache-dir=DIR`, with `--table-cache=DIR` as the older
//!    alias). This module only encodes/decodes the versioned table
//!    *payload* ([`encode_tables`]/[`decode_tables`]); the artifact store
//!    in `maya-core` owns the files, checksums, atomic writes, and
//!    eviction. Any malformed, truncated, or stale payload decodes as a
//!    miss and is rebuilt — a bad cache can cost time, never correctness.
//!
//! The hash is computed from grammar *content* (strings, token-kind names,
//! numeric ids), never from interner indices, so it is stable across
//! processes and suitable as an on-disk key. Two snapshots with equal
//! hashes have byte-identical production lists, so sharing one `Tables`
//! between them is sound.
//!
//! Grammars that fail table construction (LALR conflicts) are never cached
//! here; the per-snapshot `OnceCell` still memoizes the error locally.

use crate::build::{Grammar, GrammarData, GrammarError};
use crate::lalr::{build_tables, intern_terms};
use crate::prod::{Action, Assoc, BuiltinAction};
use crate::symbol::{NtId, Sym, Terminal};
use crate::tables::{ActionEntry, Tables};
use crate::BitSet;
use maya_telemetry::Counter;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Arc, OnceLock, RwLock};

// ---- the content hash --------------------------------------------------------

/// Two independently seeded FNV-1a streams, combined into a `u128` key.
/// FNV is weak alone; two decorrelated 64-bit streams make accidental
/// collisions between real grammars implausible while staying dependency-
/// free and byte-order independent.
struct Hasher {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher {
    fn new() -> Hasher {
        Hasher {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        // The second stream sees each byte bit-rotated, so the streams
        // diverge on content, not just on seed.
        self.b = (self.b ^ u64::from(x.rotate_left(3))).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &x in bs {
            self.byte(x);
        }
    }

    fn u32(&mut self, x: u32) {
        self.bytes(&x.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Encodes a terminal in a process-independent form: `Word` by its text,
/// `Tok` by the token-kind name, trees by delimiter name, goal/end markers
/// by nonterminal number.
fn hash_terminal(h: &mut Hasher, t: &Terminal) {
    match t {
        Terminal::Tok(k) => {
            h.byte(0);
            h.str(k.name());
        }
        Terminal::Word(s) => {
            h.byte(1);
            h.str(s.as_str());
        }
        Terminal::Tree(d) => {
            h.byte(2);
            h.str(d.tree_name());
        }
        Terminal::Goal(nt) => {
            h.byte(3);
            h.u32(nt.0);
        }
        Terminal::EndOf(nt) => {
            h.byte(4);
            h.u32(nt.0);
        }
        Terminal::End => h.byte(5),
    }
}

/// A stable sort key for precedence-table entries (hash maps iterate in
/// arbitrary order; the hash must not depend on it).
fn terminal_sort_key(t: &Terminal) -> (u8, String, u32) {
    match t {
        Terminal::Tok(k) => (0, k.name().to_owned(), 0),
        Terminal::Word(s) => (1, s.as_str().to_owned(), 0),
        Terminal::Tree(d) => (2, d.tree_name().to_owned(), 0),
        Terminal::Goal(nt) => (3, String::new(), nt.0),
        Terminal::EndOf(nt) => (4, String::new(), nt.0),
        Terminal::End => (5, String::new(), 0),
    }
}

fn hash_action(h: &mut Hasher, a: &Action) {
    match a {
        Action::Dispatch => h.byte(0),
        Action::Builtin(b) => {
            h.byte(1);
            match b {
                BuiltinAction::PassThrough(i) => {
                    h.byte(0);
                    h.u32(*i as u32);
                }
                BuiltinAction::EmptyList => h.byte(1),
                BuiltinAction::ListSingle => h.byte(2),
                BuiltinAction::ListAppend { with_sep } => {
                    h.byte(3);
                    h.byte(u8::from(*with_sep));
                }
                BuiltinAction::ParseSubtree { goal } => {
                    h.byte(4);
                    h.u32(goal.0);
                }
                BuiltinAction::LazySubtree { goal, kind } => {
                    h.byte(5);
                    h.u32(goal.0);
                    h.str(kind.name());
                }
                BuiltinAction::StartAccept => h.byte(6),
                BuiltinAction::Bundle => h.byte(7),
            }
        }
    }
}

/// Hashes everything table construction reads from a grammar: the
/// nonterminal list (names and node kinds), every production (LHS, RHS
/// symbols, action, precedence), and the terminal precedence table.
pub(crate) fn content_hash(g: &GrammarData) -> u128 {
    let mut h = Hasher::new();
    h.u32(g.nts.len() as u32);
    for nt in &g.nts {
        h.str(nt.name.as_str());
        match nt.kind {
            Some(k) => h.str(k.name()),
            None => h.byte(0xff),
        }
    }
    h.u32(g.prods.len() as u32);
    for p in &g.prods {
        h.u32(p.lhs.0);
        h.u32(p.rhs.len() as u32);
        for s in &p.rhs {
            match s {
                Sym::T(t) => {
                    h.byte(0);
                    hash_terminal(&mut h, t);
                }
                Sym::N(nt) => {
                    h.byte(1);
                    h.u32(nt.0);
                }
            }
        }
        hash_action(&mut h, &p.action);
        match p.prec {
            Some((level, assoc)) => {
                h.byte(1);
                h.u32(u32::from(level));
                h.byte(assoc_tag(assoc));
            }
            None => h.byte(0),
        }
    }
    let mut prec: Vec<(&Terminal, &(u16, Assoc))> = g.term_prec.iter().collect();
    prec.sort_by_key(|(t, _)| terminal_sort_key(t));
    h.u32(prec.len() as u32);
    for (t, (level, assoc)) in prec {
        hash_terminal(&mut h, t);
        h.u32(u32::from(*level));
        h.byte(assoc_tag(*assoc));
    }
    h.finish()
}

fn assoc_tag(a: Assoc) -> u8 {
    match a {
        Assoc::Left => 0,
        Assoc::Right => 1,
        Assoc::NonAssoc => 2,
    }
}

// ---- cache state -------------------------------------------------------------

/// In-process memo entries kept before the map is cleared wholesale. Real
/// compilations use a handful of grammar compositions; the cap only guards
/// against degenerate grammar-fuzzing loops.
const MEMO_CAP: usize = 256;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(true) };
    static SHARED: Cell<bool> = const { Cell::new(false) };
    static MEMO: RefCell<HashMap<u128, Arc<Tables>>> = RefCell::new(HashMap::new());
    static DISK: RefCell<Option<Rc<dyn TableDisk>>> = const { RefCell::new(None) };
}

/// The persistent layer behind the in-process memos. The grammar crate
/// only defines the interface; `maya-core`'s artifact store implements it
/// (file layout, checksums, atomic writes, eviction) and installs itself
/// per thread. `load` returns the raw payload previously passed to `save`
/// for the same hash, or `None` on any miss or corruption.
pub trait TableDisk {
    /// The stored payload for `hash`, if present and intact.
    fn load(&self, hash: u128) -> Option<Vec<u8>>;
    /// Persists `payload` under `hash`. Failures are silent: a cache that
    /// cannot write only costs time on the next cold start.
    fn save(&self, hash: u128, payload: &[u8]);
}

/// The process-global memo behind the thread-local one. Only threads that
/// opted in with [`set_table_cache_shared`] read or write it, so unit
/// tests (which rely on thread-local cold starts for their hit/miss
/// assertions) keep their isolation while service worker pools share one
/// warm table set.
fn shared_memo() -> &'static RwLock<HashMap<u128, Arc<Tables>>> {
    static SHARED_MEMO: OnceLock<RwLock<HashMap<u128, Arc<Tables>>>> = OnceLock::new();
    SHARED_MEMO.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Turns the table cache (both layers) on or off for this thread. The
/// cache is on by default; the perf harness turns it off to measure the
/// seed path.
pub fn set_table_cache_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether the table cache is enabled on this thread.
pub fn table_cache_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Opts this thread into (or out of) the process-global table memo. Off
/// by default; compile-service worker threads turn it on so every worker
/// reuses tables any other worker already built. Sharing is sound because
/// `Tables` is immutable and keyed by grammar content hash — equal keys
/// mean equal tables, so there is nothing to invalidate.
pub fn set_table_cache_shared(on: bool) {
    SHARED.with(|s| s.set(on));
}

/// Whether this thread participates in the process-global table memo.
pub fn table_cache_shared() -> bool {
    SHARED.with(|s| s.get())
}

/// Installs (or clears) this thread's persistent table layer. Wired up by
/// `maya-core`'s artifact store when a cache directory is configured
/// (`mayac --cache-dir`, `--table-cache` alias, `MAYA_CACHE_DIR`).
pub fn set_table_disk(disk: Option<Rc<dyn TableDisk>>) {
    DISK.with(|d| *d.borrow_mut() = disk);
}

/// Drops every in-process cache entry — this thread's memo *and* the
/// process-global one (test isolation; the on-disk cache is left alone).
pub fn clear_table_cache() {
    MEMO.with(|m| m.borrow_mut().clear());
    shared_memo().write().expect("table memo poisoned").clear();
}

/// Number of table sets currently held by the in-process memo: the
/// process-global map when this thread shares it, otherwise the
/// thread-local one.
///
/// A persistent compile session (`mayad`, `mayac --watch`) keeps warm
/// tables alive across requests; the count is surfaced in server stats so
/// warm-cache retention is observable.
pub fn table_cache_len() -> usize {
    if table_cache_shared() {
        shared_memo().read().expect("table memo poisoned").len()
    } else {
        MEMO.with(|m| m.borrow().len())
    }
}

/// Whether this thread's memo already holds tables for `hash` (a grammar
/// content hash). Used by the incremental session to classify re-imports
/// as grammar reuses without touching the build path.
pub fn table_cache_contains(hash: u128) -> bool {
    MEMO.with(|m| m.borrow().contains_key(&hash))
}

/// The table lookup behind [`Grammar::tables`]: thread-local memo, then
/// (when shared) the process-global memo, then the on-disk cache, then a
/// real build (whose result populates every layer the thread uses).
pub(crate) fn tables_for(g: &Grammar) -> Result<Arc<Tables>, GrammarError> {
    if !table_cache_enabled() {
        return build_tables(g.data()).map(Arc::new);
    }
    let hash = g.content_hash();
    if let Some(t) = MEMO.with(|m| m.borrow().get(&hash).cloned()) {
        maya_telemetry::count(Counter::TableCacheHits);
        maya_telemetry::cache_hit(maya_telemetry::CacheId::LalrMemo);
        return Ok(t);
    }
    if table_cache_shared() {
        let shared = shared_memo().read().expect("table memo poisoned").get(&hash).cloned();
        if let Some(t) = shared {
            maya_telemetry::count(Counter::TableCacheHits);
            maya_telemetry::cache_hit(maya_telemetry::CacheId::LalrMemo);
            remember(hash, &t);
            return Ok(t);
        }
    }
    let disk = DISK.with(|d| d.borrow().clone());
    if let Some(disk) = &disk {
        if let Some(t) = disk
            .load(hash)
            .and_then(|payload| decode_tables(&payload, g.data()))
            .map(Arc::new)
        {
            maya_telemetry::count(Counter::TableCacheHits);
            maya_telemetry::cache_hit(maya_telemetry::CacheId::LalrMemo);
            remember(hash, &t);
            return Ok(t);
        }
    }
    maya_telemetry::count(Counter::TableCacheMisses);
    maya_telemetry::cache_miss(maya_telemetry::CacheId::LalrMemo);
    let t = build_tables(g.data()).map(Arc::new)?;
    remember(hash, &t);
    if let Some(disk) = &disk {
        // Save failures (read-only dir, disk full) are the store's problem
        // and silent; the next cold process rebuilds.
        disk.save(hash, &encode_tables(&t));
    }
    Ok(t)
}

fn remember(hash: u128, t: &Arc<Tables>) {
    MEMO.with(|m| {
        let mut m = m.borrow_mut();
        if m.len() >= MEMO_CAP {
            maya_telemetry::cache_eviction(maya_telemetry::CacheId::LalrMemo);
            m.clear();
        }
        m.insert(hash, t.clone());
        maya_telemetry::cache_sized(maya_telemetry::CacheId::LalrMemo, m.len());
    });
    if table_cache_shared() {
        let mut m = shared_memo().write().expect("table memo poisoned");
        if m.len() >= MEMO_CAP {
            m.clear();
        }
        m.insert(hash, t.clone());
    }
}

// ---- the payload codec -------------------------------------------------------
//
// All integers little-endian. This is only the table *payload*: the
// artifact store wraps it in a container carrying the magic, the store
// format version, the key echo, and a whole-entry checksum, and verifies
// all of that before the payload reaches `decode_tables`. Layout:
//
//   version  u32 (TABLES_PAYLOAD_VERSION)
//   n_states u32
//   n_terms  u32 (must match `intern_terms` on the requesting grammar)
//   n_nts    u32 (must match the requesting grammar)
//   actions  u32 count, then (state u32, term u32, tag u8, payload u32)*
//   gotos    u32 count, then (state u32, nt u32, to u32)*
//   first    per nonterminal: u32 word count, then u64 words
//   nullable per nonterminal: u8
//   defaults u32 count, then (state u32, prod u32)*
//
// Terminal ids are *not* accompanied by terminal values: the interning
// order is deterministic from the grammar (see `intern_terms`), and a
// matching content hash implies a matching grammar, so the loader
// recomputes the terminal vector and only stores dense ids.

/// Bumped whenever the encoded table layout changes; a mismatched payload
/// decodes as a miss and is rebuilt.
const TABLES_PAYLOAD_VERSION: u32 = 2;

const TAG_SHIFT: u8 = 0;
const TAG_REDUCE: u8 = 1;
const TAG_ACCEPT: u8 = 2;

/// Encodes `t` as a self-versioned payload for the persistent store.
pub(crate) fn encode_tables(t: &Tables) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + t.action.len() * 13);
    buf.extend_from_slice(&TABLES_PAYLOAD_VERSION.to_le_bytes());
    buf.extend_from_slice(&t.n_states.to_le_bytes());
    buf.extend_from_slice(&(t.terms.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(t.first_nt.len() as u32).to_le_bytes());

    // Sorted entry order makes the file a deterministic function of the
    // tables (hash-map iteration order is not).
    let mut actions: Vec<(u32, u32, ActionEntry)> = t
        .action
        .iter()
        .map(|((s, term), a)| (*s, *term, *a))
        .collect();
    actions.sort_unstable_by_key(|(s, term, _)| (*s, *term));
    buf.extend_from_slice(&(actions.len() as u32).to_le_bytes());
    for (state, term, entry) in actions {
        buf.extend_from_slice(&state.to_le_bytes());
        buf.extend_from_slice(&term.to_le_bytes());
        let (tag, payload) = match entry {
            ActionEntry::Shift(s) => (TAG_SHIFT, s),
            ActionEntry::Reduce(p) => (TAG_REDUCE, p.0),
            ActionEntry::Accept => (TAG_ACCEPT, 0),
        };
        buf.push(tag);
        buf.extend_from_slice(&payload.to_le_bytes());
    }

    let mut gotos: Vec<(u32, u32, u32)> = t
        .goto_
        .iter()
        .map(|((s, nt), to)| (*s, nt.0, *to))
        .collect();
    gotos.sort_unstable();
    buf.extend_from_slice(&(gotos.len() as u32).to_le_bytes());
    for (state, nt, to) in gotos {
        buf.extend_from_slice(&state.to_le_bytes());
        buf.extend_from_slice(&nt.to_le_bytes());
        buf.extend_from_slice(&to.to_le_bytes());
    }

    for set in &t.first_nt {
        let words = set.words();
        buf.extend_from_slice(&(words.len() as u32).to_le_bytes());
        for w in words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    for &n in &t.nullable_nt {
        buf.push(u8::from(n));
    }

    let mut defaults: Vec<(u32, u32)> = t
        .default_reduce
        .iter()
        .map(|(s, p)| (*s, p.0))
        .collect();
    defaults.sort_unstable();
    buf.extend_from_slice(&(defaults.len() as u32).to_le_bytes());
    for (state, prod) in defaults {
        buf.extend_from_slice(&state.to_le_bytes());
        buf.extend_from_slice(&prod.to_le_bytes());
    }

    buf
}

/// A bounds-checked little-endian reader; every decode failure is `None`.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Decodes a table payload (as produced by [`encode_tables`]) against the
/// requesting grammar. Any structural mismatch — wrong payload version,
/// wrong grammar dimensions, out-of-range ids, trailing garbage — is a
/// `None` (a miss), never a panic. The surrounding store container has
/// already verified the whole-entry checksum and key echo.
pub(crate) fn decode_tables(bytes: &[u8], g: &GrammarData) -> Option<Tables> {
    let mut c = Cursor { buf: bytes, at: 0 };
    if c.u32()? != TABLES_PAYLOAD_VERSION {
        return None;
    }
    let (terms, term_ids) = intern_terms(g);
    let n_states = c.u32()?;
    let n_nts = g.nts.len() as u32;
    if c.u32()? != terms.len() as u32 || c.u32()? != n_nts || n_states == 0 {
        return None;
    }
    let n_prods = g.prods.len() as u32;

    let n_actions = c.u32()? as usize;
    let mut action = HashMap::with_capacity(n_actions);
    for _ in 0..n_actions {
        let state = c.u32()?;
        let term = c.u32()?;
        let tag = c.u8()?;
        let payload = c.u32()?;
        if state >= n_states || term as usize >= terms.len() {
            return None;
        }
        let entry = match tag {
            TAG_SHIFT if payload < n_states => ActionEntry::Shift(payload),
            TAG_REDUCE if payload < n_prods => ActionEntry::Reduce(crate::ProdId(payload)),
            TAG_ACCEPT => ActionEntry::Accept,
            _ => return None,
        };
        action.insert((state, term), entry);
    }

    let n_gotos = c.u32()? as usize;
    let mut goto_ = HashMap::with_capacity(n_gotos);
    for _ in 0..n_gotos {
        let state = c.u32()?;
        let nt = c.u32()?;
        let to = c.u32()?;
        if state >= n_states || nt >= n_nts || to >= n_states {
            return None;
        }
        goto_.insert((state, NtId(nt)), to);
    }

    let mut first_nt = Vec::with_capacity(n_nts as usize);
    for _ in 0..n_nts {
        let n_words = c.u32()? as usize;
        // A FIRST set only holds terminal ids; reject absurd word counts
        // before allocating.
        if n_words > terms.len() / 64 + 1 {
            return None;
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(c.u64()?);
        }
        first_nt.push(BitSet::from_words(words));
    }
    let mut nullable_nt = Vec::with_capacity(n_nts as usize);
    for _ in 0..n_nts {
        nullable_nt.push(c.u8()? != 0);
    }

    let n_defaults = c.u32()? as usize;
    let mut default_reduce = HashMap::with_capacity(n_defaults);
    for _ in 0..n_defaults {
        let state = c.u32()?;
        let prod = c.u32()?;
        if state >= n_states || prod >= n_prods {
            return None;
        }
        default_reduce.insert(state, crate::ProdId(prod));
    }
    if !c.done() {
        return None; // trailing garbage: treat as corrupt
    }

    Some(Tables {
        n_states,
        action,
        goto_,
        terms,
        term_ids,
        first_nt,
        nullable_nt,
        default_reduce,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GrammarBuilder, RhsItem};
    use maya_ast::NodeKind;
    use maya_lexer::TokenKind;

    fn sample() -> Grammar {
        let mut b = GrammarBuilder::new();
        b.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::Semi)], None)
            .unwrap();
        b.add_production(
            NodeKind::Statement,
            &[RhsItem::word("gizmo"), RhsItem::tok(TokenKind::Semi)],
            None,
        )
        .unwrap();
        b.finish()
    }

    #[test]
    fn equal_content_equal_hash() {
        let g1 = sample();
        let g2 = sample();
        assert!(!g1.same_snapshot(&g2));
        assert_eq!(g1.content_hash(), g2.content_hash());
    }

    #[test]
    fn different_content_different_hash() {
        let g1 = sample();
        let mut ext = g1.extend();
        ext.add_production(NodeKind::Statement, &[RhsItem::tok(TokenKind::KwBreak)], None)
            .unwrap();
        let g2 = ext.finish();
        assert_ne!(g1.content_hash(), g2.content_hash());
    }

    #[test]
    fn memo_shares_tables_across_equal_snapshots() {
        clear_table_cache();
        let g1 = sample();
        let g2 = sample();
        let t1 = g1.tables().unwrap();
        let t2 = g2.tables().unwrap();
        assert!(Arc::ptr_eq(&t1, &t2), "same hash must share one Tables");
        clear_table_cache();
    }

    #[test]
    fn shared_memo_hands_one_tables_to_every_thread() {
        clear_table_cache();
        // Build on a worker thread that opted into the global memo, then
        // fetch from a second opted-in thread: both must see the same
        // allocation even though their thread-local memos start cold.
        let a = std::thread::spawn(|| {
            set_table_cache_shared(true);
            sample().tables().unwrap()
        })
        .join()
        .unwrap();
        let b = std::thread::spawn(|| {
            set_table_cache_shared(true);
            sample().tables().unwrap()
        })
        .join()
        .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "global memo must share one Tables");
        // A thread that did NOT opt in keeps its cold-start isolation.
        let c = std::thread::spawn(|| sample().tables().unwrap()).join().unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "non-shared thread builds its own");
        clear_table_cache();
    }

    #[test]
    fn disabled_cache_builds_fresh() {
        clear_table_cache();
        set_table_cache_enabled(false);
        let g1 = sample();
        let g2 = sample();
        let t1 = g1.tables().unwrap();
        let t2 = g2.tables().unwrap();
        assert!(!Arc::ptr_eq(&t1, &t2));
        set_table_cache_enabled(true);
        clear_table_cache();
    }

    #[test]
    fn payload_round_trip_and_corruption_tolerance() {
        let g = sample();
        let built = build_tables(g.data()).unwrap();
        let payload = encode_tables(&built);

        let loaded = decode_tables(&payload, g.data()).expect("payload decodes");
        assert_eq!(loaded.n_states(), built.n_states());
        assert_eq!(loaded.action_entries(), built.action_entries());
        assert_eq!(loaded.terms, built.terms);
        assert_eq!(loaded.first_nt, built.first_nt);

        // Truncation, a stale payload version, structural garbage, and
        // trailing bytes must all read as misses, never panic. (Bit-flip
        // detection lives in the store container's checksum; here only
        // structurally invalid payloads must be rejected.)
        assert!(decode_tables(&payload[..payload.len() / 2], g.data()).is_none());
        let mut stale = payload.clone();
        stale[0] ^= 0xff; // payload version word
        assert!(decode_tables(&stale, g.data()).is_none(), "version mismatch");
        assert!(decode_tables(b"not a cache payload", g.data()).is_none());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_tables(&trailing, g.data()).is_none(), "trailing garbage");
    }

    #[test]
    fn encode_is_deterministic() {
        let g1 = sample();
        let g2 = sample();
        let t1 = build_tables(g1.data()).unwrap();
        let t2 = build_tables(g2.data()).unwrap();
        assert_eq!(
            encode_tables(&t1),
            encode_tables(&t2),
            "payload must be a pure function of the tables"
        );
    }
}
