//! Parse errors.

use maya_lexer::Span;
use std::fmt;

/// A syntax or semantic-action error produced during parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl ParseError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}
