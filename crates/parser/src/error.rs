//! Parse errors.

use maya_lexer::Span;
use std::fmt;

/// A syntax or semantic-action error produced during parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
    /// Index into the engine's input slice where the failure was detected,
    /// when known. Error recovery uses it to synchronize at the next
    /// statement/member boundary; `None` means the error did not come from a
    /// specific input position (table construction, internal errors).
    pub at: Option<usize>,
}

impl ParseError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
            at: None,
        }
    }

    /// Attaches the input index the failure was detected at.
    pub fn at_input(mut self, idx: usize) -> ParseError {
        self.at = Some(idx);
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}
