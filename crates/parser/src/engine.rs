//! The table-driven engine, including the nonterminal-input (pattern)
//! algorithm of paper §4.2.

use crate::{Input, NtSel, ParseError};
use maya_grammar::{Action, ActionEntry, Grammar, NtId, ProdId, Tables, TermId, Terminal};
use maya_lexer::{DelimTree, Span, Token, TokenKind};
use std::rc::Rc;

/// What a reduction produced.
pub enum DriverOut<V> {
    /// An ordinary semantic value.
    Value(V),
    /// The reduced nonterminal is a *use head*: the rest of the current
    /// input must be parsed (under the driver's possibly-updated
    /// environment) as one of `goals` (the first with a goto in the current
    /// state) and shifted as a nonterminal. This implements the paper's
    /// rule that syntax following an import is parsed after the import
    /// takes effect.
    ParseRest { head: V, goals: Vec<NtId> },
}

/// Supplies semantic values to the engine.
///
/// The compiler's driver builds AST nodes and dispatches Mayans; the
/// [`crate::trace::TraceDriver`] records parse structure.
pub trait Driver {
    /// The semantic value type.
    type V: Clone;

    /// Value for the internal goal marker (never observed by reductions).
    fn marker(&mut self) -> Self::V;

    /// Value of a shifted token.
    fn shift_token(&mut self, tok: &Token) -> Self::V;

    /// Value of a shifted delimiter subtree. `pattern` carries nested
    /// pattern items when the tree's interior is itself a pattern.
    fn shift_tree(
        &mut self,
        tree: &DelimTree,
        pattern: Option<&Rc<Vec<Input<Self::V>>>>,
    ) -> Self::V;

    /// Performs the semantic action of `prod`.
    ///
    /// # Errors
    ///
    /// Semantic actions may fail (e.g. "no applicable Mayan").
    fn reduce(
        &mut self,
        grammar: &Grammar,
        prod: ProdId,
        action: Action,
        args: Vec<(Self::V, Span)>,
        span: Span,
    ) -> Result<DriverOut<Self::V>, ParseError>;

    /// Parses the remaining input after a [`DriverOut::ParseRest`] head.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the tail parse.
    fn parse_rest(
        &mut self,
        grammar: &Grammar,
        rest: &[Input<Self::V>],
        goal: NtId,
    ) -> Result<Self::V, ParseError>;
}

fn resolve_nt(grammar: &Grammar, sel: NtSel) -> Option<NtId> {
    match sel {
        NtSel::Kind(k) => grammar.nt_for_kind_lattice(k),
        NtSel::Id(id) => Some(id),
    }
}

/// FIRST terminals of an input suffix, following nullable nonterminals
/// (FIRST(Xγ) of the paper's pattern algorithm).
fn first_of_input<V>(
    tables: &Tables,
    grammar: &Grammar,
    input: &[Input<V>],
    end_id: TermId,
) -> Vec<TermId> {
    let mut out = Vec::new();
    for item in input {
        match item {
            Input::Tok(t) => {
                if t.kind == TokenKind::Ident {
                    if let Some(id) = tables.term_id(Terminal::Word(t.text)) {
                        out.push(id);
                    }
                }
                if let Some(id) = tables.term_id(Terminal::Tok(t.kind)) {
                    out.push(id);
                }
                return out;
            }
            Input::Tree(d, _) => {
                if let Some(id) = tables.term_id(Terminal::Tree(d.delim)) {
                    out.push(id);
                }
                return out;
            }
            Input::Nt(sel, _, _) => {
                let Some(nt) = resolve_nt(grammar, *sel) else {
                    return out;
                };
                out.extend(tables.first_of_nt(nt).iter());
                if !tables.nullable(nt) {
                    return out;
                }
            }
        }
    }
    out.push(end_id);
    out
}

fn syntax_error<V>(
    tables: &Tables,
    state: u32,
    at: Option<&Input<V>>,
    span: Span,
) -> ParseError {
    let mut expected: Vec<String> = tables
        .expected_in(state)
        .into_iter()
        .filter(|t| !matches!(t, Terminal::Goal(_)))
        .map(|t| t.to_string())
        .collect();
    expected.truncate(10);
    let found = at.map(|i| i.describe()).unwrap_or_else(|| "<end>".into());
    ParseError::new(
        format!(
            "syntax error: unexpected {found}; expected one of: {}",
            expected.join(", ")
        ),
        span,
    )
}

/// Runs the parser over `input` with start symbol `goal`.
///
/// # Errors
///
/// Returns syntax errors, semantic-action errors, and table-generation
/// errors from the grammar snapshot.
pub fn run_parse<D: Driver>(
    grammar: &Grammar,
    input: &[Input<D::V>],
    goal: NtId,
    driver: &mut D,
) -> Result<D::V, ParseError> {
    let _p = maya_telemetry::phase(maya_telemetry::Phase::Parse);
    let tables = grammar
        .tables()
        .map_err(|e| ParseError::new(e.to_string(), Span::DUMMY))?;

    let mut states: Vec<u32> = vec![tables.start_state()];
    let mut vals: Vec<(D::V, Span)> = Vec::new();

    // Shift the goal marker.
    let goal_term = tables.goal_term(goal).ok_or_else(|| {
        ParseError::new(
            format!("nonterminal #{} is not startable in this grammar", goal.0),
            Span::DUMMY,
        )
    })?;
    let end_id = tables.end_of(goal).ok_or_else(|| {
        ParseError::new(
            format!("nonterminal #{} has no end terminal", goal.0),
            Span::DUMMY,
        )
    })?;
    match tables.action(tables.start_state(), goal_term) {
        Some(ActionEntry::Shift(j)) => {
            states.push(j);
            vals.push((driver.marker(), Span::DUMMY));
        }
        _ => {
            return Err(ParseError::new(
                format!("internal error: no start action for goal #{}", goal.0),
                Span::DUMMY,
            ))
        }
    }

    let mut idx = 0usize;
    let mut fuel: u64 = 10_000_000;

    macro_rules! state {
        () => {
            *states.last().expect("state stack never empty")
        };
    }

    loop {
        fuel -= 1;
        if fuel == 0 {
            return Err(ParseError::new(
                "internal error: parser did not make progress",
                Span::DUMMY,
            ));
        }

        // Pattern-mode nonterminal input.
        if let Some(Input::Nt(sel, v, span)) = input.get(idx) {
            let nt = resolve_nt(grammar, *sel).ok_or_else(|| {
                ParseError::new(
                    format!("no grammar nonterminal for {}", input[idx].describe()),
                    *span,
                )
                .at_input(idx)
            })?;
            if let Some(j) = tables.goto(state!(), nt) {
                // Case 1 (Figure 6(b)): a goto on X exists — shift X.
                states.push(j);
                vals.push((v.clone(), *span));
                idx += 1;
                continue;
            }
            // Case 2 (Figure 6(c)): all actions on FIRST(Xγ) must reduce
            // the same production; perform it and retry.
            let la = first_of_input(&tables, grammar, &input[idx..], end_id);
            let mut reduction: Option<ProdId> = None;
            let mut ok = !la.is_empty();
            for t in &la {
                match tables.action(state!(), *t) {
                    None => {}
                    Some(ActionEntry::Reduce(p)) => match reduction {
                        None => reduction = Some(p),
                        Some(q) if q == p => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                    },
                    Some(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            let Some(prod) = reduction.filter(|_| ok) else {
                return Err(syntax_error(&tables, state!(), input.get(idx), *span).at_input(idx));
            };
            do_reduce(
                grammar, &tables, prod, &mut states, &mut vals, driver, input, &mut idx,
            )?;
            continue;
        }

        // Terminal input (token, tree, or end).
        let act = match input.get(idx) {
            Some(Input::Tok(t)) => tables.action_for_token(state!(), t).map(|(_, a)| a),
            Some(Input::Tree(d, _)) => tables.action_for_tree(state!(), d.delim).map(|(_, a)| a),
            Some(Input::Nt(..)) => unreachable!("handled above"),
            None => tables.action(state!(), end_id),
        };
        let span_here = input
            .get(idx)
            .map(|i| i.span())
            .or_else(|| vals.last().map(|(_, s)| *s))
            .unwrap_or(Span::DUMMY);
        match act {
            None => {
                return Err(syntax_error(&tables, state!(), input.get(idx), span_here).at_input(idx))
            }
            Some(ActionEntry::Shift(j)) => {
                maya_telemetry::count(maya_telemetry::Counter::ParserShifts);
                let v = match &input[idx] {
                    Input::Tok(t) => driver.shift_token(t),
                    Input::Tree(d, pat) => driver.shift_tree(d, pat.as_ref()),
                    Input::Nt(..) => unreachable!(),
                };
                states.push(j);
                vals.push((v, span_here));
                idx += 1;
            }
            Some(ActionEntry::Reduce(p)) => {
                do_reduce(
                    grammar, &tables, p, &mut states, &mut vals, driver, input, &mut idx,
                )?;
            }
            Some(ActionEntry::Accept) => {
                let (v, _) = vals.pop().expect("accept with value on stack");
                return Ok(v);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn do_reduce<D: Driver>(
    grammar: &Grammar,
    tables: &Tables,
    prod_id: ProdId,
    states: &mut Vec<u32>,
    vals: &mut Vec<(D::V, Span)>,
    driver: &mut D,
    input: &[Input<D::V>],
    idx: &mut usize,
) -> Result<(), ParseError> {
    maya_telemetry::count(maya_telemetry::Counter::ParserReductions);
    let prod = grammar.production(prod_id);
    let n = prod.rhs.len();
    let at = vals.len() - n;
    let args: Vec<(D::V, Span)> = vals.drain(at..).collect();
    states.truncate(states.len() - n);
    let span = args
        .iter()
        .fold(Span::DUMMY, |acc, (_, s)| acc.to(*s));
    let span = if span.is_dummy() {
        input.get(*idx).map(|i| i.span()).unwrap_or(Span::DUMMY)
    } else {
        span
    };

    // Semantic-action failures (e.g. a panicking Mayan converted to a
    // diagnostic) synchronize at the reduction site, like syntax errors.
    let out = driver
        .reduce(grammar, prod_id, prod.action, args, span)
        .map_err(|e| {
            if e.at.is_none() {
                // Anchor at the last consumed item: the final token of the
                // failing production, inside the statement being recovered.
                e.at_input(idx.saturating_sub(1))
            } else {
                e
            }
        })?;
    let state = *states.last().expect("state stack never empty");
    let j = tables.goto(state, prod.lhs).ok_or_else(|| {
        ParseError::new(
            format!(
                "internal error: missing goto for {} in state {state}",
                grammar.nt_def(prod.lhs).name
            ),
            span,
        )
    })?;
    states.push(j);
    match out {
        DriverOut::Value(v) => {
            vals.push((v, span));
        }
        DriverOut::ParseRest { head, goals } => {
            vals.push((head, span));
            let rest = &input[*idx..];
            let rest_span = rest
                .iter()
                .fold(Span::DUMMY, |acc, i| acc.to(i.span()));
            let state = *states.last().expect("state stack never empty");
            let (goal, k) = goals
                .iter()
                .find_map(|g| tables.goto(state, *g).map(|k| (*g, k)))
                .ok_or_else(|| {
                    ParseError::new(
                        "internal error: use-tail nonterminal not expected here",
                        rest_span,
                    )
                })?;
            let v = driver.parse_rest(grammar, rest, goal)?;
            *idx = input.len();
            states.push(k);
            vals.push((v, rest_span));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_ast::{Node, NodeKind};
    use maya_grammar::{Assoc, BuiltinAction, GrammarBuilder, RhsItem};
    use maya_lexer::tree_lex_str;

    /// A small semantic driver for tests: dispatch productions are folded
    /// with a user closure over `Node` values.
    struct TestDriver<F>(F);

    impl<F> Driver for TestDriver<F>
    where
        F: FnMut(ProdId, Vec<Node>) -> Node,
    {
        type V = Node;

        fn marker(&mut self) -> Node {
            Node::Unit
        }

        fn shift_token(&mut self, tok: &Token) -> Node {
            Node::Token(*tok)
        }

        fn shift_tree(&mut self, tree: &DelimTree, _p: Option<&Rc<Vec<Input<Node>>>>) -> Node {
            Node::Tree(maya_lexer::TokenTree::Delim(tree.clone()))
        }

        fn reduce(
            &mut self,
            _g: &Grammar,
            prod: ProdId,
            action: Action,
            args: Vec<(Node, Span)>,
            _span: Span,
        ) -> Result<DriverOut<Node>, ParseError> {
            let args: Vec<Node> = args.into_iter().map(|(v, _)| v).collect();
            let v = match action {
                Action::Dispatch => (self.0)(prod, args),
                Action::Builtin(BuiltinAction::PassThrough(i)) => args[i].clone(),
                Action::Builtin(BuiltinAction::EmptyList) => Node::List(vec![]),
                Action::Builtin(BuiltinAction::ListSingle) => Node::List(args),
                Action::Builtin(BuiltinAction::ListAppend { .. }) => {
                    let mut it = args.into_iter();
                    let mut list = match it.next() {
                        Some(Node::List(l)) => l,
                        _ => panic!("list append on non-list"),
                    };
                    let item = it.last().expect("append item");
                    list.push(item);
                    Node::List(list)
                }
                Action::Builtin(_) => Node::Unit,
            };
            Ok(DriverOut::Value(v))
        }

        fn parse_rest(
            &mut self,
            _g: &Grammar,
            _rest: &[Input<Node>],
            _goal: NtId,
        ) -> Result<Node, ParseError> {
            unimplemented!("not used in these tests")
        }
    }

    fn expr_grammar() -> Grammar {
        use maya_lexer::TokenKind::*;
        let mut b = GrammarBuilder::new();
        b.set_prec(Terminal::Tok(Plus), 10, Assoc::Left);
        b.set_prec(Terminal::Tok(Star), 20, Assoc::Left);
        for op in [Plus, Star] {
            b.add_production(
                NodeKind::Expression,
                &[
                    RhsItem::Kind(NodeKind::Expression),
                    RhsItem::tok(op),
                    RhsItem::Kind(NodeKind::Expression),
                ],
                None,
            )
            .unwrap();
        }
        b.add_production(NodeKind::Expression, &[RhsItem::tok(IntLit)], None)
            .unwrap();
        b.finish()
    }

    /// Folds the expression grammar into an arithmetic value.
    fn eval(g: &Grammar, src: &str) -> Result<i64, ParseError> {
        let trees = tree_lex_str(src).unwrap();
        let input: Vec<Input<Node>> = Input::from_token_trees(&trees);
        let goal = g.nt_for_kind(NodeKind::Expression).unwrap();
        let mut driver = TestDriver(|prod: ProdId, args: Vec<Node>| {
            // Production 0: +, 1: *, 2: literal.
            let num = |n: &Node| -> i64 {
                match n {
                    Node::Expr(e) => match e.kind {
                        maya_ast::ExprKind::Literal(maya_ast::Lit::Long(v)) => v,
                        _ => panic!(),
                    },
                    _ => panic!("expected expr"),
                }
            };
            let mk = |v: i64| {
                Node::Expr(maya_ast::Expr::synth(maya_ast::ExprKind::Literal(
                    maya_ast::Lit::Long(v),
                )))
            };
            match prod.0 {
                0 => mk(num(&args[0]) + num(&args[2])),
                1 => mk(num(&args[0]) * num(&args[2])),
                2 => match &args[0] {
                    Node::Token(t) => mk(t.text.as_str().parse().unwrap()),
                    _ => panic!(),
                },
                _ => panic!("unexpected production"),
            }
        });
        let out = run_parse(g, &input, goal, &mut driver)?;
        match out {
            Node::Expr(e) => match e.kind {
                maya_ast::ExprKind::Literal(maya_ast::Lit::Long(v)) => Ok(v),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_drives_evaluation() {
        let g = expr_grammar();
        assert_eq!(eval(&g, "1 + 2 * 3").unwrap(), 7);
        assert_eq!(eval(&g, "2 * 3 + 1").unwrap(), 7);
        assert_eq!(eval(&g, "1 + 2 + 3").unwrap(), 6);
    }

    #[test]
    fn syntax_errors_are_reported() {
        let g = expr_grammar();
        let err = eval(&g, "1 +").unwrap_err();
        assert!(err.message.contains("unexpected <end>"), "{}", err.message);
        let err = eval(&g, "+ 1").unwrap_err();
        assert!(err.message.contains("expected"), "{}", err.message);
    }

    #[test]
    fn nonterminal_input_via_goto() {
        // Figure 6(b): feed a pre-parsed Expression where one is expected.
        let g = expr_grammar();
        let goal = g.nt_for_kind(NodeKind::Expression).unwrap();
        let pre = Node::Expr(maya_ast::Expr::synth(maya_ast::ExprKind::Literal(
            maya_ast::Lit::Long(40),
        )));
        let trees = tree_lex_str("+ 2").unwrap();
        let mut input: Vec<Input<Node>> =
            vec![Input::Nt(NtSel::Kind(NodeKind::Expression), pre, Span::DUMMY)];
        input.extend(Input::from_token_trees(&trees));
        let mut driver = TestDriver(|prod: ProdId, args: Vec<Node>| match prod.0 {
            0 => {
                let a = match &args[0] {
                    Node::Expr(e) => match e.kind {
                        maya_ast::ExprKind::Literal(maya_ast::Lit::Long(v)) => v,
                        _ => panic!(),
                    },
                    _ => panic!(),
                };
                let b = match &args[2] {
                    Node::Expr(e) => match e.kind {
                        maya_ast::ExprKind::Literal(maya_ast::Lit::Long(v)) => v,
                        _ => panic!(),
                    },
                    _ => panic!(),
                };
                Node::Expr(maya_ast::Expr::synth(maya_ast::ExprKind::Literal(
                    maya_ast::Lit::Long(a + b),
                )))
            }
            2 => match &args[0] {
                Node::Token(t) => Node::Expr(maya_ast::Expr::synth(maya_ast::ExprKind::Literal(
                    maya_ast::Lit::Long(t.text.as_str().parse().unwrap()),
                ))),
                _ => panic!(),
            },
            _ => panic!(),
        });
        let out = run_parse(&g, &input, goal, &mut driver).unwrap();
        match out {
            Node::Expr(e) => assert!(matches!(
                e.kind,
                maya_ast::ExprKind::Literal(maya_ast::Lit::Long(42))
            )),
            _ => panic!(),
        }
    }

    #[test]
    fn finer_kind_maps_through_lattice() {
        // A CallExpr input symbol is accepted where Expression is expected.
        let g = expr_grammar();
        let goal = g.nt_for_kind(NodeKind::Expression).unwrap();
        let call = Node::Expr(maya_ast::Expr::call_on(
            maya_ast::Expr::name("v"),
            "elements",
            vec![],
        ));
        let input: Vec<Input<Node>> =
            vec![Input::Nt(NtSel::Kind(NodeKind::CallExpr), call, Span::DUMMY)];
        let mut driver = TestDriver(|_p, _a| panic!("no dispatch expected"));
        let out = run_parse(&g, &input, goal, &mut driver).unwrap();
        assert_eq!(out.node_kind(), NodeKind::CallExpr);
    }
}
