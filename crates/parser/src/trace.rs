//! Trace mode: the pattern parser's output trees.
//!
//! A [`PatTree`] is the paper's *partial parse tree built from a sequence of
//! both terminal and nonterminal input symbols* (§4.2). It records exactly
//! the shifts and reductions the parser performed, so that:
//!
//! * the dispatcher can infer the structure of a Mayan's formal parameters
//!   (Figure 5) and locate the production the Mayan implements;
//! * the template compiler can statically check a quasiquote body and
//!   compile it "into code that performs the same sequence of shifts and
//!   reductions the parser would have performed on the template body".

use crate::{run_parse, Driver, DriverOut, Input, NtSel, ParseError};
use maya_ast::NodeKind;
use maya_grammar::{Action, BuiltinAction, Grammar, NtId, ProdId};
use maya_lexer::{Delim, DelimTree, Span, Token};
use std::rc::Rc;

/// A partial parse tree over terminal and nonterminal leaves.
#[derive(Clone, Debug)]
pub enum PatTree {
    /// The internal goal marker (never appears in results).
    Marker,
    /// A shifted token.
    Token(Token),
    /// A shifted delimiter tree that has not (yet) been recursed into.
    RawTree(DelimTree, Option<Rc<Vec<Input<PatTree>>>>),
    /// A delimiter subtree whose contents were pattern-parsed to `goal`.
    /// `lazy` marks `lazy(...)` positions: contents were still checked
    /// statically, but instantiation must produce a thunk.
    Tree {
        delim: Delim,
        lazy: bool,
        goal: NtId,
        kind: Option<NodeKind>,
        content: Box<PatTree>,
        /// The original delimiter tree (kept so lazy template positions can
        /// rebuild thunks over the raw syntax).
        raw: DelimTree,
        span: Span,
    },
    /// A nonterminal input symbol (named Mayan parameter / template
    /// unquote). `index` identifies which input symbol it was.
    Leaf {
        sel: NtSel,
        index: usize,
        span: Span,
    },
    /// A reduction.
    Node {
        prod: ProdId,
        nt: NtId,
        children: Vec<PatTree>,
        span: Span,
    },
}

impl PatTree {
    /// Builds a nonterminal leaf for use in pattern input.
    pub fn leaf(sel: NtSel, index: usize, span: Span) -> PatTree {
        PatTree::Leaf { sel, index, span }
    }

    /// The source span of this tree.
    pub fn span(&self) -> Span {
        match self {
            PatTree::Marker => Span::DUMMY,
            PatTree::Token(t) => t.span,
            PatTree::RawTree(d, _) => d.span(),
            PatTree::Tree { span, .. } => *span,
            PatTree::Leaf { span, .. } => *span,
            PatTree::Node { span, .. } => *span,
        }
    }

    /// The production at the root, if this is a reduction node.
    pub fn production(&self) -> Option<ProdId> {
        match self {
            PatTree::Node { prod, .. } => Some(*prod),
            _ => None,
        }
    }

    /// Iterates all leaves (in input order) below this tree.
    pub fn leaves(&self) -> Vec<&PatTree> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a PatTree>) {
        match self {
            PatTree::Leaf { .. } => out.push(self),
            PatTree::Node { children, .. } => {
                for c in children {
                    c.collect_leaves(out);
                }
            }
            PatTree::Tree { content, .. } => content.collect_leaves(out),
            _ => {}
        }
    }
}

/// The driver that records parse structure instead of building semantics.
#[derive(Default)]
pub struct TraceDriver {
    _private: (),
}

impl TraceDriver {
    /// Creates a trace driver.
    pub fn new() -> TraceDriver {
        TraceDriver::default()
    }
}

impl Driver for TraceDriver {
    type V = PatTree;

    fn marker(&mut self) -> PatTree {
        PatTree::Marker
    }

    fn shift_token(&mut self, tok: &Token) -> PatTree {
        PatTree::Token(*tok)
    }

    fn shift_tree(
        &mut self,
        tree: &DelimTree,
        pattern: Option<&Rc<Vec<Input<PatTree>>>>,
    ) -> PatTree {
        PatTree::RawTree(tree.clone(), pattern.cloned())
    }

    fn reduce(
        &mut self,
        grammar: &Grammar,
        prod: ProdId,
        action: Action,
        args: Vec<(PatTree, Span)>,
        span: Span,
    ) -> Result<DriverOut<PatTree>, ParseError> {
        let children: Vec<PatTree> = args.into_iter().map(|(v, _)| v).collect();
        let lhs = grammar.production(prod).lhs;
        let out = match action {
            Action::Builtin(BuiltinAction::ParseSubtree { goal }) => {
                self.recurse_tree(grammar, children, goal, false, None, span)?
            }
            Action::Builtin(BuiltinAction::LazySubtree { goal, kind }) => {
                self.recurse_tree(grammar, children, goal, true, Some(kind), span)?
            }
            _ => PatTree::Node {
                prod,
                nt: lhs,
                children,
                span,
            },
        };
        Ok(DriverOut::Value(out))
    }

    fn parse_rest(
        &mut self,
        grammar: &Grammar,
        rest: &[Input<PatTree>],
        goal: NtId,
    ) -> Result<PatTree, ParseError> {
        run_parse(grammar, rest, goal, self)
    }
}

impl TraceDriver {
    fn recurse_tree(
        &mut self,
        grammar: &Grammar,
        mut children: Vec<PatTree>,
        goal: NtId,
        lazy: bool,
        kind: Option<NodeKind>,
        span: Span,
    ) -> Result<PatTree, ParseError> {
        let child = children.pop().ok_or_else(|| {
            ParseError::new("internal error: subtree reduction without a tree", span)
        })?;
        let (tree, pattern) = match child {
            PatTree::RawTree(d, p) => (d, p),
            other => {
                return Err(ParseError::new(
                    format!("internal error: expected raw tree, found {other:?}"),
                    span,
                ))
            }
        };
        let input: Vec<Input<PatTree>> = match pattern {
            Some(p) => (*p).clone(),
            None => Input::from_token_trees(&tree.trees),
        };
        // Even lazy subtrees are statically checked (paper §4.2: templates
        // are parsed when compiled; laziness only affects instantiation).
        let content = run_parse(grammar, &input, goal, self)?;
        Ok(PatTree::Tree {
            delim: tree.delim,
            lazy,
            goal,
            kind,
            content: Box::new(content),
            raw: tree,
            span,
        })
    }
}

/// Pattern-parses `input` to `goal`, returning the partial parse tree.
///
/// # Errors
///
/// Returns a [`ParseError`] when the input is not derivable — including the
/// paper's delayed-detection case, where an invalid nonterminal is only
/// discovered after some reductions have been performed.
pub fn trace_parse(
    grammar: &Grammar,
    input: &[Input<PatTree>],
    goal: NtId,
) -> Result<PatTree, ParseError> {
    run_parse(grammar, input, goal, &mut TraceDriver::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_grammar::GrammarBuilder;
    use maya_grammar::RhsItem;
    use maya_lexer::{sym, TokenKind};

    /// The grammar of paper Figure 6(a):
    /// `A → a | b | c;  D → d;  F → f;  S → D e A | F A`.
    ///
    /// Node kinds stand in for the paper's nonterminal letters:
    /// `Expression`=A, `Statement`=D, `Formal`=F, `CompilationUnit`=S.
    fn figure6() -> Grammar {
        let mut b = GrammarBuilder::new();
        for t in ["a", "b", "c"] {
            b.add_production(NodeKind::Expression, &[RhsItem::word(t)], None)
                .unwrap();
        }
        b.add_production(NodeKind::Statement, &[RhsItem::word("d")], None)
            .unwrap();
        b.add_production(NodeKind::Formal, &[RhsItem::word("f")], None)
            .unwrap();
        b.add_production(
            NodeKind::CompilationUnit,
            &[
                RhsItem::Kind(NodeKind::Statement),
                RhsItem::word("e"),
                RhsItem::Kind(NodeKind::Expression),
            ],
            None,
        )
        .unwrap();
        b.add_production(
            NodeKind::CompilationUnit,
            &[
                RhsItem::Kind(NodeKind::Formal),
                RhsItem::Kind(NodeKind::Expression),
            ],
            None,
        )
        .unwrap();
        b.finish()
    }

    fn word(t: &str) -> Input<PatTree> {
        Input::Tok(Token::synth(TokenKind::Ident, sym(t)))
    }

    fn nt_a(index: usize) -> Input<PatTree> {
        Input::Nt(
            NtSel::Kind(NodeKind::Expression),
            PatTree::leaf(NtSel::Kind(NodeKind::Expression), index, Span::DUMMY),
            Span::DUMMY,
        )
    }

    #[test]
    fn figure6b_goto_followed() {
        // Input `d e A`: after `d e`, state 56 has a goto on A (Figure 6(b)).
        let g = figure6();
        let goal = g.nt_for_kind(NodeKind::CompilationUnit).unwrap();
        let input = vec![word("d"), word("e"), nt_a(0)];
        let tree = trace_parse(&g, &input, goal).expect("d e A parses");
        match tree {
            PatTree::Node { children, .. } => {
                assert_eq!(children.len(), 3);
                assert!(matches!(children[2], PatTree::Leaf { index: 0, .. }));
                // `d` was reduced to D (a nested node), not left as a token.
                assert!(matches!(&children[0], PatTree::Node { children: c, .. }
                    if matches!(c[0], PatTree::Token(_))));
            }
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn figure6c_reduce_on_first() {
        // Input `f A`: after `f`, there is no goto on A; all actions on
        // FIRST(A) = {a,b,c} reduce F → f, which is performed first
        // (Figure 6(c)).
        let g = figure6();
        let goal = g.nt_for_kind(NodeKind::CompilationUnit).unwrap();
        let input = vec![word("f"), nt_a(7)];
        let tree = trace_parse(&g, &input, goal).expect("f A parses");
        match tree {
            PatTree::Node { children, .. } => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[1], PatTree::Leaf { index: 7, .. }));
            }
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn invalid_nonterminal_input_is_rejected() {
        // Input `d A` is invalid: after D, only `e` may follow.
        let g = figure6();
        let goal = g.nt_for_kind(NodeKind::CompilationUnit).unwrap();
        let input = vec![word("d"), nt_a(0)];
        assert!(trace_parse(&g, &input, goal).is_err());
    }

    #[test]
    fn leaves_are_collected_in_order() {
        let g = figure6();
        let goal = g.nt_for_kind(NodeKind::CompilationUnit).unwrap();
        let input = vec![word("f"), nt_a(3)];
        let tree = trace_parse(&g, &input, goal).unwrap();
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), 1);
        assert!(matches!(leaves[0], PatTree::Leaf { index: 3, .. }));
    }

    #[test]
    fn subtree_recursion_produces_tree_nodes() {
        // S2 → g (A); the paren subtree's contents are pattern-parsed.
        let mut b = figure6().extend();
        b.add_production(
            NodeKind::ClassBody,
            &[
                RhsItem::word("g"),
                RhsItem::Subtree(
                    maya_lexer::Delim::Paren,
                    vec![RhsItem::Kind(NodeKind::Expression)],
                ),
            ],
            None,
        )
        .unwrap();
        let g = b.finish();
        let goal = g.nt_for_kind(NodeKind::ClassBody).unwrap();
        let inner = Rc::new(vec![nt_a(1)]);
        let tree_input = Input::Tree(
            DelimTree::synth(maya_lexer::Delim::Paren, vec![]),
            Some(inner),
        );
        let input = vec![word("g"), tree_input];
        let tree = trace_parse(&g, &input, goal).unwrap();
        match tree {
            PatTree::Node { children, .. } => match &children[1] {
                PatTree::Tree { lazy, content, .. } => {
                    assert!(!lazy);
                    assert!(matches!(**content, PatTree::Leaf { index: 1, .. }));
                }
                other => panic!("expected tree node, got {other:?}"),
            },
            other => panic!("expected node, got {other:?}"),
        }
    }
}
