//! Parser input items: tokens, delimiter subtrees, and (pattern mode)
//! nonterminal symbols.

use maya_ast::NodeKind;
use maya_grammar::NtId;
use maya_lexer::{DelimTree, Span, Token, TokenTree};
use std::rc::Rc;

/// Selects the nonterminal a pattern input symbol stands for: a node kind
/// (mapped to the nearest grammar nonterminal through the lattice) or a raw
/// grammar nonterminal (used for helper symbols like `lazy(...)`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NtSel {
    Kind(NodeKind),
    Id(NtId),
}

/// One input symbol for the engine.
///
/// `V` is the driver's semantic value type. Ordinary parsing uses only
/// `Tok` and `Tree`; pattern parsing adds `Nt` leaves (named Mayan
/// parameters, template unquotes) and may nest pattern items inside
/// delimiter trees.
#[derive(Clone, Debug)]
pub enum Input<V> {
    /// A terminal token.
    Tok(Token),
    /// A delimiter subtree. The second field carries *pattern contents*
    /// when the tree's interior is itself a pattern (contains `Nt` items);
    /// `None` means the raw `DelimTree` contents are authoritative.
    Tree(DelimTree, Option<Rc<Vec<Input<V>>>>),
    /// A nonterminal input symbol with its declared nonterminal, payload,
    /// and span.
    Nt(NtSel, V, Span),
}

impl<V> Input<V> {
    /// The source span of this input item.
    pub fn span(&self) -> Span {
        match self {
            Input::Tok(t) => t.span,
            Input::Tree(d, _) => d.span(),
            Input::Nt(_, _, s) => *s,
        }
    }

    /// A short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Input::Tok(t) => format!("`{}`", t.text),
            Input::Tree(d, _) => d.delim.tree_name().to_owned(),
            Input::Nt(NtSel::Kind(k), _, _) => format!("<{}>", k.name()),
            Input::Nt(NtSel::Id(nt), _, _) => format!("<nt#{}>", nt.0),
        }
    }

    /// Converts raw token trees into input items.
    pub fn from_token_trees(trees: &[TokenTree]) -> Vec<Input<V>> {
        trees
            .iter()
            .map(|t| match t {
                TokenTree::Token(tok) => Input::Tok(*tok),
                TokenTree::Delim(d) => Input::Tree(d.clone(), None),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::tree_lex_str;

    #[test]
    fn conversion_from_token_trees() {
        let trees = tree_lex_str("f ( x )").unwrap();
        let input: Vec<Input<()>> = Input::from_token_trees(&trees);
        assert_eq!(input.len(), 2);
        assert!(matches!(input[0], Input::Tok(_)));
        assert!(matches!(input[1], Input::Tree(..)));
        assert_eq!(input[0].describe(), "`f`");
        assert_eq!(input[1].describe(), "ParenTree");
    }
}
