//! The Maya parser engine and pattern parser (paper §4.1–4.2).
//!
//! One table-driven LALR(1) engine serves both roles:
//!
//! * **ordinary parsing** — input is a stream of tokens and delimiter
//!   subtrees; reductions run semantic actions (built-in helpers inline, and
//!   Mayan dispatch through the [`Driver`]);
//! * **pattern parsing** — input may also contain *nonterminal* symbols
//!   (named Mayan parameters, template unquotes). A nonterminal `X` is
//!   consumed either by following a goto on `X` (paper Figure 6(b)) or, when
//!   no goto exists, by performing the unique reduction shared by all
//!   actions on `FIRST(Xγ)` (Figure 6(c)).
//!
//! The engine is generic over a [`Driver`], which supplies semantic values:
//! the compiler's driver produces AST [`maya_ast::Node`]s, while the
//! [`trace::TraceDriver`] records the shift/reduce structure as a
//! [`trace::PatTree`] — the "partial parse tree built from a sequence of
//! both terminal and nonterminal input symbols" used to infer Mayan
//! parameter structure (Figure 5) and to compile templates.

mod engine;
mod error;
mod input;
pub mod trace;

pub use engine::{run_parse, Driver, DriverOut};
pub use error::ParseError;
pub use input::{Input, NtSel};
