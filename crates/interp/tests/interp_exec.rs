//! End-to-end interpreter tests over programmatically built classes.

use maya_ast::{
    BinOp, Block, Expr, ExprKind, Ident, LazyNode, LocalDeclarator, Modifier, Modifiers, Node,
    NodeKind, Stmt, StmtKind, TypeName,
};
use maya_interp::{install_runtime, Interp, Value};
use maya_lexer::{sym, Span};
use maya_types::{ClassInfo, ClassTable, MethodInfo, Type};
use std::rc::Rc;

fn body(stmts: Vec<Stmt>) -> Option<LazyNode> {
    Some(LazyNode::forced(
        NodeKind::BlockStmts,
        Node::Block(Block::synth(stmts)),
    ))
}

fn static_method(name: &str, params: Vec<(Type, &str)>, ret: Type, stmts: Vec<Stmt>) -> MethodInfo {
    MethodInfo {
        name: sym(name),
        params: params.iter().map(|(t, _)| t.clone()).collect(),
        param_names: params.iter().map(|(_, n)| sym(n)).collect(),
        ret,
        modifiers: Modifiers::just(Modifier::Public).with(Modifier::Static),
        body: body(stmts),
        native: None,
        specializers: vec![],
    }
}

fn setup() -> (Rc<ClassTable>, maya_types::ClassId) {
    let ct = Rc::new(ClassTable::new());
    install_runtime(&ct);
    let mut main = ClassInfo::new("Main", false);
    main.superclass = ct.by_fqcn_str("java.lang.Object");
    let main = ct.declare(main).unwrap();
    (ct, main)
}

fn ret(e: Expr) -> Stmt {
    Stmt::synth(StmtKind::Return(Some(e)))
}

fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::synth(ExprKind::Binary(op, Box::new(l), Box::new(r)))
}

fn call_static_on(class: &str, name: &str, args: Vec<Expr>) -> Expr {
    Expr::call_on(Expr::name(class), name, args)
}

#[test]
fn arithmetic_and_recursion() {
    let (ct, main) = setup();
    // static int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
    ct.add_method(
        main,
        static_method(
            "fact",
            vec![(Type::int(), "n")],
            Type::int(),
            vec![
                Stmt::synth(StmtKind::If(
                    bin(BinOp::Lt, Expr::name("n"), Expr::int(2)),
                    Box::new(ret(Expr::int(1))),
                    None,
                )),
                ret(bin(
                    BinOp::Mul,
                    Expr::name("n"),
                    call_static_on("Main", "fact", vec![bin(BinOp::Sub, Expr::name("n"), Expr::int(1))]),
                )),
            ],
        ),
    );
    let interp = Interp::new(ct.clone());
    let out = interp
        .invoke_static(main, sym("fact"), vec![Value::Int(10)], Span::DUMMY)
        .unwrap();
    assert!(matches!(out, Value::Int(3628800)));
}

#[test]
fn loops_and_output() {
    let (ct, main) = setup();
    // static void main() { for (int i = 0; i < 3; i++) System.out.println(i); }
    let println = Stmt::expr(Expr::call_on(
        Expr::field(Expr::name("System"), "out"),
        "println",
        vec![Expr::name("i")],
    ));
    ct.add_method(
        main,
        static_method(
            "main",
            vec![],
            Type::Void,
            vec![Stmt::synth(StmtKind::For {
                init: maya_ast::ForInit::Decl(
                    TypeName::prim(maya_ast::PrimKind::Int),
                    vec![LocalDeclarator {
                        name: Ident::from_str("i"),
                        dims: 0,
                        init: Some(Expr::int(0)),
                    }],
                ),
                cond: Some(bin(BinOp::Lt, Expr::name("i"), Expr::int(3))),
                update: vec![Expr::synth(ExprKind::IncDec(
                    maya_ast::IncDecOp::Inc,
                    false,
                    Box::new(Expr::name("i")),
                ))],
                body: Box::new(println),
            })],
        ),
    );
    let interp = Interp::new(ct);
    let out = interp.run_main("Main").unwrap();
    assert_eq!(out, "0\n1\n2\n");
}

#[test]
fn vectors_enumerations_and_string_concat() {
    let (ct, main) = setup();
    // static void main() {
    //   java.util.Vector v = new java.util.Vector();
    //   v.addElement("a"); v.addElement("b");
    //   java.util.Enumeration e = v.elements();
    //   while (e.hasMoreElements()) System.out.println("x=" + e.nextElement());
    // }
    let stmts = vec![
        Stmt::synth(StmtKind::Decl(
            TypeName::named("java.util.Vector"),
            vec![LocalDeclarator {
                name: Ident::from_str("v"),
                dims: 0,
                init: Some(Expr::synth(ExprKind::New(
                    TypeName::named("java.util.Vector"),
                    vec![],
                ))),
            }],
        )),
        Stmt::expr(Expr::call_on(Expr::name("v"), "addElement", vec![Expr::str_lit("a")])),
        Stmt::expr(Expr::call_on(Expr::name("v"), "addElement", vec![Expr::str_lit("b")])),
        Stmt::synth(StmtKind::Decl(
            TypeName::named("java.util.Enumeration"),
            vec![LocalDeclarator {
                name: Ident::from_str("e"),
                dims: 0,
                init: Some(Expr::call_on(Expr::name("v"), "elements", vec![])),
            }],
        )),
        Stmt::synth(StmtKind::While(
            Expr::call_on(Expr::name("e"), "hasMoreElements", vec![]),
            Box::new(Stmt::expr(Expr::call_on(
                Expr::field(Expr::name("System"), "out"),
                "println",
                vec![bin(
                    BinOp::Add,
                    Expr::str_lit("x="),
                    Expr::call_on(Expr::name("e"), "nextElement", vec![]),
                )],
            ))),
        )),
    ];
    ct.add_method(main, static_method("main", vec![], Type::Void, stmts));
    let interp = Interp::new(ct);
    assert_eq!(interp.run_main("Main").unwrap(), "x=a\nx=b\n");
}

#[test]
fn virtual_dispatch_and_instanceof() {
    let (ct, _main) = setup();
    let obj = ct.by_fqcn_str("java.lang.Object").unwrap();
    // class C { int m() { return 0; } }  class D extends C { int m() { return 1; } }
    let mut c = ClassInfo::new("C", false);
    c.superclass = Some(obj);
    let c = ct.declare(c).unwrap();
    let mut m0 = static_method("m", vec![], Type::int(), vec![ret(Expr::int(0))]);
    m0.modifiers = Modifiers::just(Modifier::Public);
    ct.add_method(c, m0);
    let mut d = ClassInfo::new("D", false);
    d.superclass = Some(c);
    let d = ct.declare(d).unwrap();
    let mut m1 = static_method("m", vec![], Type::int(), vec![ret(Expr::int(1))]);
    m1.modifiers = Modifiers::just(Modifier::Public);
    ct.add_method(d, m1);

    let interp = Interp::new(ct.clone());
    let instance = interp.construct(d, vec![], Span::DUMMY).unwrap();
    let out = interp
        .invoke_by_name(instance.clone(), sym("m"), vec![], Span::DUMMY)
        .unwrap();
    assert!(matches!(out, Value::Int(1)), "D.m overrides C.m");
    assert!(interp.value_instanceof(&instance, &Type::Class(c)));
    assert!(interp.value_instanceof(&instance, &Type::Class(obj)));
    let base = interp.construct(c, vec![], Span::DUMMY).unwrap();
    assert!(!interp.value_instanceof(&base, &Type::Class(d)));
}

#[test]
fn exceptions_try_catch() {
    let (ct, main) = setup();
    // static void main() {
    //   try { throw new RuntimeException("boom"); }
    //   catch (RuntimeException e) { System.out.println("caught " + e.getMessage()); }
    // }
    let stmts = vec![Stmt::synth(StmtKind::Try {
        body: Block::synth(vec![Stmt::synth(StmtKind::Throw(Expr::synth(ExprKind::New(
            TypeName::named("java.lang.RuntimeException"),
            vec![Expr::str_lit("boom")],
        ))))]),
        catches: vec![maya_ast::CatchClause {
            param: maya_ast::Formal::new(
                TypeName::named("java.lang.RuntimeException"),
                Ident::from_str("e"),
            ),
            body: Block::synth(vec![Stmt::expr(Expr::call_on(
                Expr::field(Expr::name("System"), "out"),
                "println",
                vec![bin(
                    BinOp::Add,
                    Expr::str_lit("caught "),
                    Expr::call_on(Expr::name("e"), "getMessage", vec![]),
                )],
            ))]),
        }],
        finally: None,
    })];
    ct.add_method(main, static_method("main", vec![], Type::Void, stmts));
    let interp = Interp::new(ct);
    assert_eq!(interp.run_main("Main").unwrap(), "caught boom\n");
}

#[test]
fn division_by_zero_is_an_exception() {
    let (ct, main) = setup();
    ct.add_method(
        main,
        static_method(
            "div",
            vec![(Type::int(), "a"), (Type::int(), "b")],
            Type::int(),
            vec![ret(bin(BinOp::Div, Expr::name("a"), Expr::name("b")))],
        ),
    );
    let interp = Interp::new(ct.clone());
    let main_id = ct.by_fqcn_str("Main").unwrap();
    assert!(matches!(
        interp.invoke_static(main_id, sym("div"), vec![Value::Int(6), Value::Int(2)], Span::DUMMY),
        Ok(Value::Int(3))
    ));
    let err = interp.invoke_static(
        main_id,
        sym("div"),
        vec![Value::Int(1), Value::Int(0)],
        Span::DUMMY,
    );
    assert!(matches!(err, Err(maya_interp::Control::Throw(_))));
}

#[test]
fn arrays_and_casts() {
    let (ct, main) = setup();
    // static int sum() { int[] a = new int[4]; for (...) a[i] = i; return a[0]+a[1]+a[2]+a[3]; }
    let idx = |i: i32| {
        Expr::synth(ExprKind::ArrayAccess(
            Box::new(Expr::name("a")),
            Box::new(Expr::int(i)),
        ))
    };
    let stmts = vec![
        Stmt::synth(StmtKind::Decl(
            TypeName::prim(maya_ast::PrimKind::Int).array_of(),
            vec![LocalDeclarator {
                name: Ident::from_str("a"),
                dims: 0,
                init: Some(Expr::synth(ExprKind::NewArray {
                    elem: TypeName::prim(maya_ast::PrimKind::Int),
                    dims: vec![Expr::int(4)],
                    extra_dims: 0,
                })),
            }],
        )),
        Stmt::expr(Expr::synth(ExprKind::Assign(
            None,
            Box::new(idx(2)),
            Box::new(Expr::int(40)),
        ))),
        ret(bin(
            BinOp::Add,
            idx(2),
            bin(BinOp::Add, idx(0), Expr::field(Expr::name("a"), "length")),
        )),
    ];
    ct.add_method(main, static_method("sum", vec![], Type::int(), stmts));
    let interp = Interp::new(ct.clone());
    let out = interp
        .invoke_static(ct.by_fqcn_str("Main").unwrap(), sym("sum"), vec![], Span::DUMMY)
        .unwrap();
    assert!(matches!(out, Value::Int(44)), "40 + 0 + 4 = 44, got {out:?}");
}

#[test]
fn hashtable_roundtrip() {
    let (ct, main) = setup();
    let stmts = vec![
        Stmt::synth(StmtKind::Decl(
            TypeName::named("java.util.Hashtable"),
            vec![LocalDeclarator {
                name: Ident::from_str("h"),
                dims: 0,
                init: Some(Expr::synth(ExprKind::New(
                    TypeName::named("java.util.Hashtable"),
                    vec![],
                ))),
            }],
        )),
        Stmt::expr(Expr::call_on(
            Expr::name("h"),
            "put",
            vec![Expr::str_lit("k"), Expr::str_lit("v")],
        )),
        ret(Expr::synth(ExprKind::Cast(
            TypeName::named("String"),
            Box::new(Expr::call_on(Expr::name("h"), "get", vec![Expr::str_lit("k")])),
        ))),
    ];
    let mut m = static_method("go", vec![], Type::Class(ct.by_fqcn_str("java.lang.String").unwrap()), stmts);
    m.modifiers = Modifiers::just(Modifier::Public).with(Modifier::Static);
    ct.add_method(main, m);
    let interp = Interp::new(ct.clone());
    let out = interp
        .invoke_static(ct.by_fqcn_str("Main").unwrap(), sym("go"), vec![], Span::DUMMY)
        .unwrap();
    assert!(matches!(out, Value::Str(s) if &*s == "v"));
}

#[test]
fn numeric_promotions_and_casts() {
    let (ct, main) = setup();
    // static double mix() { int i = 7; long l = i * 3L; double d = l / 2.0; return d; }
    let stmts = vec![
        Stmt::synth(StmtKind::Decl(
            TypeName::prim(maya_ast::PrimKind::Int),
            vec![LocalDeclarator {
                name: Ident::from_str("i"),
                dims: 0,
                init: Some(Expr::int(7)),
            }],
        )),
        Stmt::synth(StmtKind::Decl(
            TypeName::prim(maya_ast::PrimKind::Long),
            vec![LocalDeclarator {
                name: Ident::from_str("l"),
                dims: 0,
                init: Some(bin(
                    BinOp::Mul,
                    Expr::name("i"),
                    Expr::synth(ExprKind::Literal(maya_ast::Lit::Long(3))),
                )),
            }],
        )),
        ret(bin(
            BinOp::Div,
            Expr::name("l"),
            Expr::synth(ExprKind::Literal(maya_ast::Lit::Double(2.0))),
        )),
    ];
    ct.add_method(
        main,
        static_method("mix", vec![], Type::Prim(maya_ast::PrimKind::Double), stmts),
    );
    let interp = Interp::new(ct.clone());
    let out = interp
        .invoke_static(
            ct.by_fqcn_str("Main").unwrap(),
            sym("mix"),
            vec![],
            Span::DUMMY,
        )
        .unwrap();
    assert!(matches!(out, Value::Double(d) if (d - 10.5).abs() < 1e-9));
}

#[test]
fn string_equality_and_concat_semantics() {
    let (ct, _main) = setup();
    let interp = Interp::new(ct);
    let a = Value::str("ab");
    let b = Value::str("ab");
    assert!(a.ref_eq(&b), "string values compare by contents");
    let joined = interp
        .binary_values(BinOp::Add, &Value::str("n="), &Value::Int(5), Span::DUMMY)
        .unwrap();
    assert!(matches!(joined, Value::Str(s) if &*s == "n=5"));
}

#[test]
fn uncaught_exception_reports_message() {
    let (ct, main) = setup();
    ct.add_method(
        main,
        static_method(
            "main",
            vec![],
            Type::Void,
            vec![Stmt::synth(StmtKind::Throw(Expr::synth(ExprKind::New(
                TypeName::named("java.lang.RuntimeException"),
                vec![Expr::str_lit("kaboom")],
            ))))],
        ),
    );
    let interp = Interp::new(ct);
    let err = interp.run_main("Main").unwrap_err();
    assert!(err.message.contains("kaboom"), "{}", err.message);
}

#[test]
fn call_depth_guard_catches_runaway_recursion() {
    // Interpreted frames are large in debug builds; give the guard room to
    // fire before the host stack runs out.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(call_depth_guard_impl)
        .unwrap()
        .join()
        .unwrap();
}

fn call_depth_guard_impl() {
    let (ct, main) = setup();
    // static int forever() { return forever(); }
    ct.add_method(
        main,
        static_method(
            "forever",
            vec![],
            Type::int(),
            vec![ret(call_static_on("Main", "forever", vec![]))],
        ),
    );
    let interp = Interp::new(ct.clone());
    let err = interp.invoke_static(
        ct.by_fqcn_str("Main").unwrap(),
        sym("forever"),
        vec![],
        Span::DUMMY,
    );
    match err {
        Err(maya_interp::Control::Error(e)) => {
            assert!(e.message.contains("stack overflow"), "{}", e.message)
        }
        other => panic!("expected depth-guard error, got {other:?}"),
    }
}
