//! Runtime lowering: typed bodies → slot-resolved, pre-folded code.
//!
//! After type checking (and lazy forcing), a method or constructor body is
//! lowered once into a [`LoweredBody`]:
//!
//! * **Slot resolution** — every local/parameter reference becomes a fixed
//!   frame-slot index; only names that are *not* statically bound (implicit
//!   `this` fields, statics, class names) stay symbolic ([`LExprKind::EnvName`]).
//! * **Constant folding** — literal arithmetic, constant string
//!   concatenation, constant conditionals, `null instanceof T`, and numeric
//!   primitive casts are folded bottom-up.  Only *infallible* operations
//!   fold (integer `/`/`%` can throw, so they never fold), and statements
//!   are never folded away, keeping step counting identical to the
//!   tree-walker.
//! * **Site caches** — every call, field access, and type reference gets a
//!   private inline cache ([`CallSite`], [`FieldSite`], [`TypeSlot`]) filled
//!   at run time and guarded by the interpreter's cache *epoch* (see
//!   `layout.rs`), so a lowered body contains no environment-dependent data
//!   and can be shared between compilers in a session.
//!
//! Lowering is a pure function of the body's AST and its parameter names.
//! Bodies containing unforced lazy nodes, templates, or poison nodes are
//! *unlowerable* and keep executing on the legacy tree-walker; the
//! [`LowerStore`] memoizes both outcomes per structural fingerprint so warm
//! `mayad` runs skip the analysis entirely.
//!
//! Evaluation order, error messages, error spans, and observable side
//! effects are mirrored from `interp.rs` exactly — the conformance corpus
//! must be byte-identical with lowering on and off.

use crate::Value;
use maya_ast::{
    fingerprint_block, BinOp, Block, Expr, ExprKind, ForInit, IncDecOp, Lit, MethodName, PrimKind,
    Stmt, StmtKind, TypeName, TypeNameKind, UnOp,
};
use maya_lexer::{Span, Symbol};
use maya_telemetry as telemetry;
use maya_types::Type;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

// ---- lowered IR --------------------------------------------------------------

/// A lowered, directly executable body.
pub struct LoweredBody {
    /// Number of leading slots filled from call arguments.
    pub n_params: usize,
    /// Total frame-slot count (params + every local ever declared).
    pub n_slots: usize,
    /// Top-level statements (the body block's statements).
    pub code: Vec<LStmt>,
    /// Bytecode-tier state for this body (cold / compiled / unsupported).
    /// Lives on the lowered body so it rides the [`LowerStore`] memo keying
    /// and is shared between compilers in a session.
    pub(crate) bc: RefCell<crate::bytecode::BcState>,
}

/// A lowered statement.
pub struct LStmt {
    pub span: Span,
    pub kind: LStmtKind,
}

/// One declarator of a lowered local declaration.
pub struct LDecl {
    pub slot: u32,
    /// Trailing `[]` pairs on the declarator.
    pub dims: u32,
    pub init: Option<LExpr>,
}

/// A lowered `catch` clause.
pub struct LCatch {
    pub ty: Rc<TypeSlot>,
    pub param_slot: u32,
    pub body: Vec<LStmt>,
}

/// The shape of a lowered statement.  Scoping is resolved at lowering time,
/// so blocks are plain statement lists.
pub enum LStmtKind {
    Block(Vec<LStmt>),
    Expr(LExpr),
    Decl {
        ty: Rc<TypeSlot>,
        decls: Vec<LDecl>,
    },
    If(LExpr, Box<LStmt>, Option<Box<LStmt>>),
    While(LExpr, Box<LStmt>),
    Do(Box<LStmt>, LExpr),
    For {
        /// A synthesized `Decl` statement (legacy executes the init decl as
        /// a statement with a dummy span, charging one step).
        init_decl: Option<Box<LStmt>>,
        init_exprs: Vec<LExpr>,
        cond: Option<LExpr>,
        update: Vec<LExpr>,
        body: Box<LStmt>,
    },
    Return(Option<LExpr>),
    Break,
    Continue,
    Throw(LExpr),
    Try {
        body: Vec<LStmt>,
        catches: Vec<LCatch>,
        finally: Option<Vec<LStmt>>,
    },
    Empty,
}

/// A lowered expression.
pub struct LExpr {
    pub span: Span,
    pub kind: LExprKind,
}

/// The shape of a lowered expression.
pub enum LExprKind {
    /// A literal or folded constant.
    Const(Value),
    /// A statically resolved local/parameter slot.
    Local(u32),
    /// A name with no static binding: implicit-`this` field, static field,
    /// or class reference — resolved by the legacy environment walk.
    EnvName(Symbol),
    This,
    FieldGet {
        target: Box<LExpr>,
        name: Symbol,
        site: FieldSite,
    },
    ArrayGet(Box<LExpr>, Box<LExpr>),
    New {
        ty: Rc<TypeSlot>,
        args: Vec<LExpr>,
    },
    NewArray {
        elem: Rc<TypeSlot>,
        extra_dims: u32,
        dims: Vec<LExpr>,
    },
    Binary(BinOp, Box<LExpr>, Box<LExpr>),
    Unary(UnOp, Box<LExpr>),
    IncDec {
        op: IncDecOp,
        prefix: bool,
        /// The place read as an r-value (legacy evaluates it once…)
        read: Box<LExpr>,
        /// …then re-evaluates its sub-expressions when storing.
        write: LTarget,
    },
    Assign {
        op: Option<BinOp>,
        /// For compound assignment: the place read as an r-value (legacy
        /// evaluates the place twice; both copies are lowered separately).
        read: Option<Box<LExpr>>,
        write: LTarget,
        value: Box<LExpr>,
    },
    Cond(Box<LExpr>, Box<LExpr>, Box<LExpr>),
    Cast {
        ty: Rc<TypeSlot>,
        x: Box<LExpr>,
    },
    Instanceof {
        x: Box<LExpr>,
        ty: Rc<TypeSlot>,
    },
    Call {
        callee: LCallee,
        args: Vec<LExpr>,
        site: CallSite,
    },
    /// `ExprKind::ClassRef` — a strict class reference by fully qualified
    /// name.
    ClassRefName(Symbol),
}

/// What is left of `(` in a lowered call.
pub enum LCallee {
    /// `recv.name(...)`.
    Recv(Box<LExpr>, Symbol),
    /// `super.name(...)`.
    Super(Symbol),
    /// `name(...)` — implicit `this` or static context.
    Implicit(Symbol),
}

/// A lowered assignment target.
pub enum LTarget {
    Local(u32),
    EnvName(Symbol, Span),
    Field {
        target: Box<LExpr>,
        name: Symbol,
        span: Span,
    },
    Array {
        arr: Box<LExpr>,
        idx: Box<LExpr>,
        span: Span,
    },
    /// Legacy reports "invalid assignment target" at run time.
    Invalid(Span),
}

// ---- per-site caches ---------------------------------------------------------

/// Epoch+class guard key. Class `None` (no enclosing class) maps to 0.
pub(crate) fn class_key(class: Option<maya_types::ClassId>) -> u64 {
    match class {
        Some(c) => u64::from(c.0) + 1,
        None => 0,
    }
}

/// A memoized type-name resolution, keyed by (epoch, enclosing class).
/// Resolution failures are never cached (they re-raise identically).
pub struct TypeSlot {
    pub tn: TypeName,
    guard: Cell<(u64, u64)>,
    cached: RefCell<Option<Type>>,
}

impl TypeSlot {
    pub(crate) fn new(tn: TypeName) -> Rc<TypeSlot> {
        Rc::new(TypeSlot {
            tn,
            guard: Cell::new((0, u64::MAX)),
            cached: RefCell::new(None),
        })
    }

    /// The cached resolution under `(epoch, class)`, if filled.
    pub fn get(&self, epoch: u64, class: u64) -> Option<Type> {
        if self.guard.get() == (epoch, class) {
            return self.cached.borrow().clone();
        }
        None
    }

    /// Fills the cache for `(epoch, class)`.
    pub fn fill(&self, epoch: u64, class: u64, ty: Type) {
        self.guard.set((epoch, class));
        *self.cached.borrow_mut() = Some(ty);
    }
}

/// A monomorphic inline cache for one call site: the selected method for a
/// single receiver class, guarded by (epoch, class).  Filled only when the
/// method is the *sole* candidate at the call's arity, and re-verified
/// against the actual argument types on every hit (dynamic values may
/// violate static types), so the fast path can never select differently
/// from the full search.
pub struct CallSite {
    guard: Cell<(u64, u64)>,
    target: RefCell<Option<Rc<maya_types::MethodInfo>>>,
    /// The cached target's lowered body, so a verified hit can jump
    /// straight into lowered execution without re-probing the per-body
    /// memo.  Reset by [`CallSite::fill`], so it can never outlive the
    /// target it was derived from.
    lowered: RefCell<Option<Rc<LoweredBody>>>,
    /// Exactness cache: the [`ArgKey`]s of the last *verified* hit's
    /// arguments.  If the current arguments have identical keys, their
    /// runtime types are identical too, so the per-argument assignability
    /// re-check would return the same verdict and can be skipped.  Reset
    /// by [`CallSite::fill`] (a new target invalidates old verdicts).
    exact: RefCell<Box<[ArgKey]>>,
}

/// A compact classification of a runtime argument, precise enough that two
/// arguments with equal non-[`ArgKey::Other`] keys are guaranteed to have
/// the same [`Value::runtime_type`].  `Other` (arrays, natives) never
/// matches, so such arguments always take the full re-verification path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgKey {
    Null,
    Prim(PrimKind),
    Str,
    Class(maya_types::ClassId),
    Other,
}

impl ArgKey {
    /// Classifies a runtime value.
    pub fn of(v: &Value) -> ArgKey {
        match v {
            Value::Null => ArgKey::Null,
            Value::Bool(_) => ArgKey::Prim(PrimKind::Boolean),
            Value::Char(_) => ArgKey::Prim(PrimKind::Char),
            Value::Int(_) => ArgKey::Prim(PrimKind::Int),
            Value::Long(_) => ArgKey::Prim(PrimKind::Long),
            Value::Float(_) => ArgKey::Prim(PrimKind::Float),
            Value::Double(_) => ArgKey::Prim(PrimKind::Double),
            Value::Str(_) => ArgKey::Str,
            Value::Object(o) => ArgKey::Class(o.class),
            _ => ArgKey::Other,
        }
    }

    /// Whether `v` is classified by this key.  `Other` matches nothing.
    pub fn matches(&self, v: &Value) -> bool {
        !matches!(self, ArgKey::Other) && *self == ArgKey::of(v)
    }
}

impl CallSite {
    pub(crate) fn new() -> CallSite {
        CallSite {
            guard: Cell::new((0, u64::MAX)),
            target: RefCell::new(None),
            lowered: RefCell::new(None),
            exact: RefCell::new(Box::from([])),
        }
    }

    /// The cached method when the guard matches.
    pub fn get(&self, epoch: u64, class: u64) -> Option<Rc<maya_types::MethodInfo>> {
        if self.guard.get() == (epoch, class) {
            return self.target.borrow().clone();
        }
        None
    }

    /// Caches `m` for `(epoch, class)`.
    pub fn fill(&self, epoch: u64, class: u64, m: Rc<maya_types::MethodInfo>) {
        self.guard.set((epoch, class));
        *self.target.borrow_mut() = Some(m);
        *self.lowered.borrow_mut() = None;
        *self.exact.borrow_mut() = Box::from([]);
    }

    /// Whether `args` match the last verified hit's argument keys exactly.
    /// Only meaningful right after [`CallSite::get`] returned a target.
    pub fn exact_hit(&self, args: &[Value]) -> bool {
        let keys = self.exact.borrow();
        keys.len() == args.len() && keys.iter().zip(args).all(|(k, a)| k.matches(a))
    }

    /// Records the keys of a freshly verified hit's arguments.
    pub fn note_exact(&self, args: &[Value]) {
        *self.exact.borrow_mut() = args.iter().map(ArgKey::of).collect();
    }

    /// The cached target's lowered body.  Only meaningful right after
    /// [`CallSite::get`] returned a verified target.
    pub fn lowered_body(&self) -> Option<Rc<LoweredBody>> {
        self.lowered.borrow().clone()
    }

    /// Remembers `m`'s lowered body — but only if `m` is still the cached
    /// target.  The caller derives `lb` *after* invoking `m`, and a
    /// recursive call through this same site may have re-filled it with a
    /// different target in between; pairing that target with `m`'s body
    /// would execute the wrong method on later hits.
    pub fn set_lowered(&self, m: &Rc<maya_types::MethodInfo>, lb: Rc<LoweredBody>) {
        if self
            .target
            .borrow()
            .as_ref()
            .is_some_and(|t| Rc::ptr_eq(t, m))
        {
            *self.lowered.borrow_mut() = Some(lb);
        }
    }
}

/// A monomorphic field-offset cache, guarded by the identity of the
/// receiver's [`crate::FieldLayout`].  An object's layout never changes
/// after construction (class mutation only gives *new* instances a new
/// layout), so layout identity is a sound guard with no epoch check.
pub struct FieldSite {
    layout: Cell<usize>,
    offset: Cell<u32>,
}

impl FieldSite {
    pub(crate) fn new() -> FieldSite {
        FieldSite {
            layout: Cell::new(0),
            offset: Cell::new(0),
        }
    }

    /// The cached offset when this site last saw the layout at `layout_ptr`.
    pub fn get(&self, layout_ptr: usize) -> Option<u32> {
        if layout_ptr != 0 && self.layout.get() == layout_ptr {
            return Some(self.offset.get());
        }
        None
    }

    /// Caches `offset` for the layout at `layout_ptr`.
    pub fn fill(&self, layout_ptr: usize, offset: u32) {
        self.layout.set(layout_ptr);
        self.offset.set(offset);
    }
}

// ---- the shared store --------------------------------------------------------

thread_local! {
    static BODY_DISK: RefCell<Option<Rc<dyn BodyDisk>>> = const { RefCell::new(None) };
}

/// The persistent layer behind the in-session [`LowerStore`]. The interp
/// crate only defines the interface; `maya-core`'s artifact store
/// implements it (file layout, checksums, atomic writes, eviction) and
/// installs itself per thread. Payloads are produced by this module's body
/// codec; `load` returns a payload previously passed to `save` under the
/// same key, or `None` on any miss or corruption.
pub trait BodyDisk {
    /// The stored payload for `key`, if present and intact.
    fn load(&self, key: u128) -> Option<Vec<u8>>;
    /// Persists `payload` under `key`. Failures are silent.
    fn save(&self, key: u128, payload: &[u8]);
}

/// Installs (or clears) this thread's persistent lowered-body layer.
pub fn set_body_disk(disk: Option<Rc<dyn BodyDisk>>) {
    BODY_DISK.with(|d| *d.borrow_mut() = disk);
}

/// The on-disk key for a lowered body: the structural fingerprint with the
/// parameter names folded in (slot assignment depends on them). Parameter
/// text — never interner indices — keeps the key stable across processes.
fn body_disk_key(fp: u128, params: &[Symbol]) -> u128 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a = 0xcbf2_9ce4_8422_2325u64;
    let mut b = 0x6c62_272e_07bb_0142u64;
    let mut eat = |bytes: &[u8]| {
        for &x in bytes {
            a = (a ^ u64::from(x)).wrapping_mul(PRIME);
            b = (b ^ u64::from(x.rotate_left(3))).wrapping_mul(PRIME);
        }
    };
    eat(&fp.to_le_bytes());
    eat(&(params.len() as u32).to_le_bytes());
    for p in params {
        let s = p.as_str();
        eat(&(s.len() as u32).to_le_bytes());
        eat(s.as_bytes());
    }
    (u128::from(a) << 64) | u128::from(b)
}

/// Session-wide memo of lowered bodies, keyed by the body's structural
/// fingerprint plus its parameter names (slot assignment depends on them).
/// `None` records the *unlowerable* verdict so it is not re-derived.
/// Held in the session force cache so warm `mayad` runs reuse lowered code
/// across compilers. When a persistent layer is installed
/// ([`set_body_disk`]), memo misses probe it and fresh outcomes are saved
/// to it — a cold process with a warm store skips lowering *and* the cold
/// bytecode compile.
#[derive(Default)]
pub struct LowerStore {
    map: RefCell<HashMap<(u128, Box<[Symbol]>), Option<Rc<LoweredBody>>>>,
}

impl LowerStore {
    /// An empty store.
    pub fn new() -> LowerStore {
        LowerStore::default()
    }

    /// Looks up a memoized outcome, falling back to the persistent layer.
    pub fn get(&self, fp: u128, params: &[Symbol]) -> Option<Option<Rc<LoweredBody>>> {
        let hit = self
            .map
            .borrow()
            .get(&(fp, params.to_vec().into_boxed_slice()))
            .cloned();
        if hit.is_some() {
            telemetry::cache_hit(telemetry::CacheId::LowerStore);
            return hit;
        }
        telemetry::cache_miss(telemetry::CacheId::LowerStore);
        let disk = BODY_DISK.with(|d| d.borrow().clone());
        if let Some(disk) = &disk {
            if let Some(outcome) = disk
                .load(body_disk_key(fp, params))
                .and_then(|payload| decode_outcome(&payload))
            {
                // Hydrated entries go straight into the memo (not through
                // `insert`) so they are never written back to the store.
                self.map
                    .borrow_mut()
                    .insert((fp, params.to_vec().into_boxed_slice()), outcome.clone());
                telemetry::cache_sized(telemetry::CacheId::LowerStore, self.map.borrow().len());
                return Some(outcome);
            }
        }
        None
    }

    /// Records a freshly derived outcome (and persists it, when a disk
    /// layer is installed).
    pub fn insert(&self, fp: u128, params: &[Symbol], outcome: Option<Rc<LoweredBody>>) {
        self.map
            .borrow_mut()
            .insert((fp, params.to_vec().into_boxed_slice()), outcome.clone());
        telemetry::cache_sized(telemetry::CacheId::LowerStore, self.map.borrow().len());
        let disk = BODY_DISK.with(|d| d.borrow().clone());
        if let Some(disk) = &disk {
            if let Some(payload) = encode_outcome(&outcome) {
                disk.save(body_disk_key(fp, params), &payload);
            }
        }
    }

    /// Number of memoized bodies.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }
}

/// Fingerprints a body block for the shared store (None: no stable shape).
pub fn body_fingerprint(block: &Block) -> Option<u128> {
    fingerprint_block(block)
}

// ---- the body codec ----------------------------------------------------------
//
// Serializes a [`LowerStore`] outcome — the *unlowerable* verdict or a
// full [`LoweredBody`] plus its cold bytecode — for the persistent
// artifact store. Soundness rests on the key: `fingerprint_block` hashes
// every statement, expression, operator, literal, name *and span*, and the
// disk key folds in the parameter names, so an equal key implies an AST
// for which `lower_body` (a pure function) would produce exactly this
// output. Site caches ([`CallSite`], [`FieldSite`], [`TypeSlot`]) hold
// only process-local runtime state and are recreated empty on decode.

/// Bumped whenever the encoded body layout changes (including the
/// bytecode section in `bytecode.rs` and the token codes it references).
const BODY_PAYLOAD_VERSION: u32 = 1;

use crate::codec::{
    binop_code, binop_from, incdec_code, incdec_from, prim_code, prim_from, unop_code, unop_from,
    R, W,
};

/// Encodes a lowering outcome, or `None` when it contains something the
/// codec cannot represent (which simply skips persisting this body). For
/// lowerable bodies the cold bytecode is compiled eagerly (it would be
/// compiled on first execution anyway) so a warm-store hit skips the
/// bytecode tier's compile as well.
pub(crate) fn encode_outcome(outcome: &Option<Rc<LoweredBody>>) -> Option<Vec<u8>> {
    let mut w = W::new();
    w.u32(BODY_PAYLOAD_VERSION);
    match outcome {
        None => w.u8(0),
        Some(lb) => {
            w.u8(1);
            w.u32(u32::try_from(lb.n_params).ok()?);
            w.u32(u32::try_from(lb.n_slots).ok()?);
            w.len(lb.code.len())?;
            for s in &lb.code {
                enc_stmt(&mut w, s)?;
            }
            match crate::bytecode::bc_of(lb) {
                Some(bc) => {
                    w.u8(1);
                    crate::bytecode::encode_bc(&mut w, &bc)?;
                }
                None => w.u8(2), // Unsupported verdict: skip recompiling.
            }
        }
    }
    Some(w.buf)
}

/// Decodes a lowering outcome. Outer `None` = corrupt/stale payload (a
/// miss); inner `None` = the memoized *unlowerable* verdict.
pub(crate) fn decode_outcome(bytes: &[u8]) -> Option<Option<Rc<LoweredBody>>> {
    let mut r = R::new(bytes);
    if r.u32()? != BODY_PAYLOAD_VERSION {
        return None;
    }
    let out = match r.u8()? {
        0 => None,
        1 => {
            let n_params = r.u32()? as usize;
            let n_slots = r.u32()? as usize;
            let n = r.len()?;
            let mut code = Vec::with_capacity(n);
            for _ in 0..n {
                code.push(dec_stmt(&mut r)?);
            }
            let bc = match r.u8()? {
                0 => crate::bytecode::BcState::Cold,
                1 => {
                    let bc = Rc::new(crate::bytecode::decode_bc(&mut r)?);
                    crate::bytecode::BcState::Ready {
                        bc,
                        execs: Cell::new(0),
                        refined: Cell::new(false),
                    }
                }
                2 => crate::bytecode::BcState::Unsupported,
                _ => return None,
            };
            Some(Rc::new(LoweredBody {
                n_params,
                n_slots,
                code,
                bc: RefCell::new(bc),
            }))
        }
        _ => return None,
    };
    if !r.done() {
        return None; // trailing garbage: treat as corrupt
    }
    Some(out)
}

pub(crate) fn enc_tn(w: &mut W, tn: &TypeName) -> Option<()> {
    w.span(tn.span);
    match &tn.kind {
        TypeNameKind::Prim(p) => {
            w.u8(0);
            w.u8(prim_code(*p));
        }
        TypeNameKind::Void => w.u8(1),
        TypeNameKind::Named(ids) => {
            w.u8(2);
            w.len(ids.len())?;
            for id in ids {
                w.sym(id.sym)?;
                w.span(id.span);
            }
        }
        TypeNameKind::Array(inner) => {
            w.u8(3);
            enc_tn(w, inner)?;
        }
        TypeNameKind::Strict(s) => {
            w.u8(4);
            w.sym(*s)?;
        }
    }
    Some(())
}

pub(crate) fn dec_tn(r: &mut R) -> Option<TypeName> {
    let span = r.span()?;
    let kind = match r.u8()? {
        0 => TypeNameKind::Prim(prim_from(r.u8()?)?),
        1 => TypeNameKind::Void,
        2 => {
            let n = r.len()?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                let sym = r.sym()?;
                let span = r.span()?;
                ids.push(maya_ast::Ident { sym, span });
            }
            TypeNameKind::Named(ids)
        }
        3 => TypeNameKind::Array(Box::new(dec_tn(r)?)),
        4 => TypeNameKind::Strict(r.sym()?),
        _ => return None,
    };
    Some(TypeName { span, kind })
}

fn enc_ty(w: &mut W, ty: &TypeSlot) -> Option<()> {
    enc_tn(w, &ty.tn)
}

fn dec_ty(r: &mut R) -> Option<Rc<TypeSlot>> {
    Some(TypeSlot::new(dec_tn(r)?))
}

fn enc_opt_expr(w: &mut W, e: &Option<LExpr>) -> Option<()> {
    match e {
        None => w.u8(0),
        Some(e) => {
            w.u8(1);
            enc_expr(w, e)?;
        }
    }
    Some(())
}

fn dec_opt_expr(r: &mut R) -> Option<Option<LExpr>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(dec_expr(r)?)),
        _ => None,
    }
}

fn enc_stmts(w: &mut W, stmts: &[LStmt]) -> Option<()> {
    w.len(stmts.len())?;
    for s in stmts {
        enc_stmt(w, s)?;
    }
    Some(())
}

fn dec_stmts(r: &mut R) -> Option<Vec<LStmt>> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_stmt(r)?);
    }
    Some(out)
}

fn enc_stmt(w: &mut W, s: &LStmt) -> Option<()> {
    w.span(s.span);
    match &s.kind {
        LStmtKind::Block(stmts) => {
            w.u8(0);
            enc_stmts(w, stmts)?;
        }
        LStmtKind::Expr(e) => {
            w.u8(1);
            enc_expr(w, e)?;
        }
        LStmtKind::Decl { ty, decls } => {
            w.u8(2);
            enc_ty(w, ty)?;
            w.len(decls.len())?;
            for d in decls {
                w.u32(d.slot);
                w.u32(d.dims);
                enc_opt_expr(w, &d.init)?;
            }
        }
        LStmtKind::If(c, t, f) => {
            w.u8(3);
            enc_expr(w, c)?;
            enc_stmt(w, t)?;
            match f {
                None => w.u8(0),
                Some(f) => {
                    w.u8(1);
                    enc_stmt(w, f)?;
                }
            }
        }
        LStmtKind::While(c, body) => {
            w.u8(4);
            enc_expr(w, c)?;
            enc_stmt(w, body)?;
        }
        LStmtKind::Do(body, c) => {
            w.u8(5);
            enc_stmt(w, body)?;
            enc_expr(w, c)?;
        }
        LStmtKind::For { init_decl, init_exprs, cond, update, body } => {
            w.u8(6);
            match init_decl {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    enc_stmt(w, d)?;
                }
            }
            w.len(init_exprs.len())?;
            for e in init_exprs {
                enc_expr(w, e)?;
            }
            enc_opt_expr(w, cond)?;
            w.len(update.len())?;
            for e in update {
                enc_expr(w, e)?;
            }
            enc_stmt(w, body)?;
        }
        LStmtKind::Return(e) => {
            w.u8(7);
            enc_opt_expr(w, e)?;
        }
        LStmtKind::Break => w.u8(8),
        LStmtKind::Continue => w.u8(9),
        LStmtKind::Throw(e) => {
            w.u8(10);
            enc_expr(w, e)?;
        }
        LStmtKind::Try { body, catches, finally } => {
            w.u8(11);
            enc_stmts(w, body)?;
            w.len(catches.len())?;
            for c in catches {
                enc_ty(w, &c.ty)?;
                w.u32(c.param_slot);
                enc_stmts(w, &c.body)?;
            }
            match finally {
                None => w.u8(0),
                Some(f) => {
                    w.u8(1);
                    enc_stmts(w, f)?;
                }
            }
        }
        LStmtKind::Empty => w.u8(12),
    }
    Some(())
}

fn dec_stmt(r: &mut R) -> Option<LStmt> {
    let span = r.span()?;
    let kind = match r.u8()? {
        0 => LStmtKind::Block(dec_stmts(r)?),
        1 => LStmtKind::Expr(dec_expr(r)?),
        2 => {
            let ty = dec_ty(r)?;
            let n = r.len()?;
            let mut decls = Vec::with_capacity(n);
            for _ in 0..n {
                let slot = r.u32()?;
                let dims = r.u32()?;
                let init = dec_opt_expr(r)?;
                decls.push(LDecl { slot, dims, init });
            }
            LStmtKind::Decl { ty, decls }
        }
        3 => {
            let c = dec_expr(r)?;
            let t = Box::new(dec_stmt(r)?);
            let f = match r.u8()? {
                0 => None,
                1 => Some(Box::new(dec_stmt(r)?)),
                _ => return None,
            };
            LStmtKind::If(c, t, f)
        }
        4 => {
            let c = dec_expr(r)?;
            LStmtKind::While(c, Box::new(dec_stmt(r)?))
        }
        5 => {
            let body = Box::new(dec_stmt(r)?);
            LStmtKind::Do(body, dec_expr(r)?)
        }
        6 => {
            let init_decl = match r.u8()? {
                0 => None,
                1 => Some(Box::new(dec_stmt(r)?)),
                _ => return None,
            };
            let n = r.len()?;
            let mut init_exprs = Vec::with_capacity(n);
            for _ in 0..n {
                init_exprs.push(dec_expr(r)?);
            }
            let cond = dec_opt_expr(r)?;
            let n = r.len()?;
            let mut update = Vec::with_capacity(n);
            for _ in 0..n {
                update.push(dec_expr(r)?);
            }
            let body = Box::new(dec_stmt(r)?);
            LStmtKind::For { init_decl, init_exprs, cond, update, body }
        }
        7 => LStmtKind::Return(dec_opt_expr(r)?),
        8 => LStmtKind::Break,
        9 => LStmtKind::Continue,
        10 => LStmtKind::Throw(dec_expr(r)?),
        11 => {
            let body = dec_stmts(r)?;
            let n = r.len()?;
            let mut catches = Vec::with_capacity(n);
            for _ in 0..n {
                let ty = dec_ty(r)?;
                let param_slot = r.u32()?;
                let body = dec_stmts(r)?;
                catches.push(LCatch { ty, param_slot, body });
            }
            let finally = match r.u8()? {
                0 => None,
                1 => Some(dec_stmts(r)?),
                _ => return None,
            };
            LStmtKind::Try { body, catches, finally }
        }
        12 => LStmtKind::Empty,
        _ => return None,
    };
    Some(LStmt { span, kind })
}

fn enc_target(w: &mut W, t: &LTarget) -> Option<()> {
    match t {
        LTarget::Local(slot) => {
            w.u8(0);
            w.u32(*slot);
        }
        LTarget::EnvName(name, span) => {
            w.u8(1);
            w.sym(*name)?;
            w.span(*span);
        }
        LTarget::Field { target, name, span } => {
            w.u8(2);
            enc_expr(w, target)?;
            w.sym(*name)?;
            w.span(*span);
        }
        LTarget::Array { arr, idx, span } => {
            w.u8(3);
            enc_expr(w, arr)?;
            enc_expr(w, idx)?;
            w.span(*span);
        }
        LTarget::Invalid(span) => {
            w.u8(4);
            w.span(*span);
        }
    }
    Some(())
}

fn dec_target(r: &mut R) -> Option<LTarget> {
    Some(match r.u8()? {
        0 => LTarget::Local(r.u32()?),
        1 => {
            let name = r.sym()?;
            LTarget::EnvName(name, r.span()?)
        }
        2 => {
            let target = Box::new(dec_expr(r)?);
            let name = r.sym()?;
            LTarget::Field { target, name, span: r.span()? }
        }
        3 => {
            let arr = Box::new(dec_expr(r)?);
            let idx = Box::new(dec_expr(r)?);
            LTarget::Array { arr, idx, span: r.span()? }
        }
        4 => LTarget::Invalid(r.span()?),
        _ => return None,
    })
}

fn enc_expr(w: &mut W, e: &LExpr) -> Option<()> {
    w.span(e.span);
    match &e.kind {
        LExprKind::Const(v) => {
            w.u8(0);
            w.value(v)?;
        }
        LExprKind::Local(slot) => {
            w.u8(1);
            w.u32(*slot);
        }
        LExprKind::EnvName(name) => {
            w.u8(2);
            w.sym(*name)?;
        }
        LExprKind::This => w.u8(3),
        // Per-site caches (`site`) hold process-local runtime state only;
        // the decoder recreates them empty.
        LExprKind::FieldGet { target, name, site: _ } => {
            w.u8(4);
            enc_expr(w, target)?;
            w.sym(*name)?;
        }
        LExprKind::ArrayGet(arr, idx) => {
            w.u8(5);
            enc_expr(w, arr)?;
            enc_expr(w, idx)?;
        }
        LExprKind::New { ty, args } => {
            w.u8(6);
            enc_ty(w, ty)?;
            w.len(args.len())?;
            for a in args {
                enc_expr(w, a)?;
            }
        }
        LExprKind::NewArray { elem, extra_dims, dims } => {
            w.u8(7);
            enc_ty(w, elem)?;
            w.u32(*extra_dims);
            w.len(dims.len())?;
            for d in dims {
                enc_expr(w, d)?;
            }
        }
        LExprKind::Binary(op, l, x) => {
            w.u8(8);
            w.u8(binop_code(*op));
            enc_expr(w, l)?;
            enc_expr(w, x)?;
        }
        LExprKind::Unary(op, x) => {
            w.u8(9);
            w.u8(unop_code(*op));
            enc_expr(w, x)?;
        }
        LExprKind::IncDec { op, prefix, read, write } => {
            w.u8(10);
            w.u8(incdec_code(*op));
            w.bool(*prefix);
            enc_expr(w, read)?;
            enc_target(w, write)?;
        }
        LExprKind::Assign { op, read, write, value } => {
            w.u8(11);
            match op {
                None => w.u8(0),
                Some(op) => {
                    w.u8(1);
                    w.u8(binop_code(*op));
                }
            }
            match read {
                None => w.u8(0),
                Some(e) => {
                    w.u8(1);
                    enc_expr(w, e)?;
                }
            }
            enc_target(w, write)?;
            enc_expr(w, value)?;
        }
        LExprKind::Cond(c, t, f) => {
            w.u8(12);
            enc_expr(w, c)?;
            enc_expr(w, t)?;
            enc_expr(w, f)?;
        }
        LExprKind::Cast { ty, x } => {
            w.u8(13);
            enc_ty(w, ty)?;
            enc_expr(w, x)?;
        }
        LExprKind::Instanceof { x, ty } => {
            w.u8(14);
            enc_expr(w, x)?;
            enc_ty(w, ty)?;
        }
        LExprKind::Call { callee, args, site: _ } => {
            w.u8(15);
            match callee {
                LCallee::Recv(recv, name) => {
                    w.u8(0);
                    enc_expr(w, recv)?;
                    w.sym(*name)?;
                }
                LCallee::Super(name) => {
                    w.u8(1);
                    w.sym(*name)?;
                }
                LCallee::Implicit(name) => {
                    w.u8(2);
                    w.sym(*name)?;
                }
            }
            w.len(args.len())?;
            for a in args {
                enc_expr(w, a)?;
            }
        }
        LExprKind::ClassRefName(fqcn) => {
            w.u8(16);
            w.sym(*fqcn)?;
        }
    }
    Some(())
}

fn dec_expr(r: &mut R) -> Option<LExpr> {
    let span = r.span()?;
    let kind = match r.u8()? {
        0 => LExprKind::Const(r.value()?),
        1 => LExprKind::Local(r.u32()?),
        2 => LExprKind::EnvName(r.sym()?),
        3 => LExprKind::This,
        4 => {
            let target = Box::new(dec_expr(r)?);
            LExprKind::FieldGet { target, name: r.sym()?, site: FieldSite::new() }
        }
        5 => {
            let arr = Box::new(dec_expr(r)?);
            LExprKind::ArrayGet(arr, Box::new(dec_expr(r)?))
        }
        6 => {
            let ty = dec_ty(r)?;
            let n = r.len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(dec_expr(r)?);
            }
            LExprKind::New { ty, args }
        }
        7 => {
            let elem = dec_ty(r)?;
            let extra_dims = r.u32()?;
            let n = r.len()?;
            let mut dims = Vec::with_capacity(n);
            for _ in 0..n {
                dims.push(dec_expr(r)?);
            }
            LExprKind::NewArray { elem, extra_dims, dims }
        }
        8 => {
            let op = binop_from(r.u8()?)?;
            let l = Box::new(dec_expr(r)?);
            LExprKind::Binary(op, l, Box::new(dec_expr(r)?))
        }
        9 => {
            let op = unop_from(r.u8()?)?;
            LExprKind::Unary(op, Box::new(dec_expr(r)?))
        }
        10 => {
            let op = incdec_from(r.u8()?)?;
            let prefix = r.bool()?;
            let read = Box::new(dec_expr(r)?);
            LExprKind::IncDec { op, prefix, read, write: dec_target(r)? }
        }
        11 => {
            let op = match r.u8()? {
                0 => None,
                1 => Some(binop_from(r.u8()?)?),
                _ => return None,
            };
            let read = match r.u8()? {
                0 => None,
                1 => Some(Box::new(dec_expr(r)?)),
                _ => return None,
            };
            let write = dec_target(r)?;
            LExprKind::Assign { op, read, write, value: Box::new(dec_expr(r)?) }
        }
        12 => {
            let c = Box::new(dec_expr(r)?);
            let t = Box::new(dec_expr(r)?);
            LExprKind::Cond(c, t, Box::new(dec_expr(r)?))
        }
        13 => {
            let ty = dec_ty(r)?;
            LExprKind::Cast { ty, x: Box::new(dec_expr(r)?) }
        }
        14 => {
            let x = Box::new(dec_expr(r)?);
            LExprKind::Instanceof { x, ty: dec_ty(r)? }
        }
        15 => {
            let callee = match r.u8()? {
                0 => {
                    let recv = Box::new(dec_expr(r)?);
                    LCallee::Recv(recv, r.sym()?)
                }
                1 => LCallee::Super(r.sym()?),
                2 => LCallee::Implicit(r.sym()?),
                _ => return None,
            };
            let n = r.len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(dec_expr(r)?);
            }
            LExprKind::Call { callee, args, site: CallSite::new() }
        }
        16 => LExprKind::ClassRefName(r.sym()?),
        _ => return None,
    };
    Some(LExpr { span, kind })
}

// ---- the lowerer -------------------------------------------------------------

/// The body contains syntax the lowerer cannot handle (lazy nodes,
/// templates, poison nodes); it will run on the legacy tree-walker.
pub(crate) struct Unlowerable;

type Lower<T> = Result<T, Unlowerable>;

/// Lowers a body block.  Pure: depends only on the AST and `params`.
pub(crate) fn lower_body(block: &Block, params: &[Symbol]) -> Result<LoweredBody, Unlowerable> {
    let mut lw = Lowerer::new(params);
    let code = lw.stmts(&block.stmts)?;
    maya_telemetry::add(maya_telemetry::Counter::SlotsResolved, lw.slots_resolved);
    maya_telemetry::add(maya_telemetry::Counter::ConstsFolded, lw.consts_folded);
    Ok(LoweredBody {
        n_params: params.len(),
        n_slots: lw.next_slot as usize,
        code,
        bc: RefCell::new(crate::bytecode::BcState::Cold),
    })
}

struct Lowerer {
    /// Lexical scopes of (name → slot); innermost last.  Parameters live in
    /// the outermost scope, like the legacy frame's single starting scope.
    scopes: Vec<Vec<(Symbol, u32)>>,
    /// Monotonic; slots are never reused, so a frame is one flat `Vec`.
    next_slot: u32,
    slots_resolved: u64,
    consts_folded: u64,
}

impl Lowerer {
    fn new(params: &[Symbol]) -> Lowerer {
        let mut lw = Lowerer {
            scopes: vec![Vec::new()],
            next_slot: 0,
            slots_resolved: 0,
            consts_folded: 0,
        };
        for p in params {
            let slot = lw.next_slot;
            lw.next_slot += 1;
            lw.scopes[0].push((*p, slot));
        }
        lw
    }

    fn push(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    /// Declares a fresh slot for `name` in the innermost scope.  A
    /// redeclaration in the same scope gets a new slot; later references
    /// resolve to it, which observes identically to the legacy HashMap
    /// overwrite.
    fn declare(&mut self, name: Symbol) -> u32 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.scopes
            .last_mut()
            .expect("lowerer has a scope")
            .push((name, slot));
        slot
    }

    fn resolve(&mut self, name: Symbol) -> Option<u32> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, slot)) = scope.iter().rev().find(|(n, _)| *n == name) {
                self.slots_resolved += 1;
                return Some(*slot);
            }
        }
        None
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Lower<Vec<LStmt>> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    /// Lowers a block with its own scope.
    fn block(&mut self, stmts: &[Stmt]) -> Lower<Vec<LStmt>> {
        self.push();
        let r = self.stmts(stmts);
        self.pop();
        r
    }

    fn stmt(&mut self, s: &Stmt) -> Lower<LStmt> {
        let kind = match &s.kind {
            StmtKind::Block(b) => LStmtKind::Block(self.block(&b.stmts)?),
            StmtKind::Expr(e) => LStmtKind::Expr(self.expr(e)?),
            StmtKind::Decl(tn, decls) => self.decl(tn, decls)?,
            StmtKind::If(c, t, f) => LStmtKind::If(
                self.expr(c)?,
                Box::new(self.stmt(t)?),
                match f {
                    Some(f) => Some(Box::new(self.stmt(f)?)),
                    None => None,
                },
            ),
            StmtKind::While(c, body) => {
                LStmtKind::While(self.expr(c)?, Box::new(self.stmt(body)?))
            }
            StmtKind::Do(body, c) => LStmtKind::Do(Box::new(self.stmt(body)?), self.expr(c)?),
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                self.push();
                let r = (|| {
                    let (init_decl, init_exprs) = match init {
                        ForInit::None => (None, Vec::new()),
                        ForInit::Decl(tn, decls) => {
                            // Legacy synthesizes a dummy-span Decl statement
                            // and executes it (one step charged).
                            let kind = self.decl(tn, decls)?;
                            (
                                Some(Box::new(LStmt {
                                    span: Span::DUMMY,
                                    kind,
                                })),
                                Vec::new(),
                            )
                        }
                        ForInit::Exprs(es) => {
                            (None, es.iter().map(|e| self.expr(e)).collect::<Lower<_>>()?)
                        }
                    };
                    let cond = match cond {
                        Some(c) => Some(self.expr(c)?),
                        None => None,
                    };
                    let update = update.iter().map(|u| self.expr(u)).collect::<Lower<_>>()?;
                    let body = Box::new(self.stmt(body)?);
                    Ok(LStmtKind::For {
                        init_decl,
                        init_exprs,
                        cond,
                        update,
                        body,
                    })
                })();
                self.pop();
                r?
            }
            StmtKind::Return(e) => LStmtKind::Return(match e {
                Some(e) => Some(self.expr(e)?),
                None => None,
            }),
            StmtKind::Break => LStmtKind::Break,
            StmtKind::Continue => LStmtKind::Continue,
            StmtKind::Throw(e) => LStmtKind::Throw(self.expr(e)?),
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                let body = self.block(&body.stmts)?;
                let mut lcatches = Vec::with_capacity(catches.len());
                for c in catches {
                    self.push();
                    let r = (|| {
                        let param_slot = self.declare(c.param.name.sym);
                        let body = self.stmts(&c.body.stmts)?;
                        Ok(LCatch {
                            ty: TypeSlot::new(c.param.ty.clone()),
                            param_slot,
                            body,
                        })
                    })();
                    self.pop();
                    lcatches.push(r?);
                }
                let finally = match finally {
                    Some(f) => Some(self.block(&f.stmts)?),
                    None => None,
                };
                LStmtKind::Try {
                    body,
                    catches: lcatches,
                    finally,
                }
            }
            // Imports are compile-time; at runtime `use` is just a scope.
            StmtKind::Use(_, body) => LStmtKind::Block(self.block(&body.stmts)?),
            StmtKind::Empty => LStmtKind::Empty,
            StmtKind::Lazy(_) | StmtKind::Error => return Err(Unlowerable),
        };
        Ok(LStmt { span: s.span, kind })
    }

    fn decl(&mut self, tn: &TypeName, decls: &[maya_ast::LocalDeclarator]) -> Lower<LStmtKind> {
        let ty = TypeSlot::new(tn.clone());
        let mut out = Vec::with_capacity(decls.len());
        for d in decls {
            // The initializer is lowered *before* the name is bound, so
            // `int x = x;` resolves the right-hand `x` to the outer
            // binding (or the environment), exactly like the legacy
            // eval-then-declare order.
            let init = match &d.init {
                Some(e) => Some(self.expr(e)?),
                None => None,
            };
            let slot = self.declare(d.name.sym);
            out.push(LDecl {
                slot,
                dims: d.dims,
                init,
            });
        }
        Ok(LStmtKind::Decl { ty, decls: out })
    }

    fn expr(&mut self, e: &Expr) -> Lower<LExpr> {
        let kind = match &e.kind {
            ExprKind::Literal(l) => LExprKind::Const(lit_value(l)),
            ExprKind::Name(id) => self.name(id.sym),
            ExprKind::VarRef(name) => self.name(*name),
            ExprKind::ClassRef(fqcn) => LExprKind::ClassRefName(*fqcn),
            ExprKind::FieldAccess(target, name) => LExprKind::FieldGet {
                target: Box::new(self.expr(target)?),
                name: name.sym,
                site: FieldSite::new(),
            },
            ExprKind::Call(mn, args) => self.call(mn, args)?,
            ExprKind::ArrayAccess(a, i) => {
                LExprKind::ArrayGet(Box::new(self.expr(a)?), Box::new(self.expr(i)?))
            }
            ExprKind::New(tn, args) => LExprKind::New {
                ty: TypeSlot::new(tn.clone()),
                args: args.iter().map(|a| self.expr(a)).collect::<Lower<_>>()?,
            },
            ExprKind::NewArray {
                elem,
                dims,
                extra_dims,
            } => LExprKind::NewArray {
                elem: TypeSlot::new(elem.clone()),
                extra_dims: *extra_dims,
                dims: dims.iter().map(|d| self.expr(d)).collect::<Lower<_>>()?,
            },
            ExprKind::Binary(op, l, r) => {
                let l = self.expr(l)?;
                let r = self.expr(r)?;
                match fold_binary(*op, &l, &r) {
                    Some(v) => {
                        self.consts_folded += 1;
                        LExprKind::Const(v)
                    }
                    None => LExprKind::Binary(*op, Box::new(l), Box::new(r)),
                }
            }
            ExprKind::Unary(op, x) => {
                let x = self.expr(x)?;
                match fold_unary(*op, &x) {
                    Some(v) => {
                        self.consts_folded += 1;
                        LExprKind::Const(v)
                    }
                    None => LExprKind::Unary(*op, Box::new(x)),
                }
            }
            ExprKind::IncDec(op, prefix, x) => LExprKind::IncDec {
                op: *op,
                prefix: *prefix,
                read: Box::new(self.expr(x)?),
                write: self.target(x)?,
            },
            ExprKind::Assign(op, l, r) => {
                // Legacy order: evaluate the r-value, then (for compound
                // ops) the place as an r-value, then store — re-evaluating
                // the place's sub-expressions.
                let value = Box::new(self.expr(r)?);
                let read = match op {
                    Some(_) => Some(Box::new(self.expr(l)?)),
                    None => None,
                };
                let write = self.target(l)?;
                LExprKind::Assign {
                    op: *op,
                    read,
                    write,
                    value,
                }
            }
            ExprKind::Cond(c, t, f) => {
                let c = self.expr(c)?;
                let t = self.expr(t)?;
                let f = self.expr(f)?;
                // A constant condition has no effects; legacy evaluates it
                // and then exactly one branch.
                if let LExprKind::Const(Value::Bool(b)) = c.kind {
                    self.consts_folded += 1;
                    return Ok(if b { t } else { f });
                }
                LExprKind::Cond(Box::new(c), Box::new(t), Box::new(f))
            }
            ExprKind::Cast(tn, x) => {
                let x = self.expr(x)?;
                if let Some(v) = fold_cast(tn, &x) {
                    self.consts_folded += 1;
                    LExprKind::Const(v)
                } else {
                    LExprKind::Cast {
                        ty: TypeSlot::new(tn.clone()),
                        x: Box::new(x),
                    }
                }
            }
            ExprKind::Instanceof(x, tn) => {
                let x = self.expr(x)?;
                // `null instanceof T` is false for every T; no static type
                // info is available at lowering time, so only the null case
                // folds.
                if let LExprKind::Const(Value::Null) = x.kind {
                    self.consts_folded += 1;
                    LExprKind::Const(Value::Bool(false))
                } else {
                    LExprKind::Instanceof {
                        x: Box::new(x),
                        ty: TypeSlot::new(tn.clone()),
                    }
                }
            }
            ExprKind::This => LExprKind::This,
            ExprKind::Template(_) | ExprKind::Lazy(_) | ExprKind::TypeDims(_) => {
                return Err(Unlowerable)
            }
        };
        Ok(LExpr { span: e.span, kind })
    }

    fn name(&mut self, name: Symbol) -> LExprKind {
        match self.resolve(name) {
            Some(slot) => LExprKind::Local(slot),
            None => LExprKind::EnvName(name),
        }
    }

    fn call(&mut self, mn: &MethodName, args: &[Expr]) -> Lower<LExprKind> {
        // Legacy evaluates arguments first, then the receiver.
        let largs = args.iter().map(|a| self.expr(a)).collect::<Lower<_>>()?;
        let callee = if mn.super_recv {
            LCallee::Super(mn.name.sym)
        } else {
            match &mn.receiver {
                Some(recv) => LCallee::Recv(Box::new(self.expr(recv)?), mn.name.sym),
                None => LCallee::Implicit(mn.name.sym),
            }
        };
        Ok(LExprKind::Call {
            callee,
            args: largs,
            site: CallSite::new(),
        })
    }

    fn target(&mut self, e: &Expr) -> Lower<LTarget> {
        Ok(match &e.kind {
            ExprKind::Name(id) => match self.resolve(id.sym) {
                Some(slot) => LTarget::Local(slot),
                None => LTarget::EnvName(id.sym, e.span),
            },
            ExprKind::VarRef(name) => match self.resolve(*name) {
                Some(slot) => LTarget::Local(slot),
                None => LTarget::EnvName(*name, e.span),
            },
            ExprKind::FieldAccess(t, name) => LTarget::Field {
                target: Box::new(self.expr(t)?),
                name: name.sym,
                span: e.span,
            },
            ExprKind::ArrayAccess(a, i) => LTarget::Array {
                arr: Box::new(self.expr(a)?),
                idx: Box::new(self.expr(i)?),
                span: e.span,
            },
            ExprKind::Lazy(_) | ExprKind::Template(_) | ExprKind::TypeDims(_) => {
                return Err(Unlowerable)
            }
            _ => LTarget::Invalid(e.span),
        })
    }
}

// ---- constant folding --------------------------------------------------------

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Int(v) => Value::Int(*v),
        Lit::Long(v) => Value::Long(*v),
        Lit::Float(v) => Value::Float(*v),
        Lit::Double(v) => Value::Double(*v),
        Lit::Bool(v) => Value::Bool(*v),
        Lit::Char(c) => Value::Char(*c),
        Lit::Str(s) => Value::str(s.as_str()),
        Lit::Null => Value::Null,
    }
}

fn const_of(e: &LExpr) -> Option<&Value> {
    match &e.kind {
        LExprKind::Const(v) => Some(v),
        _ => None,
    }
}

/// Renders a constant the way `Interp::display` would.  Constants are
/// primitives, strings, or null, so no `toString` dispatch is possible.
fn display_const(v: &Value) -> Option<String> {
    Some(match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Char(c) => c.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Long(l) => l.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Double(d) => d.to_string(),
        Value::Str(s) => s.to_string(),
        _ => return None,
    })
}

fn is_num(v: &Value) -> bool {
    matches!(
        v,
        Value::Int(_) | Value::Long(_) | Value::Float(_) | Value::Double(_) | Value::Char(_)
    )
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Long(l) => *l as f64,
        Value::Float(f) => *f as f64,
        Value::Double(d) => *d,
        Value::Char(c) => *c as u32 as f64,
        _ => 0.0,
    }
}

fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i as i64,
        Value::Long(l) => *l,
        Value::Char(c) => *c as u32 as i64,
        Value::Float(f) => *f as i64,
        Value::Double(d) => *d as i64,
        _ => 0,
    }
}

/// Folds `l op r` when both sides are constants and the operation is
/// *infallible* — it can neither throw (integer `/ 0`) nor dispatch.  The
/// arithmetic mirrors `Interp::binary_values` exactly.
fn fold_binary(op: BinOp, le: &LExpr, re: &LExpr) -> Option<Value> {
    use BinOp::*;
    // Short-circuit folds that do not need the right side evaluated.
    if op == And {
        if let Some(Value::Bool(false)) = const_of(le) {
            return Some(Value::Bool(false));
        }
    }
    if op == Or {
        if let Some(Value::Bool(true)) = const_of(le) {
            return Some(Value::Bool(true));
        }
    }
    let lv = const_of(le)?;
    let rv = const_of(re)?;
    // String concatenation of constants.
    if op == Add && (matches!(lv, Value::Str(_)) || matches!(rv, Value::Str(_))) {
        let s = format!("{}{}", display_const(lv)?, display_const(rv)?);
        return Some(Value::str(&s));
    }
    if matches!(op, Eq | Ne) {
        let eq = if is_num(lv) && is_num(rv) {
            as_f64(lv) == as_f64(rv)
        } else {
            lv.ref_eq(rv)
        };
        return Some(Value::Bool(if op == Eq { eq } else { !eq }));
    }
    if let (Value::Bool(a), Value::Bool(b)) = (lv, rv) {
        return Some(Value::Bool(match op {
            BitAnd => a & b,
            BitOr => a | b,
            BitXor => a ^ b,
            And => *a && *b,
            Or => *a || *b,
            _ => return None,
        }));
    }
    if !is_num(lv) || !is_num(rv) {
        return None;
    }
    let rank = |v: &Value| match v {
        Value::Double(_) => 4,
        Value::Float(_) => 3,
        Value::Long(_) => 2,
        _ => 1,
    };
    let r = rank(lv).max(rank(rv));
    match r {
        4 | 3 => {
            let a = as_f64(lv);
            let b = as_f64(rv);
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Rem => a % b,
                Lt => return Some(Value::Bool(a < b)),
                Gt => return Some(Value::Bool(a > b)),
                Le => return Some(Value::Bool(a <= b)),
                Ge => return Some(Value::Bool(a >= b)),
                _ => return None,
            };
            Some(if r == 4 {
                Value::Double(out)
            } else {
                Value::Float(out as f32)
            })
        }
        2 => {
            let a = as_i64(lv);
            let b = as_i64(rv);
            Some(match op {
                Add => Value::Long(a.wrapping_add(b)),
                Sub => Value::Long(a.wrapping_sub(b)),
                Mul => Value::Long(a.wrapping_mul(b)),
                // Div/Rem can throw ArithmeticException — never folded.
                Shl => Value::Long(a.wrapping_shl(b as u32 & 63)),
                Shr => Value::Long(a.wrapping_shr(b as u32 & 63)),
                Ushr => Value::Long(((a as u64) >> (b as u32 & 63)) as i64),
                BitAnd => Value::Long(a & b),
                BitOr => Value::Long(a | b),
                BitXor => Value::Long(a ^ b),
                Lt => Value::Bool(a < b),
                Gt => Value::Bool(a > b),
                Le => Value::Bool(a <= b),
                Ge => Value::Bool(a >= b),
                _ => return None,
            })
        }
        _ => {
            let a = as_i64(lv) as i32;
            let b = as_i64(rv) as i32;
            Some(match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Shl => Value::Int(a.wrapping_shl(b as u32 & 31)),
                Shr => Value::Int(a.wrapping_shr(b as u32 & 31)),
                Ushr => Value::Int(((a as u32) >> (b as u32 & 31)) as i32),
                BitAnd => Value::Int(a & b),
                BitOr => Value::Int(a | b),
                BitXor => Value::Int(a ^ b),
                Lt => Value::Bool(a < b),
                Gt => Value::Bool(a > b),
                Le => Value::Bool(a <= b),
                Ge => Value::Bool(a >= b),
                _ => return None,
            })
        }
    }
}

/// Folds unary operators on matching constants (mirrors
/// `Interp::eval_unary`; invalid combinations stay for the runtime error).
fn fold_unary(op: UnOp, xe: &LExpr) -> Option<Value> {
    let v = const_of(xe)?;
    Some(match (op, v) {
        (UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
        (UnOp::Neg, Value::Long(l)) => Value::Long(l.wrapping_neg()),
        (UnOp::Neg, Value::Float(f)) => Value::Float(-f),
        (UnOp::Neg, Value::Double(d)) => Value::Double(-d),
        (UnOp::Plus, v @ (Value::Int(_) | Value::Long(_) | Value::Float(_) | Value::Double(_))) => {
            v.clone()
        }
        (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
        (UnOp::BitNot, Value::Int(i)) => Value::Int(!i),
        (UnOp::BitNot, Value::Long(l)) => Value::Long(!l),
        _ => return None,
    })
}

/// Folds primitive casts of numeric constants (mirrors `Interp::cast`).
/// Boolean targets error at runtime and reference targets need resolution,
/// so neither folds.
fn fold_cast(tn: &TypeName, xe: &LExpr) -> Option<Value> {
    let TypeNameKind::Prim(p) = &tn.kind else {
        return None;
    };
    let v = const_of(xe)?;
    let d = match v {
        Value::Int(i) => *i as f64,
        Value::Long(l) => *l as f64,
        Value::Float(f) => *f as f64,
        Value::Double(d) => *d,
        Value::Char(c) => *c as u32 as f64,
        _ => return None,
    };
    Some(match p {
        PrimKind::Byte => Value::Int(d as i64 as i8 as i32),
        PrimKind::Short => Value::Int(d as i64 as i16 as i32),
        PrimKind::Int => Value::Int(d as i64 as i32),
        PrimKind::Long => Value::Long(d as i64),
        PrimKind::Float => Value::Float(d as f32),
        PrimKind::Double => Value::Double(d),
        PrimKind::Char => Value::Char(char::from_u32((d as i64 as u32) & 0xFFFF).unwrap_or('\0')),
        PrimKind::Boolean => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_ast::Ident;
    use maya_lexer::sym;

    fn lower(stmts: Vec<Stmt>, params: &[&str]) -> LoweredBody {
        let params: Vec<Symbol> = params.iter().map(|p| sym(p)).collect();
        lower_body(&Block::synth(stmts), &params).ok().expect("lowerable")
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::synth(ExprKind::Binary(op, Box::new(l), Box::new(r)))
    }

    #[test]
    fn params_and_locals_get_slots() {
        let body = lower(
            vec![
                Stmt::synth(StmtKind::Decl(
                    TypeName::prim(PrimKind::Int),
                    vec![maya_ast::LocalDeclarator {
                        name: Ident::from_str("x"),
                        dims: 0,
                        init: Some(Expr::name("a")),
                    }],
                )),
                Stmt::expr(Expr::name("x")),
            ],
            &["a", "b"],
        );
        assert_eq!(body.n_params, 2);
        assert_eq!(body.n_slots, 3);
        // The init reads param slot 0; the statement reads local slot 2.
        let LStmtKind::Decl { decls, .. } = &body.code[0].kind else {
            panic!("decl");
        };
        assert_eq!(decls[0].slot, 2);
        assert!(matches!(
            decls[0].init.as_ref().unwrap().kind,
            LExprKind::Local(0)
        ));
        let LStmtKind::Expr(e) = &body.code[1].kind else {
            panic!("expr");
        };
        assert!(matches!(e.kind, LExprKind::Local(2)));
    }

    #[test]
    fn unbound_names_stay_symbolic() {
        let body = lower(vec![Stmt::expr(Expr::name("field"))], &[]);
        let LStmtKind::Expr(e) = &body.code[0].kind else {
            panic!("expr");
        };
        assert!(matches!(e.kind, LExprKind::EnvName(_)));
    }

    #[test]
    fn folding_arithmetic_and_strings() {
        let body = lower(
            vec![
                Stmt::expr(bin(BinOp::Add, Expr::int(2), Expr::int(3))),
                Stmt::expr(bin(BinOp::Add, Expr::str_lit("n="), Expr::int(7))),
                Stmt::expr(bin(BinOp::Div, Expr::int(1), Expr::int(0))),
            ],
            &[],
        );
        let consts: Vec<Option<&Value>> = body
            .code
            .iter()
            .map(|s| match &s.kind {
                LStmtKind::Expr(e) => const_of(e),
                _ => None,
            })
            .collect();
        assert!(matches!(consts[0], Some(Value::Int(5))));
        assert!(matches!(consts[1], Some(Value::Str(s)) if &**s == "n=7"));
        // Integer division can throw: never folded.
        assert!(consts[2].is_none());
    }

    #[test]
    fn lazy_statement_is_unlowerable() {
        let stmts = vec![Stmt::synth(StmtKind::Error)];
        assert!(lower_body(&Block::synth(stmts), &[]).is_err());
    }

    fn enc(outcome: &Option<Rc<LoweredBody>>) -> Vec<u8> {
        encode_outcome(outcome).expect("encodable")
    }

    #[test]
    fn body_codec_round_trips_with_bytecode() {
        let body = lower(
            vec![
                Stmt::synth(StmtKind::Decl(
                    TypeName::prim(PrimKind::Int),
                    vec![maya_ast::LocalDeclarator {
                        name: Ident::from_str("i"),
                        dims: 0,
                        init: Some(Expr::int(0)),
                    }],
                )),
                Stmt::synth(StmtKind::While(
                    bin(BinOp::Lt, Expr::name("i"), Expr::name("n")),
                    Box::new(Stmt::expr(Expr::call_on(
                        Expr::name("out"),
                        "println",
                        vec![bin(BinOp::Add, Expr::str_lit("i="), Expr::name("i"))],
                    ))),
                )),
                Stmt::synth(StmtKind::If(
                    bin(BinOp::Eq, Expr::name("i"), Expr::int(3)),
                    Box::new(Stmt::synth(StmtKind::Return(Some(Expr::name("i"))))),
                    Some(Box::new(Stmt::synth(StmtKind::Empty))),
                )),
            ],
            &["n", "out"],
        );
        let outcome = Some(Rc::new(body));
        let bytes = enc(&outcome);
        assert_eq!(enc(&outcome), bytes, "encoding is deterministic");
        // The encoder force-compiled the cold bytecode tier.
        assert!(matches!(
            &*outcome.as_ref().unwrap().bc.borrow(),
            crate::bytecode::BcState::Ready { .. }
        ));
        let decoded = decode_outcome(&bytes).expect("decodes").expect("a body");
        assert_eq!(decoded.n_params, 2);
        assert_eq!(decoded.n_slots, outcome.as_ref().unwrap().n_slots);
        assert!(matches!(
            &*decoded.bc.borrow(),
            crate::bytecode::BcState::Ready { .. }
        ));
        // Full structural fidelity: the decoded body re-encodes byte-equal.
        assert_eq!(enc(&Some(decoded)), bytes);
    }

    #[test]
    fn body_codec_round_trips_unsupported_bytecode_and_verdicts() {
        // try/finally makes the bytecode tier bail: bc section = Unsupported.
        let body = lower(
            vec![Stmt::synth(StmtKind::Try {
                body: Block::synth(vec![Stmt::expr(Expr::int(1))]),
                catches: vec![],
                finally: Some(Block::synth(vec![Stmt::expr(Expr::int(2))])),
            })],
            &[],
        );
        let outcome = Some(Rc::new(body));
        let bytes = enc(&outcome);
        let decoded = decode_outcome(&bytes).expect("decodes").expect("a body");
        assert!(matches!(
            &*decoded.bc.borrow(),
            crate::bytecode::BcState::Unsupported
        ));
        assert_eq!(enc(&Some(decoded)), bytes);

        // The memoized *unlowerable* verdict round-trips too.
        let verdict_bytes = enc(&None);
        assert!(matches!(decode_outcome(&verdict_bytes), Some(None)));
    }

    #[test]
    fn body_codec_rejects_corrupt_payloads() {
        let bytes = enc(&Some(Rc::new(lower(vec![Stmt::expr(Expr::int(1))], &[]))));
        assert!(decode_outcome(&bytes[..bytes.len() - 1]).is_none(), "truncated");
        let mut stale = bytes.clone();
        stale[0] ^= 0xff; // payload-version skew
        assert!(decode_outcome(&stale).is_none(), "stale version");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_outcome(&trailing).is_none(), "trailing garbage");
    }
}
