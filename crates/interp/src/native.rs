//! The native-object bridge.
//!
//! Runtime-library classes (`java.util.Vector`, `java.io.PrintStream`, …)
//! and compile-time bridge objects (`maya.tree` AST nodes, metaprogram
//! instances) are [`NativeObject`]s: their methods are declared in the
//! [`maya_types::ClassTable`] with a `native` key, and the interpreter
//! routes calls through registered [`NativeFn`]s.

use crate::{Control, Interp, Value};
use std::any::Any;
use std::rc::Rc;

/// A native implementation of a method, keyed by the `native` symbol on its
/// [`maya_types::MethodInfo`]. Receives the receiver (or `Value::Null` for
/// statics and constructors) and the evaluated arguments.
pub type NativeFn = Rc<dyn Fn(&Interp, Value, Vec<Value>) -> Result<Value, Control>>;

/// An opaque object owned by native code.
pub trait NativeObject {
    /// The fully qualified name of the object's dynamic class (drives
    /// `instanceof` and virtual dispatch).
    fn class_fqcn(&self) -> &str;

    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;

    /// A short rendering used by `toString`/string concatenation when no
    /// override exists.
    fn display(&self) -> String {
        format!("<{}>", self.class_fqcn())
    }
}

/// Convenience: downcast a value to a concrete native payload.
pub fn native_as<T: 'static>(v: &Value) -> Option<&T> {
    match v {
        Value::Native(n) => n.as_any().downcast_ref::<T>(),
        _ => None,
    }
}
