//! Runtime errors.

use maya_lexer::Span;
use std::fmt;

/// An internal runtime failure (distinct from MayaJava exceptions, which
/// are `Control::Throw` values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeError {
    pub message: String,
    pub span: Span,
}

impl RuntimeError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> RuntimeError {
        RuntimeError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RuntimeError {}
