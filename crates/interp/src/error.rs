//! Runtime errors.

use maya_lexer::Span;
use std::fmt;

/// An internal runtime failure (distinct from MayaJava exceptions, which
/// are `Control::Throw` values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeError {
    pub message: String,
    pub span: Span,
    /// Human-readable expansion/call frames active when the error was
    /// raised, innermost first (e.g. `Mayan unless at demo.maya:3:5`).
    pub frames: Vec<String>,
}

impl RuntimeError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> RuntimeError {
        RuntimeError {
            message: message.into(),
            span,
            frames: Vec::new(),
        }
    }

    /// Attaches expansion frames (innermost first).
    pub fn with_frames(mut self, frames: Vec<String>) -> RuntimeError {
        self.frames = frames;
        self
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RuntimeError {}
