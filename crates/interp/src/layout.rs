//! Class field layouts and epoch-guarded runtime caches.
//!
//! The fast runtime stores object fields in a `Vec<Value>` at fixed offsets
//! instead of a per-instance `HashMap`.  A [`FieldLayout`] maps every field
//! name visible on a class to its offset; layouts are *prefix layouts*
//! (superclass fields first), so a subclass object can be viewed through its
//! superclass's offsets unchanged.
//!
//! Layouts — like vtable rows and constructor rows — describe the *shape* of
//! a class, and Maya classes mutate under intercession (metaprograms add
//! members mid-compile).  [`RuntimeCaches`] therefore validates every lookup
//! against [`ClassTable::version`]: when the table changed, the caches are
//! cleared and a globally fresh **epoch** is allocated.  Per-call-site inline
//! caches store the epoch they were filled under; a stale epoch can never be
//! re-observed (epochs come from a process-wide counter), which keeps the
//! scheme sound even when lowered bodies are shared across interpreters.

use maya_lexer::{sym, Symbol};
use maya_types::{ClassId, ClassTable, CtorInfo, MethodInfo};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed field offsets for one class (prefix layout over the super chain).
pub struct FieldLayout {
    pub class: ClassId,
    /// Slot `i` holds the field named `names[i]`.
    pub names: Vec<Symbol>,
    offsets: HashMap<Symbol, u32>,
    /// Offset of the `message` field, pre-resolved because the exception
    /// machinery reads it on every `getMessage`/`toString`.
    pub message: Option<u32>,
}

impl FieldLayout {
    /// Computes the layout of `class` from the table's declared fields.
    pub fn of(ct: &ClassTable, class: ClassId) -> FieldLayout {
        let ordered = ct.fields_in_layout_order(class);
        let mut names = Vec::with_capacity(ordered.len());
        let mut offsets = HashMap::with_capacity(ordered.len());
        for (i, (_, f)) in ordered.iter().enumerate() {
            names.push(f.name);
            offsets.insert(f.name, i as u32);
        }
        let message = offsets.get(&sym("message")).copied();
        FieldLayout {
            class,
            names,
            offsets,
            message,
        }
    }

    /// A layout with no declared fields (tests, synthetic objects).
    pub fn empty(class: ClassId) -> Rc<FieldLayout> {
        Rc::new(FieldLayout {
            class,
            names: Vec::new(),
            offsets: HashMap::new(),
            message: None,
        })
    }

    /// The fixed offset of `name`, if declared.
    pub fn offset(&self, name: Symbol) -> Option<u32> {
        self.offsets.get(&name).copied()
    }

    /// Number of declared slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the class declares no fields.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One method row: every method named `name` visible on a class, in the
/// table's resolution order, shared by vtable dispatch and the slow path.
pub type MethodRow = Rc<Vec<(ClassId, Rc<MethodInfo>)>>;

/// Epochs are process-global so that a lowered body shared between two
/// interpreters can never confuse one interpreter's cache generation with
/// the other's.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Shape-dependent caches for one interpreter, validated against the class
/// table's structural version.
pub struct RuntimeCaches {
    /// The [`ClassTable::version`] the caches were built against.
    table_version: Cell<u64>,
    /// The globally unique generation id handed to inline caches.
    epoch: Cell<u64>,
    layouts: RefCell<HashMap<ClassId, Rc<FieldLayout>>>,
    rows: RefCell<HashMap<(ClassId, Symbol), MethodRow>>,
    ctors: RefCell<HashMap<ClassId, Rc<Vec<CtorInfo>>>>,
}

impl RuntimeCaches {
    /// Fresh caches (first `sync` allocates the first epoch).
    pub fn new() -> RuntimeCaches {
        RuntimeCaches {
            table_version: Cell::new(u64::MAX),
            epoch: Cell::new(0),
            layouts: RefCell::new(HashMap::new()),
            rows: RefCell::new(HashMap::new()),
            ctors: RefCell::new(HashMap::new()),
        }
    }

    /// Validates against the table and returns the current epoch.  On a
    /// version mismatch every cache is dropped and a fresh global epoch is
    /// allocated, invalidating all inline caches filled earlier.
    pub fn sync(&self, ct: &ClassTable) -> u64 {
        let v = ct.version();
        if self.table_version.get() != v {
            self.table_version.set(v);
            self.epoch
                .set(NEXT_EPOCH.fetch_add(1, Ordering::Relaxed));
            self.layouts.borrow_mut().clear();
            self.rows.borrow_mut().clear();
            self.ctors.borrow_mut().clear();
        }
        self.epoch.get()
    }

    /// The (memoized) field layout of `class`.  Callers must have `sync`ed
    /// this generation.
    pub fn layout(&self, ct: &ClassTable, class: ClassId) -> Rc<FieldLayout> {
        if let Some(l) = self.layouts.borrow().get(&class) {
            return l.clone();
        }
        let l = Rc::new(FieldLayout::of(ct, class));
        self.layouts.borrow_mut().insert(class, l.clone());
        l
    }

    /// The (memoized) method row for `class::name`.
    pub fn row(&self, ct: &ClassTable, class: ClassId, name: Symbol) -> MethodRow {
        if let Some(r) = self.rows.borrow().get(&(class, name)) {
            return r.clone();
        }
        let r: MethodRow = Rc::new(
            ct.methods_named(class, name)
                .into_iter()
                .map(|(c, m)| (c, Rc::new(m)))
                .collect(),
        );
        self.rows.borrow_mut().insert((class, name), r.clone());
        r
    }

    /// The (memoized) constructor row for `class`.
    pub fn ctor_row(&self, ct: &ClassTable, class: ClassId) -> Rc<Vec<CtorInfo>> {
        if let Some(r) = self.ctors.borrow().get(&class) {
            return r.clone();
        }
        let r = Rc::new(ct.ctors(class));
        self.ctors.borrow_mut().insert(class, r.clone());
        r
    }
}

impl Default for RuntimeCaches {
    fn default() -> Self {
        RuntimeCaches::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_types::{ClassInfo, FieldInfo, Type};

    fn field(name: &str) -> FieldInfo {
        FieldInfo {
            name: sym(name),
            ty: Type::int(),
            modifiers: maya_ast::Modifiers::none(),
            init: None,
        }
    }

    #[test]
    fn prefix_layout_and_shadowing() {
        let ct = ClassTable::bootstrap();
        let sup = ct.declare(ClassInfo::new("A", false)).unwrap();
        ct.add_field(sup, field("x"));
        ct.add_field(sup, field("y"));
        let mut sub_info = ClassInfo::new("B", false);
        sub_info.superclass = Some(sup);
        let sub = ct.declare(sub_info).unwrap();
        ct.add_field(sub, field("y")); // shadows — shares the slot
        ct.add_field(sub, field("z"));

        let la = FieldLayout::of(&ct, sup);
        let lb = FieldLayout::of(&ct, sub);
        assert_eq!(la.offset(sym("x")), Some(0));
        assert_eq!(la.offset(sym("y")), Some(1));
        assert_eq!(lb.offset(sym("x")), Some(0));
        assert_eq!(lb.offset(sym("y")), Some(1));
        assert_eq!(lb.offset(sym("z")), Some(2));
        assert_eq!(lb.len(), 3);
    }

    #[test]
    fn sync_invalidates_on_table_mutation() {
        let ct = ClassTable::bootstrap();
        let caches = RuntimeCaches::new();
        let e1 = caches.sync(&ct);
        assert_eq!(caches.sync(&ct), e1);
        let c = ct.declare(ClassInfo::new("C", false)).unwrap();
        let e2 = caches.sync(&ct);
        assert_ne!(e1, e2);
        ct.add_field(c, field("message"));
        let e3 = caches.sync(&ct);
        assert_ne!(e2, e3);
        assert_eq!(caches.layout(&ct, c).message, Some(0));
    }
}
