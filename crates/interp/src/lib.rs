//! A tree-walking interpreter for MayaJava.
//!
//! Two roles (paper Figure 1): it *runs compiled applications* (the paper
//! compiled to JVM bytecode; we interpret the typed AST directly — see
//! DESIGN.md for the substitution argument), and it *executes metaprogram
//! bodies at compile time* when extensions are written in MayaJava itself
//! (the `maya.tree` bridge is installed by `maya-core`).
//!
//! The interpreter is deliberately lazy-friendly: method bodies are
//! [`maya_ast::LazyNode`]s, and an optional *forcer* hook lets the compiler
//! parse/check a body on its first call — the runtime continuation of
//! mayac's lazy compilation.

mod bytecode;
mod codec;
mod error;
mod interp;
mod layout;
mod lower;
mod native;
mod runtime;
mod value;
mod vm;

pub use error::RuntimeError;
pub use interp::{Control, Eval, Frame, Interp};
pub use layout::{FieldLayout, RuntimeCaches};
pub use lower::{set_body_disk, ArgKey, BodyDisk, LowerStore, LoweredBody};
pub use native::{native_as, NativeFn, NativeObject};
pub use runtime::{install_runtime, EnumObj, HashObj, PrintObj, SbObj, VecObj};
pub use value::{ArrayObj, Obj, RtStr, Value};
