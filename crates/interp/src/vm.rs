//! The bytecode VM — third execution tier.
//!
//! [`crate::bytecode`] compiles a [`LoweredBody`] into flat register
//! bytecode; this module executes it.  The dispatch loop below must remain
//! *observationally identical* to the lowered tree walker in `interp.rs`
//! (same output bytes, same error text and spans, same step counts, same
//! telemetry call counters) — `MAYA_NO_BYTECODE=1` pins the tree walker for
//! differential testing, and the fuzzer runs all three tiers against each
//! other.
//!
//! Call dispatch goes through [`PolySite`] polymorphic inline caches keyed
//! by (receiver class, exact argument keys): exact keys mean identical
//! runtime types, so the full `select_from_row` search is deterministic for
//! a hit and can be skipped entirely.  Monomorphic sites with compiled
//! callees are additionally *spliced inline* by the refine pass; the
//! [`Instr::GuardInline`] handler re-validates the snapshot (epoch, receiver
//! class, argument keys) and falls back to the generic call on mismatch.

use crate::bytecode::{self, BcBody, BcState, Instr, PolySite, REFINE_EXECS};
use crate::interp::{Control, Eval, Interp};
use crate::lower::{class_key, ArgKey, LoweredBody};
use crate::value::Value;
use maya_ast::LazyNode;
use maya_lexer::{Span, Symbol};
use maya_telemetry::Counter;
use maya_types::{ClassId, MethodInfo, Type};
use std::cell::Cell;
use std::rc::Rc;

/// Where Break/Continue routed to (see `route_control`).
enum Route {
    /// Jump to this pc inside the current bytecode frame.
    Jump(u32),
    /// Not ours — propagate to the caller.
    Out(Control),
}

/// `++`/`--` on a value; shared by `IncDecVal` and `IncLocal`.  Mirrors the
/// tree walker's `LExprKind::IncDec` arm exactly.
fn incdec_value(v: &Value, delta: i32, span: Span) -> Eval {
    Ok(match v {
        Value::Int(v) => Value::Int(v.wrapping_add(delta)),
        Value::Long(v) => Value::Long(v.wrapping_add(delta as i64)),
        Value::Double(v) => Value::Double(v + delta as f64),
        Value::Float(v) => Value::Float(v + delta as f32),
        Value::Char(c) => Value::Int(*c as i32 + delta),
        other => return Err(Control::error(format!("cannot ++/-- {other:?}"), span)),
    })
}

impl Interp {
    /// Bytecode for `lb`: compiles cold on first execution, and recompiles
    /// *once* with inline splicing after [`REFINE_EXECS`] runs (by then the
    /// PICs are warm, so monomorphic sites are visible).  The refine pass
    /// reuses the cold pass's call sites, keeping warmed cache lines.
    pub(crate) fn bytecode_for(&self, lb: &LoweredBody) -> Option<Rc<BcBody>> {
        enum Plan {
            Use(Rc<BcBody>),
            Cold,
            Refine(Rc<BcBody>),
        }
        let plan = match &*lb.bc.borrow() {
            BcState::Unsupported => return None,
            BcState::Cold => Plan::Cold,
            BcState::Ready { bc, execs, refined } => {
                if refined.get() {
                    Plan::Use(Rc::clone(bc))
                } else {
                    let n = execs.get() + 1;
                    execs.set(n);
                    if n >= REFINE_EXECS {
                        // Mark refined *before* compiling: the splicer calls
                        // back into `bc_of` for callee bodies, and a
                        // self-recursive callee must see a settled state.
                        refined.set(true);
                        Plan::Refine(Rc::clone(bc))
                    } else {
                        Plan::Use(Rc::clone(bc))
                    }
                }
            }
        };
        match plan {
            Plan::Use(bc) => Some(bc),
            Plan::Cold => bytecode::bc_of(lb),
            Plan::Refine(old) => match bytecode::compile(lb, &old.sites, true) {
                Ok(bc) => {
                    let bc = Rc::new(bc);
                    maya_telemetry::count(Counter::BcCompiled);
                    maya_telemetry::add(Counter::BcSuperinsts, bc.super_pcs.len() as u64);
                    *lb.bc.borrow_mut() = BcState::Ready {
                        bc: Rc::clone(&bc),
                        execs: Cell::new(REFINE_EXECS),
                        refined: Cell::new(true),
                    };
                    Some(bc)
                }
                // A refine failure keeps the (working) cold bytecode.
                Err(_) => Some(old),
            },
        }
    }

    /// Disassembly of `body`'s bytecode for `mayac --dump-bytecode`,
    /// compiling cold if needed.  `None` when the body can't be lowered or
    /// can't be compiled (e.g. contains try/catch).
    pub fn bytecode_listing(&self, body: &LazyNode, params: &[Symbol]) -> Option<String> {
        let lb = self.lowered_body(body, params)?;
        let bc = bytecode::bc_of(&lb)?;
        Some(bytecode::disasm(&bc, &self.ct))
    }

    /// The lowered body for a resolved method, if it is already forced and
    /// lowerable.  Used to prime/backfill PIC entries so hits dispatch
    /// straight to lowered (and thence bytecode) execution.
    fn lowered_for_method(&self, m: &Rc<MethodInfo>) -> Option<Rc<LoweredBody>> {
        if m.native.is_some() {
            return None;
        }
        let body = m.body.as_ref()?;
        if !body.is_forced() {
            return None;
        }
        self.lowered_body(body, &m.param_names)
    }

    /// Dispatches through a polymorphic inline cache — the bytecode tier's
    /// analog of `invoke_ic`.  Entries are keyed by (receiver class, exact
    /// [`ArgKey`]s): an exact-key hit implies the arguments' runtime types
    /// are identical to the install-time ones, so `select_from_row` would
    /// pick the same target — no per-argument assignability re-check needed.
    pub(crate) fn invoke_pic(
        &self,
        recv: Option<Value>,
        class: ClassId,
        name: Symbol,
        args: Vec<Value>,
        site: &Rc<PolySite>,
        span: Span,
    ) -> Eval {
        let epoch = self.caches.sync(&self.ct);
        let ck = class_key(Some(class));
        if let Some((m, lowered)) = site.lookup(epoch, ck, &args) {
            maya_telemetry::count(Counter::PicHits);
            let profiled = self.profile.get();
            if profiled {
                maya_telemetry::prof_site(Rc::as_ptr(site) as usize, true, || {
                    format!("{}.{}/{}", self.ct.fqcn(class), name, args.len())
                });
            }
            // Fast path: the entry carries the target's lowered body, so a
            // hit goes straight to lowered/bytecode execution.  Mirrors
            // `invoke`/`invoke_inner` exactly (same depth guard and error,
            // same counters).
            if let Some(lb) = lowered {
                let d = self.depth.get() + 1;
                let limit = self.stack_limit.get();
                if d > limit {
                    maya_telemetry::count(Counter::StepLimitHits);
                    return Err(Control::error(
                        format!("stack overflow (call depth > {limit})"),
                        span,
                    ));
                }
                self.depth.set(d);
                maya_telemetry::count(Counter::InterpCalls);
                if profiled {
                    maya_telemetry::prof_enter(Rc::as_ptr(&m) as usize, || {
                        self.method_label(class, &m)
                    });
                }
                let result = self.exec_lowered(&lb, recv, class, args);
                if profiled {
                    maya_telemetry::prof_exit();
                }
                self.depth.set(self.depth.get() - 1);
                return result;
            }
            let r = self.invoke(recv, class, &m, args, span);
            // The first full invoke forces (and lowers, when lowerable) the
            // body; backfill the entry so later hits take the fast path.
            // Keyed by target identity — recursion through this site may
            // have reordered or refilled the line meanwhile.
            if let Some(lb) = self.lowered_for_method(&m) {
                site.backfill_lowered(&m, lb);
            }
            return r;
        }
        maya_telemetry::count(Counter::PicMisses);
        if self.profile.get() {
            maya_telemetry::prof_site(Rc::as_ptr(site) as usize, false, || {
                format!("{}.{}/{}", self.ct.fqcn(class), name, args.len())
            });
        }
        let row = self.caches.row(&self.ct, class, name);
        let m = self.select_from_row(&row, class, name, &args, span)?;
        let keys: Box<[ArgKey]> = args.iter().map(ArgKey::of).collect();
        // Install before invoking so recursive calls through this site warm
        // up immediately; the lowered body is attached now if already known,
        // else backfilled after the invoke forces it.
        if site.install(ck, class, keys, Rc::clone(&m), self.lowered_for_method(&m)) {
            maya_telemetry::count(Counter::PicEvictions);
        }
        let r = self.invoke(recv, class, &m, args, span);
        if let Some(lb) = self.lowered_for_method(&m) {
            site.backfill_lowered(&m, lb);
        }
        r
    }

    /// Pop `n` spliced inline frames: profiler exits + call-depth credits.
    fn unwind_inline(&self, n: u16, profiled: bool) {
        for _ in 0..n {
            if profiled {
                maya_telemetry::prof_exit();
            }
            self.depth.set(self.depth.get() - 1);
        }
    }

    /// Route a `Control` raised at `pc`.  Break/Continue inside a loop
    /// region jump to the region's targets after restoring the ty-stack and
    /// inline-frame depths recorded for that region; everything else (and
    /// Break/Continue with no enclosing region) propagates to the caller.
    fn route_control(
        &self,
        bc: &BcBody,
        pc: u32,
        c: Control,
        tys: &mut Vec<Type>,
        inline_depth: &mut u16,
        profiled: bool,
    ) -> Route {
        let is_break = match c {
            Control::Break => true,
            Control::Continue => false,
            other => return Route::Out(other),
        };
        match bc.innermost_region(pc) {
            Some(r) => {
                self.unwind_inline(*inline_depth - r.inline_depth, profiled);
                *inline_depth = r.inline_depth;
                tys.truncate(r.ty_depth as usize);
                Route::Jump(if is_break { r.brk } else { r.cont })
            }
            None => Route::Out(if is_break {
                Control::Break
            } else {
                Control::Continue
            }),
        }
    }
}

impl Interp {
    /// Executes a compiled body.  `args` becomes the register file (locals
    /// first, then preloaded constants, then temporaries); the buffer comes
    /// from — and returns to — the frame pool shared with the tree walker.
    pub(crate) fn run_bc(
        &self,
        bc: &BcBody,
        this: Option<Value>,
        class: ClassId,
        mut regs: Vec<Value>,
    ) -> Eval {
        regs.truncate(bc.n_params as usize);
        regs.resize(bc.n_regs as usize, Value::Null);
        for (r, v) in &bc.preloads {
            regs[*r as usize] = v.clone();
        }
        let profiled = self.profile.get();
        let cls = Some(class);
        // Type stack for New/NewArray/Decl sequences (balanced by compile).
        let mut tys: Vec<Type> = Vec::new();
        // Spliced inline frames currently entered (see CallEnter/CallExit).
        let mut inline_depth: u16 = 0;
        let mut pc: u32 = 0;
        let result: Eval;

        // Route a fallible handler's Err through `route_control`: loop
        // break/continue jumps within the frame, everything else unwinds.
        macro_rules! tryc {
            ($r:expr) => {
                match $r {
                    Ok(v) => v,
                    Err(c) => {
                        match self.route_control(bc, pc, c, &mut tys, &mut inline_depth, profiled)
                        {
                            // Unlabeled on purpose: every tryc! use site
                            // sits directly in the 'run loop (labels are
                            // hygienic in macros and can't be named here).
                            Route::Jump(to) => {
                                pc = to;
                                continue;
                            }
                            Route::Out(c) => {
                                result = Err(c);
                                break;
                            }
                        }
                    }
                }
            };
        }

        'run: loop {
            let ins = bc.code[pc as usize];
            if profiled {
                maya_telemetry::prof_opcode(ins.mnemonic());
                // prof_binop_l parity: hot-pair samples are recorded before
                // the operands evaluate, so they hang off the first
                // instruction of the expression, not the Binary itself.
                if let Some(pairs) = bc.pairs.get(&pc) {
                    for (a, b) in pairs {
                        maya_telemetry::prof_binop_pair(a, b);
                    }
                }
            }
            match ins {
                Instr::Move { dst, src } => {
                    regs[dst as usize] = regs[src as usize].clone();
                }
                Instr::LoadThis { dst, span } => {
                    let r = this
                        .clone()
                        .ok_or_else(|| Control::error("no `this` in scope", span));
                    regs[dst as usize] = tryc!(r);
                }
                Instr::EnvLoad { dst, name, site, span } => {
                    // Fast path mirrors `env_name`'s first probe —
                    // `this.<field>` by declared layout slot — through the
                    // per-site (layout → offset) cache; anything else
                    // (overflow fields, statics, class refs) falls back to
                    // the full name resolution for identical semantics.
                    let r = match &this {
                        Some(Value::Object(o)) => {
                            let fs = &bc.field_sites[site as usize];
                            let lp = Rc::as_ptr(&o.layout) as usize;
                            if let Some(off) = fs.get(lp) {
                                Ok(o.get_slot(off))
                            } else if let Some(off) = o.layout.offset(name) {
                                fs.fill(lp, off);
                                Ok(o.get_slot(off))
                            } else {
                                self.env_name(name, this.as_ref(), cls, span)
                            }
                        }
                        _ => self.env_name(name, this.as_ref(), cls, span),
                    };
                    regs[dst as usize] = tryc!(r);
                }
                Instr::EnvStore { src, name, span } => {
                    let v = regs[src as usize].clone();
                    tryc!(self.env_assign_name(name, v, this.as_ref(), cls, span));
                }
                Instr::ClassRef { dst, fqcn, span } => {
                    let r = self
                        .ct
                        .by_fqcn(fqcn)
                        .ok_or_else(|| Control::error(format!("unknown class {fqcn}"), span));
                    regs[dst as usize] = Value::ClassRef(tryc!(r));
                }
                Instr::FieldGet { dst, obj, name, site, span } => {
                    let r = match &regs[obj as usize] {
                        Value::Object(o) => {
                            let fs = &bc.field_sites[site as usize];
                            let lp = Rc::as_ptr(&o.layout) as usize;
                            if let Some(off) = fs.get(lp) {
                                Ok(o.get_slot(off))
                            } else if let Some(off) = o.layout.offset(name) {
                                fs.fill(lp, off);
                                Ok(o.get_slot(off))
                            } else {
                                o.get(name).ok_or_else(|| {
                                    Control::error(format!("no field {name}"), span)
                                })
                            }
                        }
                        other => self.field_of(other.clone(), name, span),
                    };
                    regs[dst as usize] = tryc!(r);
                }
                Instr::FieldSet { obj, val, name, span } => {
                    let r = match regs[obj as usize].clone() {
                        Value::Object(o) => {
                            o.set(name, regs[val as usize].clone());
                            Ok(())
                        }
                        Value::ClassRef(c) => {
                            self.set_static_field(c, name, regs[val as usize].clone())
                        }
                        Value::Null => {
                            Err(self.throw_simple("java.lang.NullPointerException", span))
                        }
                        other => Err(Control::error(
                            format!("cannot assign field of {other:?}"),
                            span,
                        )),
                    };
                    tryc!(r);
                }
                Instr::ArrGet { dst, arr, idx, spans } => {
                    let (espan, ispan) = bc.span_pairs[spans as usize];
                    let r = self
                        .int_of(regs[idx as usize].clone(), ispan)
                        .and_then(|i| match &regs[arr as usize] {
                            Value::Array(a) => {
                                let v = a.data.borrow().get(i as usize).cloned();
                                v.ok_or_else(|| {
                                    self.throw_simple(
                                        "java.lang.ArrayIndexOutOfBoundsException",
                                        espan,
                                    )
                                })
                            }
                            Value::Null => {
                                Err(self.throw_simple("java.lang.NullPointerException", espan))
                            }
                            other => {
                                Err(Control::error(format!("not an array: {other:?}"), espan))
                            }
                        });
                    regs[dst as usize] = tryc!(r);
                }
                Instr::ArrSet { arr, idx, val, spans } => {
                    let (espan, ispan) = bc.span_pairs[spans as usize];
                    let r = self
                        .int_of(regs[idx as usize].clone(), ispan)
                        .and_then(|i| match &regs[arr as usize] {
                            Value::Array(a) => {
                                let mut data = a.data.borrow_mut();
                                let len = data.len();
                                match data.get_mut(i as usize) {
                                    Some(slot) => {
                                        *slot = regs[val as usize].clone();
                                        Ok(())
                                    }
                                    None => Err(Control::error(
                                        format!("array index {i} out of bounds ({len})"),
                                        espan,
                                    )),
                                }
                            }
                            _ => Err(Control::error("not an array", espan)),
                        });
                    tryc!(r);
                }
                Instr::NewClass { ty, span } => {
                    let r = self
                        .resolve_type_slot(&bc.tys[ty as usize], cls, span)
                        .and_then(|t| match t {
                            Type::Class(_) => Ok(t),
                            _ => Err(Control::error("cannot instantiate non-class", span)),
                        });
                    tys.push(tryc!(r));
                }
                Instr::NewFinish { dst, base, n, span } => {
                    let Some(Type::Class(c)) = tys.pop() else {
                        unreachable!("NewClass pushed a class type");
                    };
                    let vals = regs[base as usize..(base + n) as usize].to_vec();
                    let r = self.construct(c, vals, span);
                    regs[dst as usize] = tryc!(r);
                }
                Instr::TyElem { ty, extra_dims, span } => {
                    let r = self.resolve_type_slot(&bc.tys[ty as usize], cls, span);
                    let mut t = tryc!(r);
                    for _ in 0..extra_dims {
                        t = t.array_of();
                    }
                    tys.push(t);
                }
                Instr::NewArrayFinish { dst, base, n, span } => {
                    let elem = tys.pop().expect("TyElem pushed the element type");
                    let mut sizes = Vec::with_capacity(n as usize);
                    for k in 0..n {
                        match regs[(base + k) as usize] {
                            Value::Int(i) => sizes.push(i),
                            _ => unreachable!("ToInt coerced every dimension"),
                        }
                    }
                    let r = self.alloc_array(&elem, &sizes, span);
                    regs[dst as usize] = tryc!(r);
                }
                Instr::ToInt { reg, span } => {
                    let r = self.int_of(regs[reg as usize].clone(), span);
                    regs[reg as usize] = Value::Int(tryc!(r));
                }
                Instr::TyDecl { ty, span } => {
                    let r = self.resolve_type_slot(&bc.tys[ty as usize], cls, span);
                    tys.push(tryc!(r));
                }
                Instr::DefaultVal { dst, dims } => {
                    let mut t = tys.last().expect("TyDecl pushed the decl type").clone();
                    for _ in 0..dims {
                        t = t.array_of();
                    }
                    regs[dst as usize] = Value::default_for(&t);
                }
                Instr::TyPop => {
                    tys.pop();
                }
                Instr::Binary { op, dst, a, b, span } => {
                    let r =
                        self.binary_l_values(op, &regs[a as usize], &regs[b as usize], span);
                    regs[dst as usize] = tryc!(r);
                }
                Instr::Unary { op, dst, src, span } => {
                    let r = self.eval_unary(op, regs[src as usize].clone(), span);
                    regs[dst as usize] = tryc!(r);
                }
                Instr::IncDecVal { dst, src, delta, span } => {
                    let r = incdec_value(&regs[src as usize], delta, span);
                    regs[dst as usize] = tryc!(r);
                }
                Instr::IncLocal { slot, delta, span } => {
                    let r = incdec_value(&regs[slot as usize], delta, span);
                    regs[slot as usize] = tryc!(r);
                }
                Instr::CastV { dst, src, ty, span } => {
                    let r = self
                        .resolve_type_slot(&bc.tys[ty as usize], cls, span)
                        .and_then(|target| self.cast(regs[src as usize].clone(), &target, span));
                    regs[dst as usize] = tryc!(r);
                }
                Instr::InstOf { dst, src, ty, span } => {
                    let r = self.resolve_type_slot(&bc.tys[ty as usize], cls, span);
                    let target = tryc!(r);
                    regs[dst as usize] =
                        Value::Bool(self.value_instanceof(&regs[src as usize], &target));
                }
                Instr::Jmp { target } => {
                    pc = target;
                    continue 'run;
                }
                Instr::JmpIfFalse { src, target, span } => {
                    let b = match &regs[src as usize] {
                        Value::Bool(b) => *b,
                        other => {
                            let r: Result<bool, Control> = Err(Control::error(
                                format!("condition evaluated to non-boolean {other:?}"),
                                span,
                            ));
                            tryc!(r)
                        }
                    };
                    if !b {
                        pc = target;
                        continue 'run;
                    }
                }
                Instr::JmpIfTrue { src, target, span } => {
                    let b = match &regs[src as usize] {
                        Value::Bool(b) => *b,
                        other => {
                            let r: Result<bool, Control> = Err(Control::error(
                                format!("condition evaluated to non-boolean {other:?}"),
                                span,
                            ));
                            tryc!(r)
                        }
                    };
                    if b {
                        pc = target;
                        continue 'run;
                    }
                }
                Instr::JmpIfCmp { op, a, b, when, target, span } => {
                    let r =
                        self.binary_l_values(op, &regs[a as usize], &regs[b as usize], span);
                    let t = match tryc!(r) {
                        Value::Bool(b) => b,
                        other => {
                            let r: Result<bool, Control> = Err(Control::error(
                                format!("condition evaluated to non-boolean {other:?}"),
                                span,
                            ));
                            tryc!(r)
                        }
                    };
                    if t == when {
                        pc = target;
                        continue 'run;
                    }
                }
                Instr::Step { span } => {
                    tryc!(self.count_step(span));
                }
                Instr::Ret { src } => {
                    result = Ok(regs[src as usize].clone());
                    break 'run;
                }
                Instr::RetNull => {
                    result = Ok(Value::Null);
                    break 'run;
                }
                Instr::RaiseBreak => {
                    let r: Result<(), Control> = Err(Control::Break);
                    tryc!(r);
                }
                Instr::RaiseContinue => {
                    let r: Result<(), Control> = Err(Control::Continue);
                    tryc!(r);
                }
                Instr::Throw { src } => {
                    let r: Result<(), Control> =
                        Err(Control::Throw(regs[src as usize].clone()));
                    tryc!(r);
                }
                Instr::RaiseInvalidAssign { span } => {
                    let r: Result<(), Control> =
                        Err(Control::error("invalid assignment target", span));
                    tryc!(r);
                }
                Instr::CallRecv { dst, recv, base, n, name, site, span } => {
                    let mut vals = self.frame_pool.borrow_mut().pop().unwrap_or_default();
                    vals.extend_from_slice(&regs[base as usize..(base + n) as usize]);
                    let site = &bc.sites[site as usize];
                    let r = match regs[recv as usize].clone() {
                        Value::ClassRef(c) => self.ensure_init(c).and_then(|()| {
                            self.invoke_pic(None, c, name, vals, site, span)
                                .map_err(|c| self.attach_frames(c))
                        }),
                        Value::Null => {
                            Err(self.throw_simple("java.lang.NullPointerException", span))
                        }
                        other => match other.class_of(&self.ct) {
                            Some(dyn_class) => {
                                self.invoke_pic(Some(other), dyn_class, name, vals, site, span)
                            }
                            None => Err(Control::error(
                                format!("cannot invoke {name} on {:?}", other),
                                span,
                            )),
                        },
                    };
                    regs[dst as usize] = tryc!(r);
                }
                Instr::CallSuper { dst, base, n, name, site, span } => {
                    let mut vals = self.frame_pool.borrow_mut().pop().unwrap_or_default();
                    vals.extend_from_slice(&regs[base as usize..(base + n) as usize]);
                    let site = &bc.sites[site as usize];
                    let r = this
                        .clone()
                        .ok_or_else(|| Control::error("super call without this", span))
                        .and_then(|t| {
                            let sup = self
                                .ct
                                .info(class)
                                .borrow()
                                .superclass
                                .ok_or_else(|| Control::error("no superclass", span))?;
                            self.invoke_pic(Some(t), sup, name, vals, site, span)
                        });
                    regs[dst as usize] = tryc!(r);
                }
                Instr::CallImplicit { dst, base, n, name, site, span } => {
                    let mut vals = self.frame_pool.borrow_mut().pop().unwrap_or_default();
                    vals.extend_from_slice(&regs[base as usize..(base + n) as usize]);
                    let site = &bc.sites[site as usize];
                    let r = match this.clone() {
                        Some(t) => match t.class_of(&self.ct) {
                            Some(dyn_class) => {
                                self.invoke_pic(Some(t), dyn_class, name, vals, site, span)
                            }
                            None => Err(Control::error(
                                format!("cannot invoke {name} on {:?}", t),
                                span,
                            )),
                        },
                        None => self.ensure_init(class).and_then(|()| {
                            self.invoke_pic(None, class, name, vals, site, span)
                                .map_err(|c| self.attach_frames(c))
                        }),
                    };
                    regs[dst as usize] = tryc!(r);
                }
                Instr::GuardInline { guard, fallback } => {
                    let g = &bc.guards[guard as usize];
                    let ok = self.caches.sync(&self.ct) == g.epoch && {
                        let recv_v = match g.recv {
                            Some(r) => Some(&regs[r as usize]),
                            None => this.as_ref(),
                        };
                        match recv_v {
                            Some(Value::Object(o)) => {
                                class_key(Some(o.class)) == g.ck
                                    && g.keys.iter().enumerate().all(|(i, k)| {
                                        k.matches(&regs[g.base as usize + i])
                                    })
                            }
                            _ => false,
                        }
                    };
                    if ok {
                        // The splice is a verified PIC hit: same counter and
                        // profiler sample as the generic path would record.
                        maya_telemetry::count(Counter::PicHits);
                        if profiled {
                            maya_telemetry::prof_site(Rc::as_ptr(&g.site) as usize, true, || {
                                format!(
                                    "{}.{}/{}",
                                    self.ct.fqcn(g.class),
                                    g.name,
                                    g.keys.len()
                                )
                            });
                        }
                    } else {
                        pc = fallback;
                        continue 'run;
                    }
                }
                Instr::CallEnter { m, span } => {
                    // Entering a spliced callee frame: same depth guard,
                    // error, and counters as `invoke`/`invoke_inner`.
                    let d = self.depth.get() + 1;
                    let limit = self.stack_limit.get();
                    if d > limit {
                        maya_telemetry::count(Counter::StepLimitHits);
                        let r: Result<(), Control> = Err(Control::error(
                            format!("stack overflow (call depth > {limit})"),
                            span,
                        ));
                        tryc!(r);
                    } else {
                        self.depth.set(d);
                        maya_telemetry::count(Counter::InterpCalls);
                        if profiled {
                            let (mi, mc) = &bc.methods[m as usize];
                            maya_telemetry::prof_enter(Rc::as_ptr(mi) as usize, || {
                                self.method_label(*mc, mi)
                            });
                        }
                        inline_depth += 1;
                    }
                }
                Instr::CallExit => {
                    if profiled {
                        maya_telemetry::prof_exit();
                    }
                    self.depth.set(self.depth.get() - 1);
                    inline_depth -= 1;
                }
            }
            pc += 1;
        }

        // A Control that escaped the frame (throw, error, step limit, or a
        // Break/Continue with no enclosing loop) may have left spliced
        // callee frames entered — pop them before returning.
        self.unwind_inline(inline_depth, profiled);
        regs.clear();
        let mut pool = self.frame_pool.borrow_mut();
        if pool.len() < 32 {
            pool.push(regs);
        }
        result
    }
}
