//! The evaluator.
//!
//! Two execution paths share this file.  The *legacy* tree-walker executes
//! typed AST directly (and re-clones each lazy body per call); the *fast*
//! path lowers a body once (`lower.rs`) and then runs slot-resolved code
//! with inline-cached dispatch.  Both paths must be observationally
//! identical — same output bytes, same error text, same spans, same step
//! counts; `MAYA_NO_LOWER=1` (or [`Interp::set_lowering`]) pins the legacy
//! path for differential testing.

use crate::layout::RuntimeCaches;
use crate::lower::{
    self, class_key, CallSite, LCallee, LExpr, LExprKind, LStmt, LStmtKind, LTarget, LowerStore,
    LoweredBody, TypeSlot,
};
use crate::{NativeFn, Obj, RuntimeError, Value};
use maya_ast::{
    BinOp, Expr, ExprKind, ForInit, IncDecOp, LazyNode, Lit, MethodName, Node, Stmt, StmtKind,
    TypeName, UnOp,
};
use maya_lexer::{sym, Span, Symbol};
use maya_types::{ClassId, ClassTable, CtorInfo, MethodInfo, ResolveCtx, Type};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Non-local control flow during evaluation.
#[derive(Clone, Debug)]
pub enum Control {
    Return(Value),
    Break,
    Continue,
    /// A MayaJava exception value in flight.
    Throw(Value),
    /// An internal failure (bad program state, missing native, …).  Boxed
    /// so the happy-path [`Eval`] stays a couple of machine words; the
    /// error payload is only touched when something actually went wrong.
    Error(Box<RuntimeError>),
}

impl Control {
    /// Builds an internal error.
    pub fn error(msg: impl Into<String>, span: Span) -> Control {
        Control::Error(Box::new(RuntimeError::new(msg, span)))
    }
}

/// The standard evaluation result.
pub type Eval = Result<Value, Control>;

/// One activation record.
#[derive(Default)]
pub struct Frame {
    scopes: Vec<HashMap<Symbol, Value>>,
    pub this: Option<Value>,
    pub class: Option<ClassId>,
}

impl Frame {
    /// A frame with one empty scope.
    pub fn new() -> Frame {
        Frame {
            scopes: vec![HashMap::new()],
            this: None,
            class: None,
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    /// Declares a local in the innermost scope.
    pub fn declare(&mut self, name: Symbol, v: Value) {
        self.scopes
            .last_mut()
            .expect("frame has a scope")
            .insert(name, v);
    }

    fn lookup(&self, name: Symbol) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(&name))
    }

    /// Public lookup (used by the `maya.tree` bridge to resolve template
    /// slot names against the metaprogram frame).
    pub fn get_local(&self, name: Symbol) -> Option<Value> {
        self.lookup(name).cloned()
    }

    fn assign(&mut self, name: Symbol, v: Value) -> bool {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(&name) {
                *slot = v;
                return true;
            }
        }
        false
    }
}

/// The interpreter. All evaluation methods take `&self`; mutable state is
/// interior.
pub struct Interp {
    pub ct: Rc<ClassTable>,
    natives: RefCell<HashMap<Symbol, NativeFn>>,
    statics: RefCell<HashMap<(ClassId, Symbol), Value>>,
    initializing: RefCell<HashSet<ClassId, BuildPtrHasher>>,
    initialized: RefCell<HashSet<ClassId, BuildPtrHasher>>,
    /// Captured program output (`System.out` / `System.err`).
    pub out: RefCell<String>,
    /// Echo output to the real stdout as well.
    pub echo: bool,
    class_ctx: RefCell<HashMap<ClassId, ResolveCtx>>,
    default_ctx: RefCell<ResolveCtx>,
    /// Hook used by the compiler to parse/check lazy bodies on first call.
    forcer: RefCell<Option<Rc<dyn Fn(&Interp, &LazyNode, ClassId) -> Result<(), RuntimeError>>>>,
    /// Hook used by the compiler to evaluate template (quasiquote)
    /// expressions inside metaprogram bodies.
    template_hook:
        RefCell<Option<Rc<dyn Fn(&Interp, &maya_ast::TemplateLit, &mut Frame) -> Eval>>>,
    /// Call-depth guard.
    pub(crate) depth: Cell<u32>,
    /// Maximum interpreted call depth before a "stack overflow" error.
    pub(crate) stack_limit: Cell<u32>,
    /// Maximum statements executed before a "step limit" error
    /// (`u64::MAX` = unlimited). Guards against runaway metaprograms.
    step_limit: Cell<u64>,
    /// Statements executed since the last [`Interp::reset_steps`].
    steps: Cell<u64>,
    /// Hook supplying expansion frames ("Mayan F at file:line:col") to
    /// attach to runtime errors; installed by the compiler.
    frame_provider: RefCell<Option<Rc<dyn Fn() -> Vec<String>>>>,
    /// Shape caches (field layouts, method rows, ctor rows), epoch-guarded
    /// against class-table mutation.
    pub(crate) caches: RuntimeCaches,
    /// Per-interpreter memo: lazy-body cell pointer → lowering outcome.
    /// The entry pins its [`LazyNode`] so the keyed allocation stays alive.
    lowered: RefCell<HashMap<usize, LoweredEntry, BuildPtrHasher>>,
    /// Session-wide lowered-body store (shared via the force cache so warm
    /// `mayad` runs reuse lowered code across compilers).
    lower_store: RefCell<Rc<LowerStore>>,
    /// Master switch for the fast path (`MAYA_NO_LOWER=1` turns it off).
    lower_enabled: Cell<bool>,
    /// Master switch for the bytecode tier (`MAYA_NO_BYTECODE=1` turns it
    /// off; lowered bodies then run on the tree walker).
    bc_enabled: Cell<bool>,
    /// Mirror of `maya_telemetry::profiling()`, synced at the public entry
    /// points so the per-call and per-binary-op hooks cost one field load
    /// instead of a thread-local lookup.
    pub(crate) profile: Cell<bool>,
    /// Recycled slot buffers: argument vectors become lowered frames, and
    /// finished frames come back here, so steady-state lowered calls do not
    /// touch the allocator at all.
    pub(crate) frame_pool: RefCell<Vec<Vec<Value>>>,
}

struct LoweredEntry {
    _pin: LazyNode,
    result: Option<Rc<LoweredBody>>,
}

/// Hashes a single integer key (body-cell address, class id) by
/// multiplication alone.  These maps are probed on every method invocation;
/// SipHash on a word-sized key is measurable overhead there, and the keys
/// are already well distributed.
#[derive(Default)]
struct PtrHasher(u64);

impl std::hash::Hasher for PtrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PtrHasher only hashes integer keys");
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type BuildPtrHasher = std::hash::BuildHasherDefault<PtrHasher>;

/// One activation record of the fast path: a flat slot frame.
struct LFrame {
    slots: Vec<Value>,
    this: Option<Value>,
    class: Option<ClassId>,
}

impl Interp {
    /// Creates an interpreter over a class table (runtime library must have
    /// been installed with [`crate::install_runtime`]).
    pub fn new(ct: Rc<ClassTable>) -> Interp {
        let i = Interp {
            ct,
            natives: RefCell::new(HashMap::new()),
            statics: RefCell::new(HashMap::new()),
            initializing: RefCell::new(HashSet::default()),
            initialized: RefCell::new(HashSet::default()),
            out: RefCell::new(String::new()),
            echo: false,
            class_ctx: RefCell::new(HashMap::new()),
            default_ctx: RefCell::new(ResolveCtx::default()),
            forcer: RefCell::new(None),
            template_hook: RefCell::new(None),
            depth: Cell::new(0),
            stack_limit: Cell::new(128),
            step_limit: Cell::new(u64::MAX),
            steps: Cell::new(0),
            frame_provider: RefCell::new(None),
            caches: RuntimeCaches::new(),
            lowered: RefCell::new(HashMap::default()),
            lower_store: RefCell::new(Rc::new(LowerStore::new())),
            lower_enabled: Cell::new(
                std::env::var("MAYA_NO_LOWER").map_or(true, |v| v.is_empty() || v == "0"),
            ),
            bc_enabled: Cell::new(
                std::env::var("MAYA_NO_BYTECODE").map_or(true, |v| v.is_empty() || v == "0"),
            ),
            profile: Cell::new(false),
            frame_pool: RefCell::new(Vec::new()),
        };
        crate::runtime::register_natives(&i);
        i
    }

    /// Turns the lowering fast path on or off (the `MAYA_NO_LOWER`
    /// environment variable sets the initial state).
    pub fn set_lowering(&self, on: bool) {
        self.lower_enabled.set(on);
    }

    /// Turns the bytecode tier on or off (the `MAYA_NO_BYTECODE`
    /// environment variable sets the initial state). Only meaningful when
    /// lowering is also enabled — the tier compiles lowered bodies.
    pub fn set_bytecode(&self, on: bool) {
        self.bc_enabled.set(on);
    }

    /// Whether the bytecode tier is enabled.
    pub fn bytecode_enabled(&self) -> bool {
        self.bc_enabled.get()
    }

    /// True when the lowering fast path is active.
    pub fn lowering_enabled(&self) -> bool {
        self.lower_enabled.get()
    }

    /// Installs a shared lowered-body store (the compiler wires the session
    /// force cache's store here so lowered bodies survive across compilers).
    pub fn set_lower_store(&self, store: Rc<LowerStore>) {
        *self.lower_store.borrow_mut() = store;
    }

    /// The current field layout of `class` (epoch-synced, memoized).
    pub(crate) fn layout_of(&self, class: ClassId) -> Rc<crate::FieldLayout> {
        self.caches.sync(&self.ct);
        self.caches.layout(&self.ct, class)
    }

    /// Registers a native method implementation.
    pub fn register_native(&self, key: &str, f: NativeFn) {
        self.natives.borrow_mut().insert(sym(key), f);
    }

    /// Installs the lazy-body forcer.
    pub fn set_forcer(&self, f: Rc<dyn Fn(&Interp, &LazyNode, ClassId) -> Result<(), RuntimeError>>) {
        *self.forcer.borrow_mut() = Some(f);
    }

    /// Installs the template-expression evaluator (the `maya.tree` bridge).
    pub fn set_template_hook(
        &self,
        f: Rc<dyn Fn(&Interp, &maya_ast::TemplateLit, &mut Frame) -> Eval>,
    ) {
        *self.template_hook.borrow_mut() = Some(f);
    }

    /// Sets the maximum interpreted call depth.
    pub fn set_stack_limit(&self, limit: u32) {
        self.stack_limit.set(limit.max(1));
    }

    /// Sets the maximum statements per [`Interp::run_main`] /
    /// metaprogram invocation (`u64::MAX` = unlimited).
    pub fn set_step_limit(&self, limit: u64) {
        self.step_limit.set(limit.max(1));
    }

    /// Resets the step budget (call before each top-level invocation).
    pub fn reset_steps(&self) {
        self.steps.set(0);
    }

    /// Installs the expansion-frame provider used to annotate runtime
    /// errors raised inside metaprogram bodies.
    pub fn set_frame_provider(&self, f: Rc<dyn Fn() -> Vec<String>>) {
        *self.frame_provider.borrow_mut() = Some(f);
    }

    /// Records the lexical resolution context for a class's code.
    pub fn set_class_ctx(&self, class: ClassId, ctx: ResolveCtx) {
        self.class_ctx.borrow_mut().insert(class, ctx);
    }

    /// Sets the fallback resolution context.
    pub fn set_default_ctx(&self, ctx: ResolveCtx) {
        *self.default_ctx.borrow_mut() = ctx;
    }

    /// Appends to captured output.
    pub fn write_out(&self, s: &str) {
        self.out.borrow_mut().push_str(s);
        if self.echo {
            print!("{s}");
        }
    }

    /// Takes the captured output.
    pub fn take_output(&self) -> String {
        std::mem::take(&mut self.out.borrow_mut())
    }

    fn ctx_for(&self, class: Option<ClassId>) -> ResolveCtx {
        class
            .and_then(|c| self.class_ctx.borrow().get(&c).cloned())
            .unwrap_or_else(|| self.default_ctx.borrow().clone())
    }

    /// Renders a value the way Java string conversion would.
    pub fn display(&self, v: &Value) -> String {
        match v {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Char(c) => c.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Long(l) => l.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Double(d) => d.to_string(),
            Value::Str(s) => s.to_string(),
            Value::Object(_) | Value::Native(_) => {
                // Try a toString override (the Object default never calls
                // back into display()).
                match self.invoke_by_name(v.clone(), sym("toString"), vec![], Span::DUMMY) {
                    Ok(Value::Str(s)) => s.to_string(),
                    _ => match v {
                        Value::Native(n) => n.display(),
                        Value::Object(o) => {
                            format!("{}@obj", self.ct.fqcn(o.class))
                        }
                        _ => unreachable!(),
                    },
                }
            }
            Value::Array(a) => format!("<array[{}]>", a.data.borrow().len()),
            Value::ClassRef(c) => format!("class {}", self.ct.fqcn(*c)),
        }
    }

    // ---- class initialization ---------------------------------------------

    pub(crate) fn ensure_init(&self, class: ClassId) -> Result<(), Control> {
        if self.initialized.borrow().contains(&class)
            || self.initializing.borrow().contains(&class)
        {
            return Ok(());
        }
        self.initializing.borrow_mut().insert(class);
        let info = self.ct.info(class);
        let (sup, static_fields): (Option<ClassId>, Vec<(Symbol, Option<Expr>, Type)>) = {
            let info = info.borrow();
            (
                info.superclass,
                info.fields
                    .iter()
                    .filter(|f| f.modifiers.is_static())
                    .map(|f| (f.name, f.init.clone(), f.ty.clone()))
                    .collect(),
            )
        };
        if let Some(s) = sup {
            self.ensure_init(s)?;
        }
        for (name, init, ty) in static_fields {
            let v = match init {
                Some(e) => {
                    let mut frame = Frame::new();
                    frame.class = Some(class);
                    self.eval(&e, &mut frame)?
                }
                None => Value::default_for(&ty),
            };
            self.statics.borrow_mut().insert((class, name), v);
        }
        self.initializing.borrow_mut().remove(&class);
        self.initialized.borrow_mut().insert(class);
        Ok(())
    }

    /// Reads a static field (initializing the class first).
    pub fn static_field(&self, class: ClassId, name: Symbol) -> Eval {
        self.ensure_init(class)?;
        // Walk up the hierarchy for inherited statics.
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(v) = self.statics.borrow().get(&(c, name)) {
                return Ok(v.clone());
            }
            cur = self.ct.info(c).borrow().superclass;
        }
        Err(Control::error(
            format!("uninitialized static {}.{}", self.ct.fqcn(class), name),
            Span::DUMMY,
        ))
    }

    /// Writes a static field.
    pub fn set_static_field(&self, class: ClassId, name: Symbol, v: Value) -> Result<(), Control> {
        self.ensure_init(class)?;
        self.statics.borrow_mut().insert((class, name), v);
        Ok(())
    }

    // ---- invocation ---------------------------------------------------------

    /// Re-reads the thread's profiler switch into the interpreter's cached
    /// mirror. Called at the public entry points; everything below them
    /// reads the cached field.
    fn sync_profile(&self) {
        self.profile.set(maya_telemetry::profiling());
    }

    /// The profiler label of a resolved method. Only ever called from
    /// inside a lazy profiler closure, so it is kept out of the hot
    /// instruction stream.
    #[cold]
    #[inline(never)]
    pub(crate) fn method_label(&self, class: ClassId, m: &MethodInfo) -> String {
        format!("{}.{}/{}", self.ct.fqcn(class), m.name, m.params.len())
    }

    /// Invokes the best matching method named `name` on `recv` with `args`
    /// (virtual dispatch on the receiver's dynamic class).
    pub fn invoke_by_name(&self, recv: Value, name: Symbol, args: Vec<Value>, span: Span) -> Eval {
        self.sync_profile();
        let class = recv.class_of(&self.ct).ok_or_else(|| {
            Control::error(
                format!("cannot invoke {name} on {:?}", recv),
                span,
            )
        })?;
        let m = self.select_method(class, name, &args, span)?;
        self.invoke(Some(recv), class, &m, args, span)
    }

    /// Invokes a static method of a class.
    pub fn invoke_static(&self, class: ClassId, name: Symbol, args: Vec<Value>, span: Span) -> Eval {
        self.sync_profile();
        self.ensure_init(class)?;
        let m = self.select_method(class, name, &args, span)?;
        self.invoke(None, class, &m, args, span)
            .map_err(|c| self.attach_frames(c))
    }

    /// Annotates an error with the current expansion frames (innermost
    /// first) if a provider is installed and none are attached yet.
    pub(crate) fn attach_frames(&self, c: Control) -> Control {
        match c {
            Control::Error(mut e) if e.frames.is_empty() => {
                if let Some(p) = self.frame_provider.borrow().clone() {
                    e.frames = p();
                }
                Control::Error(e)
            }
            other => other,
        }
    }

    fn select_method(
        &self,
        class: ClassId,
        name: Symbol,
        args: &[Value],
        span: Span,
    ) -> Result<Rc<MethodInfo>, Control> {
        self.caches.sync(&self.ct);
        let row = self.caches.row(&self.ct, class, name);
        self.select_from_row(&row, class, name, args, span)
    }

    pub(crate) fn select_from_row(
        &self,
        row: &[(ClassId, Rc<MethodInfo>)],
        class: ClassId,
        name: Symbol,
        args: &[Value],
        span: Span,
    ) -> Result<Rc<MethodInfo>, Control> {
        let arg_types: Vec<Type> = args.iter().map(|a| a.runtime_type(&self.ct)).collect();
        let applicable: Vec<&(ClassId, Rc<MethodInfo>)> = row
            .iter()
            .filter(|(_, m)| {
                m.params.len() == args.len()
                    && m.params
                        .iter()
                        .zip(&arg_types)
                        .all(|(p, a)| self.ct.is_assignable(a, p))
            })
            .collect();
        // Most specific by pointwise assignability; falls back to the first
        // applicable (the checker already validated the static call).
        let best = applicable
            .iter()
            .find(|m| {
                applicable.iter().all(|n| {
                    m.1.params
                        .iter()
                        .zip(&n.1.params)
                        .all(|(a, b)| self.ct.is_assignable(a, b))
                })
            })
            .or_else(|| applicable.first());
        match best {
            Some((_, m)) => Ok(m.clone()),
            None => Err(Control::error(
                format!(
                    "no applicable method {}.{}({:?})",
                    self.ct.fqcn(class),
                    name,
                    arg_types.iter().map(|t| self.ct.describe(t)).collect::<Vec<_>>()
                ),
                span,
            )),
        }
    }

    /// Dispatches through a call-site inline cache.
    ///
    /// A cached target is only trusted after re-verifying the actual
    /// argument types against its parameters (dynamic values may be more
    /// specific than the cache's fill-time arguments were), and the cache is
    /// only filled when the target is the *sole* candidate at this arity —
    /// together this guarantees the fast path picks exactly what the full
    /// search would.
    fn invoke_ic(
        &self,
        recv: Option<Value>,
        class: ClassId,
        name: Symbol,
        args: Vec<Value>,
        site: &CallSite,
        span: Span,
    ) -> Eval {
        let epoch = self.caches.sync(&self.ct);
        let ck = class_key(Some(class));
        if let Some(m) = site.get(epoch, ck) {
            // Exactness fast path: if the current arguments classify
            // identically to the last verified hit's, their runtime types
            // are identical, so the per-argument assignability loop would
            // return the same verdict — skip it.
            let exact = site.exact_hit(&args);
            let ok = exact
                || (m.params.len() == args.len()
                    && m.params
                        .iter()
                        .zip(args.iter())
                        .all(|(p, a)| self.ct.is_assignable(&a.runtime_type(&self.ct), p)));
            if ok {
                if !exact {
                    site.note_exact(&args);
                }
                maya_telemetry::count(maya_telemetry::Counter::IcHits);
                let profiled = self.profile.get();
                if profiled {
                    maya_telemetry::prof_site(site as *const CallSite as usize, true, || {
                        format!("{}.{}/{}", self.ct.fqcn(class), name, args.len())
                    });
                }
                // Monomorphic fast path: the target's lowered body is cached
                // on the site, so a verified hit goes straight to lowered
                // execution.  Mirrors `invoke`/`invoke_inner` exactly (same
                // depth guard and error, same counters).
                if let Some(lb) = site.lowered_body() {
                    let d = self.depth.get() + 1;
                    let limit = self.stack_limit.get();
                    if d > limit {
                        maya_telemetry::count(maya_telemetry::Counter::StepLimitHits);
                        return Err(Control::error(
                            format!("stack overflow (call depth > {limit})"),
                            span,
                        ));
                    }
                    self.depth.set(d);
                    maya_telemetry::count(maya_telemetry::Counter::InterpCalls);
                    if profiled {
                        maya_telemetry::prof_enter(Rc::as_ptr(&m) as usize, || {
                            self.method_label(class, &m)
                        });
                    }
                    let result = self.exec_lowered(&lb, recv, class, args);
                    if profiled {
                        maya_telemetry::prof_exit();
                    }
                    self.depth.set(self.depth.get() - 1);
                    return result;
                }
                let r = self.invoke(recv, class, &m, args, span);
                // The body is forced (and lowered, when lowerable) after the
                // first full invoke; remember the lowered form so later hits
                // skip the per-body memo.  `fill` resets this cache, so it
                // can never pair with a different target.
                if let Some(body) = &m.body {
                    if m.native.is_none() && body.is_forced() {
                        if let Some(lb) = self.lowered_body(body, &m.param_names) {
                            site.set_lowered(&m, lb);
                        }
                    }
                }
                return r;
            }
        }
        maya_telemetry::count(maya_telemetry::Counter::IcMisses);
        if self.profile.get() {
            maya_telemetry::prof_site(site as *const CallSite as usize, false, || {
                format!("{}.{}/{}", self.ct.fqcn(class), name, args.len())
            });
        }
        let row = self.caches.row(&self.ct, class, name);
        let m = self.select_from_row(&row, class, name, &args, span)?;
        let sole_at_arity = row
            .iter()
            .filter(|(_, c)| c.params.len() == args.len())
            .count()
            == 1;
        if sole_at_arity {
            site.fill(epoch, ck, m.clone());
        }
        self.invoke(recv, class, &m, args, span)
    }

    /// Invokes a resolved method.
    pub fn invoke(
        &self,
        recv: Option<Value>,
        class: ClassId,
        m: &MethodInfo,
        args: Vec<Value>,
        span: Span,
    ) -> Eval {
        let d = self.depth.get() + 1;
        // Conservative: each interpreted frame uses many host frames,
        // and debug builds have large frames.
        let limit = self.stack_limit.get();
        if d > limit {
            maya_telemetry::count(maya_telemetry::Counter::StepLimitHits);
            return Err(Control::error(
                format!("stack overflow (call depth > {limit})"),
                span,
            ));
        }
        self.depth.set(d);
        let profiled = self.profile.get();
        if profiled {
            maya_telemetry::prof_enter(m as *const MethodInfo as usize, || {
                self.method_label(class, m)
            });
        }
        let result = self.invoke_inner(recv, class, m, args, span);
        if profiled {
            maya_telemetry::prof_exit();
        }
        self.depth.set(self.depth.get() - 1);
        result
    }

    fn invoke_inner(
        &self,
        recv: Option<Value>,
        class: ClassId,
        m: &MethodInfo,
        args: Vec<Value>,
        span: Span,
    ) -> Eval {
        maya_telemetry::count(maya_telemetry::Counter::InterpCalls);
        if let Some(key) = m.native {
            let f = self.natives.borrow().get(&key).cloned();
            let f = f.ok_or_else(|| {
                Control::error(format!("missing native implementation {key}"), span)
            })?;
            return f(self, recv.unwrap_or(Value::Null), args);
        }
        let Some(body) = &m.body else {
            return Err(Control::error(
                format!("abstract method {} called", m.name),
                span,
            ));
        };
        self.force_body(body, class, span)?;
        if let Some(lb) = self.lowered_body(body, &m.param_names) {
            return self.exec_lowered(&lb, recv, class, args);
        }
        let node = body.forced_node().ok_or_else(|| {
            Control::error("internal error: body not forced", span)
        })?;
        let mut frame = Frame::new();
        frame.class = Some(class);
        frame.this = recv;
        for (name, v) in m.param_names.iter().zip(args) {
            frame.declare(*name, v);
        }
        match self.exec_node(&node, &mut frame) {
            Ok(()) => Ok(Value::Null), // void fall-through
            Err(Control::Return(v)) => Ok(v),
            Err(other) => Err(other),
        }
    }

    /// The lowered form of a (forced) lazy body, or `None` when lowering is
    /// disabled or the body is unlowerable.  Memoized per body cell, and
    /// shared across interpreters through the [`LowerStore`] keyed by the
    /// body's structural fingerprint.
    pub(crate) fn lowered_body(&self, body: &LazyNode, params: &[Symbol]) -> Option<Rc<LoweredBody>> {
        if !self.lower_enabled.get() {
            return None;
        }
        let key = Rc::as_ptr(&body.cell) as usize;
        if let Some(e) = self.lowered.borrow().get(&key) {
            return e.result.clone();
        }
        let result = self.lower_uncached(body, params);
        self.lowered.borrow_mut().insert(
            key,
            LoweredEntry {
                _pin: body.clone(),
                result: result.clone(),
            },
        );
        result
    }

    fn lower_uncached(&self, body: &LazyNode, params: &[Symbol]) -> Option<Rc<LoweredBody>> {
        let node = body.forced_node()?;
        let Node::Block(block) = node else {
            return None;
        };
        // Unfingerprintable bodies (unforced lazy statements, templates,
        // poison nodes) are exactly the unlowerable ones.
        let fp = lower::body_fingerprint(&block)?;
        let store = self.lower_store.borrow().clone();
        if let Some(hit) = store.get(fp, params) {
            return hit;
        }
        let result = lower::lower_body(&block, params).ok().map(Rc::new);
        store.insert(fp, params, result.clone());
        result
    }

    /// Runs a lowered body: a flat slot frame, argument slots first.  The
    /// argument vector *becomes* the frame (extended with null slots), so
    /// the hot call path performs no extra allocation.
    pub(crate) fn exec_lowered(
        &self,
        lb: &LoweredBody,
        this: Option<Value>,
        class: ClassId,
        mut args: Vec<Value>,
    ) -> Eval {
        // Third tier: run compiled bytecode when available. The VM mirrors
        // the tree walker below exactly; bodies that can't compile (e.g.
        // try/catch) memoize `Unsupported` and keep taking this path.
        if self.bc_enabled.get() {
            if let Some(bc) = self.bytecode_for(lb) {
                return self.run_bc(&bc, this, class, args);
            }
        }
        args.truncate(lb.n_params);
        args.resize(lb.n_slots, Value::Null);
        let mut f = LFrame {
            slots: args,
            this,
            class: Some(class),
        };
        let r = self.exec_l_stmts(&lb.code, &mut f);
        let mut slots = f.slots;
        slots.clear();
        {
            let mut pool = self.frame_pool.borrow_mut();
            if pool.len() < 32 {
                pool.push(slots);
            }
        }
        match r {
            Ok(()) => Ok(Value::Null), // void fall-through
            Err(Control::Return(v)) => Ok(v),
            Err(other) => Err(other),
        }
    }

    // ---- lowered statements -------------------------------------------------
    //
    // Every arm mirrors its `exec`/`eval` counterpart: same step charges,
    // same evaluation order, same error strings and spans.

    fn exec_l_stmts(&self, stmts: &[LStmt], f: &mut LFrame) -> Result<(), Control> {
        for s in stmts {
            self.exec_l(s, f)?;
        }
        Ok(())
    }

    fn exec_l(&self, s: &LStmt, f: &mut LFrame) -> Result<(), Control> {
        self.count_step(s.span)?;
        match &s.kind {
            LStmtKind::Block(stmts) => self.exec_l_stmts(stmts, f),
            LStmtKind::Expr(e) => self.eval_l(e, f).map(|_| ()),
            LStmtKind::Decl { ty, decls } => {
                let base = self.resolve_type_slot(ty, f.class, s.span)?;
                for d in decls {
                    let v = match &d.init {
                        Some(e) => self.eval_l(e, f)?,
                        None => {
                            let mut t = base.clone();
                            for _ in 0..d.dims {
                                t = t.array_of();
                            }
                            Value::default_for(&t)
                        }
                    };
                    f.slots[d.slot as usize] = v;
                }
                Ok(())
            }
            LStmtKind::If(c, t, e) => {
                if self.truthy_l(c, f)? {
                    self.exec_l(t, f)
                } else if let Some(e) = e {
                    self.exec_l(e, f)
                } else {
                    Ok(())
                }
            }
            LStmtKind::While(c, body) => {
                while self.truthy_l(c, f)? {
                    match self.exec_l(body, f) {
                        Ok(()) | Err(Control::Continue) => {}
                        Err(Control::Break) => break,
                        Err(other) => return Err(other),
                    }
                }
                Ok(())
            }
            LStmtKind::Do(body, c) => {
                loop {
                    match self.exec_l(body, f) {
                        Ok(()) | Err(Control::Continue) => {}
                        Err(Control::Break) => break,
                        Err(other) => return Err(other),
                    }
                    if !self.truthy_l(c, f)? {
                        break;
                    }
                }
                Ok(())
            }
            LStmtKind::For {
                init_decl,
                init_exprs,
                cond,
                update,
                body,
            } => {
                if let Some(d) = init_decl {
                    self.exec_l(d, f)?;
                }
                for e in init_exprs {
                    self.eval_l(e, f)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.truthy_l(c, f)? {
                            break;
                        }
                    }
                    match self.exec_l(body, f) {
                        Ok(()) | Err(Control::Continue) => {}
                        Err(Control::Break) => break,
                        Err(other) => return Err(other),
                    }
                    for u in update {
                        self.eval_l(u, f)?;
                    }
                }
                Ok(())
            }
            LStmtKind::Return(e) => {
                let value = match e {
                    Some(e) => self.eval_l(e, f)?,
                    None => Value::Null,
                };
                Err(Control::Return(value))
            }
            LStmtKind::Break => Err(Control::Break),
            LStmtKind::Continue => Err(Control::Continue),
            LStmtKind::Throw(e) => {
                let v = self.eval_l(e, f)?;
                Err(Control::Throw(v))
            }
            LStmtKind::Try {
                body,
                catches,
                finally,
            } => {
                let mut result = self.exec_l_stmts(body, f);
                if let Err(Control::Throw(exc)) = &result {
                    let exc = exc.clone();
                    let exc_class = exc.class_of(&self.ct);
                    for c in catches {
                        // Legacy resolves each catch type at exception time,
                        // reporting errors at the try statement's span.
                        let catch_ty = self.resolve_type_slot(&c.ty, f.class, s.span)?;
                        let matches = match (&catch_ty, exc_class) {
                            (Type::Class(want), Some(have)) => {
                                self.ct.is_subclass_or_eq(have, *want)
                            }
                            _ => false,
                        };
                        if matches {
                            f.slots[c.param_slot as usize] = exc;
                            result = self.exec_l_stmts(&c.body, f);
                            break;
                        }
                    }
                }
                if let Some(fin) = finally {
                    self.exec_l_stmts(fin, f)?;
                }
                result
            }
            LStmtKind::Empty => Ok(()),
        }
    }

    fn truthy_l(&self, e: &LExpr, f: &mut LFrame) -> Result<bool, Control> {
        match self.eval_l(e, f)? {
            Value::Bool(b) => Ok(b),
            other => Err(Control::error(
                format!("condition evaluated to non-boolean {other:?}"),
                e.span,
            )),
        }
    }

    /// Resolves a lowered type reference through its per-site cache.
    pub(crate) fn resolve_type_slot(
        &self,
        ts: &TypeSlot,
        class: Option<ClassId>,
        span: Span,
    ) -> Result<Type, Control> {
        let epoch = self.caches.sync(&self.ct);
        let ck = class_key(class);
        if let Some(t) = ts.get(epoch, ck) {
            return Ok(t);
        }
        let ctx = self.ctx_for(class);
        let t = self
            .ct
            .resolve_type_name(&ts.tn, &ctx)
            .map_err(|e| Control::error(e.message, span))?;
        ts.fill(epoch, ck, t.clone());
        Ok(t)
    }

    // ---- lowered expressions ------------------------------------------------

    fn eval_l(&self, e: &LExpr, f: &mut LFrame) -> Eval {
        match &e.kind {
            LExprKind::Const(v) => Ok(v.clone()),
            LExprKind::Local(slot) => Ok(f.slots[*slot as usize].clone()),
            LExprKind::EnvName(name) => self.env_name(*name, f.this.as_ref(), f.class, e.span),
            LExprKind::This => f
                .this
                .clone()
                .ok_or_else(|| Control::error("no `this` in scope", e.span)),
            LExprKind::ClassRefName(fqcn) => {
                let c = self
                    .ct
                    .by_fqcn(*fqcn)
                    .ok_or_else(|| Control::error(format!("unknown class {fqcn}"), e.span))?;
                Ok(Value::ClassRef(c))
            }
            LExprKind::FieldGet { target, name, site } => {
                let t = self.eval_l(target, f)?;
                match t {
                    Value::Object(obj) => {
                        let lp = Rc::as_ptr(&obj.layout) as usize;
                        if let Some(off) = site.get(lp) {
                            return Ok(obj.get_slot(off));
                        }
                        if let Some(off) = obj.layout.offset(*name) {
                            site.fill(lp, off);
                            return Ok(obj.get_slot(off));
                        }
                        obj.get(*name)
                            .ok_or_else(|| Control::error(format!("no field {name}"), e.span))
                    }
                    other => self.field_of(other, *name, e.span),
                }
            }
            LExprKind::ArrayGet(a, i) => {
                let arr = self.eval_l(a, f)?;
                let idx = self.int_of(self.eval_l(i, f)?, i.span)?;
                match arr {
                    Value::Array(a) => {
                        let data = a.data.borrow();
                        data.get(idx as usize).cloned().ok_or_else(|| {
                            self.throw_simple("java.lang.ArrayIndexOutOfBoundsException", e.span)
                        })
                    }
                    Value::Null => Err(self.throw_simple("java.lang.NullPointerException", e.span)),
                    other => Err(Control::error(format!("not an array: {other:?}"), e.span)),
                }
            }
            LExprKind::New { ty, args } => {
                let t = self.resolve_type_slot(ty, f.class, e.span)?;
                let Type::Class(c) = t else {
                    return Err(Control::error("cannot instantiate non-class", e.span));
                };
                let vals = args
                    .iter()
                    .map(|a| self.eval_l(a, f))
                    .collect::<Result<Vec<_>, _>>()?;
                self.construct(c, vals, e.span)
            }
            LExprKind::NewArray {
                elem,
                extra_dims,
                dims,
            } => {
                let base = self.resolve_type_slot(elem, f.class, e.span)?;
                let mut elem_ty = base;
                for _ in 0..*extra_dims {
                    elem_ty = elem_ty.array_of();
                }
                let sizes = dims
                    .iter()
                    .map(|d| {
                        let v = self.eval_l(d, f)?;
                        self.int_of(v, d.span)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                self.alloc_array(&elem_ty, &sizes, e.span)
            }
            LExprKind::Binary(op, l, r) => {
                if self.profile.get() {
                    self.prof_binop_l(*op, l, r);
                }
                if *op == BinOp::And {
                    return Ok(Value::Bool(
                        self.truthy_l(l, f)? && self.truthy_l(r, f)?,
                    ));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Bool(
                        self.truthy_l(l, f)? || self.truthy_l(r, f)?,
                    ));
                }
                let lv = self.eval_l(l, f)?;
                let rv = self.eval_l(r, f)?;
                self.binary_l_values(*op, &lv, &rv, e.span)
            }
            LExprKind::Unary(op, x) => {
                let v = self.eval_l(x, f)?;
                self.eval_unary(*op, v, e.span)
            }
            LExprKind::IncDec {
                op,
                prefix,
                read,
                write,
            } => {
                let old = self.eval_l(read, f)?;
                let delta = if *op == IncDecOp::Inc { 1 } else { -1 };
                let new = match old {
                    Value::Int(v) => Value::Int(v.wrapping_add(delta)),
                    Value::Long(v) => Value::Long(v.wrapping_add(delta as i64)),
                    Value::Double(v) => Value::Double(v + delta as f64),
                    Value::Float(v) => Value::Float(v + delta as f32),
                    Value::Char(c) => Value::Int(c as i32 + delta),
                    other => {
                        return Err(Control::error(format!("cannot ++/-- {other:?}"), e.span))
                    }
                };
                self.assign_l(write, new.clone(), f)?;
                Ok(if *prefix { new } else { old })
            }
            LExprKind::Assign {
                op,
                read,
                write,
                value,
            } => {
                let rv = self.eval_l(value, f)?;
                let out = match op {
                    None => rv,
                    Some(binop) => {
                        let read = read.as_ref().expect("compound assign has a read");
                        let lv = self.eval_l(read, f)?;
                        self.binary_l_values(*binop, &lv, &rv, e.span)?
                    }
                };
                self.assign_l(write, out.clone(), f)?;
                Ok(out)
            }
            LExprKind::Cond(c, t, el) => {
                if self.truthy_l(c, f)? {
                    self.eval_l(t, f)
                } else {
                    self.eval_l(el, f)
                }
            }
            LExprKind::Cast { ty, x } => {
                let v = self.eval_l(x, f)?;
                let target = self.resolve_type_slot(ty, f.class, e.span)?;
                self.cast(v, &target, e.span)
            }
            LExprKind::Instanceof { x, ty } => {
                let v = self.eval_l(x, f)?;
                let target = self.resolve_type_slot(ty, f.class, e.span)?;
                Ok(Value::Bool(self.value_instanceof(&v, &target)))
            }
            LExprKind::Call { callee, args, site } => {
                // Arguments first, then the receiver — legacy order.  The
                // buffer comes from (and returns to) the frame pool.
                let mut vals = self.frame_pool.borrow_mut().pop().unwrap_or_default();
                for a in args {
                    match self.eval_l(a, f) {
                        Ok(v) => vals.push(v),
                        Err(c) => {
                            vals.clear();
                            self.frame_pool.borrow_mut().push(vals);
                            return Err(c);
                        }
                    }
                }
                self.eval_l_call(callee, vals, site, f, e.span)
            }
        }
    }

    fn eval_l_call(
        &self,
        callee: &LCallee,
        vals: Vec<Value>,
        site: &CallSite,
        f: &mut LFrame,
        span: Span,
    ) -> Eval {
        match callee {
            LCallee::Super(name) => {
                let this = f
                    .this
                    .clone()
                    .ok_or_else(|| Control::error("super call without this", span))?;
                let class = f
                    .class
                    .ok_or_else(|| Control::error("super call without class", span))?;
                let sup = self
                    .ct
                    .info(class)
                    .borrow()
                    .superclass
                    .ok_or_else(|| Control::error("no superclass", span))?;
                self.invoke_ic(Some(this), sup, *name, vals, site, span)
            }
            LCallee::Recv(recv, name) => {
                let r = self.eval_l(recv, f)?;
                match r {
                    Value::ClassRef(c) => {
                        self.ensure_init(c)?;
                        self.invoke_ic(None, c, *name, vals, site, span)
                            .map_err(|c| self.attach_frames(c))
                    }
                    Value::Null => Err(self.throw_simple("java.lang.NullPointerException", span)),
                    other => {
                        let class = other.class_of(&self.ct).ok_or_else(|| {
                            Control::error(format!("cannot invoke {name} on {:?}", other), span)
                        })?;
                        self.invoke_ic(Some(other), class, *name, vals, site, span)
                    }
                }
            }
            LCallee::Implicit(name) => {
                let class = f
                    .class
                    .ok_or_else(|| Control::error("call without enclosing class", span))?;
                match f.this.clone() {
                    Some(this) => {
                        let dyn_class = this.class_of(&self.ct).ok_or_else(|| {
                            Control::error(format!("cannot invoke {name} on {:?}", this), span)
                        })?;
                        self.invoke_ic(Some(this), dyn_class, *name, vals, site, span)
                    }
                    None => {
                        self.ensure_init(class)?;
                        self.invoke_ic(None, class, *name, vals, site, span)
                            .map_err(|c| self.attach_frames(c))
                    }
                }
            }
        }
    }

    fn assign_l(&self, target: &LTarget, v: Value, f: &mut LFrame) -> Result<(), Control> {
        match target {
            LTarget::Local(slot) => {
                f.slots[*slot as usize] = v;
                Ok(())
            }
            LTarget::EnvName(name, span) => {
                self.env_assign_name(*name, v, f.this.as_ref(), f.class, *span)
            }
            LTarget::Field { target, name, span } => {
                let tv = self.eval_l(target, f)?;
                match tv {
                    Value::Object(obj) => {
                        obj.set(*name, v);
                        Ok(())
                    }
                    Value::ClassRef(c) => self.set_static_field(c, *name, v),
                    Value::Null => {
                        Err(self.throw_simple("java.lang.NullPointerException", *span))
                    }
                    other => Err(Control::error(
                        format!("cannot assign field of {other:?}"),
                        *span,
                    )),
                }
            }
            LTarget::Array { arr, idx, span } => {
                let av = self.eval_l(arr, f)?;
                let i = self.int_of(self.eval_l(idx, f)?, idx.span)?;
                match av {
                    Value::Array(a) => {
                        let mut data = a.data.borrow_mut();
                        let len = data.len();
                        match data.get_mut(i as usize) {
                            Some(slot) => {
                                *slot = v;
                                Ok(())
                            }
                            None => Err(Control::error(
                                format!("array index {i} out of bounds ({len})"),
                                *span,
                            )),
                        }
                    }
                    _ => Err(Control::error("not an array", *span)),
                }
            }
            LTarget::Invalid(span) => Err(Control::error("invalid assignment target", *span)),
        }
    }

    fn force_body(&self, body: &LazyNode, class: ClassId, span: Span) -> Result<(), Control> {
        if body.is_forced() {
            return Ok(());
        }
        let f = self.forcer.borrow().clone();
        match f {
            Some(f) => f(self, body, class).map_err(|e| Control::Error(Box::new(e))),
            None => Err(Control::error(
                "method body is unforced and no forcer is installed",
                span,
            )),
        }
    }

    /// Constructs an instance of `class` with constructor `args`.
    pub fn construct(&self, class: ClassId, args: Vec<Value>, span: Span) -> Eval {
        self.ensure_init(class)?;
        // Native classes construct through a native ctor.
        self.caches.sync(&self.ct);
        let ctors = self.caches.ctor_row(&self.ct, class);
        let arg_types: Vec<Type> = args.iter().map(|a| a.runtime_type(&self.ct)).collect();
        let ctor: Option<&CtorInfo> = ctors.iter().find(|c| {
            c.params.len() == args.len()
                && c.params
                    .iter()
                    .zip(&arg_types)
                    .all(|(p, a)| self.ct.is_assignable(a, p))
        });
        if let Some(c) = &ctor {
            if let Some(key) = c.native {
                let f = self.natives.borrow().get(&key).cloned().ok_or_else(|| {
                    Control::error(format!("missing native constructor {key}"), span)
                })?;
                return f(self, Value::Null, args);
            }
        } else if !ctors.is_empty() || !args.is_empty() {
            return Err(Control::error(
                format!("no applicable constructor for {}", self.ct.fqcn(class)),
                span,
            ));
        }

        let layout = self.caches.layout(&self.ct, class);
        let obj = Rc::new(Obj::new(class, layout));
        let this = Value::Object(obj);
        self.init_fields(class, &this)?;
        if let Some(c) = ctor {
            if let Some(body) = &c.body {
                self.force_body(body, class, span)?;
                if let Some(lb) = self.lowered_body(body, &c.param_names) {
                    // A ctor's return value (fall-through or `return`) is
                    // discarded; only abnormal completions propagate.
                    self.exec_lowered(&lb, Some(this.clone()), class, args)?;
                    return Ok(this);
                }
                let node = body
                    .forced_node()
                    .ok_or_else(|| Control::error("ctor body not forced", span))?;
                let mut frame = Frame::new();
                frame.class = Some(class);
                frame.this = Some(this.clone());
                for (name, v) in c.param_names.iter().zip(args) {
                    frame.declare(*name, v);
                }
                match self.exec_node(&node, &mut frame) {
                    Ok(()) | Err(Control::Return(_)) => {}
                    Err(other) => return Err(other),
                }
            }
        }
        Ok(this)
    }

    /// Runs instance field initializers (supers first).
    fn init_fields(&self, class: ClassId, this: &Value) -> Result<(), Control> {
        let info = self.ct.info(class);
        let (sup, fields): (Option<ClassId>, Vec<(Symbol, Option<Expr>, Type)>) = {
            let info = info.borrow();
            (
                info.superclass,
                info.fields
                    .iter()
                    .filter(|f| !f.modifiers.is_static())
                    .map(|f| (f.name, f.init.clone(), f.ty.clone()))
                    .collect(),
            )
        };
        if let Some(s) = sup {
            self.init_fields(s, this)?;
        }
        let Value::Object(obj) = this else {
            return Ok(());
        };
        for (name, init, ty) in fields {
            let v = match init {
                Some(e) => {
                    let mut frame = Frame::new();
                    frame.class = Some(class);
                    frame.this = Some(this.clone());
                    self.eval(&e, &mut frame)?
                }
                None => Value::default_for(&ty),
            };
            obj.set(name, v);
        }
        Ok(())
    }

    /// Convenience: run `ClassName.main()` (no-arg static) and return the
    /// captured output.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures and uncaught exceptions.
    pub fn run_main(&self, class_fqcn: &str) -> Result<String, RuntimeError> {
        let _p = maya_telemetry::phase(maya_telemetry::Phase::Interp);
        let class = self.ct.by_fqcn_str(class_fqcn).ok_or_else(|| {
            RuntimeError::new(format!("unknown class {class_fqcn}"), Span::DUMMY)
        })?;
        match self.invoke_static(class, sym("main"), vec![], Span::DUMMY) {
            Ok(_) => Ok(self.take_output()),
            Err(Control::Throw(v)) => Err(RuntimeError::new(
                format!("uncaught exception: {}", self.display(&v)),
                Span::DUMMY,
            )),
            Err(Control::Error(e)) => Err(*e),
            Err(other) => Err(RuntimeError::new(
                format!("abnormal completion: {other:?}"),
                Span::DUMMY,
            )),
        }
    }

    // ---- statements ---------------------------------------------------------

    /// Executes a node (block, statement, or expression).
    pub fn exec_node(&self, node: &Node, frame: &mut Frame) -> Result<(), Control> {
        match node {
            Node::Block(b) => {
                for s in &b.stmts {
                    self.exec(s, frame)?;
                }
                Ok(())
            }
            Node::Stmt(s) => self.exec(s, frame),
            Node::Expr(e) => self.eval(e, frame).map(|_| ()),
            Node::Unit => Ok(()),
            other => Err(Control::error(
                format!("cannot execute node {:?}", other.node_kind()),
                Span::DUMMY,
            )),
        }
    }

    /// Charges one step against the budget (statements are the unit:
    /// every loop iteration executes at least one).
    pub(crate) fn count_step(&self, span: Span) -> Result<(), Control> {
        let n = self.steps.get() + 1;
        self.steps.set(n);
        let limit = self.step_limit.get();
        if n > limit {
            maya_telemetry::count(maya_telemetry::Counter::StepLimitHits);
            return Err(Control::error(
                format!(
                    "interpreter step limit ({limit}) exceeded; \
                     the program or a metaprogram may be stuck in an infinite loop"
                ),
                span,
            ));
        }
        Ok(())
    }

    /// Executes one statement.
    pub fn exec(&self, s: &Stmt, frame: &mut Frame) -> Result<(), Control> {
        self.count_step(s.span)?;
        match &s.kind {
            StmtKind::Block(b) => {
                frame.push();
                let r = (|| {
                    for s in &b.stmts {
                        self.exec(s, frame)?;
                    }
                    Ok(())
                })();
                frame.pop();
                r
            }
            StmtKind::Expr(e) => self.eval(e, frame).map(|_| ()),
            StmtKind::Decl(tn, decls) => {
                let base = self.resolve_type(tn, frame, s.span)?;
                for d in decls {
                    let mut ty = base.clone();
                    for _ in 0..d.dims {
                        ty = ty.array_of();
                    }
                    let v = match &d.init {
                        Some(e) => self.eval(e, frame)?,
                        None => Value::default_for(&ty),
                    };
                    frame.declare(d.name.sym, v);
                }
                Ok(())
            }
            StmtKind::If(c, t, f) => {
                if self.truthy(c, frame)? {
                    self.exec(t, frame)
                } else if let Some(f) = f {
                    self.exec(f, frame)
                } else {
                    Ok(())
                }
            }
            StmtKind::While(c, body) => {
                while self.truthy(c, frame)? {
                    match self.exec(body, frame) {
                        Ok(()) | Err(Control::Continue) => {}
                        Err(Control::Break) => break,
                        Err(other) => return Err(other),
                    }
                }
                Ok(())
            }
            StmtKind::Do(body, c) => {
                loop {
                    match self.exec(body, frame) {
                        Ok(()) | Err(Control::Continue) => {}
                        Err(Control::Break) => break,
                        Err(other) => return Err(other),
                    }
                    if !self.truthy(c, frame)? {
                        break;
                    }
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                frame.push();
                let r = (|| {
                    match init {
                        ForInit::None => {}
                        ForInit::Decl(tn, decls) => {
                            let stmt = Stmt::synth(StmtKind::Decl(tn.clone(), decls.clone()));
                            self.exec(&stmt, frame)?;
                        }
                        ForInit::Exprs(es) => {
                            for e in es {
                                self.eval(e, frame)?;
                            }
                        }
                    }
                    loop {
                        if let Some(c) = cond {
                            if !self.truthy(c, frame)? {
                                break;
                            }
                        }
                        match self.exec(body, frame) {
                            Ok(()) | Err(Control::Continue) => {}
                            Err(Control::Break) => break,
                            Err(other) => return Err(other),
                        }
                        for u in update {
                            self.eval(u, frame)?;
                        }
                    }
                    Ok(())
                })();
                frame.pop();
                r
            }
            StmtKind::Return(v) => {
                let value = match v {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Null,
                };
                Err(Control::Return(value))
            }
            StmtKind::Break => Err(Control::Break),
            StmtKind::Continue => Err(Control::Continue),
            StmtKind::Throw(e) => {
                let v = self.eval(e, frame)?;
                Err(Control::Throw(v))
            }
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                frame.push();
                let mut result = (|| {
                    for s in &body.stmts {
                        self.exec(s, frame)?;
                    }
                    Ok(())
                })();
                frame.pop();
                if let Err(Control::Throw(exc)) = &result {
                    let exc = exc.clone();
                    let exc_class = exc.class_of(&self.ct);
                    for c in catches {
                        let catch_ty = self.resolve_type(&c.param.ty, frame, s.span)?;
                        let matches = match (&catch_ty, exc_class) {
                            (Type::Class(want), Some(have)) => {
                                self.ct.is_subclass_or_eq(have, *want)
                            }
                            _ => false,
                        };
                        if matches {
                            frame.push();
                            frame.declare(c.param.name.sym, exc);
                            result = (|| {
                                for s in &c.body.stmts {
                                    self.exec(s, frame)?;
                                }
                                Ok(())
                            })();
                            frame.pop();
                            break;
                        }
                    }
                }
                if let Some(fin) = finally {
                    frame.push();
                    let fin_result = (|| {
                        for s in &fin.stmts {
                            self.exec(s, frame)?;
                        }
                        Ok(())
                    })();
                    frame.pop();
                    fin_result?;
                }
                result
            }
            StmtKind::Use(_, body) => {
                // Imports are compile-time; at runtime only the scoped
                // statements remain.
                frame.push();
                let r = (|| {
                    for s in &body.stmts {
                        self.exec(s, frame)?;
                    }
                    Ok(())
                })();
                frame.pop();
                r
            }
            StmtKind::Empty => Ok(()),
            StmtKind::Error => Err(Control::error(
                "cannot execute code that failed to compile",
                s.span,
            )),
            StmtKind::Lazy(l) => {
                if !l.is_forced() {
                    let class = frame.class.ok_or_else(|| {
                        Control::error("lazy statement outside a class context", s.span)
                    })?;
                    self.force_body(l, class, s.span)?;
                }
                let node = l
                    .forced_node()
                    .ok_or_else(|| Control::error("lazy statement not forced", s.span))?;
                self.exec_node(&node, frame)
            }
        }
    }

    fn truthy(&self, e: &Expr, frame: &mut Frame) -> Result<bool, Control> {
        match self.eval(e, frame)? {
            Value::Bool(b) => Ok(b),
            other => Err(Control::error(
                format!("condition evaluated to non-boolean {other:?}"),
                e.span,
            )),
        }
    }

    fn resolve_type(&self, tn: &TypeName, frame: &Frame, span: Span) -> Result<Type, Control> {
        let ctx = self.ctx_for(frame.class);
        self.ct
            .resolve_type_name(tn, &ctx)
            .map_err(|e| Control::error(e.message, span))
    }

    // ---- expressions --------------------------------------------------------

    /// Evaluates an expression.
    pub fn eval(&self, e: &Expr, frame: &mut Frame) -> Eval {
        match &e.kind {
            ExprKind::Literal(l) => Ok(self.lit(l)),
            ExprKind::Name(id) => self.eval_name(id.sym, frame, e.span),
            ExprKind::VarRef(name) => self.eval_name(*name, frame, e.span),
            ExprKind::ClassRef(fqcn) => {
                let c = self.ct.by_fqcn(*fqcn).ok_or_else(|| {
                    Control::error(format!("unknown class {fqcn}"), e.span)
                })?;
                Ok(Value::ClassRef(c))
            }
            ExprKind::FieldAccess(target, name) => {
                let t = self.eval(target, frame)?;
                self.field_of(t, name.sym, e.span)
            }
            ExprKind::Call(mn, args) => self.eval_call(mn, args, frame, e.span),
            ExprKind::ArrayAccess(a, i) => {
                let arr = self.eval(a, frame)?;
                let idx = self.int_of(self.eval(i, frame)?, i.span)?;
                match arr {
                    Value::Array(a) => {
                        let data = a.data.borrow();
                        data.get(idx as usize).cloned().ok_or_else(|| {
                            self.throw_simple("java.lang.ArrayIndexOutOfBoundsException", e.span)
                        })
                    }
                    Value::Null => Err(self.throw_simple("java.lang.NullPointerException", e.span)),
                    other => Err(Control::error(format!("not an array: {other:?}"), e.span)),
                }
            }
            ExprKind::New(tn, args) => {
                let ty = self.resolve_type(tn, frame, e.span)?;
                let Type::Class(c) = ty else {
                    return Err(Control::error("cannot instantiate non-class", e.span));
                };
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, frame))
                    .collect::<Result<Vec<_>, _>>()?;
                self.construct(c, vals, e.span)
            }
            ExprKind::NewArray {
                elem,
                dims,
                extra_dims,
            } => {
                let base = self.resolve_type(elem, frame, e.span)?;
                let mut elem_ty = base;
                for _ in 0..*extra_dims {
                    elem_ty = elem_ty.array_of();
                }
                let sizes = dims
                    .iter()
                    .map(|d| {
                        let v = self.eval(d, frame)?;
                        self.int_of(v, d.span)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                self.alloc_array(&elem_ty, &sizes, e.span)
            }
            ExprKind::Binary(op, l, r) => self.eval_binary(*op, l, r, frame, e.span),
            ExprKind::Unary(op, x) => {
                let v = self.eval(x, frame)?;
                self.eval_unary(*op, v, e.span)
            }
            ExprKind::IncDec(op, prefix, x) => {
                let old = self.eval(x, frame)?;
                let delta = if *op == IncDecOp::Inc { 1 } else { -1 };
                let new = match old {
                    Value::Int(v) => Value::Int(v.wrapping_add(delta)),
                    Value::Long(v) => Value::Long(v.wrapping_add(delta as i64)),
                    Value::Double(v) => Value::Double(v + delta as f64),
                    Value::Float(v) => Value::Float(v + delta as f32),
                    Value::Char(c) => Value::Int(c as i32 + delta),
                    other => {
                        return Err(Control::error(format!("cannot ++/-- {other:?}"), e.span))
                    }
                };
                self.assign_to(x, new.clone(), frame)?;
                Ok(if *prefix { new } else { old })
            }
            ExprKind::Assign(op, l, r) => {
                let rv = self.eval(r, frame)?;
                let value = match op {
                    None => rv,
                    Some(binop) => {
                        let lv = self.eval(l, frame)?;
                        self.binary_values(*binop, &lv, &rv, e.span)?
                    }
                };
                self.assign_to(l, value.clone(), frame)?;
                Ok(value)
            }
            ExprKind::Cond(c, t, f) => {
                if self.truthy(c, frame)? {
                    self.eval(t, frame)
                } else {
                    self.eval(f, frame)
                }
            }
            ExprKind::Cast(tn, x) => {
                let v = self.eval(x, frame)?;
                let target = self.resolve_type(tn, frame, e.span)?;
                self.cast(v, &target, e.span)
            }
            ExprKind::Instanceof(x, tn) => {
                let v = self.eval(x, frame)?;
                let target = self.resolve_type(tn, frame, e.span)?;
                Ok(Value::Bool(self.value_instanceof(&v, &target)))
            }
            ExprKind::This => frame
                .this
                .clone()
                .ok_or_else(|| Control::error("no `this` in scope", e.span)),
            ExprKind::Template(t) => {
                let hook = self.template_hook.borrow().clone();
                match hook {
                    Some(h) => h(self, t, frame),
                    None => Err(Control::error(
                        "template expressions only execute inside metaprograms \
                         (install the maya.tree bridge)",
                        e.span,
                    )),
                }
            }
            ExprKind::TypeDims(_) => Err(Control::error(
                "array-type syntax evaluated as a value",
                e.span,
            )),
            ExprKind::Lazy(l) => {
                if !l.is_forced() {
                    let class = frame.class.ok_or_else(|| {
                        Control::error("lazy expression outside a class context", e.span)
                    })?;
                    self.force_body(l, class, e.span)?;
                }
                let node = l
                    .forced_node()
                    .ok_or_else(|| Control::error("lazy expression not forced", e.span))?;
                match node.into_expr() {
                    Some(inner) => self.eval(&inner, frame),
                    None => Err(Control::error("lazy node is not an expression", e.span)),
                }
            }
        }
    }

    /// True when `v instanceof ty` holds at runtime.
    pub fn value_instanceof(&self, v: &Value, ty: &Type) -> bool {
        if v.is_null() {
            return false;
        }
        let rt = v.runtime_type(&self.ct);
        self.ct.is_subtype(&rt, ty)
    }

    pub(crate) fn throw_simple(&self, class_fqcn: &str, span: Span) -> Control {
        match self.ct.by_fqcn_str(class_fqcn) {
            Some(c) => match self.construct(c, vec![], span) {
                Ok(v) => Control::Throw(v),
                Err(c) => c,
            },
            None => Control::error(format!("exception {class_fqcn}"), span),
        }
    }

    pub(crate) fn alloc_array(&self, elem: &Type, sizes: &[i32], span: Span) -> Eval {
        let (first, rest) = match sizes.split_first() {
            Some(x) => x,
            None => return Ok(Value::default_for(elem)),
        };
        if *first < 0 {
            return Err(self.throw_simple("java.lang.NegativeArraySizeException", span));
        }
        let inner_elem = if rest.is_empty() {
            elem.clone()
        } else {
            let mut t = elem.clone();
            for _ in 0..rest.len() {
                t = t.array_of();
            }
            t
        };
        let mut data = Vec::with_capacity(*first as usize);
        for _ in 0..*first {
            if rest.is_empty() {
                data.push(Value::default_for(elem));
            } else {
                data.push(self.alloc_array(elem, rest, span)?);
            }
        }
        Ok(Value::Array(Rc::new(crate::ArrayObj {
            elem: inner_elem,
            data: RefCell::new(data),
        })))
    }

    pub(crate) fn cast(&self, v: Value, target: &Type, span: Span) -> Eval {
        use maya_ast::PrimKind::*;
        match target {
            Type::Prim(p) => {
                let d = match &v {
                    Value::Int(i) => *i as f64,
                    Value::Long(l) => *l as f64,
                    Value::Float(f) => *f as f64,
                    Value::Double(d) => *d,
                    Value::Char(c) => *c as u32 as f64,
                    other => {
                        return Err(Control::error(
                            format!("cannot cast {other:?} to {target:?}"),
                            span,
                        ))
                    }
                };
                Ok(match p {
                    Byte => Value::Int(d as i64 as i8 as i32),
                    Short => Value::Int(d as i64 as i16 as i32),
                    Int => Value::Int(d as i64 as i32),
                    Long => Value::Long(d as i64),
                    Float => Value::Float(d as f32),
                    Double => Value::Double(d),
                    Char => Value::Char(
                        char::from_u32((d as i64 as u32) & 0xFFFF).unwrap_or('\0'),
                    ),
                    Boolean => {
                        return Err(Control::error("cannot cast to boolean", span));
                    }
                })
            }
            _ => {
                if v.is_null() || self.value_instanceof(&v, target) {
                    Ok(v)
                } else {
                    Err(self.throw_simple("java.lang.ClassCastException", span))
                }
            }
        }
    }

    fn lit(&self, l: &Lit) -> Value {
        match l {
            Lit::Int(v) => Value::Int(*v),
            Lit::Long(v) => Value::Long(*v),
            Lit::Float(v) => Value::Float(*v),
            Lit::Double(v) => Value::Double(*v),
            Lit::Bool(v) => Value::Bool(*v),
            Lit::Char(c) => Value::Char(*c),
            Lit::Str(s) => Value::str(s.as_str()),
            Lit::Null => Value::Null,
        }
    }

    fn eval_name(&self, name: Symbol, frame: &mut Frame, span: Span) -> Eval {
        if let Some(v) = frame.lookup(name) {
            return Ok(v.clone());
        }
        self.env_name(name, frame.this.as_ref(), frame.class, span)
    }

    /// The environment tail of name resolution — everything after locals:
    /// implicit-`this` field, then (static) class field, then class name.
    /// Shared by both execution paths.
    pub(crate) fn env_name(
        &self,
        name: Symbol,
        this: Option<&Value>,
        class: Option<ClassId>,
        span: Span,
    ) -> Eval {
        if let Some(Value::Object(obj)) = this {
            if let Some(v) = obj.get(name) {
                return Ok(v);
            }
        }
        if let Some(class) = class {
            if self.ct.lookup_field(class, name).is_some() {
                return self.static_field(class, name);
            }
        }
        let ctx = self.ctx_for(class);
        if let Some(c) = self.ct.resolve_simple(name, &ctx) {
            return Ok(Value::ClassRef(c));
        }
        Err(Control::error(format!("unresolved name {name}"), span))
    }

    pub(crate) fn field_of(&self, target: Value, name: Symbol, span: Span) -> Eval {
        match target {
            Value::ClassRef(c) => self.static_field(c, name),
            Value::Object(obj) => obj
                .get(name)
                .ok_or_else(|| Control::error(format!("no field {name}"), span)),
            Value::Array(a) if name.as_str() == "length" => {
                Ok(Value::Int(a.data.borrow().len() as i32))
            }
            Value::Null => Err(self.throw_simple("java.lang.NullPointerException", span)),
            other => Err(Control::error(
                format!("{other:?} has no field {name}"),
                span,
            )),
        }
    }

    fn eval_call(&self, mn: &MethodName, args: &[Expr], frame: &mut Frame, span: Span) -> Eval {
        let vals = args
            .iter()
            .map(|a| self.eval(a, frame))
            .collect::<Result<Vec<_>, _>>()?;
        if mn.super_recv {
            let this = frame
                .this
                .clone()
                .ok_or_else(|| Control::error("super call without this", span))?;
            let class = frame
                .class
                .ok_or_else(|| Control::error("super call without class", span))?;
            let sup = self
                .ct
                .info(class)
                .borrow()
                .superclass
                .ok_or_else(|| Control::error("no superclass", span))?;
            let m = self.select_method(sup, mn.name.sym, &vals, span)?;
            return self.invoke(Some(this), sup, &m, vals, span);
        }
        match &mn.receiver {
            Some(recv) => {
                let r = self.eval(recv, frame)?;
                match r {
                    Value::ClassRef(c) => self.invoke_static(c, mn.name.sym, vals, span),
                    Value::Null => {
                        Err(self.throw_simple("java.lang.NullPointerException", span))
                    }
                    other => self.invoke_by_name(other, mn.name.sym, vals, span),
                }
            }
            None => {
                let class = frame
                    .class
                    .ok_or_else(|| Control::error("call without enclosing class", span))?;
                match frame.this.clone() {
                    Some(this) => self.invoke_by_name(this, mn.name.sym, vals, span),
                    None => self.invoke_static(class, mn.name.sym, vals, span),
                }
            }
        }
    }

    fn assign_to(&self, target: &Expr, v: Value, frame: &mut Frame) -> Result<(), Control> {
        match &target.kind {
            ExprKind::Name(id) => self.assign_name(id.sym, v, frame, target.span),
            ExprKind::VarRef(name) => self.assign_name(*name, v, frame, target.span),
            ExprKind::FieldAccess(t, name) => {
                let tv = self.eval(t, frame)?;
                match tv {
                    Value::Object(obj) => {
                        obj.set(name.sym, v);
                        Ok(())
                    }
                    Value::ClassRef(c) => self.set_static_field(c, name.sym, v),
                    Value::Null => {
                        Err(self.throw_simple("java.lang.NullPointerException", target.span))
                    }
                    other => Err(Control::error(
                        format!("cannot assign field of {other:?}"),
                        target.span,
                    )),
                }
            }
            ExprKind::ArrayAccess(a, i) => {
                let arr = self.eval(a, frame)?;
                let idx = self.int_of(self.eval(i, frame)?, i.span)?;
                match arr {
                    Value::Array(a) => {
                        let mut data = a.data.borrow_mut();
                        let len = data.len();
                        match data.get_mut(idx as usize) {
                            Some(slot) => {
                                *slot = v;
                                Ok(())
                            }
                            None => Err(Control::error(
                                format!("array index {idx} out of bounds ({len})"),
                                target.span,
                            )),
                        }
                    }
                    _ => Err(Control::error("not an array", target.span)),
                }
            }
            _ => Err(Control::error("invalid assignment target", target.span)),
        }
    }

    fn assign_name(
        &self,
        name: Symbol,
        v: Value,
        frame: &mut Frame,
        span: Span,
    ) -> Result<(), Control> {
        if frame.assign(name, v.clone()) {
            return Ok(());
        }
        self.env_assign_name(name, v, frame.this.as_ref(), frame.class, span)
    }

    /// The environment tail of name assignment (after locals): `this`
    /// field, then static field.  Shared by both execution paths.
    pub(crate) fn env_assign_name(
        &self,
        name: Symbol,
        v: Value,
        this: Option<&Value>,
        class: Option<ClassId>,
        span: Span,
    ) -> Result<(), Control> {
        if let Some(Value::Object(obj)) = this {
            if obj.get(name).is_some() {
                obj.set(name, v);
                return Ok(());
            }
        }
        if let Some(class) = class {
            if let Some((owner, f)) = self.ct.lookup_field(class, name) {
                if f.modifiers.is_static() {
                    return self.set_static_field(owner, name, v);
                }
            }
        }
        Err(Control::error(format!("unresolved assignment to {name}"), span))
    }

    pub(crate) fn int_of(&self, v: Value, span: Span) -> Result<i32, Control> {
        match v {
            Value::Int(i) => Ok(i),
            Value::Char(c) => Ok(c as i32),
            other => Err(Control::error(format!("expected int, got {other:?}"), span)),
        }
    }

    pub(crate) fn eval_unary(&self, op: UnOp, v: Value, span: Span) -> Eval {
        Ok(match (op, v) {
            (UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
            (UnOp::Neg, Value::Long(l)) => Value::Long(l.wrapping_neg()),
            (UnOp::Neg, Value::Float(f)) => Value::Float(-f),
            (UnOp::Neg, Value::Double(d)) => Value::Double(-d),
            (UnOp::Plus, v) => v,
            (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
            (UnOp::BitNot, Value::Int(i)) => Value::Int(!i),
            (UnOp::BitNot, Value::Long(l)) => Value::Long(!l),
            (op, v) => {
                return Err(Control::error(
                    format!("invalid operand {v:?} for unary {op}"),
                    span,
                ))
            }
        })
    }

    /// Records nested binary-operator pairs for the profiler: an operand
    /// that is itself a binary operation forms an `(outer, inner)` pair —
    /// the candidate set for superinstruction fusion (ROADMAP item 2).
    /// `#[cold]` keeps the recording code out of the line of the
    /// interpreter's hottest loop; when profiling is off the caller pays
    /// one predictable untaken branch.
    #[cold]
    #[inline(never)]
    fn prof_binop_l(&self, op: BinOp, l: &LExpr, r: &LExpr) {
        if let LExprKind::Binary(inner, ..) = &l.kind {
            maya_telemetry::prof_binop_pair(op.as_str(), inner.as_str());
        }
        if let LExprKind::Binary(inner, ..) = &r.kind {
            maya_telemetry::prof_binop_pair(op.as_str(), inner.as_str());
        }
    }

    fn eval_binary(&self, op: BinOp, l: &Expr, r: &Expr, frame: &mut Frame, span: Span) -> Eval {
        if self.profile.get() {
            if let ExprKind::Binary(inner, ..) = &l.kind {
                maya_telemetry::prof_binop_pair(op.as_str(), inner.as_str());
            }
            if let ExprKind::Binary(inner, ..) = &r.kind {
                maya_telemetry::prof_binop_pair(op.as_str(), inner.as_str());
            }
        }
        // Short-circuit first.
        if op == BinOp::And {
            return Ok(Value::Bool(self.truthy(l, frame)? && self.truthy(r, frame)?));
        }
        if op == BinOp::Or {
            return Ok(Value::Bool(self.truthy(l, frame)? || self.truthy(r, frame)?));
        }
        let lv = self.eval(l, frame)?;
        let rv = self.eval(r, frame)?;
        self.binary_values(op, &lv, &rv, span)
    }

    /// Applies a binary operator to already-evaluated values (borrowed —
    /// numeric and boolean results never need the operands moved).
    /// [`Interp::binary_values`] with an `int`⊗`int` fast path for the
    /// lowered engine.  The specialized arms reproduce the generic path's
    /// promotion results exactly (all `i32` pairs are exact in `f64`, so
    /// even `==`/`!=` agree); anything fallible (`/`, `%`) or non-int falls
    /// through to the generic code.
    #[inline]
    pub(crate) fn binary_l_values(&self, op: BinOp, lv: &Value, rv: &Value, span: Span) -> Eval {
        use BinOp::*;
        if let (Value::Int(a), Value::Int(b)) = (lv, rv) {
            let (a, b) = (*a, *b);
            match op {
                Add => return Ok(Value::Int(a.wrapping_add(b))),
                Sub => return Ok(Value::Int(a.wrapping_sub(b))),
                Mul => return Ok(Value::Int(a.wrapping_mul(b))),
                Shl => return Ok(Value::Int(a.wrapping_shl(b as u32 & 31))),
                Shr => return Ok(Value::Int(a.wrapping_shr(b as u32 & 31))),
                Ushr => return Ok(Value::Int(((a as u32) >> (b as u32 & 31)) as i32)),
                BitAnd => return Ok(Value::Int(a & b)),
                BitOr => return Ok(Value::Int(a | b)),
                BitXor => return Ok(Value::Int(a ^ b)),
                Lt => return Ok(Value::Bool(a < b)),
                Gt => return Ok(Value::Bool(a > b)),
                Le => return Ok(Value::Bool(a <= b)),
                Ge => return Ok(Value::Bool(a >= b)),
                Eq => return Ok(Value::Bool(a == b)),
                Ne => return Ok(Value::Bool(a != b)),
                // Division by zero throws; only that case needs the
                // generic path.  Wrapping div/rem matches the promoted
                // `i64` computation on the MIN/-1 edge.
                Div if b != 0 => return Ok(Value::Int(a.wrapping_div(b))),
                Rem if b != 0 => return Ok(Value::Int(a.wrapping_rem(b))),
                Div | Rem | And | Or => {}
            }
        }
        // `long` fast path, including the int→long promoted pairs.  Same
        // contract as the int path: every arm reproduces the generic
        // promotion result bit for bit.  Eq/Ne stay in `f64` because the
        // generic path compares all numeric pairs there — an exact `i64`
        // compare would *diverge* from the tree walker above 2^53.
        let wide = match (lv, rv) {
            (Value::Long(a), Value::Long(b)) => Some((*a, *b)),
            (Value::Long(a), Value::Int(b)) => Some((*a, i64::from(*b))),
            (Value::Int(a), Value::Long(b)) => Some((i64::from(*a), *b)),
            _ => None,
        };
        if let Some((a, b)) = wide {
            match op {
                Add => return Ok(Value::Long(a.wrapping_add(b))),
                Sub => return Ok(Value::Long(a.wrapping_sub(b))),
                Mul => return Ok(Value::Long(a.wrapping_mul(b))),
                Shl => return Ok(Value::Long(a.wrapping_shl(b as u32 & 63))),
                Shr => return Ok(Value::Long(a.wrapping_shr(b as u32 & 63))),
                Ushr => return Ok(Value::Long(((a as u64) >> (b as u32 & 63)) as i64)),
                BitAnd => return Ok(Value::Long(a & b)),
                BitOr => return Ok(Value::Long(a | b)),
                BitXor => return Ok(Value::Long(a ^ b)),
                Lt => return Ok(Value::Bool(a < b)),
                Gt => return Ok(Value::Bool(a > b)),
                Le => return Ok(Value::Bool(a <= b)),
                Ge => return Ok(Value::Bool(a >= b)),
                Eq => return Ok(Value::Bool(a as f64 == b as f64)),
                Ne => return Ok(Value::Bool(a as f64 != b as f64)),
                Div if b != 0 => return Ok(Value::Long(a.wrapping_div(b))),
                Rem if b != 0 => return Ok(Value::Long(a.wrapping_rem(b))),
                Div | Rem | And | Or => {}
            }
        }
        self.binary_values(op, lv, rv, span)
    }

    pub fn binary_values(&self, op: BinOp, lv: &Value, rv: &Value, span: Span) -> Eval {
        use BinOp::*;
        // String concatenation.
        if op == Add && (matches!(lv, Value::Str(_)) || matches!(rv, Value::Str(_))) {
            let s = format!("{}{}", self.display(lv), self.display(rv));
            return Ok(Value::owned_str(s));
        }
        if matches!(op, Eq | Ne) {
            let both_num = is_numeric(lv) && is_numeric(rv);
            let eq = if both_num {
                num_as_f64(lv) == num_as_f64(rv)
            } else {
                lv.ref_eq(rv)
            };
            return Ok(Value::Bool(if op == Eq { eq } else { !eq }));
        }
        if matches!(lv, Value::Bool(_)) || matches!(rv, Value::Bool(_)) {
            let (Value::Bool(a), Value::Bool(b)) = (lv, rv) else {
                return Err(Control::error("boolean operand mismatch", span));
            };
            return Ok(Value::Bool(match op {
                BitAnd => a & b,
                BitOr => a | b,
                BitXor => a ^ b,
                _ => return Err(Control::error(format!("bad boolean operator {op}"), span)),
            }));
        }
        if !is_numeric(lv) || !is_numeric(rv) {
            return Err(Control::error(
                format!("invalid operands {lv:?} {op} {rv:?}"),
                span,
            ));
        }
        // Binary numeric promotion.
        let rank = |v: &Value| match v {
            Value::Double(_) => 4,
            Value::Float(_) => 3,
            Value::Long(_) => 2,
            _ => 1,
        };
        let r = rank(lv).max(rank(rv));
        let div_zero = |c: Control| c;
        match r {
            4 | 3 => {
                let a = num_as_f64(lv);
                let b = num_as_f64(rv);
                let out = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Rem => a % b,
                    Lt => return Ok(Value::Bool(a < b)),
                    Gt => return Ok(Value::Bool(a > b)),
                    Le => return Ok(Value::Bool(a <= b)),
                    Ge => return Ok(Value::Bool(a >= b)),
                    _ => {
                        return Err(Control::error(
                            format!("operator {op} undefined on floating point"),
                            span,
                        ))
                    }
                };
                Ok(if r == 4 {
                    Value::Double(out)
                } else {
                    Value::Float(out as f32)
                })
            }
            2 => {
                let a = num_as_i64(lv);
                let b = num_as_i64(rv);
                self.int_like_op(op, a, b, span)
                    .map(|v| match v {
                        IntOut::Num(n) => Value::Long(n),
                        IntOut::Bool(b) => Value::Bool(b),
                    })
                    .map_err(div_zero)
            }
            _ => {
                // 32-bit semantics: shifts mask to 5 bits, >>> is unsigned
                // in the 32-bit domain.
                let a = num_as_i64(lv) as i32;
                let b = num_as_i64(rv) as i32;
                use BinOp::*;
                let out = match op {
                    Shl => Value::Int(a.wrapping_shl(b as u32 & 31)),
                    Shr => Value::Int(a.wrapping_shr(b as u32 & 31)),
                    Ushr => Value::Int(((a as u32) >> (b as u32 & 31)) as i32),
                    _ => self
                        .int_like_op(op, a as i64, b as i64, span)
                        .map(|v| match v {
                            IntOut::Num(n) => Value::Int(n as i32),
                            IntOut::Bool(b) => Value::Bool(b),
                        })
                        .map_err(div_zero)?,
                };
                Ok(out)
            }
        }
    }

    fn int_like_op(&self, op: BinOp, a: i64, b: i64, span: Span) -> Result<IntOut, Control> {
        use BinOp::*;
        Ok(match op {
            Add => IntOut::Num(a.wrapping_add(b)),
            Sub => IntOut::Num(a.wrapping_sub(b)),
            Mul => IntOut::Num(a.wrapping_mul(b)),
            Div => {
                if b == 0 {
                    return Err(self.throw_simple("java.lang.ArithmeticException", span));
                }
                IntOut::Num(a.wrapping_div(b))
            }
            Rem => {
                if b == 0 {
                    return Err(self.throw_simple("java.lang.ArithmeticException", span));
                }
                IntOut::Num(a.wrapping_rem(b))
            }
            Shl => IntOut::Num(a.wrapping_shl(b as u32 & 63)),
            Shr => IntOut::Num(a.wrapping_shr(b as u32 & 63)),
            Ushr => IntOut::Num(((a as u64) >> (b as u32 & 63)) as i64),
            BitAnd => IntOut::Num(a & b),
            BitOr => IntOut::Num(a | b),
            BitXor => IntOut::Num(a ^ b),
            Lt => IntOut::Bool(a < b),
            Gt => IntOut::Bool(a > b),
            Le => IntOut::Bool(a <= b),
            Ge => IntOut::Bool(a >= b),
            Eq | Ne | And | Or => {
                return Err(Control::error("unexpected operator in int path", span))
            }
        })
    }
}

enum IntOut {
    Num(i64),
    Bool(bool),
}

fn is_numeric(v: &Value) -> bool {
    matches!(
        v,
        Value::Int(_) | Value::Long(_) | Value::Float(_) | Value::Double(_) | Value::Char(_)
    )
}

fn num_as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Long(l) => *l as f64,
        Value::Float(f) => *f as f64,
        Value::Double(d) => *d,
        Value::Char(c) => *c as u32 as f64,
        _ => 0.0,
    }
}

fn num_as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i as i64,
        Value::Long(l) => *l,
        Value::Char(c) => *c as u32 as i64,
        Value::Float(f) => *f as i64,
        Value::Double(d) => *d as i64,
        _ => 0,
    }
}
