//! Little-endian byte codec helpers for the persistent artifact store.
//!
//! The lowered-body and bytecode serializers (`lower.rs`, `bytecode.rs`)
//! share these primitives. The writer is infallible; every reader method
//! returns `Option` so any truncated, stale, or corrupt payload decodes as
//! a cache miss (`None`), never a panic — the store's whole-entry checksum
//! catches bit flips before payloads reach this layer, so failures here
//! mean a format-version skew or a hash collision, both of which rebuild.
//!
//! Symbols are serialized as their text and re-interned on decode: interner
//! indices are process-local and never hit the disk. Spans serialize as raw
//! `(file, lo, hi)` — body fingerprints hash spans too, so an equal key
//! implies equal spans and cross-process hits stay diagnostic-identical.

use maya_ast::{BinOp, IncDecOp, PrimKind, UnOp};
use maya_lexer::{sym, FileId, Span, Symbol};

use crate::value::Value;

// ---- writer ------------------------------------------------------------------

/// An append-only little-endian payload writer.
#[derive(Default)]
pub(crate) struct W {
    pub buf: Vec<u8>,
}

impl W {
    pub fn new() -> W {
        W::default()
    }

    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn i32(&mut self, x: i32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn bool(&mut self, x: bool) {
        self.u8(u8::from(x));
    }

    /// A collection length. Anything over `u32::MAX` entries has no
    /// business in a cache entry.
    pub fn len(&mut self, n: usize) -> Option<()> {
        self.u32(u32::try_from(n).ok()?);
        Some(())
    }

    pub fn str(&mut self, s: &str) -> Option<()> {
        self.len(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Some(())
    }

    pub fn sym(&mut self, s: Symbol) -> Option<()> {
        self.str(s.as_str())
    }

    pub fn span(&mut self, s: Span) {
        self.u32(s.file.0);
        self.u32(s.lo);
        self.u32(s.hi);
    }

    /// Encodes a runtime constant. Only the variants constant folding can
    /// produce (primitives, strings, null) are representable; anything
    /// else aborts the save — the body simply isn't persisted.
    pub fn value(&mut self, v: &Value) -> Option<()> {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.bool(*b);
            }
            Value::Char(c) => {
                self.u8(2);
                self.u32(*c as u32);
            }
            Value::Int(i) => {
                self.u8(3);
                self.i32(*i);
            }
            Value::Long(l) => {
                self.u8(4);
                self.i64(*l);
            }
            Value::Float(f) => {
                self.u8(5);
                self.u32(f.to_bits());
            }
            Value::Double(d) => {
                self.u8(6);
                self.u64(d.to_bits());
            }
            Value::Str(s) => {
                self.u8(7);
                self.str(s)?;
            }
            _ => return None,
        }
        Some(())
    }
}

// ---- reader ------------------------------------------------------------------

/// A bounds-checked little-endian payload reader.
pub(crate) struct R<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> R<'a> {
    pub fn new(buf: &'a [u8]) -> R<'a> {
        R { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub fn i32(&mut self) -> Option<i32> {
        Some(i32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// A collection length, bounded by the bytes actually remaining so a
    /// corrupt count cannot drive a huge allocation.
    pub fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.at.min(self.buf.len()) && n > self.buf.len() {
            return None;
        }
        Some(n)
    }

    pub fn str(&mut self) -> Option<&'a str> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?).ok()
    }

    pub fn sym(&mut self) -> Option<Symbol> {
        Some(sym(self.str()?))
    }

    pub fn span(&mut self) -> Option<Span> {
        let file = FileId(self.u32()?);
        let lo = self.u32()?;
        let hi = self.u32()?;
        Some(Span { file, lo, hi })
    }

    pub fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.bool()?),
            2 => Value::Char(char::from_u32(self.u32()?)?),
            3 => Value::Int(self.i32()?),
            4 => Value::Long(self.i64()?),
            5 => Value::Float(f32::from_bits(self.u32()?)),
            6 => Value::Double(f64::from_bits(self.u64()?)),
            7 => Value::str(self.str()?),
            _ => return None,
        })
    }

    pub fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

// ---- operator / primitive codes ----------------------------------------------

/// Binary operators in a fixed codec order (declaration order of `BinOp`).
pub(crate) const BINOPS: [BinOp; 19] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Ushr,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Le,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::BitAnd,
    BinOp::BitXor,
    BinOp::BitOr,
    BinOp::And,
    BinOp::Or,
];

pub(crate) fn binop_code(op: BinOp) -> u8 {
    BINOPS.iter().position(|b| *b == op).expect("binop listed") as u8
}

pub(crate) fn binop_from(code: u8) -> Option<BinOp> {
    BINOPS.get(code as usize).copied()
}

/// The `BinOp` whose `as_str` is `s` (profiler pair labels round-trip
/// through this so the decoded side recovers `&'static str`s).
pub(crate) fn binop_from_str(s: &str) -> Option<BinOp> {
    BINOPS.iter().copied().find(|b| b.as_str() == s)
}

const UNOPS: [UnOp; 4] = [UnOp::Neg, UnOp::Plus, UnOp::Not, UnOp::BitNot];

pub(crate) fn unop_code(op: UnOp) -> u8 {
    UNOPS.iter().position(|u| *u == op).expect("unop listed") as u8
}

pub(crate) fn unop_from(code: u8) -> Option<UnOp> {
    UNOPS.get(code as usize).copied()
}

pub(crate) fn incdec_code(op: IncDecOp) -> u8 {
    match op {
        IncDecOp::Inc => 0,
        IncDecOp::Dec => 1,
    }
}

pub(crate) fn incdec_from(code: u8) -> Option<IncDecOp> {
    match code {
        0 => Some(IncDecOp::Inc),
        1 => Some(IncDecOp::Dec),
        _ => None,
    }
}

const PRIMS: [PrimKind; 8] = [
    PrimKind::Boolean,
    PrimKind::Byte,
    PrimKind::Short,
    PrimKind::Char,
    PrimKind::Int,
    PrimKind::Long,
    PrimKind::Float,
    PrimKind::Double,
];

pub(crate) fn prim_code(p: PrimKind) -> u8 {
    PRIMS.iter().position(|q| *q == p).expect("prim listed") as u8
}

pub(crate) fn prim_from(code: u8) -> Option<PrimKind> {
    PRIMS.get(code as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = W::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i32(-5);
        w.i64(-6);
        w.bool(true);
        w.str("héllo").unwrap();
        w.span(Span::new(FileId(3), 10, 20));
        let mut r = R::new(&w.buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(300));
        assert_eq!(r.u32(), Some(70_000));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.i32(), Some(-5));
        assert_eq!(r.i64(), Some(-6));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.str(), Some("héllo"));
        assert_eq!(r.span(), Some(Span::new(FileId(3), 10, 20)));
        assert!(r.done());
        assert_eq!(r.u8(), None, "reads past the end are None");
    }

    #[test]
    fn values_round_trip_and_reject_unsupported() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Char('λ'),
            Value::Int(-42),
            Value::Long(i64::MIN),
            Value::Float(1.5),
            Value::Double(f64::NAN),
            Value::str("cached"),
        ];
        let mut w = W::new();
        for v in &vals {
            w.value(v).unwrap();
        }
        let mut r = R::new(&w.buf);
        for v in &vals {
            let d = r.value().unwrap();
            match (v, &d) {
                // NaN != NaN; compare bit patterns for doubles.
                (Value::Double(a), Value::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert!(v.ref_eq(&d), "{v:?} vs {d:?}"),
            }
        }
        assert!(r.done());
    }

    #[test]
    fn op_codes_round_trip() {
        for op in BINOPS {
            assert_eq!(binop_from(binop_code(op)), Some(op));
            assert_eq!(binop_from_str(op.as_str()), Some(op));
        }
        assert_eq!(binop_from(19), None);
        for op in UNOPS {
            assert_eq!(unop_from(unop_code(op)), Some(op));
        }
        for p in PRIMS {
            assert_eq!(prim_from(prim_code(p)), Some(p));
        }
    }
}
