//! Flat register bytecode for the third execution tier.
//!
//! A `LoweredBody` is compiled on first execution into a `BcBody`: a dense
//! `Vec<Instr>` over a flat register file (locals, preloaded constants, and
//! per-statement temporaries), executed by the match-dispatch loop in
//! `vm.rs`. The compiler here preserves the lowered tier's observable
//! semantics exactly — step counts, error strings, error spans, evaluation
//! order — so all three engines stay byte-identical over the corpus.
//!
//! Highlights:
//! - no `Const` instruction: constants are preloaded into dedicated
//!   registers once per frame entry (`BcBody::preloads`);
//! - superinstructions: fused compare+branch (`JmpIfCmp`), local
//!   increment (`IncLocal`), and store-fused binary ops (dst = local slot);
//! - polymorphic inline caches (`PolySite`, 2–4 entries keyed by receiver
//!   class + exact argument keys, MRU-front);
//! - tiny leaf callees (≤ `INLINE_MAX` instrs) are spliced inline at the
//!   refine recompile (`REFINE_EXECS`) behind `GuardInline` checks;
//! - `Break`/`Continue` surfacing from calls inside loop bodies are routed
//!   through a static region table (`Region`) instead of unwinding.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use maya_ast::{BinOp, IncDecOp, TypeName, TypeNameKind, UnOp};
use maya_lexer::{Span, Symbol};
use maya_types::{ClassId, ClassTable, MethodInfo};

use crate::lower::{
    ArgKey, FieldSite, LCallee, LExpr, LExprKind, LStmt, LStmtKind, LTarget,
    LoweredBody, TypeSlot,
};
use crate::value::Value;

/// Max entries in a polymorphic inline cache line.
pub(crate) const PIC_CAP: usize = 4;
/// Executions of the cold-compiled body before the refine (inlining) pass.
pub(crate) const REFINE_EXECS: u32 = 3;
/// Max callee instruction count eligible for inline splicing.
pub(crate) const INLINE_MAX: usize = 24;

/// Compilation state memoized on each `LoweredBody`.
pub(crate) enum BcState {
    /// Not yet compiled.
    Cold,
    /// Compiled; `execs` counts runs until the refine pass fires once.
    Ready {
        bc: Rc<BcBody>,
        execs: Cell<u32>,
        refined: Cell<bool>,
    },
    /// Compilation bailed (e.g. try/catch present); fall back to the tree.
    Unsupported,
}

/// One bytecode instruction. All operand types are `Copy`.
#[derive(Clone, Copy)]
pub(crate) enum Instr {
    Move { dst: u16, src: u16 },
    LoadThis { dst: u16, span: Span },
    EnvLoad { dst: u16, name: Symbol, site: u16, span: Span },
    EnvStore { src: u16, name: Symbol, span: Span },
    ClassRef { dst: u16, fqcn: Symbol, span: Span },
    FieldGet { dst: u16, obj: u16, name: Symbol, site: u16, span: Span },
    FieldSet { obj: u16, val: u16, name: Symbol, span: Span },
    /// `spans` indexes `BcBody::span_pairs` -> (expr span, index span).
    ArrGet { dst: u16, arr: u16, idx: u16, spans: u16 },
    ArrSet { arr: u16, idx: u16, val: u16, spans: u16 },
    /// Resolve + class-check the constructed type; push it on the ty stack.
    NewClass { ty: u16, span: Span },
    /// Pop the ty stack and construct with args at regs[base..base+n].
    NewFinish { dst: u16, base: u16, n: u16, span: Span },
    /// Resolve array element type (+extra dims); push on the ty stack.
    TyElem { ty: u16, extra_dims: u32, span: Span },
    NewArrayFinish { dst: u16, base: u16, n: u16, span: Span },
    /// In-place `int_of` coercion of a dimension register.
    ToInt { reg: u16, span: Span },
    /// Resolve a declaration's base type; push on the ty stack.
    TyDecl { ty: u16, span: Span },
    /// dst = default value of ty-stack top (+`dims` array dims).
    DefaultVal { dst: u16, dims: u32 },
    TyPop,
    Binary { op: BinOp, dst: u16, a: u16, b: u16, span: Span },
    Unary { op: UnOp, dst: u16, src: u16, span: Span },
    /// dst = src incremented/decremented (pure value op, no store).
    IncDecVal { dst: u16, src: u16, delta: i32, span: Span },
    /// Superinstruction: in-place ++/-- of a local slot.
    IncLocal { slot: u16, delta: i32, span: Span },
    CastV { dst: u16, src: u16, ty: u16, span: Span },
    InstOf { dst: u16, src: u16, ty: u16, span: Span },
    Jmp { target: u32 },
    JmpIfFalse { src: u16, target: u32, span: Span },
    JmpIfTrue { src: u16, target: u32, span: Span },
    /// Superinstruction: fused compare+branch. Branches when the compare
    /// result equals `when`.
    JmpIfCmp { op: BinOp, a: u16, b: u16, when: bool, target: u32, span: Span },
    /// One interpreter step (per lowered statement).
    Step { span: Span },
    Ret { src: u16 },
    RetNull,
    /// `break`/`continue` with no enclosing loop in this body: surface as
    /// control for the caller (routed by the caller's region table).
    RaiseBreak,
    RaiseContinue,
    Throw { src: u16 },
    RaiseInvalidAssign { span: Span },
    CallRecv { dst: u16, recv: u16, base: u16, n: u16, name: Symbol, site: u16, span: Span },
    CallSuper { dst: u16, base: u16, n: u16, name: Symbol, site: u16, span: Span },
    CallImplicit { dst: u16, base: u16, n: u16, name: Symbol, site: u16, span: Span },
    /// Inline-splice guard: if the guard's PIC shape no longer matches,
    /// jump to `fallback` (the generic call instruction).
    GuardInline { guard: u16, fallback: u32 },
    /// Enter an inlined frame (depth guard + profiler enter).
    CallEnter { m: u16, span: Span },
    CallExit,
}

impl Instr {
    pub(crate) fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Move { .. } => "move",
            Instr::LoadThis { .. } => "load_this",
            Instr::EnvLoad { .. } => "env_load",
            Instr::EnvStore { .. } => "env_store",
            Instr::ClassRef { .. } => "class_ref",
            Instr::FieldGet { .. } => "field_get",
            Instr::FieldSet { .. } => "field_set",
            Instr::ArrGet { .. } => "arr_get",
            Instr::ArrSet { .. } => "arr_set",
            Instr::NewClass { .. } => "new_class",
            Instr::NewFinish { .. } => "new_finish",
            Instr::TyElem { .. } => "ty_elem",
            Instr::NewArrayFinish { .. } => "new_array",
            Instr::ToInt { .. } => "to_int",
            Instr::TyDecl { .. } => "ty_decl",
            Instr::DefaultVal { .. } => "default_val",
            Instr::TyPop => "ty_pop",
            Instr::Binary { .. } => "binary",
            Instr::Unary { .. } => "unary",
            Instr::IncDecVal { .. } => "incdec_val",
            Instr::IncLocal { .. } => "inc_local",
            Instr::CastV { .. } => "cast",
            Instr::InstOf { .. } => "instanceof",
            Instr::Jmp { .. } => "jmp",
            Instr::JmpIfFalse { .. } => "jmp_if_false",
            Instr::JmpIfTrue { .. } => "jmp_if_true",
            Instr::JmpIfCmp { .. } => "jmp_if_cmp",
            Instr::Step { .. } => "step",
            Instr::Ret { .. } => "ret",
            Instr::RetNull => "ret_null",
            Instr::RaiseBreak => "raise_break",
            Instr::RaiseContinue => "raise_continue",
            Instr::Throw { .. } => "throw",
            Instr::RaiseInvalidAssign { .. } => "raise_invalid_assign",
            Instr::CallRecv { .. } => "call_recv",
            Instr::CallSuper { .. } => "call_super",
            Instr::CallImplicit { .. } => "call_implicit",
            Instr::GuardInline { .. } => "guard_inline",
            Instr::CallEnter { .. } => "call_enter",
            Instr::CallExit => "call_exit",
        }
    }
}

/// A loop-body pc range with its break/continue targets and the ty-stack /
/// inline-frame depths to restore when control routes through it.
#[derive(Clone, Copy)]
pub(crate) struct Region {
    pub start: u32,
    pub end: u32,
    pub brk: u32,
    pub cont: u32,
    pub ty_depth: u16,
    pub inline_depth: u16,
}

/// One entry in a polymorphic inline cache line.
pub(crate) struct PicEntry {
    pub ck: u64,
    pub class: ClassId,
    pub keys: Box<[ArgKey]>,
    pub target: Rc<MethodInfo>,
    pub lowered: Option<Rc<LoweredBody>>,
}

/// Polymorphic inline cache: up to `PIC_CAP` entries, MRU-front.
pub(crate) struct PolySite {
    pub epoch: Cell<u64>,
    pub entries: RefCell<Vec<PicEntry>>,
}

/// Snapshot of a monomorphic site used to build an inline-splice guard.
pub(crate) struct MonoSnapshot {
    pub epoch: u64,
    pub ck: u64,
    pub class: ClassId,
    pub keys: Box<[ArgKey]>,
    pub target: Rc<MethodInfo>,
    pub lowered: Rc<LoweredBody>,
}

impl PolySite {
    pub(crate) fn new() -> Rc<Self> {
        Rc::new(PolySite { epoch: Cell::new(u64::MAX), entries: RefCell::new(Vec::new()) })
    }

    /// Look up (receiver class key, args) in the cache line. A stale epoch
    /// clears the line. On hit the entry moves to front and its target (and
    /// cached lowered body, if any) is returned.
    pub(crate) fn lookup(
        &self,
        epoch: u64,
        ck: u64,
        args: &[Value],
    ) -> Option<(Rc<MethodInfo>, Option<Rc<LoweredBody>>)> {
        if self.epoch.get() != epoch {
            self.entries.borrow_mut().clear();
            self.epoch.set(epoch);
            return None;
        }
        let mut entries = self.entries.borrow_mut();
        let pos = entries.iter().position(|e| {
            e.ck == ck
                && e.keys.len() == args.len()
                && e.keys.iter().zip(args).all(|(k, a)| k.matches(a))
        })?;
        if pos != 0 {
            let e = entries.remove(pos);
            entries.insert(0, e);
        }
        let e = &entries[0];
        Some((Rc::clone(&e.target), e.lowered.clone()))
    }

    /// Install a new front entry, evicting the LRU tail past `PIC_CAP`.
    /// Entries with any inexact (`Other`) key are not installed — they can
    /// never hit and would pollute the line. Returns true if evicted.
    pub(crate) fn install(
        &self,
        ck: u64,
        class: ClassId,
        keys: Box<[ArgKey]>,
        target: Rc<MethodInfo>,
        lowered: Option<Rc<LoweredBody>>,
    ) -> bool {
        if keys.iter().any(|k| matches!(k, ArgKey::Other)) {
            return false;
        }
        let mut entries = self.entries.borrow_mut();
        entries.insert(0, PicEntry { ck, class, keys, target, lowered });
        if entries.len() > PIC_CAP {
            entries.pop();
            return true;
        }
        false
    }

    /// Late-bind a lowered body to the entry holding `target`. Looked up by
    /// target identity (not front position): recursion through the same
    /// site may have reordered the line since the miss installed the entry.
    pub(crate) fn backfill_lowered(&self, target: &Rc<MethodInfo>, lb: Rc<LoweredBody>) {
        let mut entries = self.entries.borrow_mut();
        if let Some(e) = entries
            .iter_mut()
            .find(|e| Rc::ptr_eq(&e.target, target))
        {
            if e.lowered.is_none() {
                e.lowered = Some(lb);
            }
        }
    }

    /// Snapshot a monomorphic, fully-exact, lowered-cached site for inline
    /// splicing. Returns None if the site is polymorphic, has inexact keys,
    /// targets a native, or has no lowered body yet.
    pub(crate) fn mono_snapshot(&self) -> Option<MonoSnapshot> {
        let entries = self.entries.borrow();
        if entries.len() != 1 {
            return None;
        }
        let e = &entries[0];
        if e.keys.iter().any(|k| matches!(k, ArgKey::Other)) || e.target.native.is_some() {
            return None;
        }
        let lowered = e.lowered.clone()?;
        Some(MonoSnapshot {
            epoch: self.epoch.get(),
            ck: e.ck,
            class: e.class,
            keys: e.keys.clone(),
            target: Rc::clone(&e.target),
            lowered,
        })
    }

    /// Human-readable PIC shape for the disassembler.
    pub(crate) fn describe(&self, ct: &ClassTable) -> String {
        let entries = self.entries.borrow();
        if entries.is_empty() {
            return "empty".to_string();
        }
        let shapes: Vec<String> = entries
            .iter()
            .map(|e| {
                let cname = ct.info(e.class).borrow().fqcn;
                let keys: Vec<String> = e.keys.iter().map(|k| format!("{k:?}")).collect();
                format!("{cname}({})", keys.join(","))
            })
            .collect();
        shapes.join(" | ")
    }
}

/// Guard metadata for one inline splice site.
pub(crate) struct InlineGuard {
    pub epoch: u64,
    pub ck: u64,
    pub keys: Box<[ArgKey]>,
    /// Receiver register; None = implicit `this`.
    pub recv: Option<u16>,
    pub base: u16,
    pub site: Rc<PolySite>,
    pub name: Symbol,
    pub class: ClassId,
}

/// A compiled body.
pub(crate) struct BcBody {
    pub n_params: u16,
    pub n_locals: u16,
    pub n_regs: u16,
    pub code: Vec<Instr>,
    /// (register, value) pairs applied once at frame entry.
    pub preloads: Vec<(u16, Value)>,
    pub field_sites: Vec<FieldSite>,
    pub sites: Vec<Rc<PolySite>>,
    pub tys: Vec<Rc<TypeSlot>>,
    /// (expr span, index span) pairs for array ops.
    pub span_pairs: Vec<(Span, Span)>,
    /// Inlined callee methods: (method, defining class).
    pub methods: Vec<(Rc<MethodInfo>, ClassId)>,
    pub guards: Vec<InlineGuard>,
    pub regions: Vec<Region>,
    /// pc -> hot binary-op pair labels (profiler parity with prof_binop_l).
    pub pairs: HashMap<u32, Vec<(&'static str, &'static str)>>,
    /// pcs of superinstructions (for telemetry + disasm annotation).
    pub super_pcs: Vec<u32>,
    /// (guard pc, exit pc, method index) per inline splice (for disasm).
    pub inlined: Vec<(u32, u32, u16)>,
}

impl BcBody {
    /// Innermost region containing `pc` (max start among matches).
    pub(crate) fn innermost_region(&self, pc: u32) -> Option<Region> {
        self.regions
            .iter()
            .filter(|r| r.start <= pc && pc < r.end)
            .max_by_key(|r| r.start)
            .copied()
    }
}

/// Compile-time bailout: this body can't be expressed in bytecode
/// (try/catch present, register pool exhausted, …).
pub(crate) struct Unsupported;

/// True iff evaluating `e` can write a local slot (Assign/IncDec with a
/// Local target anywhere inside). Calls cannot write caller locals.
fn writes_locals(e: &LExpr) -> bool {
    match &e.kind {
        LExprKind::Const(_)
        | LExprKind::Local(_)
        | LExprKind::EnvName(_)
        | LExprKind::This
        | LExprKind::ClassRefName(_) => false,
        LExprKind::FieldGet { target, .. } => writes_locals(target),
        LExprKind::ArrayGet(arr, idx) => writes_locals(arr) || writes_locals(idx),
        LExprKind::New { args, .. } => args.iter().any(writes_locals),
        LExprKind::NewArray { dims, .. } => dims.iter().any(writes_locals),
        LExprKind::Binary(_, l, r) => writes_locals(l) || writes_locals(r),
        LExprKind::Unary(_, x) => writes_locals(x),
        LExprKind::IncDec { read, write, .. } => {
            matches!(write, LTarget::Local(_)) || writes_locals(read) || target_writes(write)
        }
        LExprKind::Assign { read, write, value, .. } => {
            matches!(write, LTarget::Local(_))
                || read.as_ref().is_some_and(|r| writes_locals(r))
                || target_writes(write)
                || writes_locals(value)
        }
        LExprKind::Cond(c, t, f) => writes_locals(c) || writes_locals(t) || writes_locals(f),
        LExprKind::Cast { x, .. } => writes_locals(x),
        LExprKind::Instanceof { x, .. } => writes_locals(x),
        LExprKind::Call { callee, args, .. } => {
            let recv = match callee {
                LCallee::Recv(r, _) => writes_locals(r),
                LCallee::Super(_) | LCallee::Implicit(_) => false,
            };
            recv || args.iter().any(writes_locals)
        }
    }
}

/// True iff evaluating the subexpressions of target `t` can write a local.
fn target_writes(t: &LTarget) -> bool {
    match t {
        LTarget::Local(_) => true,
        LTarget::EnvName(..) | LTarget::Invalid(_) => false,
        LTarget::Field { target, .. } => writes_locals(target),
        LTarget::Array { arr, idx, .. } => writes_locals(arr) || writes_locals(idx),
    }
}

/// True iff a type name resolves independently of class context (primitives
/// and arrays of primitives). `Named` types are context-dependent and make a
/// callee ineligible for inline splicing into a different class.
fn tn_is_prim(tn: &TypeName) -> bool {
    match &tn.kind {
        TypeNameKind::Prim(_) => true,
        TypeNameKind::Array(inner) => tn_is_prim(inner),
        _ => false,
    }
}

/// True iff `bc` is a leaf body eligible for inline splicing: short, no
/// calls/guards, no env access, and only context-free types.  `has_recv`
/// permits `LoadThis` — with a guarded receiver register in the caller the
/// splicer rewrites it to a plain `Move`, so instance leaves (field
/// getters, `side * side` areas) inline too.
pub(crate) fn inline_ok(bc: &BcBody, n_args: usize, has_recv: bool) -> bool {
    if !bc.guards.is_empty() || bc.code.len() > INLINE_MAX {
        return false;
    }
    if bc.n_params as usize != n_args {
        return false;
    }
    if !bc.tys.iter().all(|t| tn_is_prim(&t.tn)) {
        return false;
    }
    bc.code.iter().all(|i| {
        if matches!(i, Instr::LoadThis { .. }) {
            return has_recv;
        }
        matches!(
            i,
            Instr::Move { .. }
                | Instr::Binary { .. }
                | Instr::Unary { .. }
                | Instr::IncDecVal { .. }
                | Instr::IncLocal { .. }
                | Instr::Jmp { .. }
                | Instr::JmpIfFalse { .. }
                | Instr::JmpIfTrue { .. }
                | Instr::JmpIfCmp { .. }
                | Instr::Step { .. }
                | Instr::Ret { .. }
                | Instr::RetNull
                | Instr::RaiseBreak
                | Instr::RaiseContinue
                | Instr::Throw { .. }
                | Instr::RaiseInvalidAssign { .. }
                | Instr::ToInt { .. }
                | Instr::ArrGet { .. }
                | Instr::ArrSet { .. }
                | Instr::FieldGet { .. }
                | Instr::FieldSet { .. }
                | Instr::DefaultVal { .. }
                | Instr::TyPop
                | Instr::TyDecl { .. }
        )
    })
}

// ---- compiler ----------------------------------------------------------------

/// Pending break/continue jump fixups for the innermost loop being compiled.
struct LoopCtx {
    break_fixups: Vec<u32>,
    continue_fixups: Vec<u32>,
}

/// Single-pass bytecode emitter over a [`LoweredBody`].
///
/// Register file layout: `[0, n_slots)` are the lowered frame slots (params
/// then locals), above that live preloaded constant registers (permanent,
/// tracked by `perm_base`) interleaved with per-statement temporaries
/// (released at each statement boundary by resetting `next_reg`).
struct Emit<'a> {
    code: Vec<Instr>,
    n_slots: u16,
    /// Next free register (temporaries and constants share the counter).
    next_reg: u32,
    /// Registers below this are permanent (slots + constants).
    perm_base: u32,
    /// High-water mark -> `BcBody::n_regs`.
    high_water: u32,
    preloads: Vec<(u16, Value)>,
    c_true: Option<u16>,
    c_false: Option<u16>,
    c_null: Option<u16>,
    field_sites: Vec<FieldSite>,
    sites: Vec<Rc<PolySite>>,
    /// Call-emission-order cursor into `old_sites` (refine pass reuses the
    /// cold pass's PolySites so warmed-up cache lines survive recompile).
    site_counter: usize,
    old_sites: &'a [Rc<PolySite>],
    tys: Vec<Rc<TypeSlot>>,
    span_pairs: Vec<(Span, Span)>,
    loops: Vec<LoopCtx>,
    regions: Vec<Region>,
    pairs: HashMap<u32, Vec<(&'static str, &'static str)>>,
    super_pcs: Vec<u32>,
    /// Current static ty-stack depth (for region capture).
    ty_depth: u16,
    /// Whether this is the refine pass (inline splicing enabled).
    inline: bool,
    methods: Vec<(Rc<MethodInfo>, ClassId)>,
    guards: Vec<InlineGuard>,
    inlined: Vec<(u32, u32, u16)>,
}

fn idx16(n: usize) -> Result<u16, Unsupported> {
    u16::try_from(n).map_err(|_| Unsupported)
}

/// Sentinel base for constant registers during emission.  Temp register
/// indices are reused across statements, so a constant (preloaded once at
/// frame entry) must live *above* every temp the body ever touches — which
/// is only known at the end of compilation.  Consts are therefore emitted
/// at `CONST_BASE + k` and remapped to `high_water + k` by `compile`.
const CONST_BASE: u16 = 0x8000;

/// Applies `f` to every register operand of `ins` (not side-table indices
/// or jump targets).  Used by the final const-register remap.
fn map_regs(ins: &mut Instr, f: impl Fn(u16) -> u16) {
    match ins {
        Instr::Move { dst, src }
        | Instr::Unary { dst, src, .. }
        | Instr::IncDecVal { dst, src, .. }
        | Instr::CastV { dst, src, .. }
        | Instr::InstOf { dst, src, .. } => {
            *dst = f(*dst);
            *src = f(*src);
        }
        Instr::LoadThis { dst, .. }
        | Instr::EnvLoad { dst, .. }
        | Instr::ClassRef { dst, .. }
        | Instr::DefaultVal { dst, .. } => *dst = f(*dst),
        Instr::EnvStore { src, .. }
        | Instr::JmpIfFalse { src, .. }
        | Instr::JmpIfTrue { src, .. }
        | Instr::Ret { src }
        | Instr::Throw { src } => *src = f(*src),
        Instr::FieldGet { dst, obj, .. } => {
            *dst = f(*dst);
            *obj = f(*obj);
        }
        Instr::FieldSet { obj, val, .. } => {
            *obj = f(*obj);
            *val = f(*val);
        }
        Instr::ArrGet { dst, arr, idx, .. } => {
            *dst = f(*dst);
            *arr = f(*arr);
            *idx = f(*idx);
        }
        Instr::ArrSet { arr, idx, val, .. } => {
            *arr = f(*arr);
            *idx = f(*idx);
            *val = f(*val);
        }
        Instr::NewFinish { dst, base, .. } | Instr::NewArrayFinish { dst, base, .. } => {
            *dst = f(*dst);
            *base = f(*base);
        }
        Instr::ToInt { reg, .. } => *reg = f(*reg),
        Instr::Binary { dst, a, b, .. } => {
            *dst = f(*dst);
            *a = f(*a);
            *b = f(*b);
        }
        Instr::IncLocal { slot, .. } => *slot = f(*slot),
        Instr::JmpIfCmp { a, b, .. } => {
            *a = f(*a);
            *b = f(*b);
        }
        Instr::CallRecv { dst, recv, base, .. } => {
            *dst = f(*dst);
            *recv = f(*recv);
            *base = f(*base);
        }
        Instr::CallSuper { dst, base, .. } | Instr::CallImplicit { dst, base, .. } => {
            *dst = f(*dst);
            *base = f(*base);
        }
        Instr::NewClass { .. }
        | Instr::TyElem { .. }
        | Instr::TyDecl { .. }
        | Instr::TyPop
        | Instr::Jmp { .. }
        | Instr::Step { .. }
        | Instr::RetNull
        | Instr::RaiseBreak
        | Instr::RaiseContinue
        | Instr::RaiseInvalidAssign { .. }
        | Instr::GuardInline { .. }
        | Instr::CallEnter { .. }
        | Instr::CallExit => {}
    }
}

impl<'a> Emit<'a> {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit(&mut self, i: Instr) -> u32 {
        let pc = self.pc();
        self.code.push(i);
        pc
    }

    fn bump(&mut self, n: u32) -> Result<u16, Unsupported> {
        let r = self.next_reg;
        let end = r + n;
        if end >= u32::from(CONST_BASE) {
            return Err(Unsupported);
        }
        self.next_reg = end;
        self.high_water = self.high_water.max(end);
        Ok(r as u16)
    }

    fn alloc_temp(&mut self) -> Result<u16, Unsupported> {
        self.bump(1)
    }

    /// A contiguous block of `n` registers (call/ctor/array-dim arguments).
    fn alloc_block(&mut self, n: usize) -> Result<u16, Unsupported> {
        self.bump(u32::try_from(n).map_err(|_| Unsupported)?)
    }

    /// A constant register preloaded with `v` at frame entry.  Allocated
    /// in the sentinel space (see [`CONST_BASE`]) and remapped above the
    /// temp high-water mark when compilation finishes.
    fn alloc_const(&mut self, v: Value) -> Result<u16, Unsupported> {
        let k = self.preloads.len();
        if k >= usize::from(u16::MAX - CONST_BASE) {
            return Err(Unsupported);
        }
        let r = CONST_BASE + k as u16;
        self.preloads.push((r, v));
        Ok(r)
    }

    /// Constant register for `v`; `true`/`false`/`null` are deduplicated.
    fn const_reg(&mut self, v: &Value) -> Result<u16, Unsupported> {
        match v {
            Value::Bool(true) => {
                if let Some(r) = self.c_true {
                    return Ok(r);
                }
                let r = self.alloc_const(Value::Bool(true))?;
                self.c_true = Some(r);
                Ok(r)
            }
            Value::Bool(false) => {
                if let Some(r) = self.c_false {
                    return Ok(r);
                }
                let r = self.alloc_const(Value::Bool(false))?;
                self.c_false = Some(r);
                Ok(r)
            }
            Value::Null => Ok(self.null_reg()?),
            other => self.alloc_const(other.clone()),
        }
    }

    fn null_reg(&mut self) -> Result<u16, Unsupported> {
        if let Some(r) = self.c_null {
            return Ok(r);
        }
        let r = self.alloc_const(Value::Null)?;
        self.c_null = Some(r);
        Ok(r)
    }

    fn field_site(&mut self) -> Result<u16, Unsupported> {
        let i = idx16(self.field_sites.len())?;
        self.field_sites.push(FieldSite::new());
        Ok(i)
    }

    fn ty_slot(&mut self, ts: &Rc<TypeSlot>) -> Result<u16, Unsupported> {
        let i = idx16(self.tys.len())?;
        self.tys.push(Rc::clone(ts));
        Ok(i)
    }

    fn span_pair(&mut self, expr: Span, idx: Span) -> Result<u16, Unsupported> {
        let i = idx16(self.span_pairs.len())?;
        self.span_pairs.push((expr, idx));
        Ok(i)
    }

    /// Next call site: reuse the cold pass's PolySite in emission order so
    /// warmed cache lines survive the refine recompile.
    fn call_site(&mut self) -> Result<(u16, Rc<PolySite>), Unsupported> {
        let site = match self.old_sites.get(self.site_counter) {
            Some(s) => Rc::clone(s),
            None => PolySite::new(),
        };
        self.site_counter += 1;
        let i = idx16(self.sites.len())?;
        self.sites.push(Rc::clone(&site));
        Ok((i, site))
    }

    fn patch(&mut self, pcs: &[u32], to: u32) {
        for &pc in pcs {
            match &mut self.code[pc as usize] {
                Instr::Jmp { target }
                | Instr::JmpIfFalse { target, .. }
                | Instr::JmpIfTrue { target, .. }
                | Instr::JmpIfCmp { target, .. } => *target = to,
                Instr::GuardInline { fallback, .. } => *fallback = to,
                _ => unreachable!("patch target is not a jump"),
            }
        }
    }

    fn attach_pairs(&mut self, pc: u32, op: BinOp, l: &LExpr, r: &LExpr) {
        let mut v = Vec::new();
        if let LExprKind::Binary(inner, ..) = &l.kind {
            v.push((op.as_str(), inner.as_str()));
        }
        if let LExprKind::Binary(inner, ..) = &r.kind {
            v.push((op.as_str(), inner.as_str()));
        }
        if !v.is_empty() {
            self.pairs.entry(pc).or_default().extend(v);
        }
    }

    // ---- statements ----------------------------------------------------------

    fn stmt(&mut self, s: &LStmt) -> Result<(), Unsupported> {
        let mark = self.next_reg;
        self.emit(Instr::Step { span: s.span });
        match &s.kind {
            LStmtKind::Block(stmts) => {
                for c in stmts {
                    self.stmt(c)?;
                }
            }
            LStmtKind::Expr(e) => self.discard_expr(e)?,
            LStmtKind::Decl { ty, decls } => {
                // Fully-initialized primitive decls skip the runtime type
                // stack: no DefaultVal ever reads the resolved type, and
                // primitive resolution is infallible and context-free, so
                // the elision is unobservable (class-typed decls keep the
                // resolve so "unknown class" errors stay tier-identical).
                if tn_is_prim(&ty.tn) && decls.iter().all(|d| d.init.is_some()) {
                    for d in decls {
                        let dst = idx16(d.slot as usize)?;
                        let e = d.init.as_ref().expect("checked initialized");
                        self.expr_into(dst, e)?;
                    }
                } else {
                    let t = self.ty_slot(ty)?;
                    self.emit(Instr::TyDecl { ty: t, span: s.span });
                    self.ty_depth += 1;
                    for d in decls {
                        let dst = idx16(d.slot as usize)?;
                        match &d.init {
                            Some(e) => self.expr_into(dst, e)?,
                            None => {
                                self.emit(Instr::DefaultVal { dst, dims: d.dims });
                            }
                        }
                    }
                    self.emit(Instr::TyPop);
                    self.ty_depth -= 1;
                }
            }
            LStmtKind::If(c, t, e) => {
                let to_else = self.branch(c, false)?;
                self.stmt(t)?;
                match e {
                    Some(e) => {
                        let to_end = self.emit(Instr::Jmp { target: u32::MAX });
                        let here = self.pc();
                        self.patch(&to_else, here);
                        self.stmt(e)?;
                        let end = self.pc();
                        self.patch(&[to_end], end);
                    }
                    None => {
                        let here = self.pc();
                        self.patch(&to_else, here);
                    }
                }
            }
            LStmtKind::While(c, body) => {
                let l_cond = self.pc();
                let to_exit = self.branch(c, false)?;
                let l_body = self.pc();
                self.loops.push(LoopCtx { break_fixups: Vec::new(), continue_fixups: Vec::new() });
                self.stmt(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                let back = self.emit(Instr::Jmp { target: l_cond });
                let l_end = self.pc();
                self.patch(&to_exit, l_end);
                self.patch(&ctx.break_fixups, l_end);
                self.patch(&ctx.continue_fixups, l_cond);
                self.regions.push(Region {
                    start: l_body,
                    end: back,
                    brk: l_end,
                    cont: l_cond,
                    ty_depth: self.ty_depth,
                    inline_depth: 0,
                });
            }
            LStmtKind::Do(body, c) => {
                let l_body = self.pc();
                self.loops.push(LoopCtx { break_fixups: Vec::new(), continue_fixups: Vec::new() });
                self.stmt(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                let l_cond = self.pc();
                let back = self.branch(c, true)?;
                self.patch(&back, l_body);
                let l_end = self.pc();
                self.patch(&ctx.break_fixups, l_end);
                self.patch(&ctx.continue_fixups, l_cond);
                self.regions.push(Region {
                    start: l_body,
                    end: l_cond,
                    brk: l_end,
                    cont: l_cond,
                    ty_depth: self.ty_depth,
                    inline_depth: 0,
                });
            }
            LStmtKind::For { init_decl, init_exprs, cond, update, body } => {
                if let Some(d) = init_decl {
                    self.stmt(d)?;
                }
                for e in init_exprs {
                    self.discard_expr(e)?;
                }
                let l_cond = self.pc();
                let to_exit = match cond {
                    Some(c) => self.branch(c, false)?,
                    None => Vec::new(),
                };
                let l_body = self.pc();
                self.loops.push(LoopCtx { break_fixups: Vec::new(), continue_fixups: Vec::new() });
                self.stmt(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                let l_cont = self.pc();
                for u in update {
                    self.discard_expr(u)?;
                }
                self.emit(Instr::Jmp { target: l_cond });
                let l_end = self.pc();
                self.patch(&to_exit, l_end);
                self.patch(&ctx.break_fixups, l_end);
                self.patch(&ctx.continue_fixups, l_cont);
                self.regions.push(Region {
                    start: l_body,
                    end: l_cont,
                    brk: l_end,
                    cont: l_cont,
                    ty_depth: self.ty_depth,
                    inline_depth: 0,
                });
            }
            LStmtKind::Return(e) => match e {
                Some(e) => {
                    let (src, _) = self.operand(e, false)?;
                    self.emit(Instr::Ret { src });
                }
                None => {
                    self.emit(Instr::RetNull);
                }
            },
            LStmtKind::Break => match self.loops.last_mut() {
                Some(_) => {
                    let pc = self.emit(Instr::Jmp { target: u32::MAX });
                    self.loops.last_mut().expect("loop ctx").break_fixups.push(pc);
                }
                None => {
                    self.emit(Instr::RaiseBreak);
                }
            },
            LStmtKind::Continue => match self.loops.last_mut() {
                Some(_) => {
                    let pc = self.emit(Instr::Jmp { target: u32::MAX });
                    self.loops.last_mut().expect("loop ctx").continue_fixups.push(pc);
                }
                None => {
                    self.emit(Instr::RaiseContinue);
                }
            },
            LStmtKind::Throw(e) => {
                let (src, _) = self.operand(e, false)?;
                self.emit(Instr::Throw { src });
            }
            LStmtKind::Try { .. } => return Err(Unsupported),
            LStmtKind::Empty => {}
        }
        self.next_reg = mark.max(self.perm_base);
        Ok(())
    }

    // ---- expressions ---------------------------------------------------------

    /// Evaluate `e` for side effects only (expression statements, `for`
    /// inits/updates), fusing local increments and local-store compounds.
    fn discard_expr(&mut self, e: &LExpr) -> Result<(), Unsupported> {
        match &e.kind {
            // Side-effect-free leaves: nothing to do.
            LExprKind::Const(_) | LExprKind::Local(_) => Ok(()),
            // `x++` / `x--` on a local slot: one superinstruction.
            LExprKind::IncDec { op, read, write, .. } => {
                if let (LExprKind::Local(rs), LTarget::Local(ws)) = (&read.kind, write) {
                    if rs == ws {
                        let slot = idx16(*rs as usize)?;
                        let delta = if *op == IncDecOp::Inc { 1 } else { -1 };
                        let pc = self.emit(Instr::IncLocal { slot, delta, span: e.span });
                        self.super_pcs.push(pc);
                        return Ok(());
                    }
                }
                let t = self.alloc_temp()?;
                self.expr_into(t, e)
            }
            // `x = v`: compile the value straight into the slot.
            LExprKind::Assign { op: None, write: LTarget::Local(ws), value, .. } => {
                let dst = idx16(*ws as usize)?;
                self.expr_into(dst, value)
            }
            // `x op= v`: store-fused binary (reads the slot at execution
            // time, after the value — legacy's value-then-read order).
            // Legacy's compound-assign path calls binary_l_values directly
            // (bypassing prof_binop_l), so no pairs entry here.
            LExprKind::Assign {
                op: Some(op),
                read: Some(read),
                write: LTarget::Local(ws),
                value,
            } => {
                if let LExprKind::Local(rs) = &read.kind {
                    if rs == ws {
                        let slot = idx16(*ws as usize)?;
                        let (b, _) = self.operand(value, false)?;
                        let pc = self.emit(Instr::Binary {
                            op: *op,
                            dst: slot,
                            a: slot,
                            b,
                            span: e.span,
                        });
                        self.super_pcs.push(pc);
                        return Ok(());
                    }
                }
                let t = self.alloc_temp()?;
                self.expr_into(t, e)
            }
            _ => {
                let t = self.alloc_temp()?;
                self.expr_into(t, e)
            }
        }
    }

    /// Place `e` in a register. Direct local/constant registers are used
    /// as-is; `hazard` forces a copy when code evaluated *after* this
    /// operand (but before the consuming instruction) could overwrite a
    /// local slot.
    fn operand(&mut self, e: &LExpr, hazard: bool) -> Result<(u16, bool), Unsupported> {
        match &e.kind {
            LExprKind::Local(slot) if !hazard => Ok((idx16(*slot as usize)?, true)),
            LExprKind::Const(v) => {
                let v = v.clone();
                Ok((self.const_reg(&v)?, true))
            }
            _ => {
                let t = self.alloc_temp()?;
                self.expr_into(t, e)?;
                Ok((t, false))
            }
        }
    }

    /// Compile condition `c` and emit a conditional jump taken when the
    /// condition equals `jump_when`; returns the jump pcs to patch.
    /// Comparison conditions fuse into `JmpIfCmp`.
    fn branch(&mut self, c: &LExpr, jump_when: bool) -> Result<Vec<u32>, Unsupported> {
        use BinOp::*;
        if let LExprKind::Binary(op, l, r) = &c.kind {
            if matches!(op, Lt | Le | Gt | Ge | Eq | Ne) {
                let pc_before = self.pc();
                self.attach_pairs(pc_before, *op, l, r);
                let hazard_l = writes_locals(r);
                let (a, _) = self.operand(l, hazard_l)?;
                let (b, _) = self.operand(r, false)?;
                let pc = self.emit(Instr::JmpIfCmp {
                    op: *op,
                    a,
                    b,
                    when: jump_when,
                    target: u32::MAX,
                    span: c.span,
                });
                self.super_pcs.push(pc);
                return Ok(vec![pc]);
            }
        }
        let (src, _) = self.operand(c, false)?;
        let pc = if jump_when {
            self.emit(Instr::JmpIfTrue { src, target: u32::MAX, span: c.span })
        } else {
            self.emit(Instr::JmpIfFalse { src, target: u32::MAX, span: c.span })
        };
        Ok(vec![pc])
    }

    /// Store an already-computed value into an assignment target —
    /// mirrors `assign_l` (target subexpressions evaluate *after* the
    /// value, matching legacy order).
    fn store(&mut self, t: &LTarget, val: u16) -> Result<(), Unsupported> {
        match t {
            LTarget::Local(slot) => {
                let dst = idx16(*slot as usize)?;
                if dst != val {
                    self.emit(Instr::Move { dst, src: val });
                }
            }
            LTarget::EnvName(name, span) => {
                self.emit(Instr::EnvStore { src: val, name: *name, span: *span });
            }
            LTarget::Field { target, name, span } => {
                let (obj, _) = self.operand(target, false)?;
                self.emit(Instr::FieldSet { obj, val, name: *name, span: *span });
            }
            LTarget::Array { arr, idx, span } => {
                let (a, _) = self.operand(arr, writes_locals(idx))?;
                let (i, _) = self.operand(idx, false)?;
                let spans = self.span_pair(*span, idx.span)?;
                self.emit(Instr::ArrSet { arr: a, idx: i, val, spans });
            }
            LTarget::Invalid(span) => {
                self.emit(Instr::RaiseInvalidAssign { span: *span });
            }
        }
        Ok(())
    }

    /// Compile `e` so its value lands in `dst`. Contract: on every path,
    /// only the final emitted instruction writes `dst` (protects fused
    /// stores whose target is re-read by intervening code).
    fn expr_into(&mut self, dst: u16, e: &LExpr) -> Result<(), Unsupported> {
        match &e.kind {
            LExprKind::Const(v) => {
                let v = v.clone();
                let r = self.const_reg(&v)?;
                if dst != r {
                    self.emit(Instr::Move { dst, src: r });
                }
            }
            LExprKind::Local(slot) => {
                let src = idx16(*slot as usize)?;
                if dst != src {
                    self.emit(Instr::Move { dst, src });
                }
            }
            LExprKind::EnvName(name) => {
                // The site caches (layout → slot) for the dominant case:
                // an unqualified read of one of `this`'s fields.
                let site = self.field_site()?;
                self.emit(Instr::EnvLoad { dst, name: *name, site, span: e.span });
            }
            LExprKind::This => {
                self.emit(Instr::LoadThis { dst, span: e.span });
            }
            LExprKind::ClassRefName(fqcn) => {
                self.emit(Instr::ClassRef { dst, fqcn: *fqcn, span: e.span });
            }
            LExprKind::FieldGet { target, name, .. } => {
                let (obj, _) = self.operand(target, false)?;
                let site = self.field_site()?;
                self.emit(Instr::FieldGet { dst, obj, name: *name, site, span: e.span });
            }
            LExprKind::ArrayGet(arr, idx) => {
                let (a, _) = self.operand(arr, writes_locals(idx))?;
                let (i, _) = self.operand(idx, false)?;
                let spans = self.span_pair(e.span, idx.span)?;
                self.emit(Instr::ArrGet { dst, arr: a, idx: i, spans });
            }
            LExprKind::New { ty, args } => {
                let ty = self.ty_slot(ty)?;
                self.emit(Instr::NewClass { ty, span: e.span });
                self.ty_depth += 1;
                let n = idx16(args.len())?;
                let base = self.alloc_block(args.len())?;
                for (k, a) in args.iter().enumerate() {
                    self.expr_into(base + k as u16, a)?;
                }
                self.emit(Instr::NewFinish { dst, base, n, span: e.span });
                self.ty_depth -= 1;
            }
            LExprKind::NewArray { elem, extra_dims, dims } => {
                let ty = self.ty_slot(elem)?;
                self.emit(Instr::TyElem { ty, extra_dims: *extra_dims, span: e.span });
                self.ty_depth += 1;
                let n = idx16(dims.len())?;
                let base = self.alloc_block(dims.len())?;
                for (k, d) in dims.iter().enumerate() {
                    let reg = base + k as u16;
                    self.expr_into(reg, d)?;
                    self.emit(Instr::ToInt { reg, span: d.span });
                }
                self.emit(Instr::NewArrayFinish { dst, base, n, span: e.span });
                self.ty_depth -= 1;
            }
            LExprKind::Binary(op, l, r) => {
                let pc_before = self.pc();
                self.attach_pairs(pc_before, *op, l, r);
                match op {
                    // Short-circuit chains with truthiness-check parity:
                    // each operand's non-boolean error fires at its own span.
                    BinOp::And => {
                        let t = self.const_reg(&Value::Bool(true))?;
                        let f = self.const_reg(&Value::Bool(false))?;
                        let (sl, _) = self.operand(l, false)?;
                        let j1 =
                            self.emit(Instr::JmpIfFalse { src: sl, target: u32::MAX, span: l.span });
                        let (sr, _) = self.operand(r, false)?;
                        let j2 =
                            self.emit(Instr::JmpIfFalse { src: sr, target: u32::MAX, span: r.span });
                        self.emit(Instr::Move { dst, src: t });
                        let je = self.emit(Instr::Jmp { target: u32::MAX });
                        let l_false = self.pc();
                        self.patch(&[j1, j2], l_false);
                        self.emit(Instr::Move { dst, src: f });
                        let l_end = self.pc();
                        self.patch(&[je], l_end);
                    }
                    BinOp::Or => {
                        let t = self.const_reg(&Value::Bool(true))?;
                        let f = self.const_reg(&Value::Bool(false))?;
                        let (sl, _) = self.operand(l, false)?;
                        let j1 =
                            self.emit(Instr::JmpIfTrue { src: sl, target: u32::MAX, span: l.span });
                        let (sr, _) = self.operand(r, false)?;
                        let j2 =
                            self.emit(Instr::JmpIfTrue { src: sr, target: u32::MAX, span: r.span });
                        self.emit(Instr::Move { dst, src: f });
                        let je = self.emit(Instr::Jmp { target: u32::MAX });
                        let l_true = self.pc();
                        self.patch(&[j1, j2], l_true);
                        self.emit(Instr::Move { dst, src: t });
                        let l_end = self.pc();
                        self.patch(&[je], l_end);
                    }
                    _ => {
                        let hazard_l = writes_locals(r);
                        let (a, da) = self.operand(l, hazard_l)?;
                        let (b, db) = self.operand(r, false)?;
                        let pc = self.emit(Instr::Binary { op: *op, dst, a, b, span: e.span });
                        // Superinstruction forms: both operands direct
                        // (load+load+op) or store-fused into a local slot.
                        if (da && db) || dst < self.n_slots {
                            self.super_pcs.push(pc);
                        }
                    }
                }
            }
            LExprKind::Unary(op, x) => {
                let (src, _) = self.operand(x, false)?;
                self.emit(Instr::Unary { op: *op, dst, src, span: e.span });
            }
            LExprKind::IncDec { op, prefix, read, write } => {
                let delta = if *op == IncDecOp::Inc { 1 } else { -1 };
                if *prefix {
                    let (r, _) = self.operand(read, false)?;
                    let t_new = self.alloc_temp()?;
                    self.emit(Instr::IncDecVal { dst: t_new, src: r, delta, span: e.span });
                    self.store(write, t_new)?;
                    self.emit(Instr::Move { dst, src: t_new });
                } else {
                    // Postfix must copy the old value before the store.
                    let t_old = self.alloc_temp()?;
                    self.expr_into(t_old, read)?;
                    let t_new = self.alloc_temp()?;
                    self.emit(Instr::IncDecVal { dst: t_new, src: t_old, delta, span: e.span });
                    self.store(write, t_new)?;
                    self.emit(Instr::Move { dst, src: t_old });
                }
            }
            LExprKind::Assign { op, read, write, value } => match op {
                None => {
                    let hazard = target_writes(write);
                    let (rv, _) = self.operand(value, hazard)?;
                    self.store(write, rv)?;
                    if dst != rv {
                        self.emit(Instr::Move { dst, src: rv });
                    }
                }
                Some(binop) => {
                    let read = read.as_ref().ok_or(Unsupported)?;
                    let hazard = writes_locals(read) || target_writes(write);
                    let (rv, _) = self.operand(value, hazard)?;
                    let (lv, _) = self.operand(read, false)?;
                    let t = self.alloc_temp()?;
                    self.emit(Instr::Binary { op: *binop, dst: t, a: lv, b: rv, span: e.span });
                    self.store(write, t)?;
                    self.emit(Instr::Move { dst, src: t });
                }
            },
            LExprKind::Cond(c, t, f) => {
                let to_else = self.branch(c, false)?;
                self.expr_into(dst, t)?;
                let je = self.emit(Instr::Jmp { target: u32::MAX });
                let l_else = self.pc();
                self.patch(&to_else, l_else);
                self.expr_into(dst, f)?;
                let l_end = self.pc();
                self.patch(&[je], l_end);
            }
            LExprKind::Cast { ty, x } => {
                let (src, _) = self.operand(x, false)?;
                let ty = self.ty_slot(ty)?;
                self.emit(Instr::CastV { dst, src, ty, span: e.span });
            }
            LExprKind::Instanceof { x, ty } => {
                let (src, _) = self.operand(x, false)?;
                let ty = self.ty_slot(ty)?;
                self.emit(Instr::InstOf { dst, src, ty, span: e.span });
            }
            LExprKind::Call { callee, args, .. } => {
                self.compile_call(dst, callee, args, e.span)?;
            }
        }
        Ok(())
    }

    /// Compile a call: arguments first into a contiguous block, then the
    /// receiver (legacy order), then the call instruction — possibly
    /// guarded by an inline splice on the refine pass.
    fn compile_call(
        &mut self,
        dst: u16,
        callee: &LCallee,
        args: &[LExpr],
        span: Span,
    ) -> Result<(), Unsupported> {
        let (site_idx, site) = self.call_site()?;
        let n = idx16(args.len())?;
        let base = self.alloc_block(args.len())?;
        for (k, a) in args.iter().enumerate() {
            self.expr_into(base + k as u16, a)?;
        }
        match callee {
            LCallee::Recv(recv, name) => {
                let (r, _) = self.operand(recv, false)?;
                let generic =
                    Instr::CallRecv { dst, recv: r, base, n, name: *name, site: site_idx, span };
                if self.inline
                    && self.maybe_inline(dst, Some(r), base, args.len(), *name, &site, span, generic)?
                {
                    return Ok(());
                }
                self.emit(generic);
            }
            LCallee::Super(name) => {
                self.emit(Instr::CallSuper { dst, base, n, name: *name, site: site_idx, span });
            }
            LCallee::Implicit(name) => {
                let generic =
                    Instr::CallImplicit { dst, base, n, name: *name, site: site_idx, span };
                if self.inline
                    && self.maybe_inline(dst, None, base, args.len(), *name, &site, span, generic)?
                {
                    return Ok(());
                }
                self.emit(generic);
            }
        }
        Ok(())
    }

    /// Try to splice a monomorphic leaf callee inline behind a PIC-shape
    /// guard. Emits `GuardInline` + the remapped callee body + the generic
    /// call as the guard's fallback. Returns false (emitting nothing) when
    /// the site isn't eligible.
    #[allow(clippy::too_many_arguments)]
    fn maybe_inline(
        &mut self,
        dst: u16,
        recv: Option<u16>,
        base: u16,
        n_args: usize,
        name: Symbol,
        site: &Rc<PolySite>,
        span: Span,
        generic: Instr,
    ) -> Result<bool, Unsupported> {
        let Some(snap) = site.mono_snapshot() else {
            return Ok(false);
        };
        let Some(callee) = bc_of(&snap.lowered) else {
            return Ok(false);
        };
        if !inline_ok(&callee, n_args, recv.is_some()) {
            return Ok(false);
        }
        let guard_idx = idx16(self.guards.len())?;
        self.guards.push(InlineGuard {
            epoch: snap.epoch,
            ck: snap.ck,
            keys: snap.keys.clone(),
            recv,
            base,
            site: Rc::clone(site),
            name,
            class: snap.class,
        });
        let gpc = self.emit(Instr::GuardInline { guard: guard_idx, fallback: u32::MAX });
        let m_idx = idx16(self.methods.len())?;
        self.methods.push((Rc::clone(&snap.target), snap.class));
        let ibase = self.alloc_block(callee.n_regs as usize)?;
        // Inlined frames are permanent register space: a loop around the
        // call site re-enters the splice, which must not collide with
        // temporaries of later statements.
        self.perm_base = self.perm_base.max(self.next_reg);
        let nullr = self.null_reg()?;
        self.emit(Instr::CallEnter { m: m_idx, span });
        for i in 0..callee.n_params {
            self.emit(Instr::Move { dst: ibase + i, src: base + i });
        }
        // Fresh-frame parity: callee non-param locals start at Null
        // (definite assignment is not guaranteed before declaration).
        for i in callee.n_params..callee.n_locals {
            self.emit(Instr::Move { dst: ibase + i, src: nullr });
        }
        // Index rebases for the callee's side tables.
        let fs_b = idx16(self.field_sites.len())?;
        let sp_b = idx16(self.span_pairs.len())?;
        let ty_b = idx16(self.tys.len())?;
        for _ in 0..callee.field_sites.len() {
            self.field_sites.push(FieldSite::new());
        }
        idx16(self.field_sites.len())?;
        self.span_pairs.extend(callee.span_pairs.iter().copied());
        idx16(self.span_pairs.len())?;
        for t in &callee.tys {
            self.tys.push(Rc::clone(t));
        }
        idx16(self.tys.len())?;
        // Callee constants re-enter the caller's const pool (sentinel
        // space): rebasing them by `ibase` would place preloaded registers
        // inside temp space, where an earlier statement's temporaries can
        // overwrite them before the splice runs.
        let mut cmap: HashMap<u16, u16> = HashMap::new();
        for &(r, ref v) in &callee.preloads {
            cmap.insert(r, self.const_reg(v)?);
        }
        let rb = |r: u16| cmap.get(&r).copied().unwrap_or(r + ibase);
        // pc map: Ret/RetNull expand to two instructions; newpos[len] is
        // the exit label (jump-to-end targets land there).
        let mut newpos = vec![0u32; callee.code.len() + 1];
        let mut pos = self.pc();
        for (i, ins) in callee.code.iter().enumerate() {
            newpos[i] = pos;
            pos += match ins {
                Instr::Ret { .. } | Instr::RetNull => 2,
                _ => 1,
            };
        }
        newpos[callee.code.len()] = pos;
        let lexit = pos;
        for ins in &callee.code {
            match *ins {
                Instr::LoadThis { dst: d, .. } => {
                    // The guard proved the receiver register holds an
                    // object of the expected class, so the callee's
                    // `this` is exactly that register — never absent.
                    let r = recv.expect("LoadThis only passes inline_ok with a receiver");
                    self.emit(Instr::Move { dst: rb(d), src: r });
                }
                Instr::Move { dst: d, src } => {
                    self.emit(Instr::Move { dst: rb(d), src: rb(src) });
                }
                Instr::Binary { op, dst: d, a, b, span } => {
                    self.emit(Instr::Binary {
                        op,
                        dst: rb(d),
                        a: rb(a),
                        b: rb(b),
                        span,
                    });
                }
                Instr::Unary { op, dst: d, src, span } => {
                    self.emit(Instr::Unary { op, dst: rb(d), src: rb(src), span });
                }
                Instr::IncDecVal { dst: d, src, delta, span } => {
                    self.emit(Instr::IncDecVal {
                        dst: rb(d),
                        src: rb(src),
                        delta,
                        span,
                    });
                }
                Instr::IncLocal { slot, delta, span } => {
                    self.emit(Instr::IncLocal { slot: rb(slot), delta, span });
                }
                Instr::Jmp { target } => {
                    self.emit(Instr::Jmp { target: newpos[target as usize] });
                }
                Instr::JmpIfFalse { src, target, span } => {
                    self.emit(Instr::JmpIfFalse {
                        src: rb(src),
                        target: newpos[target as usize],
                        span,
                    });
                }
                Instr::JmpIfTrue { src, target, span } => {
                    self.emit(Instr::JmpIfTrue {
                        src: rb(src),
                        target: newpos[target as usize],
                        span,
                    });
                }
                Instr::JmpIfCmp { op, a, b, when, target, span } => {
                    self.emit(Instr::JmpIfCmp {
                        op,
                        a: rb(a),
                        b: rb(b),
                        when,
                        target: newpos[target as usize],
                        span,
                    });
                }
                Instr::Step { span } => {
                    self.emit(Instr::Step { span });
                }
                Instr::Ret { src } => {
                    self.emit(Instr::Move { dst, src: rb(src) });
                    self.emit(Instr::Jmp { target: lexit });
                }
                Instr::RetNull => {
                    self.emit(Instr::Move { dst, src: nullr });
                    self.emit(Instr::Jmp { target: lexit });
                }
                Instr::RaiseBreak => {
                    self.emit(Instr::RaiseBreak);
                }
                Instr::RaiseContinue => {
                    self.emit(Instr::RaiseContinue);
                }
                Instr::Throw { src } => {
                    self.emit(Instr::Throw { src: rb(src) });
                }
                Instr::RaiseInvalidAssign { span } => {
                    self.emit(Instr::RaiseInvalidAssign { span });
                }
                Instr::ToInt { reg, span } => {
                    self.emit(Instr::ToInt { reg: rb(reg), span });
                }
                Instr::ArrGet { dst: d, arr, idx, spans } => {
                    self.emit(Instr::ArrGet {
                        dst: rb(d),
                        arr: rb(arr),
                        idx: rb(idx),
                        spans: spans + sp_b,
                    });
                }
                Instr::ArrSet { arr, idx, val, spans } => {
                    self.emit(Instr::ArrSet {
                        arr: rb(arr),
                        idx: rb(idx),
                        val: rb(val),
                        spans: spans + sp_b,
                    });
                }
                Instr::FieldGet { dst: d, obj, name, site, span } => {
                    self.emit(Instr::FieldGet {
                        dst: rb(d),
                        obj: rb(obj),
                        name,
                        site: site + fs_b,
                        span,
                    });
                }
                Instr::FieldSet { obj, val, name, span } => {
                    self.emit(Instr::FieldSet {
                        obj: rb(obj),
                        val: rb(val),
                        name,
                        span,
                    });
                }
                Instr::DefaultVal { dst: d, dims } => {
                    self.emit(Instr::DefaultVal { dst: rb(d), dims });
                }
                Instr::TyDecl { ty, span } => {
                    self.emit(Instr::TyDecl { ty: ty + ty_b, span });
                }
                Instr::TyPop => {
                    self.emit(Instr::TyPop);
                }
                _ => unreachable!("instruction rejected by inline_ok"),
            }
        }
        debug_assert_eq!(self.pc(), lexit);
        self.emit(Instr::CallExit);
        let je = self.emit(Instr::Jmp { target: u32::MAX });
        let fallback = self.pc();
        self.patch(&[gpc], fallback);
        self.emit(generic);
        let done = self.pc();
        self.patch(&[je], done);
        for (pc, v) in &callee.pairs {
            self.pairs
                .entry(newpos[*pc as usize])
                .or_default()
                .extend(v.iter().copied());
        }
        for pc in &callee.super_pcs {
            self.super_pcs.push(newpos[*pc as usize]);
        }
        for r in &callee.regions {
            self.regions.push(Region {
                start: newpos[r.start as usize],
                end: newpos[r.end as usize],
                brk: newpos[r.brk as usize],
                cont: newpos[r.cont as usize],
                ty_depth: r.ty_depth + self.ty_depth,
                inline_depth: r.inline_depth + 1,
            });
        }
        self.inlined.push((gpc, lexit, m_idx));
        Ok(true)
    }
}

/// Compile `lb` to bytecode. `old_sites` seeds call-site reuse in emission
/// order (the refine pass keeps the cold pass's warmed PIC lines); `inline`
/// enables leaf-callee splicing.
pub(crate) fn compile(
    lb: &LoweredBody,
    old_sites: &[Rc<PolySite>],
    inline: bool,
) -> Result<BcBody, Unsupported> {
    let n_slots = idx16(lb.n_slots)?;
    let n_params = idx16(lb.n_params)?;
    let mut e = Emit {
        code: Vec::new(),
        n_slots,
        next_reg: u32::from(n_slots),
        perm_base: u32::from(n_slots),
        high_water: u32::from(n_slots),
        preloads: Vec::new(),
        c_true: None,
        c_false: None,
        c_null: None,
        field_sites: Vec::new(),
        sites: Vec::new(),
        site_counter: 0,
        old_sites,
        tys: Vec::new(),
        span_pairs: Vec::new(),
        loops: Vec::new(),
        regions: Vec::new(),
        pairs: HashMap::new(),
        super_pcs: Vec::new(),
        ty_depth: 0,
        inline,
        methods: Vec::new(),
        guards: Vec::new(),
        inlined: Vec::new(),
    };
    for s in &lb.code {
        e.stmt(s)?;
    }
    e.emit(Instr::RetNull);
    // Final register layout: [locals | temps | consts].  Constants were
    // emitted in the sentinel space (`CONST_BASE + k`, see `alloc_const`);
    // now that the temp high-water mark is known, land them above it.
    let n_temps = idx16(e.high_water as usize)?;
    let n_consts = idx16(e.preloads.len())?;
    if usize::from(n_temps) + usize::from(n_consts) > usize::from(CONST_BASE) {
        return Err(Unsupported);
    }
    let remap = |r: u16| {
        if r >= CONST_BASE {
            n_temps + (r - CONST_BASE)
        } else {
            r
        }
    };
    let mut code = e.code;
    for ins in &mut code {
        map_regs(ins, remap);
    }
    let preloads: Vec<(u16, Value)> =
        e.preloads.into_iter().map(|(r, v)| (remap(r), v)).collect();
    let mut guards = e.guards;
    for g in &mut guards {
        g.recv = g.recv.map(remap);
        g.base = remap(g.base);
    }
    Ok(BcBody {
        n_params,
        n_locals: n_slots,
        n_regs: n_temps + n_consts,
        code,
        preloads,
        field_sites: e.field_sites,
        sites: e.sites,
        tys: e.tys,
        span_pairs: e.span_pairs,
        methods: e.methods,
        guards,
        regions: e.regions,
        pairs: e.pairs,
        super_pcs: e.super_pcs,
        inlined: e.inlined,
    })
}

/// Bytecode for a callee body, compiling cold if needed. Used by the
/// inliner and the disassembler; the interpreter's `bytecode_for` wraps
/// this with the exec-counted refine logic.
pub(crate) fn bc_of(lb: &LoweredBody) -> Option<Rc<BcBody>> {
    enum Plan {
        Use(Rc<BcBody>),
        Compile,
        Bail,
    }
    let plan = match &*lb.bc.borrow() {
        BcState::Ready { bc, .. } => Plan::Use(Rc::clone(bc)),
        BcState::Unsupported => Plan::Bail,
        BcState::Cold => Plan::Compile,
    };
    match plan {
        Plan::Use(bc) => Some(bc),
        Plan::Bail => None,
        Plan::Compile => match compile(lb, &[], false) {
            Ok(bc) => {
                let bc = Rc::new(bc);
                maya_telemetry::count(maya_telemetry::Counter::BcCompiled);
                maya_telemetry::add(
                    maya_telemetry::Counter::BcSuperinsts,
                    bc.super_pcs.len() as u64,
                );
                *lb.bc.borrow_mut() = BcState::Ready {
                    bc: Rc::clone(&bc),
                    execs: Cell::new(0),
                    refined: Cell::new(false),
                };
                Some(bc)
            }
            Err(Unsupported) => {
                *lb.bc.borrow_mut() = BcState::Unsupported;
                None
            }
        },
    }
}

// ---- the bytecode codec ------------------------------------------------------
//
// Serializes *cold* compiles only (the output of `compile(lb, &[], false)`):
// cold bodies never contain inline splices, so `guards`/`methods`/`inlined`
// are empty and every instruction is position-independent of runtime state.
// Site tables (`field_sites`, `sites`, `tys`) carry no data beyond their
// arity — the decoder recreates empty caches, which is observably identical
// to a fresh cold compile. Instruction tags are declaration order of
// [`Instr`]; any layout change requires bumping `BODY_PAYLOAD_VERSION` in
// `lower.rs`.

use crate::codec::{binop_code, binop_from, binop_from_str, unop_code, unop_from, R, W};

/// Encodes a cold `BcBody`, or `None` if it contains anything the codec
/// does not cover (refined bodies, non-binop profiler labels) — the caller
/// then persists the body without a bytecode section.
pub(crate) fn encode_bc(w: &mut W, bc: &BcBody) -> Option<()> {
    if !bc.guards.is_empty() || !bc.methods.is_empty() || !bc.inlined.is_empty() {
        return None; // refined (inlined) body: cold-only codec
    }
    w.u16(bc.n_params);
    w.u16(bc.n_locals);
    w.u16(bc.n_regs);
    w.len(bc.code.len())?;
    for ins in &bc.code {
        enc_instr(w, ins)?;
    }
    w.len(bc.preloads.len())?;
    for (reg, v) in &bc.preloads {
        w.u16(*reg);
        w.value(v)?;
    }
    w.len(bc.field_sites.len())?;
    w.len(bc.sites.len())?;
    w.len(bc.tys.len())?;
    for ty in &bc.tys {
        crate::lower::enc_tn(w, &ty.tn)?;
    }
    w.len(bc.span_pairs.len())?;
    for (a, b) in &bc.span_pairs {
        w.span(*a);
        w.span(*b);
    }
    w.len(bc.regions.len())?;
    for r in &bc.regions {
        w.u32(r.start);
        w.u32(r.end);
        w.u32(r.brk);
        w.u32(r.cont);
        w.u16(r.ty_depth);
        w.u16(r.inline_depth);
    }
    // HashMap iteration order is nondeterministic; sort by pc so equal
    // bodies encode to equal bytes.
    let mut pairs: Vec<_> = bc.pairs.iter().collect();
    pairs.sort_by_key(|(pc, _)| **pc);
    w.len(pairs.len())?;
    for (pc, labels) in pairs {
        w.u32(*pc);
        w.len(labels.len())?;
        for (a, b) in labels {
            w.u8(binop_code(binop_from_str(a)?));
            w.u8(binop_code(binop_from_str(b)?));
        }
    }
    w.len(bc.super_pcs.len())?;
    for pc in &bc.super_pcs {
        w.u32(*pc);
    }
    Some(())
}

/// Decodes a cold `BcBody`, validating every register, site index, and jump
/// target so a colliding or hand-edited payload can never index out of
/// bounds in the VM. `None` = treat as a cache miss.
pub(crate) fn decode_bc(r: &mut R) -> Option<BcBody> {
    let n_params = r.u16()?;
    let n_locals = r.u16()?;
    let n_regs = r.u16()?;
    let n = r.len()?;
    let mut code = Vec::with_capacity(n);
    for _ in 0..n {
        code.push(dec_instr(r)?);
    }
    let n = r.len()?;
    let mut preloads = Vec::with_capacity(n);
    for _ in 0..n {
        let reg = r.u16()?;
        preloads.push((reg, r.value()?));
    }
    let field_sites: Vec<FieldSite> = (0..r.len()?).map(|_| FieldSite::new()).collect();
    let sites: Vec<Rc<PolySite>> = (0..r.len()?).map(|_| PolySite::new()).collect();
    let n = r.len()?;
    let mut tys = Vec::with_capacity(n);
    for _ in 0..n {
        tys.push(TypeSlot::new(crate::lower::dec_tn(r)?));
    }
    let n = r.len()?;
    let mut span_pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let a = r.span()?;
        span_pairs.push((a, r.span()?));
    }
    let n = r.len()?;
    let mut regions = Vec::with_capacity(n);
    for _ in 0..n {
        let (start, end, brk, cont) = (r.u32()?, r.u32()?, r.u32()?, r.u32()?);
        let (ty_depth, inline_depth) = (r.u16()?, r.u16()?);
        regions.push(Region { start, end, brk, cont, ty_depth, inline_depth });
    }
    let n = r.len()?;
    let mut pairs = HashMap::with_capacity(n);
    for _ in 0..n {
        let pc = r.u32()?;
        let m = r.len()?;
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let a = binop_from(r.u8()?)?.as_str();
            labels.push((a, binop_from(r.u8()?)?.as_str()));
        }
        pairs.insert(pc, labels);
    }
    let n = r.len()?;
    let mut super_pcs = Vec::with_capacity(n);
    for _ in 0..n {
        super_pcs.push(r.u32()?);
    }
    let bc = BcBody {
        n_params,
        n_locals,
        n_regs,
        code,
        preloads,
        field_sites,
        sites,
        tys,
        span_pairs,
        methods: Vec::new(),
        guards: Vec::new(),
        regions,
        pairs,
        super_pcs,
        inlined: Vec::new(),
    };
    if !validate_bc(&bc) {
        return None;
    }
    Some(bc)
}

fn enc_instr(w: &mut W, ins: &Instr) -> Option<()> {
    match ins {
        Instr::Move { dst, src } => {
            w.u8(0);
            w.u16(*dst);
            w.u16(*src);
        }
        Instr::LoadThis { dst, span } => {
            w.u8(1);
            w.u16(*dst);
            w.span(*span);
        }
        Instr::EnvLoad { dst, name, site, span } => {
            w.u8(2);
            w.u16(*dst);
            w.sym(*name)?;
            w.u16(*site);
            w.span(*span);
        }
        Instr::EnvStore { src, name, span } => {
            w.u8(3);
            w.u16(*src);
            w.sym(*name)?;
            w.span(*span);
        }
        Instr::ClassRef { dst, fqcn, span } => {
            w.u8(4);
            w.u16(*dst);
            w.sym(*fqcn)?;
            w.span(*span);
        }
        Instr::FieldGet { dst, obj, name, site, span } => {
            w.u8(5);
            w.u16(*dst);
            w.u16(*obj);
            w.sym(*name)?;
            w.u16(*site);
            w.span(*span);
        }
        Instr::FieldSet { obj, val, name, span } => {
            w.u8(6);
            w.u16(*obj);
            w.u16(*val);
            w.sym(*name)?;
            w.span(*span);
        }
        Instr::ArrGet { dst, arr, idx, spans } => {
            w.u8(7);
            w.u16(*dst);
            w.u16(*arr);
            w.u16(*idx);
            w.u16(*spans);
        }
        Instr::ArrSet { arr, idx, val, spans } => {
            w.u8(8);
            w.u16(*arr);
            w.u16(*idx);
            w.u16(*val);
            w.u16(*spans);
        }
        Instr::NewClass { ty, span } => {
            w.u8(9);
            w.u16(*ty);
            w.span(*span);
        }
        Instr::NewFinish { dst, base, n, span } => {
            w.u8(10);
            w.u16(*dst);
            w.u16(*base);
            w.u16(*n);
            w.span(*span);
        }
        Instr::TyElem { ty, extra_dims, span } => {
            w.u8(11);
            w.u16(*ty);
            w.u32(*extra_dims);
            w.span(*span);
        }
        Instr::NewArrayFinish { dst, base, n, span } => {
            w.u8(12);
            w.u16(*dst);
            w.u16(*base);
            w.u16(*n);
            w.span(*span);
        }
        Instr::ToInt { reg, span } => {
            w.u8(13);
            w.u16(*reg);
            w.span(*span);
        }
        Instr::TyDecl { ty, span } => {
            w.u8(14);
            w.u16(*ty);
            w.span(*span);
        }
        Instr::DefaultVal { dst, dims } => {
            w.u8(15);
            w.u16(*dst);
            w.u32(*dims);
        }
        Instr::TyPop => w.u8(16),
        Instr::Binary { op, dst, a, b, span } => {
            w.u8(17);
            w.u8(binop_code(*op));
            w.u16(*dst);
            w.u16(*a);
            w.u16(*b);
            w.span(*span);
        }
        Instr::Unary { op, dst, src, span } => {
            w.u8(18);
            w.u8(unop_code(*op));
            w.u16(*dst);
            w.u16(*src);
            w.span(*span);
        }
        Instr::IncDecVal { dst, src, delta, span } => {
            w.u8(19);
            w.u16(*dst);
            w.u16(*src);
            w.i32(*delta);
            w.span(*span);
        }
        Instr::IncLocal { slot, delta, span } => {
            w.u8(20);
            w.u16(*slot);
            w.i32(*delta);
            w.span(*span);
        }
        Instr::CastV { dst, src, ty, span } => {
            w.u8(21);
            w.u16(*dst);
            w.u16(*src);
            w.u16(*ty);
            w.span(*span);
        }
        Instr::InstOf { dst, src, ty, span } => {
            w.u8(22);
            w.u16(*dst);
            w.u16(*src);
            w.u16(*ty);
            w.span(*span);
        }
        Instr::Jmp { target } => {
            w.u8(23);
            w.u32(*target);
        }
        Instr::JmpIfFalse { src, target, span } => {
            w.u8(24);
            w.u16(*src);
            w.u32(*target);
            w.span(*span);
        }
        Instr::JmpIfTrue { src, target, span } => {
            w.u8(25);
            w.u16(*src);
            w.u32(*target);
            w.span(*span);
        }
        Instr::JmpIfCmp { op, a, b, when, target, span } => {
            w.u8(26);
            w.u8(binop_code(*op));
            w.u16(*a);
            w.u16(*b);
            w.bool(*when);
            w.u32(*target);
            w.span(*span);
        }
        Instr::Step { span } => {
            w.u8(27);
            w.span(*span);
        }
        Instr::Ret { src } => {
            w.u8(28);
            w.u16(*src);
        }
        Instr::RetNull => w.u8(29),
        Instr::RaiseBreak => w.u8(30),
        Instr::RaiseContinue => w.u8(31),
        Instr::Throw { src } => {
            w.u8(32);
            w.u16(*src);
        }
        Instr::RaiseInvalidAssign { span } => {
            w.u8(33);
            w.span(*span);
        }
        Instr::CallRecv { dst, recv, base, n, name, site, span } => {
            w.u8(34);
            w.u16(*dst);
            w.u16(*recv);
            w.u16(*base);
            w.u16(*n);
            w.sym(*name)?;
            w.u16(*site);
            w.span(*span);
        }
        Instr::CallSuper { dst, base, n, name, site, span } => {
            w.u8(35);
            w.u16(*dst);
            w.u16(*base);
            w.u16(*n);
            w.sym(*name)?;
            w.u16(*site);
            w.span(*span);
        }
        Instr::CallImplicit { dst, base, n, name, site, span } => {
            w.u8(36);
            w.u16(*dst);
            w.u16(*base);
            w.u16(*n);
            w.sym(*name)?;
            w.u16(*site);
            w.span(*span);
        }
        // Tags 37–39 (GuardInline/CallEnter/CallExit) only appear in
        // refined bodies, which this codec declines above.
        Instr::GuardInline { .. } | Instr::CallEnter { .. } | Instr::CallExit => return None,
    }
    Some(())
}

fn dec_instr(r: &mut R) -> Option<Instr> {
    Some(match r.u8()? {
        0 => Instr::Move { dst: r.u16()?, src: r.u16()? },
        1 => Instr::LoadThis { dst: r.u16()?, span: r.span()? },
        2 => Instr::EnvLoad { dst: r.u16()?, name: r.sym()?, site: r.u16()?, span: r.span()? },
        3 => Instr::EnvStore { src: r.u16()?, name: r.sym()?, span: r.span()? },
        4 => Instr::ClassRef { dst: r.u16()?, fqcn: r.sym()?, span: r.span()? },
        5 => Instr::FieldGet {
            dst: r.u16()?,
            obj: r.u16()?,
            name: r.sym()?,
            site: r.u16()?,
            span: r.span()?,
        },
        6 => Instr::FieldSet { obj: r.u16()?, val: r.u16()?, name: r.sym()?, span: r.span()? },
        7 => Instr::ArrGet { dst: r.u16()?, arr: r.u16()?, idx: r.u16()?, spans: r.u16()? },
        8 => Instr::ArrSet { arr: r.u16()?, idx: r.u16()?, val: r.u16()?, spans: r.u16()? },
        9 => Instr::NewClass { ty: r.u16()?, span: r.span()? },
        10 => Instr::NewFinish { dst: r.u16()?, base: r.u16()?, n: r.u16()?, span: r.span()? },
        11 => Instr::TyElem { ty: r.u16()?, extra_dims: r.u32()?, span: r.span()? },
        12 => Instr::NewArrayFinish { dst: r.u16()?, base: r.u16()?, n: r.u16()?, span: r.span()? },
        13 => Instr::ToInt { reg: r.u16()?, span: r.span()? },
        14 => Instr::TyDecl { ty: r.u16()?, span: r.span()? },
        15 => Instr::DefaultVal { dst: r.u16()?, dims: r.u32()? },
        16 => Instr::TyPop,
        17 => {
            let op = binop_from(r.u8()?)?;
            Instr::Binary { op, dst: r.u16()?, a: r.u16()?, b: r.u16()?, span: r.span()? }
        }
        18 => {
            let op = unop_from(r.u8()?)?;
            Instr::Unary { op, dst: r.u16()?, src: r.u16()?, span: r.span()? }
        }
        19 => Instr::IncDecVal { dst: r.u16()?, src: r.u16()?, delta: r.i32()?, span: r.span()? },
        20 => Instr::IncLocal { slot: r.u16()?, delta: r.i32()?, span: r.span()? },
        21 => Instr::CastV { dst: r.u16()?, src: r.u16()?, ty: r.u16()?, span: r.span()? },
        22 => Instr::InstOf { dst: r.u16()?, src: r.u16()?, ty: r.u16()?, span: r.span()? },
        23 => Instr::Jmp { target: r.u32()? },
        24 => Instr::JmpIfFalse { src: r.u16()?, target: r.u32()?, span: r.span()? },
        25 => Instr::JmpIfTrue { src: r.u16()?, target: r.u32()?, span: r.span()? },
        26 => {
            let op = binop_from(r.u8()?)?;
            Instr::JmpIfCmp {
                op,
                a: r.u16()?,
                b: r.u16()?,
                when: r.bool()?,
                target: r.u32()?,
                span: r.span()?,
            }
        }
        27 => Instr::Step { span: r.span()? },
        28 => Instr::Ret { src: r.u16()? },
        29 => Instr::RetNull,
        30 => Instr::RaiseBreak,
        31 => Instr::RaiseContinue,
        32 => Instr::Throw { src: r.u16()? },
        33 => Instr::RaiseInvalidAssign { span: r.span()? },
        34 => Instr::CallRecv {
            dst: r.u16()?,
            recv: r.u16()?,
            base: r.u16()?,
            n: r.u16()?,
            name: r.sym()?,
            site: r.u16()?,
            span: r.span()?,
        },
        35 => Instr::CallSuper {
            dst: r.u16()?,
            base: r.u16()?,
            n: r.u16()?,
            name: r.sym()?,
            site: r.u16()?,
            span: r.span()?,
        },
        36 => Instr::CallImplicit {
            dst: r.u16()?,
            base: r.u16()?,
            n: r.u16()?,
            name: r.sym()?,
            site: r.u16()?,
            span: r.span()?,
        },
        _ => return None,
    })
}

/// Every register, table index, and jump target in bounds.
fn validate_bc(bc: &BcBody) -> bool {
    let reg = |r: u16| r < bc.n_regs;
    let site = |s: u16| usize::from(s) < bc.sites.len();
    let fsite = |s: u16| usize::from(s) < bc.field_sites.len();
    let ty = |t: u16| usize::from(t) < bc.tys.len();
    let sp = |s: u16| usize::from(s) < bc.span_pairs.len();
    let pc = |t: u32| (t as usize) < bc.code.len();
    let args = |base: u16, n: u16| match base.checked_add(n) {
        Some(end) => end <= bc.n_regs,
        None => false,
    };
    if bc.n_locals > bc.n_regs || bc.n_params > bc.n_locals {
        return false;
    }
    if !bc.preloads.iter().all(|(r, _)| reg(*r)) {
        return false;
    }
    if !bc.pairs.keys().chain(bc.super_pcs.iter()).all(|p| pc(*p)) {
        return false;
    }
    bc.code.iter().all(|ins| match *ins {
        Instr::Move { dst, src } => reg(dst) && reg(src),
        Instr::LoadThis { dst, .. } => reg(dst),
        Instr::EnvLoad { dst, site: s, .. } => reg(dst) && site(s),
        Instr::EnvStore { src, .. } => reg(src),
        Instr::ClassRef { dst, .. } => reg(dst),
        Instr::FieldGet { dst, obj, site: s, .. } => reg(dst) && reg(obj) && fsite(s),
        Instr::FieldSet { obj, val, .. } => reg(obj) && reg(val),
        Instr::ArrGet { dst, arr, idx, spans } => {
            reg(dst) && reg(arr) && reg(idx) && sp(spans)
        }
        Instr::ArrSet { arr, idx, val, spans } => {
            reg(arr) && reg(idx) && reg(val) && sp(spans)
        }
        Instr::NewClass { ty: t, .. } => ty(t),
        Instr::NewFinish { dst, base, n, .. } => reg(dst) && args(base, n),
        Instr::TyElem { ty: t, .. } => ty(t),
        Instr::NewArrayFinish { dst, base, n, .. } => reg(dst) && args(base, n),
        Instr::ToInt { reg: x, .. } => reg(x),
        Instr::TyDecl { ty: t, .. } => ty(t),
        Instr::DefaultVal { dst, .. } => reg(dst),
        Instr::TyPop | Instr::RetNull | Instr::RaiseBreak | Instr::RaiseContinue => true,
        Instr::Binary { dst, a, b, .. } => reg(dst) && reg(a) && reg(b),
        Instr::Unary { dst, src, .. } => reg(dst) && reg(src),
        Instr::IncDecVal { dst, src, .. } => reg(dst) && reg(src),
        Instr::IncLocal { slot, .. } => slot < bc.n_locals,
        Instr::CastV { dst, src, ty: t, .. } => reg(dst) && reg(src) && ty(t),
        Instr::InstOf { dst, src, ty: t, .. } => reg(dst) && reg(src) && ty(t),
        Instr::Jmp { target } => pc(target),
        Instr::JmpIfFalse { src, target, .. } => reg(src) && pc(target),
        Instr::JmpIfTrue { src, target, .. } => reg(src) && pc(target),
        Instr::JmpIfCmp { a, b, target, .. } => reg(a) && reg(b) && pc(target),
        Instr::Step { .. } | Instr::RaiseInvalidAssign { .. } => true,
        Instr::Ret { src } | Instr::Throw { src } => reg(src),
        Instr::CallRecv { dst, recv, base, n, site: s, .. } => {
            reg(dst) && reg(recv) && args(base, n) && site(s)
        }
        Instr::CallSuper { dst, base, n, site: s, .. }
        | Instr::CallImplicit { dst, base, n, site: s, .. } => {
            reg(dst) && args(base, n) && site(s)
        }
        // Never produced by `dec_instr`, but keep the check total.
        Instr::GuardInline { .. } | Instr::CallEnter { .. } | Instr::CallExit => false,
    })
}

// ---- disassembler ------------------------------------------------------------

/// Renders `bc` for `mayac --dump-bytecode`: one line per instruction with
/// registers (`r<n>`), jump targets (`@<pc>`), superinstruction markers,
/// inline-splice extents, and current PIC shapes.
pub(crate) fn disasm(bc: &BcBody, ct: &ClassTable) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "params={} locals={} regs={} consts={} sites={} super={}",
        bc.n_params,
        bc.n_locals,
        bc.n_regs,
        bc.preloads.len(),
        bc.sites.len(),
        bc.super_pcs.len(),
    );
    for &(guard_pc, exit_pc, m) in &bc.inlined {
        let (mi, c) = &bc.methods[m as usize];
        let cname = ct.info(*c).borrow().fqcn;
        let _ = writeln!(
            out,
            "inline @{guard_pc}..@{exit_pc}: {cname}.{}/{}",
            mi.name,
            mi.params.len()
        );
    }
    for (pc, ins) in bc.code.iter().enumerate() {
        let body = match *ins {
            Instr::Move { dst, src } => format!("r{dst}, r{src}"),
            Instr::LoadThis { dst, .. } => format!("r{dst}"),
            Instr::EnvLoad { dst, name, site, .. } => format!("r{dst}, {name} [fs{site}]"),
            Instr::EnvStore { src, name, .. } => format!("{name}, r{src}"),
            Instr::ClassRef { dst, fqcn, .. } => format!("r{dst}, {fqcn}"),
            Instr::FieldGet { dst, obj, name, site, .. } => {
                format!("r{dst}, r{obj}.{name} [fs{site}]")
            }
            Instr::FieldSet { obj, val, name, .. } => format!("r{obj}.{name}, r{val}"),
            Instr::ArrGet { dst, arr, idx, .. } => format!("r{dst}, r{arr}[r{idx}]"),
            Instr::ArrSet { arr, idx, val, .. } => format!("r{arr}[r{idx}], r{val}"),
            Instr::NewClass { ty, .. } => format!("ty{ty}"),
            Instr::NewFinish { dst, base, n, .. } => format!("r{dst}, r{base}..+{n}"),
            Instr::TyElem { ty, extra_dims, .. } => format!("ty{ty}, dims+{extra_dims}"),
            Instr::NewArrayFinish { dst, base, n, .. } => format!("r{dst}, r{base}..+{n}"),
            Instr::ToInt { reg, .. } => format!("r{reg}"),
            Instr::TyDecl { ty, .. } => format!("ty{ty}"),
            Instr::DefaultVal { dst, dims } => format!("r{dst}, dims+{dims}"),
            Instr::TyPop => String::new(),
            Instr::Binary { op, dst, a, b, .. } => {
                format!("r{dst}, r{a} {} r{b}", op.as_str())
            }
            Instr::Unary { op, dst, src, .. } => format!("r{dst}, {} r{src}", op.as_str()),
            Instr::IncDecVal { dst, src, delta, .. } => format!("r{dst}, r{src}{delta:+}"),
            Instr::IncLocal { slot, delta, .. } => format!("r{slot}{delta:+}"),
            Instr::CastV { dst, src, ty, .. } => format!("r{dst}, r{src} as ty{ty}"),
            Instr::InstOf { dst, src, ty, .. } => format!("r{dst}, r{src} is ty{ty}"),
            Instr::Jmp { target } => format!("@{target}"),
            Instr::JmpIfFalse { src, target, .. } => format!("r{src}, @{target}"),
            Instr::JmpIfTrue { src, target, .. } => format!("r{src}, @{target}"),
            Instr::JmpIfCmp { op, a, b, when, target, .. } => {
                format!("r{a} {} r{b} =={when}, @{target}", op.as_str())
            }
            Instr::Step { .. } => String::new(),
            Instr::Ret { src } => format!("r{src}"),
            Instr::RetNull | Instr::RaiseBreak | Instr::RaiseContinue | Instr::CallExit => {
                String::new()
            }
            Instr::Throw { src } => format!("r{src}"),
            Instr::RaiseInvalidAssign { .. } => String::new(),
            Instr::CallRecv { dst, recv, base, n, name, site, .. } => {
                format!(
                    "r{dst}, r{recv}.{name}(r{base}..+{n}) [pic{site}: {}]",
                    bc.sites[site as usize].describe(ct)
                )
            }
            Instr::CallSuper { dst, base, n, name, site, .. } => {
                format!(
                    "r{dst}, super.{name}(r{base}..+{n}) [pic{site}: {}]",
                    bc.sites[site as usize].describe(ct)
                )
            }
            Instr::CallImplicit { dst, base, n, name, site, .. } => {
                format!(
                    "r{dst}, {name}(r{base}..+{n}) [pic{site}: {}]",
                    bc.sites[site as usize].describe(ct)
                )
            }
            Instr::GuardInline { guard, fallback } => {
                let g = &bc.guards[guard as usize];
                let cname = ct.info(g.class).borrow().fqcn;
                format!("g{guard} ({cname}.{}), else @{fallback}", g.name)
            }
            Instr::CallEnter { m, .. } => {
                let (mi, c) = &bc.methods[m as usize];
                let cname = ct.info(*c).borrow().fqcn;
                format!("{cname}.{}/{}", mi.name, mi.params.len())
            }
        };
        let sup = if bc.super_pcs.contains(&(pc as u32)) { " ; super" } else { "" };
        let _ = writeln!(out, "  {pc:4}  {:<18} {body}{sup}", ins.mnemonic());
    }
    out
}
