//! Runtime values.

use crate::layout::FieldLayout;
use crate::NativeObject;
use maya_lexer::Symbol;
use maya_types::{ClassId, ClassTable, Type};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A thin, reference-counted runtime string.
///
/// `Rc<str>` is a fat pointer (16 bytes), which forced [`Value`] to 24
/// bytes; boxing the text behind a thin `Rc` brings `Value` down to 16, so
/// two frame slots share a cache line.  String *literals* are interned
/// through a per-thread table, which makes repeated literals pointer-equal
/// (a fast path for `==`/`equals`) and allocation-free; computed strings
/// (concatenation results) are never interned — hashing every intermediate
/// concat would cost more than it saves.  Equality is always by contents,
/// so interning is invisible to program semantics.
#[derive(Clone)]
pub struct RtStr(Rc<Box<str>>);

/// Interner bounds: pathological programs (fuzz campaigns) must not grow
/// the table without limit, and long strings are unlikely to repeat.
const INTERN_CAP: usize = 4096;
const INTERN_MAX_LEN: usize = 128;

thread_local! {
    static INTERNED: RefCell<HashMap<Box<str>, RtStr>> = RefCell::new(HashMap::new());
}

impl RtStr {
    /// A fresh (uninterned) runtime string.
    pub fn new(s: &str) -> RtStr {
        RtStr(Rc::new(Box::from(s)))
    }

    /// A fresh runtime string taking ownership of `s` (no copy).
    pub fn from_string(s: String) -> RtStr {
        RtStr(Rc::new(s.into_boxed_str()))
    }

    /// The interned string for `s`: repeated literals share one allocation
    /// and compare by pointer.  Over-long strings and overflow past the
    /// table cap fall back to fresh allocations (still correct — equality
    /// is by contents).
    pub fn intern(s: &str) -> RtStr {
        if s.len() > INTERN_MAX_LEN {
            return RtStr::new(s);
        }
        INTERNED.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(r) = m.get(s) {
                return r.clone();
            }
            let r = RtStr::new(s);
            if m.len() < INTERN_CAP {
                m.insert(Box::from(s), r.clone());
            }
            r
        })
    }

    /// The text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Pointer identity (interned literals hit this fast path).
    pub fn ptr_eq(a: &RtStr, b: &RtStr) -> bool {
        Rc::ptr_eq(&a.0, &b.0)
    }
}

impl std::ops::Deref for RtStr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl PartialEq for RtStr {
    fn eq(&self, other: &RtStr) -> bool {
        RtStr::ptr_eq(self, other) || self.as_str() == other.as_str()
    }
}

impl Eq for RtStr {}

impl PartialEq<str> for RtStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl fmt::Display for RtStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for RtStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// An instance of a source-defined class.
///
/// Declared fields live in `slots` at the fixed offsets of the class's
/// [`FieldLayout`]; `extra` is a rarely used overflow for names assigned at
/// runtime that the layout does not know (e.g. intercession adding a field
/// after instances already exist).
pub struct Obj {
    pub class: ClassId,
    pub layout: Rc<FieldLayout>,
    slots: RefCell<Vec<Value>>,
    extra: RefCell<Vec<(Symbol, Value)>>,
}

impl Obj {
    /// A fresh instance: every declared slot starts as `null`.
    pub fn new(class: ClassId, layout: Rc<FieldLayout>) -> Obj {
        let slots = vec![Value::Null; layout.len()];
        Obj {
            class,
            layout,
            slots: RefCell::new(slots),
            extra: RefCell::new(Vec::new()),
        }
    }

    /// An instance with no declared fields (tests, synthetic objects).
    pub fn empty(class: ClassId) -> Obj {
        Obj::new(class, FieldLayout::empty(class))
    }

    /// Reads a field by name (declared slot first, then overflow).
    pub fn get(&self, name: Symbol) -> Option<Value> {
        if let Some(off) = self.layout.offset(name) {
            return Some(self.slots.borrow()[off as usize].clone());
        }
        self.extra
            .borrow()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
    }

    /// Writes a field by name (declared slot first, then overflow).
    pub fn set(&self, name: Symbol, v: Value) {
        if let Some(off) = self.layout.offset(name) {
            self.slots.borrow_mut()[off as usize] = v;
            return;
        }
        let mut extra = self.extra.borrow_mut();
        if let Some(slot) = extra.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = v;
        } else {
            extra.push((name, v));
        }
    }

    /// Reads a declared slot directly (offset from the layout).
    pub fn get_slot(&self, off: u32) -> Value {
        self.slots.borrow()[off as usize].clone()
    }

    /// Writes a declared slot directly.
    pub fn set_slot(&self, off: u32, v: Value) {
        self.slots.borrow_mut()[off as usize] = v;
    }

    /// The `message` field through its pre-resolved offset (exceptions).
    pub fn message(&self) -> Option<Value> {
        self.layout.message.map(|off| self.get_slot(off))
    }
}

/// An array instance.
pub struct ArrayObj {
    pub elem: Type,
    pub data: RefCell<Vec<Value>>,
}

/// A MayaJava runtime value.
///
/// Kept to 16 bytes (tag + one word of payload): small ints/longs/doubles
/// are stored inline ("tagged"), and strings are thin [`RtStr`] handles —
/// so a slot frame of N locals spans N*16 bytes and stays cache-resident
/// in the bytecode VM's register file.
#[derive(Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Char(char),
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    Str(RtStr),
    Object(Rc<Obj>),
    Array(Rc<ArrayObj>),
    /// A runtime-library or bridge object (Vector, Enumeration, AST node…).
    /// The trait object is boxed behind a thin `Rc` (like [`RtStr`]) so the
    /// fat vtable pointer does not widen every `Value`.
    Native(Rc<Box<dyn NativeObject>>),
    /// A class used in a receiver position (`System.out`); internal, never
    /// a first-class value.
    ClassRef(ClassId),
}

impl Value {
    /// A string value (interned — use for literals and repeated names).
    pub fn str(s: &str) -> Value {
        Value::Str(RtStr::intern(s))
    }

    /// A computed string value (never interned — use for concat results
    /// and other run-time-built strings).
    pub fn owned_str(s: String) -> Value {
        Value::Str(RtStr::from_string(s))
    }

    /// A native-object value.
    pub fn native(n: impl NativeObject + 'static) -> Value {
        Value::Native(Rc::new(Box::new(n)))
    }

    /// The default value for a type (`0`, `false`, `null`).
    pub fn default_for(ty: &Type) -> Value {
        use maya_ast::PrimKind::*;
        match ty {
            Type::Prim(Boolean) => Value::Bool(false),
            Type::Prim(Char) => Value::Char('\0'),
            Type::Prim(Byte | Short | Int) => Value::Int(0),
            Type::Prim(Long) => Value::Long(0),
            Type::Prim(Float) => Value::Float(0.0),
            Type::Prim(Double) => Value::Double(0.0),
            _ => Value::Null,
        }
    }

    /// The dynamic class of a reference value, when it has one.
    pub fn class_of(&self, ct: &ClassTable) -> Option<ClassId> {
        match self {
            Value::Object(o) => Some(o.class),
            Value::Str(_) => ct.by_fqcn_str("java.lang.String"),
            Value::Native(n) => ct.by_fqcn_str(n.class_fqcn()),
            _ => None,
        }
    }

    /// The runtime [`Type`] of this value (used for runtime overload
    /// applicability and `instanceof`).
    pub fn runtime_type(&self, ct: &ClassTable) -> Type {
        use maya_ast::PrimKind::*;
        match self {
            Value::Null => Type::Null,
            Value::Bool(_) => Type::Prim(Boolean),
            Value::Char(_) => Type::Prim(Char),
            Value::Int(_) => Type::Prim(Int),
            Value::Long(_) => Type::Prim(Long),
            Value::Float(_) => Type::Prim(Float),
            Value::Double(_) => Type::Prim(Double),
            Value::Array(a) => a.elem.clone().array_of(),
            other => other
                .class_of(ct)
                .map(Type::Class)
                .unwrap_or(Type::Error),
        }
    }

    /// Java `==` semantics: primitive equality, reference identity
    /// (strings compare by contents — our literals are effectively
    /// interned).
    pub fn ref_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Long(a), Value::Long(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => Rc::ptr_eq(a, b),
            (Value::Array(a), Value::Array(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// True for the `null` value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

// The whole point of RtStr and the boxed native payload: a Value is a tag
// plus one 8-byte word, so frames stay cache-resident.
const _: () = assert!(std::mem::size_of::<Value>() == 16);

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Char(c) => write!(f, "{c:?}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}L"),
            Value::Float(v) => write!(f, "{v}f"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Object(o) => write!(f, "<object #{}>", o.class.0),
            Value::Array(a) => write!(f, "<array[{}]>", a.data.borrow().len()),
            Value::Native(n) => write!(f, "<{}>", n.class_fqcn()),
            Value::ClassRef(c) => write!(f, "<class #{}>", c.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert!(matches!(Value::default_for(&Type::int()), Value::Int(0)));
        assert!(matches!(Value::default_for(&Type::boolean()), Value::Bool(false)));
        assert!(Value::default_for(&Type::Null).is_null());
    }

    #[test]
    fn ref_eq_semantics() {
        assert!(Value::Int(3).ref_eq(&Value::Int(3)));
        assert!(!Value::Int(3).ref_eq(&Value::Long(3)));
        assert!(Value::str("a").ref_eq(&Value::str("a")));
        // Interned literal vs computed string: contents equality holds
        // even without pointer identity.
        assert!(Value::str("ab").ref_eq(&Value::owned_str("ab".to_string())));
        let o = Rc::new(Obj::empty(ClassId(0)));
        assert!(Value::Object(o.clone()).ref_eq(&Value::Object(o.clone())));
        let o2 = Rc::new(Obj::empty(ClassId(0)));
        assert!(!Value::Object(o).ref_eq(&Value::Object(o2)));
    }

    #[test]
    fn literal_interning() {
        let (Value::Str(a), Value::Str(b)) = (Value::str("lit"), Value::str("lit")) else {
            panic!("strings");
        };
        assert!(RtStr::ptr_eq(&a, &b));
        let Value::Str(c) = Value::owned_str("lit".to_string()) else {
            panic!("string");
        };
        assert!(!RtStr::ptr_eq(&a, &c));
        assert!(a == c);
    }

    #[test]
    fn runtime_types() {
        let ct = ClassTable::bootstrap();
        assert_eq!(Value::Int(1).runtime_type(&ct), Type::int());
        assert_eq!(
            ct.describe(&Value::str("x").runtime_type(&ct)),
            "java.lang.String"
        );
        assert_eq!(Value::Null.runtime_type(&ct), Type::Null);
    }
}
