//! The runtime library: the slice of `java.*` (plus `maya.util.Vector`)
//! that the paper's examples and evaluation touch (§3, §5).

use crate::{native_as, Control, Eval, Interp, NativeFn, NativeObject, Value};
use maya_ast::{Modifier, Modifiers};
use maya_lexer::{sym, Span, Symbol};
use maya_types::{ClassInfo, ClassTable, CtorInfo, FieldInfo, MethodInfo, Type};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

// ---- native payloads --------------------------------------------------------

/// `java.util.Vector` / `maya.util.Vector` backing store.
pub struct VecObj {
    fqcn: &'static str,
    pub data: RefCell<Vec<Value>>,
}

impl NativeObject for VecObj {
    fn class_fqcn(&self) -> &str {
        self.fqcn
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A snapshot `java.util.Enumeration`.
pub struct EnumObj {
    items: RefCell<(Vec<Value>, usize)>,
}

impl EnumObj {
    /// Builds an enumeration over a snapshot.
    pub fn over(items: Vec<Value>) -> Value {
        Value::native(EnumObj {
            items: RefCell::new((items, 0)),
        })
    }
}

impl NativeObject for EnumObj {
    fn class_fqcn(&self) -> &str {
        "maya.runtime.VectorEnumeration"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// `java.util.Hashtable` backing store (association list).
pub struct HashObj {
    data: RefCell<Vec<(Value, Value)>>,
}

impl NativeObject for HashObj {
    fn class_fqcn(&self) -> &str {
        "java.util.Hashtable"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// `java.lang.StringBuffer`.
pub struct SbObj {
    s: RefCell<String>,
}

impl NativeObject for SbObj {
    fn class_fqcn(&self) -> &str {
        "java.lang.StringBuffer"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// `java.io.PrintStream` (both `System.out` and `System.err` write to the
/// interpreter's captured output).
pub struct PrintObj;

impl NativeObject for PrintObj {
    fn class_fqcn(&self) -> &str {
        "java.io.PrintStream"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn key_eq(a: &Value, b: &Value) -> bool {
    a.ref_eq(b)
}

// ---- class table installation -------------------------------------------------

fn obj_ty(ct: &ClassTable) -> Type {
    Type::Class(ct.by_fqcn_str("java.lang.Object").expect("Object"))
}

fn declare_class(
    ct: &ClassTable,
    fqcn: &str,
    superclass: Option<&str>,
    is_interface: bool,
) -> maya_types::ClassId {
    let mut info = ClassInfo::new(fqcn, is_interface);
    info.superclass = superclass.and_then(|s| ct.by_fqcn_str(s));
    info.modifiers = Modifiers::just(Modifier::Public);
    ct.declare(info).expect("runtime class declared twice")
}

/// Installs the runtime-library classes into a class table (idempotent).
/// Must run before creating an [`Interp`] over the table.
pub fn install_runtime(ct: &ClassTable) {
    if ct.by_fqcn_str("java.io.PrintStream").is_some() {
        return; // already installed
    }
    if ct.by_fqcn_str("java.lang.Object").is_none() {
        ct.declare(ClassInfo::new("java.lang.Object", false))
            .expect("empty table");
        let mut s = ClassInfo::new("java.lang.String", false);
        s.superclass = ct.by_fqcn_str("java.lang.Object");
        ct.declare(s).expect("empty table");
    }
    let object = ct.by_fqcn_str("java.lang.Object").unwrap();
    let string = ct.by_fqcn_str("java.lang.String").unwrap();
    let ot = Type::Class(object);
    let st = Type::Class(string);

    ct.add_method(object, MethodInfo::native("toString", vec![], st.clone(), "obj.toString"));
    ct.add_method(
        object,
        MethodInfo::native("equals", vec![ot.clone()], Type::boolean(), "obj.equals"),
    );

    ct.add_method(string, MethodInfo::native("length", vec![], Type::int(), "str.length"));
    ct.add_method(
        string,
        MethodInfo::native("charAt", vec![Type::int()], Type::Prim(maya_ast::PrimKind::Char), "str.charAt"),
    );
    ct.add_method(
        string,
        MethodInfo::native("equals", vec![ot.clone()], Type::boolean(), "str.equals"),
    );
    ct.add_method(
        string,
        MethodInfo::native("concat", vec![st.clone()], st.clone(), "str.concat"),
    );
    ct.add_method(string, MethodInfo::native("toString", vec![], st.clone(), "str.toString"));
    ct.add_method(
        string,
        MethodInfo::native("substring", vec![Type::int(), Type::int()], st.clone(), "str.substring"),
    );
    ct.add_method(
        string,
        MethodInfo::native("indexOf", vec![st.clone()], Type::int(), "str.indexOf"),
    );

    // PrintStream + System.
    let ps = declare_class(ct, "java.io.PrintStream", Some("java.lang.Object"), false);
    let pst = Type::Class(ps);
    for (name, key) in [("println", "ps.println"), ("print", "ps.print")] {
        for param in [
            Some(ot.clone()),
            Some(st.clone()),
            Some(Type::int()),
            Some(Type::Prim(maya_ast::PrimKind::Long)),
            Some(Type::Prim(maya_ast::PrimKind::Double)),
            Some(Type::boolean()),
            Some(Type::Prim(maya_ast::PrimKind::Char)),
            None,
        ] {
            let params = param.map(|p| vec![p]).unwrap_or_default();
            ct.add_method(ps, MethodInfo::native(name, params, Type::Void, key));
        }
    }
    let system = declare_class(ct, "java.lang.System", Some("java.lang.Object"), false);
    let static_field = |name: &str, ty: Type| {
        ct.add_field(
            system,
            FieldInfo {
                name: sym(name),
                ty,
                modifiers: Modifiers::just(Modifier::Public).with(Modifier::Static),
                init: None,
            },
        );
    };
    static_field("out", pst.clone());
    static_field("err", pst);

    // StringBuffer.
    let sb = declare_class(ct, "java.lang.StringBuffer", Some("java.lang.Object"), false);
    ct.add_ctor(
        sb,
        CtorInfo {
            params: vec![],
            param_names: vec![],
            modifiers: Modifiers::just(Modifier::Public),
            body: None,
            native: Some(sym("sb.new")),
        },
    );
    let sbt = Type::Class(sb);
    for param in [
        ot.clone(),
        st.clone(),
        Type::int(),
        Type::Prim(maya_ast::PrimKind::Long),
        Type::Prim(maya_ast::PrimKind::Double),
        Type::boolean(),
        Type::Prim(maya_ast::PrimKind::Char),
    ] {
        ct.add_method(
            sb,
            MethodInfo::native("append", vec![param], sbt.clone(), "sb.append"),
        );
    }
    ct.add_method(sb, MethodInfo::native("toString", vec![], st.clone(), "sb.toString"));

    // Exceptions.
    let throwable = declare_class(ct, "java.lang.Throwable", Some("java.lang.Object"), false);
    ct.add_field(
        throwable,
        FieldInfo {
            name: sym("message"),
            ty: st.clone(),
            modifiers: Modifiers::just(Modifier::Public),
            init: None,
        },
    );
    ct.add_method(
        throwable,
        MethodInfo::native("getMessage", vec![], st.clone(), "thr.getMessage"),
    );
    declare_class(ct, "java.lang.Exception", Some("java.lang.Throwable"), false);
    declare_class(ct, "java.lang.RuntimeException", Some("java.lang.Exception"), false);
    for exc in [
        "java.lang.NullPointerException",
        "java.lang.ClassCastException",
        "java.lang.ArithmeticException",
        "java.lang.ArrayIndexOutOfBoundsException",
        "java.lang.NegativeArraySizeException",
        "java.util.NoSuchElementException",
    ] {
        declare_class(ct, exc, Some("java.lang.RuntimeException"), false);
    }
    // Exceptions get a default and a message constructor.
    for exc in [
        "java.lang.Throwable",
        "java.lang.Exception",
        "java.lang.RuntimeException",
        "java.lang.NullPointerException",
        "java.lang.ClassCastException",
        "java.lang.ArithmeticException",
        "java.lang.ArrayIndexOutOfBoundsException",
        "java.lang.NegativeArraySizeException",
        "java.util.NoSuchElementException",
    ] {
        let id = ct.by_fqcn_str(exc).unwrap();
        ct.add_ctor(
            id,
            CtorInfo {
                params: vec![],
                param_names: vec![],
                modifiers: Modifiers::just(Modifier::Public),
                body: None,
                native: Some(sym(&format!("exc.new0.{exc}"))),
            },
        );
        ct.add_ctor(
            id,
            CtorInfo {
                params: vec![st.clone()],
                param_names: vec![sym("message")],
                modifiers: Modifiers::just(Modifier::Public),
                body: None,
                native: Some(sym(&format!("exc.new1.{exc}"))),
            },
        );
    }

    // Integer and Math statics.
    let integer = declare_class(ct, "java.lang.Integer", Some("java.lang.Object"), false);
    let mut s = MethodInfo::native("toString", vec![Type::int()], st.clone(), "int.toString");
    s.modifiers.add(Modifier::Static);
    ct.add_method(integer, s);
    let mut s = MethodInfo::native("parseInt", vec![st.clone()], Type::int(), "int.parseInt");
    s.modifiers.add(Modifier::Static);
    ct.add_method(integer, s);
    let math = declare_class(ct, "java.lang.Math", Some("java.lang.Object"), false);
    for (name, key) in [("max", "math.max"), ("min", "math.min")] {
        let mut m = MethodInfo::native(name, vec![Type::int(), Type::int()], Type::int(), key);
        m.modifiers.add(Modifier::Static);
        ct.add_method(math, m);
    }
    let mut m = MethodInfo::native("abs", vec![Type::int()], Type::int(), "math.abs");
    m.modifiers.add(Modifier::Static);
    ct.add_method(math, m);

    // Enumeration interface.
    let enumeration = declare_class(ct, "java.util.Enumeration", Some("java.lang.Object"), true);
    ct.add_method(
        enumeration,
        MethodInfo::native("hasMoreElements", vec![], Type::boolean(), "enum.has"),
    );
    ct.add_method(
        enumeration,
        MethodInfo::native("nextElement", vec![], ot.clone(), "enum.next"),
    );
    let vec_enum = declare_class(
        ct,
        "maya.runtime.VectorEnumeration",
        Some("java.lang.Object"),
        false,
    );
    {
        let info = ct.info(vec_enum);
        info.borrow_mut().interfaces.push(enumeration);
    }
    ct.add_method(
        vec_enum,
        MethodInfo::native("hasMoreElements", vec![], Type::boolean(), "enum.has"),
    );
    ct.add_method(
        vec_enum,
        MethodInfo::native("nextElement", vec![], ot.clone(), "enum.next"),
    );

    // Vectors.
    let vector = declare_class(ct, "java.util.Vector", Some("java.lang.Object"), false);
    ct.add_ctor(
        vector,
        CtorInfo {
            params: vec![],
            param_names: vec![],
            modifiers: Modifiers::just(Modifier::Public),
            body: None,
            native: Some(sym("vec.new.java.util.Vector")),
        },
    );
    ct.add_method(
        vector,
        MethodInfo::native("addElement", vec![ot.clone()], Type::Void, "vec.addElement"),
    );
    ct.add_method(
        vector,
        MethodInfo::native("elementAt", vec![Type::int()], ot.clone(), "vec.elementAt"),
    );
    ct.add_method(vector, MethodInfo::native("size", vec![], Type::int(), "vec.size"));
    ct.add_method(
        vector,
        MethodInfo::native("isEmpty", vec![], Type::boolean(), "vec.isEmpty"),
    );
    ct.add_method(
        vector,
        MethodInfo::native("elements", vec![], Type::Class(enumeration), "vec.elements"),
    );
    let mvector = declare_class(ct, "maya.util.Vector", Some("java.util.Vector"), false);
    ct.add_ctor(
        mvector,
        CtorInfo {
            params: vec![],
            param_names: vec![],
            modifiers: Modifiers::just(Modifier::Public),
            body: None,
            native: Some(sym("vec.new.maya.util.Vector")),
        },
    );
    // maya.util.Vector exposes its underlying object array (paper §3).
    ct.add_method(
        mvector,
        MethodInfo::native(
            "getElementData",
            vec![],
            ot.clone().array_of(),
            "mvec.getElementData",
        ),
    );

    // Hashtable.
    let ht = declare_class(ct, "java.util.Hashtable", Some("java.lang.Object"), false);
    ct.add_ctor(
        ht,
        CtorInfo {
            params: vec![],
            param_names: vec![],
            modifiers: Modifiers::just(Modifier::Public),
            body: None,
            native: Some(sym("ht.new")),
        },
    );
    ct.add_method(ht, MethodInfo::native("put", vec![ot.clone(), ot.clone()], ot.clone(), "ht.put"));
    ct.add_method(ht, MethodInfo::native("get", vec![ot.clone()], ot.clone(), "ht.get"));
    ct.add_method(
        ht,
        MethodInfo::native("keys", vec![], Type::Class(enumeration), "ht.keys"),
    );
    ct.add_method(ht, MethodInfo::native("size", vec![], Type::int(), "ht.size"));
}

// ---- native registrations ------------------------------------------------------

fn err(msg: &str) -> Control {
    Control::error(msg.to_owned(), Span::DUMMY)
}

fn as_str(v: &Value) -> Result<crate::RtStr, Control> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(err(&format!("expected String, got {other:?}"))),
    }
}

fn reg(i: &Interp, key: &str, f: impl Fn(&Interp, Value, Vec<Value>) -> Eval + 'static) {
    i.register_native(key, Rc::new(f) as NativeFn);
}

/// Registers all runtime-library natives on an interpreter and seeds
/// `System.out` / `System.err`.
pub(crate) fn register_natives(i: &Interp) {
    // Object / String ------------------------------------------------------
    reg(i, "obj.toString", |i, recv, _| {
        // The *default* rendering: must not call display() (which would
        // recurse back into toString).
        let s = match &recv {
            Value::Object(o) => {
                let fqcn = i.ct.fqcn(o.class);
                // The `message` field sits at a pre-resolved layout offset;
                // the overflow lookup only runs for layouts without one.
                match o.message().or_else(|| o.get(sym("message"))) {
                    Some(Value::Str(m)) => format!("{fqcn}: {m}"),
                    _ => format!("{fqcn}@obj"),
                }
            }
            Value::Native(n) => n.display(),
            other => format!("{other:?}"),
        };
        Ok(Value::owned_str(s))
    });
    reg(i, "obj.equals", |_, recv, args| {
        Ok(Value::Bool(recv.ref_eq(&args[0])))
    });
    reg(i, "str.length", |_, recv, _| {
        Ok(Value::Int(as_str(&recv)?.chars().count() as i32))
    });
    reg(i, "str.charAt", |_, recv, args| {
        let s = as_str(&recv)?;
        let idx = match args[0] {
            Value::Int(v) => v as usize,
            _ => return Err(err("charAt index")),
        };
        s.chars()
            .nth(idx)
            .map(Value::Char)
            .ok_or_else(|| err("string index out of range"))
    });
    reg(i, "str.equals", |_, recv, args| {
        let s = as_str(&recv)?;
        Ok(Value::Bool(matches!(&args[0], Value::Str(o) if **o == *s)))
    });
    reg(i, "str.concat", |_, recv, args| {
        let a = as_str(&recv)?;
        let b = as_str(&args[0])?;
        Ok(Value::owned_str(format!("{a}{b}")))
    });
    reg(i, "str.toString", |_, recv, _| Ok(recv));
    reg(i, "str.substring", |_, recv, args| {
        let s = as_str(&recv)?;
        let (a, b) = match (&args[0], &args[1]) {
            (Value::Int(a), Value::Int(b)) => (*a as usize, *b as usize),
            _ => return Err(err("substring bounds")),
        };
        s.get(a..b)
            .map(|t| Value::owned_str(t.to_string()))
            .ok_or_else(|| err("substring out of range"))
    });
    reg(i, "str.indexOf", |_, recv, args| {
        let s = as_str(&recv)?;
        let n = as_str(&args[0])?;
        Ok(Value::Int(
            s.find(&*n).map(|p| p as i32).unwrap_or(-1),
        ))
    });

    // PrintStream ----------------------------------------------------------
    reg(i, "ps.println", |i, _recv, args| {
        let text = args
            .first()
            .map(|v| i.display(v))
            .unwrap_or_default();
        i.write_out(&text);
        i.write_out("\n");
        Ok(Value::Null)
    });
    reg(i, "ps.print", |i, _recv, args| {
        let text = args
            .first()
            .map(|v| i.display(v))
            .unwrap_or_default();
        i.write_out(&text);
        Ok(Value::Null)
    });

    // StringBuffer -----------------------------------------------------------
    reg(i, "sb.new", |_, _, _| {
        Ok(Value::native(SbObj {
            s: RefCell::new(String::new()),
        }))
    });
    reg(i, "sb.append", |i, recv, args| {
        let text = i.display(&args[0]);
        match &recv {
            Value::Native(n) => {
                let sb = n
                    .as_any()
                    .downcast_ref::<SbObj>()
                    .ok_or_else(|| err("not a StringBuffer"))?;
                sb.s.borrow_mut().push_str(&text);
                Ok(recv.clone())
            }
            _ => Err(err("not a StringBuffer")),
        }
    });
    reg(i, "sb.toString", |_, recv, _| {
        let sb = native_as::<SbObj>(&recv).ok_or_else(|| err("not a StringBuffer"))?;
        let s = sb.s.borrow().clone();
        Ok(Value::owned_str(s))
    });

    // Exceptions -------------------------------------------------------------
    for exc in [
        "java.lang.Throwable",
        "java.lang.Exception",
        "java.lang.RuntimeException",
        "java.lang.NullPointerException",
        "java.lang.ClassCastException",
        "java.lang.ArithmeticException",
        "java.lang.ArrayIndexOutOfBoundsException",
        "java.lang.NegativeArraySizeException",
        "java.util.NoSuchElementException",
    ] {
        let fqcn: Symbol = sym(exc);
        reg(i, &format!("exc.new0.{exc}"), move |i, _, _| {
            make_exception(i, fqcn, None)
        });
        reg(i, &format!("exc.new1.{exc}"), move |i, _, args| {
            make_exception(i, fqcn, Some(args[0].clone()))
        });
    }
    reg(i, "thr.getMessage", |_, recv, _| match recv {
        Value::Object(o) => Ok(o
            .message()
            .or_else(|| o.get(sym("message")))
            .unwrap_or(Value::Null)),
        _ => Err(err("not a throwable")),
    });

    // Integer / Math -----------------------------------------------------------
    reg(i, "int.toString", |_, _, args| match args[0] {
        Value::Int(v) => Ok(Value::owned_str(v.to_string())),
        _ => Err(err("Integer.toString")),
    });
    reg(i, "int.parseInt", |_, _, args| {
        let s = as_str(&args[0])?;
        s.trim()
            .parse::<i32>()
            .map(Value::Int)
            .map_err(|_| err("NumberFormatException"))
    });
    reg(i, "math.max", |_, _, args| match (&args[0], &args[1]) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(*a.max(b))),
        _ => Err(err("Math.max")),
    });
    reg(i, "math.min", |_, _, args| match (&args[0], &args[1]) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(*a.min(b))),
        _ => Err(err("Math.min")),
    });
    reg(i, "math.abs", |_, _, args| match args[0] {
        Value::Int(a) => Ok(Value::Int(a.abs())),
        _ => Err(err("Math.abs")),
    });

    // Enumeration ----------------------------------------------------------------
    reg(i, "enum.has", |_, recv, _| {
        let e = native_as::<EnumObj>(&recv).ok_or_else(|| err("not an Enumeration"))?;
        let items = e.items.borrow();
        Ok(Value::Bool(items.1 < items.0.len()))
    });
    reg(i, "enum.next", |i, recv, _| {
        let e = native_as::<EnumObj>(&recv).ok_or_else(|| err("not an Enumeration"))?;
        let mut items = e.items.borrow_mut();
        if items.1 >= items.0.len() {
            drop(items);
            return Err(throw_named(i, "java.util.NoSuchElementException"));
        }
        let v = items.0[items.1].clone();
        items.1 += 1;
        Ok(v)
    });

    // Vector ----------------------------------------------------------------------
    reg(i, "vec.new.java.util.Vector", |_, _, _| {
        Ok(Value::native(VecObj {
            fqcn: "java.util.Vector",
            data: RefCell::new(Vec::new()),
        }))
    });
    reg(i, "vec.new.maya.util.Vector", |_, _, _| {
        Ok(Value::native(VecObj {
            fqcn: "maya.util.Vector",
            data: RefCell::new(Vec::new()),
        }))
    });
    reg(i, "vec.addElement", |_, recv, args| {
        let v = native_as::<VecObj>(&recv).ok_or_else(|| err("not a Vector"))?;
        v.data.borrow_mut().push(args[0].clone());
        Ok(Value::Null)
    });
    reg(i, "vec.elementAt", |i, recv, args| {
        let v = native_as::<VecObj>(&recv).ok_or_else(|| err("not a Vector"))?;
        let idx = match args[0] {
            Value::Int(x) => x,
            _ => return Err(err("elementAt index")),
        };
        let data = v.data.borrow();
        data.get(idx as usize).cloned().ok_or_else(|| {
            throw_named(i, "java.lang.ArrayIndexOutOfBoundsException")
        })
    });
    reg(i, "vec.size", |_, recv, _| {
        let v = native_as::<VecObj>(&recv).ok_or_else(|| err("not a Vector"))?;
        Ok(Value::Int(v.data.borrow().len() as i32))
    });
    reg(i, "vec.isEmpty", |_, recv, _| {
        let v = native_as::<VecObj>(&recv).ok_or_else(|| err("not a Vector"))?;
        Ok(Value::Bool(v.data.borrow().is_empty()))
    });
    reg(i, "vec.elements", |_, recv, _| {
        let v = native_as::<VecObj>(&recv).ok_or_else(|| err("not a Vector"))?;
        Ok(EnumObj::over(v.data.borrow().clone()))
    });
    reg(i, "mvec.getElementData", |i, recv, _| {
        let v = native_as::<VecObj>(&recv).ok_or_else(|| err("not a Vector"))?;
        let data = v.data.borrow().clone();
        Ok(Value::Array(Rc::new(crate::ArrayObj {
            elem: obj_ty(&i.ct),
            data: RefCell::new(data),
        })))
    });

    // Hashtable ---------------------------------------------------------------------
    reg(i, "ht.new", |_, _, _| {
        Ok(Value::native(HashObj {
            data: RefCell::new(Vec::new()),
        }))
    });
    reg(i, "ht.put", |_, recv, mut args| {
        let h = native_as::<HashObj>(&recv).ok_or_else(|| err("not a Hashtable"))?;
        let v = args.pop().unwrap();
        let k = args.pop().unwrap();
        let mut data = h.data.borrow_mut();
        for pair in data.iter_mut() {
            if key_eq(&pair.0, &k) {
                let old = pair.1.clone();
                pair.1 = v;
                return Ok(old);
            }
        }
        data.push((k, v));
        Ok(Value::Null)
    });
    reg(i, "ht.get", |_, recv, args| {
        let h = native_as::<HashObj>(&recv).ok_or_else(|| err("not a Hashtable"))?;
        let data = h.data.borrow();
        Ok(data
            .iter()
            .find(|(k, _)| key_eq(k, &args[0]))
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null))
    });
    reg(i, "ht.keys", |_, recv, _| {
        let h = native_as::<HashObj>(&recv).ok_or_else(|| err("not a Hashtable"))?;
        let keys = h.data.borrow().iter().map(|(k, _)| k.clone()).collect();
        Ok(EnumObj::over(keys))
    });
    reg(i, "ht.size", |_, recv, _| {
        let h = native_as::<HashObj>(&recv).ok_or_else(|| err("not a Hashtable"))?;
        Ok(Value::Int(h.data.borrow().len() as i32))
    });

    // Seed System.out / System.err.
    if let Some(system) = i.ct.by_fqcn_str("java.lang.System") {
        let _ = i.set_static_field(system, sym("out"), Value::native(PrintObj));
        let _ = i.set_static_field(system, sym("err"), Value::native(PrintObj));
    }
}

fn make_exception(i: &Interp, fqcn: Symbol, message: Option<Value>) -> Eval {
    let class = i
        .ct
        .by_fqcn(fqcn)
        .ok_or_else(|| err(&format!("unknown exception class {fqcn}")))?;
    let obj = crate::Obj::new(class, i.layout_of(class));
    let msg = message.unwrap_or(Value::Null);
    match obj.layout.message {
        Some(off) => obj.set_slot(off, msg),
        None => obj.set(sym("message"), msg),
    }
    Ok(Value::Object(obj.into()))
}

fn throw_named(i: &Interp, fqcn: &str) -> Control {
    match make_exception(i, sym(fqcn), None) {
        Ok(v) => Control::Throw(v),
        Err(c) => c,
    }
}

