//! Mayans, metaprograms, and the expansion context.

use crate::{DispatchError, Param};
use maya_ast::{Expr, Ident, Node, NodeKind};
use maya_grammar::{Grammar, ProdId, RhsItem};
use maya_lexer::Symbol;
use maya_types::{ClassTable, Type};
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// The values a matched Mayan receives: the production's right-hand-side
/// values positionally, plus every named parameter (including names bound
/// inside substructure, like `enumExp` inside EForEach's `MethodName`).
///
/// The positional arguments are behind an `Rc` shared by every candidate's
/// bindings in a dispatch, and top-level named parameters are recorded as
/// indices into them — so building and cloning `Bindings` (which happens
/// per candidate and on every `nextRewrite` chain step) copies pointers,
/// not nodes.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    pub args: Rc<Vec<Node>>,
    named: HashMap<Symbol, Bound>,
}

/// How a named parameter resolves to its value.
#[derive(Clone, Debug)]
enum Bound {
    /// A top-level positional argument, referenced by index.
    Arg(u32),
    /// A node the bindings own (substructure parts).
    Owned(Rc<Node>),
}

impl Bindings {
    /// Creates bindings from positional arguments.
    pub fn new(args: Vec<Node>) -> Bindings {
        Bindings::from_shared(Rc::new(args))
    }

    /// Creates bindings over an already-shared argument vector.
    pub fn from_shared(args: Rc<Vec<Node>>) -> Bindings {
        Bindings {
            args,
            named: HashMap::new(),
        }
    }

    /// Records a named binding.
    pub fn bind(&mut self, name: Symbol, value: Node) {
        self.named.insert(name, Bound::Owned(Rc::new(value)));
    }

    /// Records a named binding that aliases positional argument `index`.
    pub fn bind_arg(&mut self, name: Symbol, index: u32) {
        self.named.insert(name, Bound::Arg(index));
    }

    /// A named binding.
    pub fn get(&self, name: &str) -> Option<&Node> {
        match self.named.get(&maya_lexer::sym(name))? {
            Bound::Arg(i) => self.args.get(*i as usize),
            Bound::Owned(n) => Some(n),
        }
    }

    /// A named binding, as an expression.
    pub fn expr(&self, name: &str) -> Option<Expr> {
        self.get(name).cloned().and_then(Node::into_expr)
    }

    /// Number of named bindings.
    pub fn named_len(&self) -> usize {
        self.named.len()
    }
}

/// Services available to an executing Mayan body.
///
/// The compiler (crate `maya-core`) implements this; `as_any` exposes
/// compiler-specific services (templates, grammar extension) to built-in
/// Mayans without a dependency cycle.
pub trait ExpandCtx {
    /// Invokes the next most applicable Mayan (paper §4.4's `nextRewrite`,
    /// the analogue of `super` calls).
    ///
    /// # Errors
    ///
    /// Fails when no less-applicable Mayan remains.
    fn next_rewrite(&mut self) -> Result<Node, DispatchError>;

    /// Generates a fresh identifier containing `$` — guaranteed unique
    /// within the compilation (paper §4.3, `Environment.makeId`).
    fn make_id(&mut self, base: &str) -> Ident;

    /// The static, source-level type of an expression under the scope at
    /// the expansion site.
    ///
    /// # Errors
    ///
    /// Propagates type-checking failures.
    fn static_type_of(&mut self, e: &Expr) -> Result<Type, DispatchError>;

    /// The class table (reflection API root).
    fn class_table(&self) -> Rc<ClassTable>;

    /// Escape hatch to compiler-specific services.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// A Mayan body: compile-time code from bindings to an AST node.
pub type MayanBody = Rc<dyn Fn(&Bindings, &mut dyn ExpandCtx) -> Result<Node, DispatchError>>;

/// A semantic action (multimethod) on a production.
#[derive(Clone)]
pub struct Mayan {
    pub name: Symbol,
    pub prod: ProdId,
    pub params: Vec<Param>,
    pub body: MayanBody,
}

impl Mayan {
    /// Builds a Mayan.
    pub fn new(name: &str, prod: ProdId, params: Vec<Param>, body: MayanBody) -> Rc<Mayan> {
        Rc::new(Mayan {
            name: maya_lexer::sym(name),
            prod,
            params,
            body,
        })
    }
}

impl fmt::Debug for Mayan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mayan")
            .field("name", &self.name.as_str())
            .field("prod", &self.prod.0)
            .field("params", &self.params)
            .finish()
    }
}

/// The import-time environment a [`MetaProgram`] updates: add productions,
/// import Mayans, register destructors.
pub trait ImportEnv {
    /// Adds (or finds) a production; new productions extend the grammar
    /// snapshot for the current scope.
    ///
    /// # Errors
    ///
    /// Rejects invalid productions.
    fn add_production(&mut self, lhs: NodeKind, rhs: &[RhsItem]) -> Result<ProdId, DispatchError>;

    /// Imports a Mayan at the current point (later imports override earlier
    /// equally-specific ones).
    fn import_mayan(&mut self, mayan: Rc<Mayan>);

    /// Registers a destructor so substructure patterns can match nodes
    /// built by `prod`, together with the node kind the production
    /// produces.
    fn register_destructor(&mut self, prod: ProdId, produced: NodeKind, f: crate::DestructorFn);

    /// The current grammar snapshot.
    fn grammar(&self) -> Grammar;

    /// Escape hatch to compiler-specific services.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// A compiled extension: something that can be imported with `use`.
///
/// "A Mayan declaration … is compiled to a class that implements
/// `MetaProgram`. An instance of the class is allocated when a Mayan is
/// imported" (paper §3.3). Aggregates (like the whole `foreach` library)
/// are simply `MetaProgram`s whose `run` imports each member in turn.
pub trait MetaProgram {
    /// Updates the environment: define productions, import Mayans.
    ///
    /// # Errors
    ///
    /// Propagates grammar and import failures.
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError>;

    /// Display name for diagnostics.
    fn name(&self) -> &str {
        "<metaprogram>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::sym;

    #[test]
    fn bindings() {
        let mut b = Bindings::new(vec![Node::Unit]);
        b.bind(sym("x"), Node::from(Expr::int(3)));
        assert!(b.get("x").is_some());
        assert!(b.get("y").is_none());
        assert!(b.expr("x").is_some());
        assert_eq!(b.args.len(), 1);
        assert_eq!(b.named_len(), 1);
        // Positional aliases resolve through the shared argument vector.
        b.bind_arg(sym("a0"), 0);
        assert!(matches!(b.get("a0"), Some(Node::Unit)));
        assert!(b.get("a0").is_some());
        assert_eq!(b.named_len(), 2);
    }
}
