//! Mayan parameter patterns: specializers, substructure, and conversion
//! from pattern-parser output (the structures of Figures 5 and 7).

use crate::{DispatchEnv, DispatchError};
use maya_ast::{Node, NodeKind};
use maya_grammar::{Grammar, ProdId};
use maya_lexer::{Span, Symbol, TokenKind};
use maya_parser::trace::PatTree;
use maya_types::Type;
use std::rc::Rc;

/// Deconstructs a node built by a specific production back into its
/// right-hand-side values (aligned with the production's RHS; terminal
/// positions may be `Node::Unit`). Returns `None` when the node does not
/// have that production's shape.
pub type DestructorFn = Rc<dyn Fn(&Node) -> Option<Vec<Node>>>;

/// The secondary attribute of a Mayan parameter (paper §4.4).
#[derive(Clone)]
pub enum Specializer {
    /// No specializer: applicable to any node of the parameter's kind.
    None,
    /// An exact token value (`foreach`).
    TokenValue(Symbol),
    /// A static expression type, compared by subtyping
    /// (`Expression:Enumeration`).
    StaticType(Type),
    /// An exact type (class literal); compared by equality.
    ExactType(Type),
    /// Syntactic substructure: the argument must have been built by `prod`,
    /// and its parts must match `children` recursively.
    Structure {
        prod: ProdId,
        children: Vec<Param>,
    },
}

impl std::fmt::Debug for Specializer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Specializer::None => f.write_str("None"),
            Specializer::TokenValue(s) => write!(f, "TokenValue({s})"),
            Specializer::StaticType(t) => write!(f, "StaticType({t})"),
            Specializer::ExactType(t) => write!(f, "ExactType({t})"),
            Specializer::Structure { prod, children } => f
                .debug_struct("Structure")
                .field("prod", &prod.0)
                .field("children", children)
                .finish(),
        }
    }
}

/// One Mayan formal parameter: a node kind, an optional secondary
/// attribute, and an optional binding name.
#[derive(Clone, Debug)]
pub struct Param {
    pub kind: NodeKind,
    pub spec: Specializer,
    pub name: Option<Symbol>,
}

impl Param {
    /// An unspecialized parameter.
    pub fn plain(kind: NodeKind) -> Param {
        Param {
            kind,
            spec: Specializer::None,
            name: None,
        }
    }

    /// An unspecialized, named parameter.
    pub fn named(kind: NodeKind, name: Symbol) -> Param {
        Param {
            kind,
            spec: Specializer::None,
            name: Some(name),
        }
    }

    /// Adds a specializer, builder-style.
    pub fn with_spec(mut self, spec: Specializer) -> Param {
        self.spec = spec;
        self
    }
}

/// The declaration-side description of one *named* pattern symbol, used
/// when converting pattern-parser output: `Expression:Enumeration enumExp`
/// becomes `ParamSpec { kind: Expression, spec: StaticType(Enumeration),
/// name: Some(enumExp) }`.
#[derive(Clone, Debug)]
pub struct ParamSpec {
    pub kind: NodeKind,
    pub spec: Specializer,
    pub name: Option<Symbol>,
}

/// Converts the pattern parser's partial parse tree for a Mayan parameter
/// list into the production it implements plus aligned parameters
/// (Figure 5: the first argument's structure is *inferred* by parsing).
///
/// `leaf_specs[i]` describes the `i`-th nonterminal input symbol.
///
/// # Errors
///
/// Fails on malformed pattern trees (e.g. a parameter list that did not
/// reduce a single production).
pub fn params_from_pattern(
    grammar: &Grammar,
    env: &DispatchEnv,
    pat: &PatTree,
    leaf_specs: &[ParamSpec],
) -> Result<(ProdId, Vec<Param>), DispatchError> {
    match pat {
        PatTree::Node {
            prod, children, ..
        } => {
            let params = children
                .iter()
                .map(|c| convert(grammar, env, c, leaf_specs))
                .collect::<Result<Vec<_>, _>>()?;
            Ok((*prod, params))
        }
        other => Err(DispatchError::new(
            format!(
                "Mayan parameter list does not match a single production (got {other:?})"
            ),
            other.span(),
        )),
    }
}

fn convert(
    grammar: &Grammar,
    env: &DispatchEnv,
    pat: &PatTree,
    leaf_specs: &[ParamSpec],
) -> Result<Param, DispatchError> {
    match pat {
        PatTree::Token(t) => Ok(Param {
            kind: NodeKind::TokenNode,
            // Literal identifiers in a parameter list are token-value
            // specializers (this is `foreach`); punctuation is fixed by the
            // grammar and matches trivially.
            spec: if t.kind == TokenKind::Ident {
                Specializer::TokenValue(t.text)
            } else {
                Specializer::None
            },
            name: None,
        }),
        PatTree::Leaf { index, span, .. } => {
            let spec = leaf_specs.get(*index).ok_or_else(|| {
                DispatchError::new(format!("no parameter spec for leaf #{index}"), *span)
            })?;
            Ok(Param {
                kind: spec.kind,
                spec: spec.spec.clone(),
                name: spec.name,
            })
        }
        PatTree::Node {
            prod, children, ..
        } => {
            let lhs = grammar.production(*prod).lhs;
            // The produced kind (registered with the destructor) refines
            // the LHS nonterminal: this is why VForEach's receiver counts
            // as CallExpr, not just Expression (Figure 7).
            let kind = env
                .produced_kind(*prod)
                .or(grammar.nt_def(lhs).kind)
                .unwrap_or(NodeKind::Top);
            let children = children
                .iter()
                .map(|c| convert(grammar, env, c, leaf_specs))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Param {
                kind,
                spec: Specializer::Structure {
                    prod: *prod,
                    children,
                },
                name: None,
            })
        }
        // An eager subtree in a pattern (`(Formal var)`): the argument value
        // is the parsed content, so the parameter is the content's.
        PatTree::Tree { content, .. } => convert(grammar, env, content, leaf_specs),
        PatTree::RawTree(d, _) => Err(DispatchError::new(
            "raw delimiter tree in a parameter pattern",
            d.span(),
        )),
        PatTree::Marker => Err(DispatchError::new(
            "internal marker in a parameter pattern",
            Span::DUMMY,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_builders() {
        let p = Param::named(NodeKind::Expression, maya_lexer::sym("x"))
            .with_spec(Specializer::TokenValue(maya_lexer::sym("foreach")));
        assert_eq!(p.kind, NodeKind::Expression);
        assert!(matches!(p.spec, Specializer::TokenValue(_)));
        assert_eq!(p.name.unwrap().as_str(), "x");
    }
}
