//! Applicability, symmetric specificity, and chain ordering (paper §4.4).

use crate::{Bindings, DispatchEnv, DispatchError, Mayan, Param, Specializer};
use maya_ast::{Expr, Node};
use maya_grammar::ProdId;
use maya_lexer::Span;
use maya_types::{ClassTable, Type};
use std::rc::Rc;

/// Resolves static expression types during matching. Returning `None`
/// makes the specializer fail to match (dispatch continues with other
/// Mayans) rather than aborting compilation.
pub type TypeOf<'a> = dyn FnMut(&Expr) -> Option<Type> + 'a;

/// Pointwise specificity between two parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamOrder {
    Equal,
    More,
    Less,
    Ambiguous,
}

impl ParamOrder {
    fn combine(self, other: ParamOrder) -> ParamOrder {
        use ParamOrder::*;
        match (self, other) {
            (Ambiguous, _) | (_, Ambiguous) => Ambiguous,
            (Equal, x) => x,
            (x, Equal) => x,
            (More, More) => More,
            (Less, Less) => Less,
            (More, Less) | (Less, More) => Ambiguous,
        }
    }
}

/// Tries to match one parameter against one argument, collecting named
/// bindings into `out`. Returns `false` (not an error) when the argument
/// does not satisfy the parameter.
/// Running tallies of applicability work, reported to telemetry once per
/// dispatch so the hot matching loop stays free of thread-local traffic.
#[derive(Default, Clone, Copy)]
struct MatchStats {
    /// Parameter matches attempted (including substructure recursion).
    tests: u64,
    /// Static-type tests specifically (each may force lazy context).
    type_tests: u64,
}

fn match_param(
    env: &DispatchEnv,
    ct: &ClassTable,
    param: &Param,
    arg: &Node,
    type_of: &mut TypeOf<'_>,
    out: &mut Bindings,
    stats: &mut MatchStats,
) -> bool {
    stats.tests += 1;
    // Node-kind check. Terminal parameters skip it (the grammar fixed the
    // token); unforced lazy arguments match on their goal kind without
    // being forced — that is the point of laziness.
    if param.kind != maya_ast::NodeKind::TokenNode {
        let kind_ok = match arg {
            Node::Lazy(l) => l.goal.is_subkind_of(param.kind),
            other => other.node_kind().is_subkind_of(param.kind),
        };
        if !kind_ok {
            return false;
        }
    }
    let spec_ok = match &param.spec {
        Specializer::None => true,
        Specializer::TokenValue(s) => match arg {
            Node::Token(t) => t.text == *s,
            Node::Ident(i) => i.sym == *s,
            Node::Expr(Expr {
                kind: maya_ast::ExprKind::Name(i),
                ..
            }) => i.sym == *s,
            Node::Name(parts) => parts.len() == 1 && parts[0].sym == *s,
            _ => false,
        },
        Specializer::StaticType(t) => match arg {
            Node::Expr(e) => {
                stats.type_tests += 1;
                match type_of(e) {
                    Some(ty) => ct.is_subtype(&ty, t),
                    None => false,
                }
            }
            _ => false,
        },
        Specializer::ExactType(t) => match arg {
            Node::Expr(e) => {
                stats.type_tests += 1;
                type_of(e).as_ref() == Some(t)
            }
            _ => false,
        },
        Specializer::Structure { prod, children } => {
            let Some(destructor) = env.destructor(*prod) else {
                return false;
            };
            let Some(parts) = destructor(arg) else {
                return false;
            };
            if parts.len() != children.len() {
                return false;
            }
            children
                .iter()
                .zip(&parts)
                .all(|(p, a)| match_param(env, ct, p, a, type_of, out, stats))
        }
    };
    if !spec_ok {
        return false;
    }
    if let Some(name) = param.name {
        out.bind(name, arg.clone());
    }
    true
}

fn cmp_param(ct: &ClassTable, a: &Param, b: &Param) -> ParamOrder {
    use ParamOrder::*;
    if a.kind != b.kind {
        if a.kind.is_subkind_of(b.kind) {
            return More;
        }
        if b.kind.is_subkind_of(a.kind) {
            return Less;
        }
        // Disjoint kinds: the parameters are never both applicable.
        return Equal;
    }
    match (&a.spec, &b.spec) {
        (Specializer::None, Specializer::None) => Equal,
        (Specializer::None, _) => Less,
        (_, Specializer::None) => More,
        (Specializer::StaticType(x), Specializer::StaticType(y)) => {
            let xy = ct.is_subtype(x, y);
            let yx = ct.is_subtype(y, x);
            match (xy, yx) {
                (true, true) => Equal,
                (true, false) => More,
                (false, true) => Less,
                (false, false) => Equal, // disjoint
            }
        }
        (
            Specializer::Structure {
                prod: pa,
                children: ca,
            },
            Specializer::Structure {
                prod: pb,
                children: cb,
            },
        ) => {
            if pa != pb || ca.len() != cb.len() {
                // Different shapes: never both applicable.
                return Equal;
            }
            ca.iter()
                .zip(cb)
                .map(|(x, y)| cmp_param(ct, x, y))
                .fold(Equal, ParamOrder::combine)
        }
        // Token values and exact types must match exactly; two different
        // values are disjoint, the same value is equal.
        _ => Equal,
    }
}

/// Symmetric specificity between two Mayans on the same production.
pub fn cmp_mayans(ct: &ClassTable, a: &Mayan, b: &Mayan) -> ParamOrder {
    if a.params.len() != b.params.len() {
        return ParamOrder::Equal;
    }
    a.params
        .iter()
        .zip(&b.params)
        .map(|(x, y)| cmp_param(ct, x, y))
        .fold(ParamOrder::Equal, ParamOrder::combine)
}

/// Finds the applicable Mayans for a reduction and orders them most
/// applicable first.
///
/// Ordering rules (paper §4.4): specificity is symmetric — two applicable
/// Mayans each more specific on different arguments raise an ambiguity
/// error; Mayans equal under the parameter rules are ordered by *lexical
/// tie-breaking*, the most recently imported first.
///
/// # Errors
///
/// Returns an error when no Mayan applies (the paper signals an error when
/// input reduces a production with no semantic actions) or on ambiguity.
pub fn order_applicable(
    env: &DispatchEnv,
    ct: &ClassTable,
    prod: ProdId,
    prod_desc: &str,
    args: &[Node],
    type_of: &mut TypeOf<'_>,
    span: Span,
) -> Result<Vec<(Rc<Mayan>, Bindings)>, DispatchError> {
    let _p = maya_telemetry::phase(maya_telemetry::Phase::Dispatch);
    let mut stats = MatchStats::default();
    let mut candidates: u64 = 0;
    let mut applicable: Vec<(usize, Rc<Mayan>, Bindings)> = Vec::new();
    for (i, m) in env.mayans_for(prod).iter().enumerate() {
        candidates += 1;
        if m.params.len() != args.len() {
            continue;
        }
        let mut bindings = Bindings::new(args.to_vec());
        let ok = m
            .params
            .iter()
            .zip(args)
            .all(|(p, a)| match_param(env, ct, p, a, type_of, &mut bindings, &mut stats));
        if ok {
            applicable.push((i, m.clone(), bindings));
        }
    }
    if maya_telemetry::enabled() {
        maya_telemetry::count(maya_telemetry::Counter::DispatchReductions);
        maya_telemetry::add(maya_telemetry::Counter::DispatchCandidates, candidates);
        maya_telemetry::add(maya_telemetry::Counter::DispatchTests, stats.tests);
        maya_telemetry::add(maya_telemetry::Counter::DispatchTypeTests, stats.type_tests);
    }
    if applicable.is_empty() {
        maya_telemetry::trace(maya_telemetry::TraceKind::Dispatch, || {
            (
                format!("production {prod_desc}"),
                format!(
                    "no applicable Mayan among {candidates} candidate(s) \
                     after {} applicability test(s)",
                    stats.tests
                ),
            )
        });
        return Err(DispatchError::new(
            format!("no applicable Mayan for production {prod_desc}"),
            span,
        ));
    }

    // Sort most-applicable first: specificity, then import order (later
    // imports first). Insertion sort with explicit ambiguity detection.
    let mut ordered: Vec<(usize, Rc<Mayan>, Bindings)> = Vec::new();
    for item in applicable {
        let mut pos = ordered.len();
        for (k, existing) in ordered.iter().enumerate() {
            match cmp_mayans(ct, &item.1, &existing.1) {
                ParamOrder::Ambiguous => {
                    return Err(DispatchError::new(
                        format!(
                            "ambiguous Mayan dispatch: {} and {} are each more specific \
                             on different arguments",
                            item.1.name, existing.1.name
                        ),
                        span,
                    ));
                }
                ParamOrder::More => {
                    pos = k;
                    break;
                }
                ParamOrder::Less => {}
                ParamOrder::Equal => {
                    // Lexical tie-breaking: later import (higher index)
                    // comes first.
                    if item.0 > existing.0 {
                        pos = k;
                        break;
                    }
                }
            }
        }
        ordered.insert(pos, item);
    }
    maya_telemetry::trace(maya_telemetry::TraceKind::Dispatch, || {
        let runners_up: Vec<&str> = ordered[1..]
            .iter()
            .map(|(_, m, _)| m.name.as_str())
            .collect();
        let chain = if runners_up.is_empty() {
            String::new()
        } else {
            format!("; chain: {}", runners_up.join(", "))
        };
        (
            format!("production {prod_desc}"),
            format!(
                "reduced by Mayan `{}` after {} applicability test(s) over \
                 {candidates} candidate(s){chain}",
                ordered[0].1.name, stats.tests
            ),
        )
    });
    Ok(ordered.into_iter().map(|(_, m, b)| (m, b)).collect())
}

/// Convenience: order and return the chain, mapping the common case of a
/// one-element result.
///
/// # Errors
///
/// Same as [`order_applicable`].
pub fn dispatch(
    env: &DispatchEnv,
    ct: &ClassTable,
    prod: ProdId,
    prod_desc: &str,
    args: &[Node],
    type_of: &mut TypeOf<'_>,
    span: Span,
) -> Result<Vec<(Rc<Mayan>, Bindings)>, DispatchError> {
    order_applicable(env, ct, prod, prod_desc, args, type_of, span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnvBuilder, Param, ParamSpec, Specializer};
    use maya_ast::{ExprKind, Ident, MethodName, NodeKind};
    use maya_lexer::sym;
    use maya_types::ClassInfo;

    fn types() -> (ClassTable, Type, Type) {
        let ct = ClassTable::bootstrap();
        let obj = ct.by_fqcn_str("java.lang.Object").unwrap();
        let mut e = ClassInfo::new("java.util.Enumeration", true);
        e.superclass = Some(obj);
        let e = ct.declare(e).unwrap();
        let mut v = ClassInfo::new("maya.util.Vector", false);
        v.superclass = Some(obj);
        let v = ct.declare(v).unwrap();
        (ct, Type::Class(e), Type::Class(v))
    }

    fn mayan(name: &str, params: Vec<Param>) -> Rc<Mayan> {
        Mayan::new(name, ProdId(0), params, Rc::new(|_, _| Ok(Node::Unit)))
    }

    fn env_with(mayans: Vec<Rc<Mayan>>) -> DispatchEnv {
        let mut b: EnvBuilder = DispatchEnv::new().extend();
        for m in mayans {
            b.import(m);
        }
        b.finish()
    }

    #[test]
    fn static_type_specializer_narrows() {
        let (ct, enum_ty, _) = types();
        let general = mayan("General", vec![Param::plain(NodeKind::Expression)]);
        let specific = mayan(
            "Specific",
            vec![Param::plain(NodeKind::Expression)
                .with_spec(Specializer::StaticType(enum_ty.clone()))],
        );
        let env = env_with(vec![specific.clone(), general.clone()]);
        let arg = Node::from(Expr::name("x"));
        // x : Enumeration → both apply, Specific first.
        let enum_ty2 = enum_ty.clone();
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "Expression → x",
            std::slice::from_ref(&arg),
            &mut |_e| Some(enum_ty2.clone()),
            Span::DUMMY,
        )
        .unwrap();
        assert_eq!(chain[0].0.name.as_str(), "Specific");
        assert_eq!(chain[1].0.name.as_str(), "General");
        // x : Object → only General applies.
        let obj = Type::Class(ct.by_fqcn_str("java.lang.Object").unwrap());
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "Expression → x",
            std::slice::from_ref(&arg),
            &mut |_e| Some(obj.clone()),
            Span::DUMMY,
        )
        .unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].0.name.as_str(), "General");
    }

    #[test]
    fn token_value_dispatch() {
        let (ct, _, _) = types();
        let foreach = mayan(
            "Foreach",
            vec![Param::plain(NodeKind::Identifier)
                .with_spec(Specializer::TokenValue(sym("foreach")))],
        );
        let env = env_with(vec![foreach]);
        let yes = Node::Ident(Ident::from_str("foreach"));
        let no = Node::Ident(Ident::from_str("map"));
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[yes], &mut |_| None, Span::DUMMY
        )
        .is_ok());
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[no], &mut |_| None, Span::DUMMY
        )
        .is_err());
    }

    #[test]
    fn no_applicable_mayan_is_an_error() {
        let (ct, _, _) = types();
        let env = DispatchEnv::new();
        let err = order_applicable(
            &env,
            &ct,
            ProdId(9),
            "Statement → MethodName (Formal) lazy-block",
            &[Node::Unit],
            &mut |_| None,
            Span::DUMMY,
        )
        .unwrap_err();
        assert!(err.message.contains("no applicable Mayan"));
    }

    #[test]
    fn symmetric_ambiguity_is_an_error() {
        let (ct, enum_ty, vec_ty) = types();
        // A is more specific on arg 0, B on arg 1 → ambiguous when both
        // apply (paper: consistent with Java's static overloading).
        let a = mayan(
            "A",
            vec![
                Param::plain(NodeKind::Expression).with_spec(Specializer::StaticType(enum_ty.clone())),
                Param::plain(NodeKind::Expression),
            ],
        );
        let b = mayan(
            "B",
            vec![
                Param::plain(NodeKind::Expression),
                Param::plain(NodeKind::Expression).with_spec(Specializer::StaticType(vec_ty.clone())),
            ],
        );
        let env = env_with(vec![a, b]);
        let args = vec![Node::from(Expr::name("x")), Node::from(Expr::name("y"))];
        let err = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "p",
            &args,
            &mut |e| match &e.kind {
                ExprKind::Name(i) if i.as_str() == "x" => Some(enum_ty.clone()),
                _ => Some(vec_ty.clone()),
            },
            Span::DUMMY,
        )
        .unwrap_err();
        assert!(err.message.contains("ambiguous"), "{}", err.message);
    }

    #[test]
    fn lexical_tie_breaking_later_import_wins() {
        let (ct, _, _) = types();
        let first = mayan("First", vec![Param::plain(NodeKind::Expression)]);
        let second = mayan("Second", vec![Param::plain(NodeKind::Expression)]);
        let env = env_with(vec![first, second]);
        let arg = Node::from(Expr::name("x"));
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "p",
            std::slice::from_ref(&arg),
            &mut |_| None,
            Span::DUMMY,
        )
        .unwrap();
        assert_eq!(chain[0].0.name.as_str(), "Second");
        assert_eq!(chain[1].0.name.as_str(), "First");
    }

    #[test]
    fn substructure_matching_with_destructor() {
        let (ct, _, _) = types();
        // Destructor for "MethodName → Expression . Identifier".
        let mn_prod = ProdId(7);
        let mut b = DispatchEnv::new().extend();
        b.register_destructor(
            mn_prod,
            NodeKind::MethodName,
            Rc::new(|n: &Node| match n {
                Node::MethodName(mn) => mn.receiver.as_ref().map(|r| {
                    vec![
                        Node::Expr((**r).clone()),
                        Node::Unit,
                        Node::Ident(mn.name),
                    ]
                }),
                _ => None,
            }),
        );
        let with_recv = mayan(
            "WithReceiver",
            vec![Param {
                kind: NodeKind::MethodName,
                spec: Specializer::Structure {
                    prod: mn_prod,
                    children: vec![
                        Param::named(NodeKind::Expression, sym("recv")),
                        Param::plain(NodeKind::TokenNode),
                        Param::plain(NodeKind::Identifier)
                            .with_spec(Specializer::TokenValue(sym("foreach"))),
                    ],
                },
                name: None,
            }],
        );
        b.import(with_recv);
        let env = b.finish();

        let good = Node::MethodName(MethodName::with_receiver(
            Expr::name("h"),
            Ident::from_str("foreach"),
        ));
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "p",
            std::slice::from_ref(&good),
            &mut |_| None,
            Span::DUMMY,
        )
        .unwrap();
        // The receiver expression was bound through the substructure.
        assert!(chain[0].1.get("recv").is_some());

        // No receiver → destructor rejects → no applicable Mayan.
        let bad = Node::MethodName(MethodName::simple(Ident::from_str("foreach")));
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[bad], &mut |_| None, Span::DUMMY
        )
        .is_err());

        // Wrong name token → TokenValue rejects.
        let wrong = Node::MethodName(MethodName::with_receiver(
            Expr::name("h"),
            Ident::from_str("map"),
        ));
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[wrong], &mut |_| None, Span::DUMMY
        )
        .is_err());
    }

    #[test]
    fn paramspec_is_reusable() {
        let spec = ParamSpec {
            kind: NodeKind::Expression,
            spec: Specializer::None,
            name: Some(sym("e")),
        };
        assert_eq!(spec.kind, NodeKind::Expression);
    }
}
