//! Applicability, symmetric specificity, and chain ordering (paper §4.4).

use crate::{Bindings, DispatchEnv, DispatchError, Mayan, Param, Specializer};
use maya_ast::{Expr, Node, NodeKind};
use maya_grammar::ProdId;
use maya_lexer::{Span, Symbol};
use maya_types::{ClassTable, Type};
use std::cell::Cell;
use std::rc::Rc;

/// Resolves static expression types during matching. Returning `None`
/// makes the specializer fail to match (dispatch continues with other
/// Mayans) rather than aborting compilation.
pub type TypeOf<'a> = dyn FnMut(&Expr) -> Option<Type> + 'a;

/// Lazily renders the production description used in dispatch diagnostics
/// and traces, so the hot paths (index hits, quiet successful dispatches)
/// never pay for string formatting.
pub trait ProdDesc {
    /// Renders the description.
    fn render(&self) -> String;
}

impl ProdDesc for &str {
    fn render(&self) -> String {
        (*self).to_owned()
    }
}

impl<F: Fn() -> String> ProdDesc for F {
    fn render(&self) -> String {
        self()
    }
}

thread_local! {
    /// Whether the per-production dispatch index/memo is consulted. On by
    /// default; the benchmark harness turns it off to measure the seed
    /// (linear-scan) path.
    static INDEX_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Enables or disables the dispatch index/memo on this thread.
pub fn set_dispatch_index_enabled(on: bool) {
    INDEX_ENABLED.with(|c| c.set(on));
}

/// True when the dispatch index/memo is enabled on this thread.
pub fn dispatch_index_enabled() -> bool {
    INDEX_ENABLED.with(|c| c.get())
}

/// Total memoized signatures kept per environment snapshot before the memo
/// is reset (defends against pathological signature churn).
const MEMO_CAP: usize = 512;

/// The dispatch-relevant shape of one argument: its effective node kind
/// (a lazy node contributes its goal kind without being forced) plus the
/// symbol a `TokenValue` specializer would compare against, when the
/// argument has one of the four token-valued shapes.
///
/// For a "simple" production — every candidate parameter specialized only
/// by `Specializer::None` or `Specializer::TokenValue` — the applicable
/// set, the chain order, and every named binding are pure functions of the
/// argument signatures, which is what makes the memo sound.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ArgSig {
    kind: NodeKind,
    sym: Option<Symbol>,
}

fn arg_sig(arg: &Node) -> ArgSig {
    let kind = match arg {
        Node::Lazy(l) => l.goal,
        other => other.node_kind(),
    };
    let sym = match arg {
        Node::Token(t) => Some(t.text),
        Node::Ident(i) => Some(i.sym),
        Node::Expr(Expr {
            kind: maya_ast::ExprKind::Name(i),
            ..
        }) => Some(i.sym),
        Node::Name(parts) if parts.len() == 1 => Some(parts[0].sym),
        _ => None,
    };
    ArgSig { kind, sym }
}

/// True when matching this parameter may invoke the type checker (and so
/// should run after all cheap shape tests).
fn needs_types(p: &Param) -> bool {
    match &p.spec {
        Specializer::StaticType(_) | Specializer::ExactType(_) => true,
        Specializer::Structure { children, .. } => children.iter().any(needs_types),
        Specializer::None | Specializer::TokenValue(_) => false,
    }
}

/// Whether `prod`'s dispatch outcome is a pure function of argument
/// signatures (cached per snapshot).
fn prod_is_simple(env: &DispatchEnv, prod: ProdId) -> bool {
    if let Some(&known) = env.caches().simple_prod.borrow().get(&prod) {
        return known;
    }
    let simple = env.mayans_for(prod).iter().all(|m| {
        m.params
            .iter()
            .all(|p| matches!(p.spec, Specializer::None | Specializer::TokenValue(_)))
    });
    env.caches().simple_prod.borrow_mut().insert(prod, simple);
    simple
}

/// Pointwise specificity between two parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamOrder {
    Equal,
    More,
    Less,
    Ambiguous,
}

impl ParamOrder {
    fn combine(self, other: ParamOrder) -> ParamOrder {
        use ParamOrder::*;
        match (self, other) {
            (Ambiguous, _) | (_, Ambiguous) => Ambiguous,
            (Equal, x) => x,
            (x, Equal) => x,
            (More, More) => More,
            (Less, Less) => Less,
            (More, Less) | (Less, More) => Ambiguous,
        }
    }
}

/// Tries to match one parameter against one argument, collecting named
/// bindings into `out`. Returns `false` (not an error) when the argument
/// does not satisfy the parameter.
/// Running tallies of applicability work, reported to telemetry once per
/// dispatch so the hot matching loop stays free of thread-local traffic.
#[derive(Default, Clone, Copy)]
struct MatchStats {
    /// Parameter matches attempted (including substructure recursion).
    tests: u64,
    /// Static-type tests specifically (each may force lazy context).
    type_tests: u64,
}

fn match_param(
    env: &DispatchEnv,
    ct: &ClassTable,
    param: &Param,
    arg: &Node,
    type_of: &mut TypeOf<'_>,
    out: &mut Bindings,
    stats: &mut MatchStats,
    slot: Option<u32>,
) -> bool {
    stats.tests += 1;
    // Node-kind check. Terminal parameters skip it (the grammar fixed the
    // token); unforced lazy arguments match on their goal kind without
    // being forced — that is the point of laziness.
    if param.kind != maya_ast::NodeKind::TokenNode {
        let kind_ok = match arg {
            Node::Lazy(l) => l.goal.is_subkind_of(param.kind),
            other => other.node_kind().is_subkind_of(param.kind),
        };
        if !kind_ok {
            return false;
        }
    }
    let spec_ok = match &param.spec {
        Specializer::None => true,
        Specializer::TokenValue(s) => match arg {
            Node::Token(t) => t.text == *s,
            Node::Ident(i) => i.sym == *s,
            Node::Expr(Expr {
                kind: maya_ast::ExprKind::Name(i),
                ..
            }) => i.sym == *s,
            Node::Name(parts) => parts.len() == 1 && parts[0].sym == *s,
            _ => false,
        },
        Specializer::StaticType(t) => match arg {
            Node::Expr(e) => {
                stats.type_tests += 1;
                match type_of(e) {
                    Some(ty) => ct.is_subtype(&ty, t),
                    None => false,
                }
            }
            _ => false,
        },
        Specializer::ExactType(t) => match arg {
            Node::Expr(e) => {
                stats.type_tests += 1;
                type_of(e).as_ref() == Some(t)
            }
            _ => false,
        },
        Specializer::Structure { prod, children } => {
            let Some(destructor) = env.destructor(*prod) else {
                return false;
            };
            let Some(parts) = destructor(arg) else {
                return false;
            };
            if parts.len() != children.len() {
                return false;
            }
            children
                .iter()
                .zip(&parts)
                .all(|(p, a)| match_param(env, ct, p, a, type_of, out, stats, None))
        }
    };
    if !spec_ok {
        return false;
    }
    if let Some(name) = param.name {
        match slot {
            // Top-level parameters alias the shared argument vector.
            Some(i) => out.bind_arg(name, i),
            // Substructure parts are transient destructor output; they
            // must be owned by the bindings.
            None => out.bind(name, arg.clone()),
        }
    }
    true
}

/// Matches every parameter of `m` against `args`, cheap shape tests first
/// and type-requiring parameters (which may force lazy contexts and run
/// the type checker) last, so a cheap mismatch rejects the candidate
/// before any type test runs. Order does not affect the outcome: all
/// parameters must match, and a failed candidate's bindings are discarded.
fn match_all(
    env: &DispatchEnv,
    ct: &ClassTable,
    m: &Mayan,
    args: &[Node],
    type_of: &mut TypeOf<'_>,
    out: &mut Bindings,
    stats: &mut MatchStats,
) -> bool {
    for typed_pass in [false, true] {
        for (slot, (p, a)) in m.params.iter().zip(args).enumerate() {
            if needs_types(p) != typed_pass {
                continue;
            }
            if !match_param(env, ct, p, a, type_of, out, stats, Some(slot as u32)) {
                return false;
            }
        }
    }
    true
}

fn cmp_param(ct: &ClassTable, a: &Param, b: &Param) -> ParamOrder {
    use ParamOrder::*;
    if a.kind != b.kind {
        if a.kind.is_subkind_of(b.kind) {
            return More;
        }
        if b.kind.is_subkind_of(a.kind) {
            return Less;
        }
        // Disjoint kinds: the parameters are never both applicable.
        return Equal;
    }
    match (&a.spec, &b.spec) {
        (Specializer::None, Specializer::None) => Equal,
        (Specializer::None, _) => Less,
        (_, Specializer::None) => More,
        (Specializer::StaticType(x), Specializer::StaticType(y)) => {
            let xy = ct.is_subtype(x, y);
            let yx = ct.is_subtype(y, x);
            match (xy, yx) {
                (true, true) => Equal,
                (true, false) => More,
                (false, true) => Less,
                (false, false) => Equal, // disjoint
            }
        }
        (
            Specializer::Structure {
                prod: pa,
                children: ca,
            },
            Specializer::Structure {
                prod: pb,
                children: cb,
            },
        ) => {
            if pa != pb || ca.len() != cb.len() {
                // Different shapes: never both applicable.
                return Equal;
            }
            ca.iter()
                .zip(cb)
                .map(|(x, y)| cmp_param(ct, x, y))
                .fold(Equal, ParamOrder::combine)
        }
        // Token values and exact types must match exactly; two different
        // values are disjoint, the same value is equal.
        _ => Equal,
    }
}

/// Symmetric specificity between two Mayans on the same production.
pub fn cmp_mayans(ct: &ClassTable, a: &Mayan, b: &Mayan) -> ParamOrder {
    if a.params.len() != b.params.len() {
        return ParamOrder::Equal;
    }
    a.params
        .iter()
        .zip(&b.params)
        .map(|(x, y)| cmp_param(ct, x, y))
        .fold(ParamOrder::Equal, ParamOrder::combine)
}

/// Finds the applicable Mayans for a reduction and orders them most
/// applicable first.
///
/// Ordering rules (paper §4.4): specificity is symmetric — two applicable
/// Mayans each more specific on different arguments raise an ambiguity
/// error; Mayans equal under the parameter rules are ordered by *lexical
/// tie-breaking*, the most recently imported first.
///
/// # Errors
///
/// Returns an error when no Mayan applies (the paper signals an error when
/// input reduces a production with no semantic actions) or on ambiguity.
pub fn order_applicable<D: ProdDesc>(
    env: &DispatchEnv,
    ct: &ClassTable,
    prod: ProdId,
    prod_desc: D,
    args: &[Node],
    type_of: &mut TypeOf<'_>,
    span: Span,
) -> Result<Vec<(Rc<Mayan>, Bindings)>, DispatchError> {
    let _p = maya_telemetry::phase(maya_telemetry::Phase::Dispatch);

    // Index fast path: for simple productions the applicable set, chain
    // order, and named bindings are pure functions of the argument
    // signatures, so a previously computed order can be replayed with zero
    // applicability tests.
    let indexed = dispatch_index_enabled();
    let sig: Option<Vec<ArgSig>> =
        (indexed && prod_is_simple(env, prod)).then(|| args.iter().map(arg_sig).collect());
    if let Some(sig) = &sig {
        let cached = env
            .caches()
            .memo
            .borrow()
            .get(&prod)
            .and_then(|by_sig| by_sig.get(sig.as_slice()))
            .cloned();
        if let Some(order) = cached {
            maya_telemetry::cache_hit(maya_telemetry::CacheId::DispatchMemo);
            if maya_telemetry::enabled() {
                maya_telemetry::count(maya_telemetry::Counter::DispatchReductions);
                maya_telemetry::count(maya_telemetry::Counter::DispatchIndexHits);
            }
            let shared: Rc<Vec<Node>> = Rc::new(args.to_vec());
            let mayans = env.mayans_for(prod);
            let chain: Vec<(Rc<Mayan>, Bindings)> = order
                .iter()
                .map(|&i| {
                    let m = mayans[i as usize].clone();
                    let mut b = Bindings::from_shared(shared.clone());
                    // Simple productions bind only top-level parameters.
                    for (slot, p) in m.params.iter().enumerate() {
                        if let Some(name) = p.name {
                            b.bind_arg(name, slot as u32);
                        }
                    }
                    (m, b)
                })
                .collect();
            maya_telemetry::trace(maya_telemetry::TraceKind::Dispatch, || {
                (
                    format!("production {}", prod_desc.render()),
                    format!(
                        "reduced by Mayan `{}` via dispatch index ({} in chain)",
                        chain[0].0.name,
                        chain.len()
                    ),
                )
            });
            return Ok(chain);
        }
    }
    if indexed {
        maya_telemetry::cache_miss(maya_telemetry::CacheId::DispatchMemo);
        if maya_telemetry::enabled() {
            maya_telemetry::count(maya_telemetry::Counter::DispatchIndexMisses);
        }
    }

    let mut stats = MatchStats::default();
    let mut candidates: u64 = 0;
    let shared: Rc<Vec<Node>> = Rc::new(args.to_vec());
    let mut applicable: Vec<(usize, Rc<Mayan>, Bindings)> = Vec::new();
    for (i, m) in env.mayans_for(prod).iter().enumerate() {
        candidates += 1;
        if m.params.len() != args.len() {
            continue;
        }
        let mut bindings = Bindings::from_shared(shared.clone());
        if match_all(env, ct, m, args, type_of, &mut bindings, &mut stats) {
            applicable.push((i, m.clone(), bindings));
        }
    }
    if maya_telemetry::enabled() {
        maya_telemetry::count(maya_telemetry::Counter::DispatchReductions);
        maya_telemetry::add(maya_telemetry::Counter::DispatchCandidates, candidates);
        maya_telemetry::add(maya_telemetry::Counter::DispatchTests, stats.tests);
        maya_telemetry::add(maya_telemetry::Counter::DispatchTypeTests, stats.type_tests);
    }
    if applicable.is_empty() {
        maya_telemetry::trace(maya_telemetry::TraceKind::Dispatch, || {
            (
                format!("production {}", prod_desc.render()),
                format!(
                    "no applicable Mayan among {candidates} candidate(s) \
                     after {} applicability test(s)",
                    stats.tests
                ),
            )
        });
        return Err(DispatchError::new(
            format!("no applicable Mayan for production {}", prod_desc.render()),
            span,
        ));
    }

    // Sort most-applicable first: specificity, then import order (later
    // imports first). Insertion sort with explicit ambiguity detection.
    let mut ordered: Vec<(usize, Rc<Mayan>, Bindings)> = Vec::new();
    for item in applicable {
        let mut pos = ordered.len();
        for (k, existing) in ordered.iter().enumerate() {
            match cmp_mayans(ct, &item.1, &existing.1) {
                ParamOrder::Ambiguous => {
                    return Err(DispatchError::new(
                        format!(
                            "ambiguous Mayan dispatch: {} and {} are each more specific \
                             on different arguments",
                            item.1.name, existing.1.name
                        ),
                        span,
                    ));
                }
                ParamOrder::More => {
                    pos = k;
                    break;
                }
                ParamOrder::Less => {}
                ParamOrder::Equal => {
                    // Lexical tie-breaking: later import (higher index)
                    // comes first.
                    if item.0 > existing.0 {
                        pos = k;
                        break;
                    }
                }
            }
        }
        ordered.insert(pos, item);
    }

    // Memoize the computed order for simple productions. Only success
    // reaches here: the no-applicable and ambiguity paths returned above,
    // so errors are always re-derived (and re-reported) from scratch.
    if let Some(sig) = sig {
        let mut memo = env.caches().memo.borrow_mut();
        let total: usize = memo.values().map(|by_sig| by_sig.len()).sum();
        if total >= MEMO_CAP {
            maya_telemetry::cache_eviction(maya_telemetry::CacheId::DispatchMemo);
            memo.clear();
        }
        let order: Vec<u32> = ordered.iter().map(|(i, _, _)| *i as u32).collect();
        memo.entry(prod).or_default().insert(sig, Rc::new(order));
        let total: usize = memo.values().map(|by_sig| by_sig.len()).sum();
        maya_telemetry::cache_sized(maya_telemetry::CacheId::DispatchMemo, total);
    }

    maya_telemetry::trace(maya_telemetry::TraceKind::Dispatch, || {
        let runners_up: Vec<&str> = ordered[1..]
            .iter()
            .map(|(_, m, _)| m.name.as_str())
            .collect();
        let chain = if runners_up.is_empty() {
            String::new()
        } else {
            format!("; chain: {}", runners_up.join(", "))
        };
        (
            format!("production {}", prod_desc.render()),
            format!(
                "reduced by Mayan `{}` after {} applicability test(s) over \
                 {candidates} candidate(s){chain}",
                ordered[0].1.name, stats.tests
            ),
        )
    });
    Ok(ordered.into_iter().map(|(_, m, b)| (m, b)).collect())
}

/// Convenience: order and return the chain, mapping the common case of a
/// one-element result.
///
/// # Errors
///
/// Same as [`order_applicable`].
pub fn dispatch<D: ProdDesc>(
    env: &DispatchEnv,
    ct: &ClassTable,
    prod: ProdId,
    prod_desc: D,
    args: &[Node],
    type_of: &mut TypeOf<'_>,
    span: Span,
) -> Result<Vec<(Rc<Mayan>, Bindings)>, DispatchError> {
    order_applicable(env, ct, prod, prod_desc, args, type_of, span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnvBuilder, Param, ParamSpec, Specializer};
    use maya_ast::{ExprKind, Ident, MethodName, NodeKind};
    use maya_lexer::sym;
    use maya_types::ClassInfo;

    fn types() -> (ClassTable, Type, Type) {
        let ct = ClassTable::bootstrap();
        let obj = ct.by_fqcn_str("java.lang.Object").unwrap();
        let mut e = ClassInfo::new("java.util.Enumeration", true);
        e.superclass = Some(obj);
        let e = ct.declare(e).unwrap();
        let mut v = ClassInfo::new("maya.util.Vector", false);
        v.superclass = Some(obj);
        let v = ct.declare(v).unwrap();
        (ct, Type::Class(e), Type::Class(v))
    }

    fn mayan(name: &str, params: Vec<Param>) -> Rc<Mayan> {
        Mayan::new(name, ProdId(0), params, Rc::new(|_, _| Ok(Node::Unit)))
    }

    fn env_with(mayans: Vec<Rc<Mayan>>) -> DispatchEnv {
        let mut b: EnvBuilder = DispatchEnv::new().extend();
        for m in mayans {
            b.import(m);
        }
        b.finish()
    }

    #[test]
    fn static_type_specializer_narrows() {
        let (ct, enum_ty, _) = types();
        let general = mayan("General", vec![Param::plain(NodeKind::Expression)]);
        let specific = mayan(
            "Specific",
            vec![Param::plain(NodeKind::Expression)
                .with_spec(Specializer::StaticType(enum_ty.clone()))],
        );
        let env = env_with(vec![specific.clone(), general.clone()]);
        let arg = Node::from(Expr::name("x"));
        // x : Enumeration → both apply, Specific first.
        let enum_ty2 = enum_ty.clone();
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "Expression → x",
            std::slice::from_ref(&arg),
            &mut |_e| Some(enum_ty2.clone()),
            Span::DUMMY,
        )
        .unwrap();
        assert_eq!(chain[0].0.name.as_str(), "Specific");
        assert_eq!(chain[1].0.name.as_str(), "General");
        // x : Object → only General applies.
        let obj = Type::Class(ct.by_fqcn_str("java.lang.Object").unwrap());
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "Expression → x",
            std::slice::from_ref(&arg),
            &mut |_e| Some(obj.clone()),
            Span::DUMMY,
        )
        .unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].0.name.as_str(), "General");
    }

    #[test]
    fn token_value_dispatch() {
        let (ct, _, _) = types();
        let foreach = mayan(
            "Foreach",
            vec![Param::plain(NodeKind::Identifier)
                .with_spec(Specializer::TokenValue(sym("foreach")))],
        );
        let env = env_with(vec![foreach]);
        let yes = Node::Ident(Ident::from_str("foreach"));
        let no = Node::Ident(Ident::from_str("map"));
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[yes], &mut |_| None, Span::DUMMY
        )
        .is_ok());
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[no], &mut |_| None, Span::DUMMY
        )
        .is_err());
    }

    #[test]
    fn no_applicable_mayan_is_an_error() {
        let (ct, _, _) = types();
        let env = DispatchEnv::new();
        let err = order_applicable(
            &env,
            &ct,
            ProdId(9),
            "Statement → MethodName (Formal) lazy-block",
            &[Node::Unit],
            &mut |_| None,
            Span::DUMMY,
        )
        .unwrap_err();
        assert!(err.message.contains("no applicable Mayan"));
    }

    #[test]
    fn symmetric_ambiguity_is_an_error() {
        let (ct, enum_ty, vec_ty) = types();
        // A is more specific on arg 0, B on arg 1 → ambiguous when both
        // apply (paper: consistent with Java's static overloading).
        let a = mayan(
            "A",
            vec![
                Param::plain(NodeKind::Expression).with_spec(Specializer::StaticType(enum_ty.clone())),
                Param::plain(NodeKind::Expression),
            ],
        );
        let b = mayan(
            "B",
            vec![
                Param::plain(NodeKind::Expression),
                Param::plain(NodeKind::Expression).with_spec(Specializer::StaticType(vec_ty.clone())),
            ],
        );
        let env = env_with(vec![a, b]);
        let args = vec![Node::from(Expr::name("x")), Node::from(Expr::name("y"))];
        let err = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "p",
            &args,
            &mut |e| match &e.kind {
                ExprKind::Name(i) if i.as_str() == "x" => Some(enum_ty.clone()),
                _ => Some(vec_ty.clone()),
            },
            Span::DUMMY,
        )
        .unwrap_err();
        assert!(err.message.contains("ambiguous"), "{}", err.message);
    }

    #[test]
    fn lexical_tie_breaking_later_import_wins() {
        let (ct, _, _) = types();
        let first = mayan("First", vec![Param::plain(NodeKind::Expression)]);
        let second = mayan("Second", vec![Param::plain(NodeKind::Expression)]);
        let env = env_with(vec![first, second]);
        let arg = Node::from(Expr::name("x"));
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "p",
            std::slice::from_ref(&arg),
            &mut |_| None,
            Span::DUMMY,
        )
        .unwrap();
        assert_eq!(chain[0].0.name.as_str(), "Second");
        assert_eq!(chain[1].0.name.as_str(), "First");
    }

    #[test]
    fn substructure_matching_with_destructor() {
        let (ct, _, _) = types();
        // Destructor for "MethodName → Expression . Identifier".
        let mn_prod = ProdId(7);
        let mut b = DispatchEnv::new().extend();
        b.register_destructor(
            mn_prod,
            NodeKind::MethodName,
            Rc::new(|n: &Node| match n {
                Node::MethodName(mn) => mn.receiver.as_ref().map(|r| {
                    vec![
                        Node::Expr((**r).clone()),
                        Node::Unit,
                        Node::Ident(mn.name),
                    ]
                }),
                _ => None,
            }),
        );
        let with_recv = mayan(
            "WithReceiver",
            vec![Param {
                kind: NodeKind::MethodName,
                spec: Specializer::Structure {
                    prod: mn_prod,
                    children: vec![
                        Param::named(NodeKind::Expression, sym("recv")),
                        Param::plain(NodeKind::TokenNode),
                        Param::plain(NodeKind::Identifier)
                            .with_spec(Specializer::TokenValue(sym("foreach"))),
                    ],
                },
                name: None,
            }],
        );
        b.import(with_recv);
        let env = b.finish();

        let good = Node::MethodName(MethodName::with_receiver(
            Expr::name("h"),
            Ident::from_str("foreach"),
        ));
        let chain = order_applicable(
            &env,
            &ct,
            ProdId(0),
            "p",
            std::slice::from_ref(&good),
            &mut |_| None,
            Span::DUMMY,
        )
        .unwrap();
        // The receiver expression was bound through the substructure.
        assert!(chain[0].1.get("recv").is_some());

        // No receiver → destructor rejects → no applicable Mayan.
        let bad = Node::MethodName(MethodName::simple(Ident::from_str("foreach")));
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[bad], &mut |_| None, Span::DUMMY
        )
        .is_err());

        // Wrong name token → TokenValue rejects.
        let wrong = Node::MethodName(MethodName::with_receiver(
            Expr::name("h"),
            Ident::from_str("map"),
        ));
        assert!(order_applicable(
            &env, &ct, ProdId(0), "p", &[wrong], &mut |_| None, Span::DUMMY
        )
        .is_err());
    }

    #[test]
    fn dispatch_index_replays_chain_and_bindings() {
        let (ct, _, _) = types();
        let first = mayan("First", vec![Param::named(NodeKind::Expression, sym("e"))]);
        let second = mayan("Second", vec![Param::named(NodeKind::Expression, sym("e"))]);
        let env = env_with(vec![first, second]);
        let arg = Node::from(Expr::name("x"));
        let run = || {
            order_applicable(
                &env,
                &ct,
                ProdId(0),
                "p",
                std::slice::from_ref(&arg),
                &mut |_| None,
                Span::DUMMY,
            )
            .unwrap()
        };
        let cold = run();
        let warm = run(); // memo hit: replayed without re-matching
        assert_eq!(cold.len(), 2);
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert!(Rc::ptr_eq(&c.0, &w.0), "same Mayans in the same order");
            assert!(w.1.get("e").is_some(), "named bindings are rebuilt");
        }
        assert_eq!(warm[0].0.name.as_str(), "Second");
    }

    #[test]
    fn dispatch_index_invalidated_by_new_import() {
        let (ct, _, _) = types();
        let env1 = env_with(vec![mayan("First", vec![Param::plain(NodeKind::Expression)])]);
        let arg = Node::from(Expr::name("x"));
        let run = |env: &DispatchEnv| {
            order_applicable(
                env,
                &ct,
                ProdId(0),
                "p",
                std::slice::from_ref(&arg),
                &mut |_| None,
                Span::DUMMY,
            )
            .unwrap()
        };
        // Warm env1's memo.
        run(&env1);
        assert_eq!(run(&env1)[0].0.name.as_str(), "First");
        // Extending starts a cold snapshot: the later import must win.
        let mut b = env1.extend();
        b.import(mayan("Second", vec![Param::plain(NodeKind::Expression)]));
        let env2 = b.finish();
        let chain2 = run(&env2);
        assert_eq!(chain2.len(), 2);
        assert_eq!(chain2[0].0.name.as_str(), "Second");
        // The restored outer scope still answers from its own (valid) memo.
        let chain1 = run(&env1);
        assert_eq!(chain1.len(), 1);
        assert_eq!(chain1[0].0.name.as_str(), "First");
    }

    #[test]
    fn dispatch_index_distinguishes_token_values() {
        let (ct, _, _) = types();
        let foreach = mayan(
            "Foreach",
            vec![Param::plain(NodeKind::Identifier)
                .with_spec(Specializer::TokenValue(sym("foreach")))],
        );
        let env = env_with(vec![foreach]);
        let yes = Node::Ident(Ident::from_str("foreach"));
        let no = Node::Ident(Ident::from_str("map"));
        for _ in 0..2 {
            // Second round answers from the memo.
            assert!(order_applicable(
                &env,
                &ct,
                ProdId(0),
                "p",
                std::slice::from_ref(&yes),
                &mut |_| None,
                Span::DUMMY
            )
            .is_ok());
            // A different token is a different signature — never a stale hit.
            assert!(order_applicable(
                &env,
                &ct,
                ProdId(0),
                "p",
                std::slice::from_ref(&no),
                &mut |_| None,
                Span::DUMMY
            )
            .is_err());
        }
    }

    #[test]
    fn dispatch_index_switch_round_trips() {
        assert!(dispatch_index_enabled());
        set_dispatch_index_enabled(false);
        assert!(!dispatch_index_enabled());
        set_dispatch_index_enabled(true);
        assert!(dispatch_index_enabled());
    }

    #[test]
    fn paramspec_is_reusable() {
        let spec = ParamSpec {
            kind: NodeKind::Expression,
            spec: Specializer::None,
            name: Some(sym("e")),
        };
        assert_eq!(spec.kind, NodeKind::Expression);
    }
}
