//! Mayan dispatch (paper §4.4).
//!
//! Grammar productions are generic functions; Mayans are multimethods on
//! them. Each time a production is reduced, the parser finds all Mayans
//! applicable to the right-hand-side values and selects the most applicable
//! one. Parameters are specialized on:
//!
//! * **AST node types** — the [`maya_ast::NodeKind`] lattice;
//! * **static expression types** — compared by MayaJava subtyping, computed
//!   on demand through the [`ExpandCtx`];
//! * **token values** — how `foreach` dispatches without being reserved;
//! * **syntactic substructure** — compared recursively (Figures 5 and 7).
//!
//! Specificity is *symmetric*: two Mayans each more specific on different
//! arguments are ambiguous, and an error is signaled. Mayans that are
//! equally specific are ordered by import: **later imports win** (lexical
//! tie-breaking), which is how user Mayans override Maya's built-in
//! semantic actions and how MultiJava transparently retranslates ordinary
//! method declarations. `next_rewrite` invokes the next most applicable
//! Mayan, like `super` calls in methods.
//!
//! Imports are lexically scoped: a [`DispatchEnv`] is a persistent
//! snapshot, and restoring an outer scope is simply keeping the old handle
//! (the same scheme as [`maya_grammar::Grammar`]).

mod dispatch;
mod env;
mod error;
mod mayan;
mod pattern;

pub use dispatch::{
    cmp_mayans, dispatch, dispatch_index_enabled, order_applicable, set_dispatch_index_enabled,
    ParamOrder, ProdDesc, TypeOf,
};
pub use env::{DispatchEnv, EnvBuilder};
pub use error::DispatchError;
pub use mayan::{Bindings, ExpandCtx, ImportEnv, Mayan, MayanBody, MetaProgram};
pub use pattern::{params_from_pattern, DestructorFn, Param, ParamSpec, Specializer};
