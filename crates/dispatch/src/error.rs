//! Dispatch errors.

use maya_lexer::Span;
use std::fmt;

/// An error raised during Mayan dispatch or expansion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchError {
    pub message: String,
    pub span: Span,
}

impl DispatchError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> DispatchError {
        DispatchError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DispatchError {}

impl From<maya_types::TypeError> for DispatchError {
    fn from(e: maya_types::TypeError) -> DispatchError {
        DispatchError::new(e.message, e.span)
    }
}
