//! The dispatch environment: which Mayans are imported, in what order.

use crate::dispatch::ArgSig;
use crate::{DestructorFn, Mayan};
use maya_ast::NodeKind;
use maya_grammar::ProdId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Per-snapshot dispatch acceleration state, derived lazily from the
/// snapshot's contents. It is deliberately *not* carried into extended
/// snapshots: every `extend()`…`finish()` starts with cold caches, which is
/// exactly the invalidation the caches need (a new import can change any
/// production's candidate set), while restored outer scopes keep their own
/// still-valid warm state.
#[derive(Default)]
pub(crate) struct DispatchCaches {
    /// production → "every candidate parameter uses only shape specializers
    /// (`None`/`TokenValue`)", i.e. the dispatch outcome is a pure function
    /// of the argument signature and may be memoized.
    pub(crate) simple_prod: RefCell<HashMap<ProdId, bool>>,
    /// production → argument signature → candidate indices in chain order.
    pub(crate) memo: RefCell<HashMap<ProdId, HashMap<Vec<ArgSig>, Rc<Vec<u32>>>>>,
}

#[derive(Default)]
struct EnvData {
    /// Mayans per production, in import order (later = higher priority at
    /// equal specificity).
    by_prod: HashMap<ProdId, Vec<Rc<Mayan>>>,
    destructors: HashMap<ProdId, DestructorFn>,
    /// The node kind a production's built-in action produces — refines the
    /// LHS nonterminal for specificity (a `MethodInvocation` production has
    /// LHS `Expression` but produces `CallExpr` nodes).
    produced_kinds: HashMap<ProdId, NodeKind>,
    version: u64,
    caches: DispatchCaches,
}

impl Clone for EnvData {
    fn clone(&self) -> EnvData {
        EnvData {
            by_prod: self.by_prod.clone(),
            destructors: self.destructors.clone(),
            produced_kinds: self.produced_kinds.clone(),
            version: self.version,
            // Cached dispatch state is snapshot-local; the clone (a new
            // snapshot under construction) starts cold.
            caches: DispatchCaches::default(),
        }
    }
}

/// A persistent snapshot of the Mayan-import environment.
///
/// Lexically scoped imports work by keeping the outer snapshot: importing
/// produces a *new* environment, and leaving the scope restores the old
/// handle. Cloning is cheap.
#[derive(Clone, Default)]
pub struct DispatchEnv {
    inner: Rc<EnvData>,
}

impl DispatchEnv {
    /// An empty environment.
    pub fn new() -> DispatchEnv {
        DispatchEnv::default()
    }

    /// Starts an extension of this snapshot.
    pub fn extend(&self) -> EnvBuilder {
        EnvBuilder {
            data: (*self.inner).clone(),
        }
    }

    /// The Mayans imported on a production, in import order.
    pub fn mayans_for(&self, prod: ProdId) -> &[Rc<Mayan>] {
        self.inner
            .by_prod
            .get(&prod)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The destructor for a production, if registered.
    pub fn destructor(&self, prod: ProdId) -> Option<&DestructorFn> {
        self.inner.destructors.get(&prod)
    }

    /// The node kind produced by a production's built-in action, if
    /// registered.
    pub fn produced_kind(&self, prod: ProdId) -> Option<NodeKind> {
        self.inner.produced_kinds.get(&prod).copied()
    }

    /// Snapshot version.
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// Total number of imported Mayans (diagnostics/benches).
    pub fn mayan_count(&self) -> usize {
        self.inner.by_prod.values().map(|v| v.len()).sum()
    }

    /// True when both handles are the same snapshot.
    pub fn same_snapshot(&self, other: &DispatchEnv) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// This snapshot's dispatch acceleration caches.
    pub(crate) fn caches(&self) -> &DispatchCaches {
        &self.inner.caches
    }
}

impl fmt::Debug for DispatchEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DispatchEnv")
            .field("version", &self.inner.version)
            .field("mayans", &self.mayan_count())
            .finish()
    }
}

/// Builds a new [`DispatchEnv`] snapshot.
pub struct EnvBuilder {
    data: EnvData,
}

impl EnvBuilder {
    /// Imports a Mayan (appended: later imports win ties).
    pub fn import(&mut self, mayan: Rc<Mayan>) -> &mut Self {
        self.data.by_prod.entry(mayan.prod).or_default().push(mayan);
        self
    }

    /// Registers a destructor for substructure matching, together with the
    /// node kind the production produces.
    pub fn register_destructor(
        &mut self,
        prod: ProdId,
        produced: NodeKind,
        f: DestructorFn,
    ) -> &mut Self {
        self.data.destructors.insert(prod, f);
        self.data.produced_kinds.insert(prod, produced);
        self
    }

    /// Finishes the snapshot.
    pub fn finish(mut self) -> DispatchEnv {
        self.data.version += 1;
        DispatchEnv {
            inner: Rc::new(self.data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Param;
    use maya_ast::{Node, NodeKind};

    fn dummy_mayan(name: &str, prod: ProdId) -> Rc<Mayan> {
        Mayan::new(
            name,
            prod,
            vec![Param::plain(NodeKind::Statement)],
            Rc::new(|_, _| Ok(Node::Unit)),
        )
    }

    #[test]
    fn scoped_snapshots() {
        let outer = DispatchEnv::new();
        let mut b = outer.extend();
        b.import(dummy_mayan("A", ProdId(0)));
        let inner = b.finish();
        assert_eq!(outer.mayans_for(ProdId(0)).len(), 0);
        assert_eq!(inner.mayans_for(ProdId(0)).len(), 1);
        assert!(inner.version() > outer.version());
        // Restoring the outer scope = dropping the inner handle.
        assert_eq!(outer.mayan_count(), 0);
    }

    #[test]
    fn import_order_is_preserved() {
        let mut b = DispatchEnv::new().extend();
        b.import(dummy_mayan("first", ProdId(1)));
        b.import(dummy_mayan("second", ProdId(1)));
        let env = b.finish();
        let ms = env.mayans_for(ProdId(1));
        assert_eq!(ms[0].name.as_str(), "first");
        assert_eq!(ms[1].name.as_str(), "second");
    }
}
