//! Syntactic type names.
//!
//! A [`TypeName`] is *syntax* — it is resolved to a semantic type by the type
//! checker (crate `maya-types`). The `Strict` forms are the paper's
//! `StrictTypeName` / `StrictClassName` (§3.2, §4.3): names already resolved
//! to a fully qualified type, immune to shadowing at the splice site. They are
//! how templates achieve referential transparency for class names.

use crate::{Ident, NodeKind};
use maya_lexer::{sym, Span, Symbol};
use std::fmt;

/// Primitive type kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PrimKind {
    Boolean,
    Byte,
    Short,
    Char,
    Int,
    Long,
    Float,
    Double,
}

impl PrimKind {
    /// The keyword for this primitive type.
    pub fn as_str(self) -> &'static str {
        match self {
            PrimKind::Boolean => "boolean",
            PrimKind::Byte => "byte",
            PrimKind::Short => "short",
            PrimKind::Char => "char",
            PrimKind::Int => "int",
            PrimKind::Long => "long",
            PrimKind::Float => "float",
            PrimKind::Double => "double",
        }
    }
}

/// The shape of a type name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeNameKind {
    /// A primitive type (`int`, `boolean`, …).
    Prim(PrimKind),
    /// `void` (only valid as a method return type).
    Void,
    /// A dotted name to be resolved lexically (`Vector`, `java.util.Vector`).
    Named(Vec<Ident>),
    /// An array of an element type.
    Array(Box<TypeName>),
    /// A *strict* name: resolved directly to the type with this fully
    /// qualified name, bypassing lexical lookup (referential transparency).
    Strict(Symbol),
}

/// A syntactic type name with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeName {
    pub span: Span,
    pub kind: TypeNameKind,
}

impl TypeName {
    /// Builds a type name.
    pub fn new(span: Span, kind: TypeNameKind) -> TypeName {
        TypeName { span, kind }
    }

    /// A primitive type name with a dummy span.
    pub fn prim(p: PrimKind) -> TypeName {
        TypeName::new(Span::DUMMY, TypeNameKind::Prim(p))
    }

    /// `void`.
    pub fn void() -> TypeName {
        TypeName::new(Span::DUMMY, TypeNameKind::Void)
    }

    /// A lexically resolved dotted name, e.g. `named("java.util.Vector")`.
    pub fn named(dotted: &str) -> TypeName {
        let parts = dotted
            .split('.')
            .map(|p| Ident::synth(sym(p)))
            .collect();
        TypeName::new(Span::DUMMY, TypeNameKind::Named(parts))
    }

    /// A strict (directly resolved) class name from a fully qualified name.
    ///
    /// This is the paper's `StrictTypeName.make` (Figure 2, line 7).
    pub fn strict(fqcn: Symbol) -> TypeName {
        TypeName::new(Span::DUMMY, TypeNameKind::Strict(fqcn))
    }

    /// Wraps this type in one array dimension.
    pub fn array_of(self) -> TypeName {
        let span = self.span;
        TypeName::new(span, TypeNameKind::Array(Box::new(self)))
    }

    /// The node kind of this type name in the dispatch lattice.
    pub fn node_kind(&self) -> NodeKind {
        match &self.kind {
            TypeNameKind::Prim(_) => NodeKind::PrimitiveTypeName,
            TypeNameKind::Void => NodeKind::VoidTypeName,
            TypeNameKind::Named(_) => NodeKind::ClassTypeName,
            TypeNameKind::Array(_) => NodeKind::ArrayTypeName,
            TypeNameKind::Strict(_) => NodeKind::StrictClassName,
        }
    }

    /// The dotted source form, for diagnostics.
    pub fn dotted(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TypeNameKind::Prim(p) => f.write_str(p.as_str()),
            TypeNameKind::Void => f.write_str("void"),
            TypeNameKind::Named(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    f.write_str(p.sym.as_str())?;
                }
                Ok(())
            }
            TypeNameKind::Array(el) => write!(f, "{el}[]"),
            TypeNameKind::Strict(fqcn) => f.write_str(fqcn.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TypeName::prim(PrimKind::Int).to_string(), "int");
        assert_eq!(TypeName::named("java.util.Vector").to_string(), "java.util.Vector");
        assert_eq!(TypeName::prim(PrimKind::Int).array_of().to_string(), "int[]");
        assert_eq!(TypeName::void().to_string(), "void");
        assert_eq!(TypeName::strict(sym("p.q.C")).to_string(), "p.q.C");
    }

    #[test]
    fn node_kinds() {
        assert_eq!(TypeName::prim(PrimKind::Int).node_kind(), NodeKind::PrimitiveTypeName);
        assert_eq!(TypeName::named("C").node_kind(), NodeKind::ClassTypeName);
        assert_eq!(
            TypeName::named("C").array_of().node_kind(),
            NodeKind::ArrayTypeName
        );
        assert_eq!(TypeName::strict(sym("C")).node_kind(), NodeKind::StrictClassName);
        assert!(TypeName::strict(sym("C"))
            .node_kind()
            .is_subkind_of(NodeKind::TypeName));
    }
}
