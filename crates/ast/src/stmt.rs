//! Statements.

use crate::{Expr, Formal, Ident, LazyNode, NodeKind, TypeName};
use maya_lexer::Span;
use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// A sequence of statements (the paper's `BlockStmts` nonterminal).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    pub span: Span,
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Builds a block.
    pub fn new(span: Span, stmts: Vec<Stmt>) -> Block {
        Block { span, stmts }
    }

    /// Builds a synthesized block.
    pub fn synth(stmts: Vec<Stmt>) -> Block {
        Block::new(Span::DUMMY, stmts)
    }
}

/// One declarator in a local variable declaration: `name[] = init`.
#[derive(Clone, PartialEq, Debug)]
pub struct LocalDeclarator {
    pub name: Ident,
    /// Trailing `[]` pairs on the declarator (`String args[]`).
    pub dims: u32,
    pub init: Option<Expr>,
}

impl LocalDeclarator {
    /// A declarator without initializer or dims.
    pub fn plain(name: Ident) -> LocalDeclarator {
        LocalDeclarator {
            name,
            dims: 0,
            init: None,
        }
    }
}

/// The init clause of a `for` statement.
#[derive(Clone, PartialEq, Debug)]
pub enum ForInit {
    None,
    Decl(TypeName, Vec<LocalDeclarator>),
    Exprs(Vec<Expr>),
}

/// A `catch (Formal) { ... }` clause.
#[derive(Clone, PartialEq, Debug)]
pub struct CatchClause {
    pub param: Formal,
    pub body: Block,
}

/// The target of a `use` import: a named metaprogram class, or a
/// pre-instantiated metaprogram object (local Mayans are exported this way —
/// paper Figure 3 builds `new UseStmt(new Subst(), body)`).
#[derive(Clone)]
pub enum UseTarget {
    Named(Vec<Ident>),
    /// An opaque metaprogram instance; the compiler downcasts it.
    Instance(Rc<dyn Any>),
}

impl PartialEq for UseTarget {
    fn eq(&self, other: &UseTarget) -> bool {
        match (self, other) {
            (UseTarget::Named(a), UseTarget::Named(b)) => a == b,
            (UseTarget::Instance(a), UseTarget::Instance(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Debug for UseTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UseTarget::Named(path) => {
                let s: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
                write!(f, "UseTarget::Named({})", s.join("."))
            }
            UseTarget::Instance(_) => f.write_str("UseTarget::Instance(..)"),
        }
    }
}

/// The shape of a statement.
#[derive(Clone, PartialEq, Debug)]
pub enum StmtKind {
    Block(Block),
    Expr(Expr),
    /// Local variable declaration.
    Decl(TypeName, Vec<LocalDeclarator>),
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    While(Expr, Box<Stmt>),
    Do(Box<Stmt>, Expr),
    For {
        init: ForInit,
        cond: Option<Expr>,
        update: Vec<Expr>,
        body: Box<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Throw(Expr),
    Try {
        body: Block,
        catches: Vec<CatchClause>,
        finally: Option<Block>,
    },
    /// `use M; stmts…` — the paper's `UseStmt`: holds the imported
    /// metaprogram and the statements in which it is visible (§3.3).
    Use(UseTarget, Block),
    Empty,
    /// A lazily parsed block in statement position.
    Lazy(LazyNode),
    /// A poison node: a statement that failed to parse (or expand). The
    /// parser splices one in during panic-mode recovery; downstream phases
    /// skip it without cascading errors, and it must never be executed.
    Error,
}

/// A statement with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Stmt {
    pub span: Span,
    pub kind: StmtKind,
}

impl Stmt {
    /// Builds a statement.
    pub fn new(span: Span, kind: StmtKind) -> Stmt {
        Stmt { span, kind }
    }

    /// Builds a synthesized statement.
    pub fn synth(kind: StmtKind) -> Stmt {
        Stmt::new(Span::DUMMY, kind)
    }

    /// An expression statement.
    pub fn expr(e: Expr) -> Stmt {
        Stmt::new(e.span, StmtKind::Expr(e))
    }

    /// The node kind of this statement in the dispatch lattice.
    pub fn node_kind(&self) -> NodeKind {
        match &self.kind {
            StmtKind::Block(_) => NodeKind::BlockStmt,
            StmtKind::Expr(_) => NodeKind::ExprStmt,
            StmtKind::Decl(..) => NodeKind::DeclStmt,
            StmtKind::If(..) => NodeKind::IfStmt,
            StmtKind::While(..) => NodeKind::WhileStmt,
            StmtKind::Do(..) => NodeKind::DoStmt,
            StmtKind::For { .. } => NodeKind::ForStmt,
            StmtKind::Return(_) => NodeKind::ReturnStmt,
            StmtKind::Break => NodeKind::BreakStmt,
            StmtKind::Continue => NodeKind::ContinueStmt,
            StmtKind::Throw(_) => NodeKind::ThrowStmt,
            StmtKind::Try { .. } => NodeKind::TryStmt,
            StmtKind::Use(..) => NodeKind::UseStmt,
            StmtKind::Empty => NodeKind::EmptyStmt,
            StmtKind::Lazy(_) => NodeKind::Statement,
            StmtKind::Error => NodeKind::ErrorStmt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExprKind;

    #[test]
    fn node_kinds() {
        assert_eq!(Stmt::synth(StmtKind::Break).node_kind(), NodeKind::BreakStmt);
        assert_eq!(
            Stmt::expr(Expr::int(1)).node_kind(),
            NodeKind::ExprStmt
        );
        assert!(Stmt::synth(StmtKind::Empty)
            .node_kind()
            .is_subkind_of(NodeKind::Statement));
    }

    #[test]
    fn use_target_equality() {
        let a = UseTarget::Named(vec![Ident::from_str("EForEach")]);
        let b = UseTarget::Named(vec![Ident::from_str("EForEach")]);
        assert_eq!(a, b);
        let i1 = UseTarget::Instance(Rc::new(3u32));
        let i2 = i1.clone();
        assert_eq!(i1, i2);
        let i3 = UseTarget::Instance(Rc::new(3u32));
        assert_ne!(i1, i3);
        assert_ne!(a, i1);
    }

    #[test]
    fn builders_preserve_spans() {
        let e = Expr::synth(ExprKind::This);
        let s = Stmt::expr(e);
        assert!(s.span.is_dummy());
    }
}
