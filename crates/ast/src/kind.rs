//! The AST node-kind lattice.
//!
//! Maya treats grammar productions as generic functions whose parameters are
//! specialized on AST node types (paper §1, §4.4). `NodeKind` is that type
//! hierarchy: a finite lattice rooted at [`NodeKind::Top`], with abstract
//! kinds like [`NodeKind::Expression`] and concrete kinds like
//! [`NodeKind::CallExpr`]. A Mayan parameter specialized on `Expression`
//! accepts any expression; one specialized on `CallExpr` is *more specific*
//! and overrides it (this is how `VForEach` overrides `EForEach` in §4.4).

use maya_lexer::Symbol;

/// A node type in the MayaJava AST hierarchy.
///
/// The hierarchy (parent relation) is given by [`NodeKind::parent`]; subtype
/// queries by [`NodeKind::is_subkind_of`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[non_exhaustive]
pub enum NodeKind {
    /// The top of the lattice; every node kind is a subkind of `Top`.
    Top,

    // ---- Expressions -------------------------------------------------------
    Expression,
    LiteralExpr,
    NameExpr,
    FieldAccessExpr,
    CallExpr,
    ArrayAccessExpr,
    NewExpr,
    NewArrayExpr,
    BinaryExpr,
    UnaryExpr,
    IncDecExpr,
    AssignExpr,
    CondExpr,
    CastExpr,
    InstanceofExpr,
    ThisExpr,
    VarRefExpr,
    ClassRefExpr,
    TemplateExpr,

    // ---- Statements --------------------------------------------------------
    Statement,
    BlockStmt,
    ExprStmt,
    DeclStmt,
    IfStmt,
    WhileStmt,
    DoStmt,
    ForStmt,
    ReturnStmt,
    BreakStmt,
    ContinueStmt,
    ThrowStmt,
    TryStmt,
    UseStmt,
    EmptyStmt,
    /// A poison statement produced by parser error recovery. Downstream
    /// phases skip it; it participates in the lattice as a statement so
    /// recovery can splice it back into a parse.
    ErrorStmt,

    // ---- Type names --------------------------------------------------------
    TypeName,
    PrimitiveTypeName,
    ClassTypeName,
    ArrayTypeName,
    /// A type name resolved directly to a type, immune to shadowing (§4.3).
    StrictTypeName,
    /// A strict type name that denotes a class or interface.
    StrictClassName,
    VoidTypeName,

    // ---- Declarations ------------------------------------------------------
    Declaration,
    ClassDecl,
    InterfaceDecl,
    MethodDecl,
    CtorDecl,
    FieldDecl,
    UseDecl,
    ProductionDecl,
    MayanDecl,
    ImportDecl,
    PackageDecl,
    /// A declaration that expands to nothing (used by extensions that only
    /// register side effects, e.g. MultiJava external methods).
    EmptyDecl,
    /// A poison declaration produced by parser error recovery.
    ErrorDecl,

    // ---- Other node types exposed to productions ---------------------------
    Identifier,
    /// An identifier in a *binding* position. Productions must use this kind
    /// for lexically scoped bindings so hygiene can be decided statically
    /// (paper §4.3).
    UnboundLocal,
    MethodName,
    Formal,
    FormalList,
    ArgumentList,
    BlockStmts,
    Modifier,
    ModifierList,
    Throws,
    LocalDeclarator,
    QualifiedName,
    CompilationUnit,
    ClassBody,

    // ---- Internal nonterminals (not usually dispatched on) -----------------
    ForControl,
    ForInit,
    ForUpdate,
    CatchClause,
    UseHead,
    SwitchBody,
    ExtendsClause,
    ImplementsClause,

    // ---- Carrier kinds ----------------------------------------------------
    /// A raw token carried on the parse stack.
    TokenNode,
    /// A homogeneous list of nodes (from `list(...)` symbols).
    ListNode,
    /// An unforced lazy node.
    LazyNode,
    /// The unit value (productions with no interesting result).
    UnitNode,
}

impl NodeKind {
    /// The immediate parent in the lattice (`None` for [`NodeKind::Top`]).
    pub fn parent(self) -> Option<NodeKind> {
        use NodeKind::*;
        Some(match self {
            Top => return None,
            LiteralExpr | NameExpr | FieldAccessExpr | CallExpr | ArrayAccessExpr | NewExpr
            | NewArrayExpr | BinaryExpr | UnaryExpr | IncDecExpr | AssignExpr | CondExpr
            | CastExpr | InstanceofExpr | ThisExpr | VarRefExpr | ClassRefExpr | TemplateExpr => {
                Expression
            }
            BlockStmt | ExprStmt | DeclStmt | IfStmt | WhileStmt | DoStmt | ForStmt
            | ReturnStmt | BreakStmt | ContinueStmt | ThrowStmt | TryStmt | UseStmt
            | EmptyStmt | ErrorStmt => Statement,
            PrimitiveTypeName | ClassTypeName | ArrayTypeName | StrictTypeName | VoidTypeName => {
                TypeName
            }
            StrictClassName => StrictTypeName,
            ClassDecl | InterfaceDecl | MethodDecl | CtorDecl | FieldDecl | UseDecl
            | ProductionDecl | MayanDecl | ImportDecl | PackageDecl | EmptyDecl | ErrorDecl => {
                Declaration
            }
            UnboundLocal => Identifier,
            _ => Top,
        })
    }

    /// True iff `self` is `other` or a descendant of `other` in the lattice.
    ///
    /// ```
    /// use maya_ast::NodeKind;
    /// assert!(NodeKind::CallExpr.is_subkind_of(NodeKind::Expression));
    /// assert!(NodeKind::Expression.is_subkind_of(NodeKind::Top));
    /// assert!(!NodeKind::Expression.is_subkind_of(NodeKind::Statement));
    /// ```
    pub fn is_subkind_of(self, other: NodeKind) -> bool {
        let mut k = self;
        loop {
            if k == other {
                return true;
            }
            match k.parent() {
                Some(p) => k = p,
                None => return false,
            }
        }
    }

    /// Distance (number of parent steps) from `self` up to `other`, if
    /// `self.is_subkind_of(other)`. Used to order specializers by
    /// specificity.
    pub fn depth_to(self, other: NodeKind) -> Option<u32> {
        let mut k = self;
        let mut d = 0;
        loop {
            if k == other {
                return Some(d);
            }
            k = k.parent()?;
            d += 1;
        }
    }

    /// The grammar-facing name of this node kind (`Statement`, `CallExpr`, …).
    pub fn name(self) -> &'static str {
        // Debug formatting matches the variant name, which is the external
        // name; avoid a second 100-arm match.
        nodekind_name(self)
    }

    /// Looks a node kind up by its grammar-facing name.
    ///
    /// ```
    /// use maya_ast::NodeKind;
    /// assert_eq!(NodeKind::from_name("Statement"), Some(NodeKind::Statement));
    /// assert_eq!(NodeKind::from_name("Nope"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<NodeKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// Looks a node kind up by interned name.
    pub fn from_symbol(name: Symbol) -> Option<NodeKind> {
        NodeKind::from_name(name.as_str())
    }

    /// All node kinds, in declaration order.
    pub fn all() -> &'static [NodeKind] {
        ALL_KINDS
    }

    /// True for kinds users may define productions and Mayans on.
    ///
    /// The paper restricts definitions to node-type symbols; we additionally
    /// exclude the internal carrier kinds.
    pub fn is_definable(self) -> bool {
        use NodeKind::*;
        !matches!(self, Top | TokenNode | ListNode | LazyNode | UnitNode)
    }
}

macro_rules! kinds {
    ($($k:ident),* $(,)?) => {
        const ALL_KINDS: &[NodeKind] = &[$(NodeKind::$k),*];
        fn nodekind_name(k: NodeKind) -> &'static str {
            match k { $(NodeKind::$k => stringify!($k)),* }
        }
    };
}

kinds!(
    Top, Expression, LiteralExpr, NameExpr, FieldAccessExpr, CallExpr, ArrayAccessExpr, NewExpr,
    NewArrayExpr, BinaryExpr, UnaryExpr, IncDecExpr, AssignExpr, CondExpr, CastExpr,
    InstanceofExpr, ThisExpr, VarRefExpr, ClassRefExpr, TemplateExpr, Statement, BlockStmt,
    ExprStmt, DeclStmt, IfStmt, WhileStmt, DoStmt, ForStmt, ReturnStmt, BreakStmt, ContinueStmt,
    ThrowStmt, TryStmt, UseStmt, EmptyStmt, ErrorStmt, TypeName, PrimitiveTypeName, ClassTypeName,
    ArrayTypeName, StrictTypeName, StrictClassName, VoidTypeName, Declaration, ClassDecl,
    InterfaceDecl, MethodDecl, CtorDecl, FieldDecl, UseDecl, ProductionDecl, MayanDecl,
    ImportDecl, PackageDecl, EmptyDecl, ErrorDecl, Identifier, UnboundLocal, MethodName, Formal, FormalList,
    ArgumentList, BlockStmts, Modifier, ModifierList, Throws, LocalDeclarator, QualifiedName,
    CompilationUnit, ClassBody, ForControl, ForInit, ForUpdate, CatchClause, UseHead, SwitchBody,
    ExtendsClause, ImplementsClause, TokenNode, ListNode, LazyNode, UnitNode,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_shape() {
        assert!(NodeKind::CallExpr.is_subkind_of(NodeKind::Expression));
        assert!(NodeKind::CallExpr.is_subkind_of(NodeKind::Top));
        assert!(!NodeKind::CallExpr.is_subkind_of(NodeKind::Statement));
        assert!(NodeKind::StrictClassName.is_subkind_of(NodeKind::StrictTypeName));
        assert!(NodeKind::StrictClassName.is_subkind_of(NodeKind::TypeName));
        assert!(NodeKind::UnboundLocal.is_subkind_of(NodeKind::Identifier));
    }

    #[test]
    fn depth_orders_specificity() {
        assert_eq!(NodeKind::CallExpr.depth_to(NodeKind::Expression), Some(1));
        assert_eq!(NodeKind::Expression.depth_to(NodeKind::Expression), Some(0));
        assert_eq!(NodeKind::Statement.depth_to(NodeKind::Expression), None);
    }

    #[test]
    fn names_roundtrip() {
        for &k in NodeKind::all() {
            assert_eq!(NodeKind::from_name(k.name()), Some(k), "kind {k:?}");
        }
    }

    #[test]
    fn every_kind_reaches_top() {
        for &k in NodeKind::all() {
            assert!(k.is_subkind_of(NodeKind::Top));
        }
    }

    #[test]
    fn definability() {
        assert!(NodeKind::Statement.is_definable());
        assert!(NodeKind::MethodName.is_definable());
        assert!(!NodeKind::TokenNode.is_definable());
        assert!(!NodeKind::Top.is_definable());
    }
}
