//! A deterministic pretty printer, plus α-normalization of generated names.
//!
//! Golden tests compare *printed* trees: both the expected source (parsed
//! then printed) and the actual expansion go through this printer, so the
//! output only needs to be deterministic and structure-revealing, not
//! minimal. Hygienic fresh names (`enumVar$3`) are normalized by
//! [`normalize_generated_names`] so tests are insensitive to gensym counters.

use crate::{
    Block, CatchClause, Decl, Expr, ExprKind, ForInit, Formal, LazyCell, MethodName, Node, Stmt,
    StmtKind, UseTarget,
};
use std::fmt::Write as _;

/// The pretty printer. Accumulates text with indentation.
#[derive(Default)]
pub struct Pretty {
    out: String,
    indent: usize,
}

impl Pretty {
    /// Creates an empty printer.
    pub fn new() -> Pretty {
        Pretty::default()
    }

    /// Finishes and returns the printed text.
    pub fn finish(self) -> String {
        self.out
    }

    fn line(&mut self, s: &str) {
        self.open_line();
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn open_line(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    /// Prints any node.
    pub fn node(&mut self, n: &Node) {
        match n {
            Node::Unit => self.line("<unit>"),
            Node::Token(t) => self.line(t.text.as_str()),
            Node::Tree(t) => self.line(&t.to_string()),
            Node::Ident(i) => self.line(i.as_str()),
            Node::Expr(e) => {
                let s = expr_str(e);
                self.line(&s);
            }
            Node::Stmt(s) => self.stmt(s),
            Node::Block(b) => {
                for s in &b.stmts {
                    self.stmt(s);
                }
            }
            Node::Type(t) => self.line(&t.to_string()),
            Node::MethodName(m) => {
                let s = method_name_str(m);
                self.line(&s);
            }
            Node::Formal(f) => {
                let s = formal_str(f);
                self.line(&s);
            }
            Node::Formals(fs) => {
                let s: Vec<String> = fs.iter().map(formal_str).collect();
                self.line(&s.join(", "));
            }
            Node::Args(args) => {
                let s: Vec<String> = args.iter().map(expr_str).collect();
                self.line(&s.join(", "));
            }
            Node::Decl(d) => self.decl(d),
            Node::Decls(ds) => {
                for d in ds {
                    self.decl(d);
                }
            }
            Node::Modifiers(m) => self.line(&m.to_string()),
            Node::LocalDecl(ld) => {
                let mut s = ld.name.as_str().to_owned();
                for _ in 0..ld.dims {
                    s.push_str("[]");
                }
                if let Some(init) = &ld.init {
                    let _ = write!(s, " = {}", expr_str(init));
                }
                self.line(&s);
            }
            Node::Name(parts) => {
                let s: Vec<&str> = parts.iter().map(|i| i.as_str()).collect();
                self.line(&s.join("."));
            }
            Node::Lazy(l) => match &*l.cell.borrow() {
                LazyCell::Forced(n) => self.node(n),
                LazyCell::Unforced { tree, .. } => {
                    self.line(&format!("<lazy {}>", tree.delim.tree_name()))
                }
                LazyCell::InProgress => self.line("<lazy in-progress>"),
            },
            Node::List(items) => {
                for item in items {
                    self.node(item);
                }
            }
        }
    }

    /// Prints a statement.
    pub fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(b) => self.braced_block(b),
            StmtKind::Expr(e) => self.line(&format!("{};", expr_str(e))),
            StmtKind::Decl(ty, decls) => {
                let mut out = ty.to_string();
                out.push(' ');
                for (i, d) in decls.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(d.name.as_str());
                    for _ in 0..d.dims {
                        out.push_str("[]");
                    }
                    if let Some(init) = &d.init {
                        let _ = write!(out, " = {}", expr_str(init));
                    }
                }
                out.push(';');
                self.line(&out);
            }
            StmtKind::If(c, t, e) => {
                self.line(&format!("if ({})", expr_str(c)));
                self.indented_stmt(t);
                if let Some(e) = e {
                    self.line("else");
                    self.indented_stmt(e);
                }
            }
            StmtKind::While(c, b) => {
                self.line(&format!("while ({})", expr_str(c)));
                self.indented_stmt(b);
            }
            StmtKind::Do(b, c) => {
                self.line("do");
                self.indented_stmt(b);
                self.line(&format!("while ({});", expr_str(c)));
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                let init_s = match init {
                    ForInit::None => String::new(),
                    ForInit::Decl(ty, decls) => {
                        let mut out = format!("{ty} ");
                        for (i, d) in decls.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(d.name.as_str());
                            if let Some(init) = &d.init {
                                let _ = write!(out, " = {}", expr_str(init));
                            }
                        }
                        out
                    }
                    ForInit::Exprs(es) => {
                        let v: Vec<String> = es.iter().map(expr_str).collect();
                        v.join(", ")
                    }
                };
                let cond_s = cond.as_ref().map(expr_str).unwrap_or_default();
                let upd: Vec<String> = update.iter().map(expr_str).collect();
                self.line(&format!("for ({init_s}; {cond_s}; {})", upd.join(", ")));
                self.indented_stmt(body);
            }
            StmtKind::Return(Some(e)) => self.line(&format!("return {};", expr_str(e))),
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Throw(e) => self.line(&format!("throw {};", expr_str(e))),
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                self.line("try");
                self.braced_block(body);
                for CatchClause { param, body } in catches {
                    self.line(&format!("catch ({})", formal_str(param)));
                    self.braced_block(body);
                }
                if let Some(fin) = finally {
                    self.line("finally");
                    self.braced_block(fin);
                }
            }
            StmtKind::Use(target, body) => {
                match target {
                    UseTarget::Named(path) => {
                        let s: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
                        self.line(&format!("use {};", s.join(".")));
                    }
                    UseTarget::Instance(_) => self.line("use <instance>;"),
                }
                for s in &body.stmts {
                    self.stmt(s);
                }
            }
            StmtKind::Empty => self.line(";"),
            StmtKind::Lazy(l) => {
                if let Some(n) = l.forced_node() {
                    self.node(&n);
                } else {
                    self.line("<lazy statement>");
                }
            }
            StmtKind::Error => self.line("<error>;"),
        }
    }

    fn indented_stmt(&mut self, s: &Stmt) {
        if let StmtKind::Block(b) = &s.kind {
            self.braced_block(b);
        } else {
            self.indent += 1;
            self.stmt(s);
            self.indent -= 1;
        }
    }

    fn braced_block(&mut self, b: &Block) {
        self.line("{");
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("}");
    }

    /// Prints a declaration.
    pub fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Class(c) => {
                let mut head = String::new();
                if c.modifiers.iter().next().is_some() {
                    let _ = write!(head, "{} ", c.modifiers);
                }
                let _ = write!(head, "class {}", c.name);
                if let Some(sup) = &c.superclass {
                    let _ = write!(head, " extends {sup}");
                }
                if !c.interfaces.is_empty() {
                    let s: Vec<String> = c.interfaces.iter().map(|t| t.to_string()).collect();
                    let _ = write!(head, " implements {}", s.join(", "));
                }
                self.line(&format!("{head} {{"));
                self.indent += 1;
                for m in &c.members {
                    self.decl(m);
                }
                self.indent -= 1;
                self.line("}");
            }
            Decl::Interface(i) => {
                let mut head = String::new();
                if i.modifiers.iter().next().is_some() {
                    let _ = write!(head, "{} ", i.modifiers);
                }
                let _ = write!(head, "interface {}", i.name);
                if !i.extends.is_empty() {
                    let s: Vec<String> = i.extends.iter().map(|t| t.to_string()).collect();
                    let _ = write!(head, " extends {}", s.join(", "));
                }
                self.line(&format!("{head} {{"));
                self.indent += 1;
                for m in &i.members {
                    self.decl(m);
                }
                self.indent -= 1;
                self.line("}");
            }
            Decl::Method(m) => {
                let mut head = String::new();
                if m.modifiers.iter().next().is_some() {
                    let _ = write!(head, "{} ", m.modifiers);
                }
                let formals: Vec<String> = m.formals.iter().map(formal_str).collect();
                let _ = write!(head, "{} {}({})", m.ret, m.name, formals.join(", "));
                if !m.throws.is_empty() {
                    let s: Vec<String> = m.throws.iter().map(|t| t.to_string()).collect();
                    let _ = write!(head, " throws {}", s.join(", "));
                }
                match &m.body {
                    None => self.line(&format!("{head};")),
                    Some(lazy) => {
                        self.line(&format!("{head} {{"));
                        self.indent += 1;
                        if let Some(node) = lazy.forced_node() {
                            self.node(&node);
                        } else {
                            self.line("<lazy body>");
                        }
                        self.indent -= 1;
                        self.line("}");
                    }
                }
            }
            Decl::Ctor(c) => {
                let mut head = String::new();
                if c.modifiers.iter().next().is_some() {
                    let _ = write!(head, "{} ", c.modifiers);
                }
                let formals: Vec<String> = c.formals.iter().map(formal_str).collect();
                let _ = write!(head, "{}({})", c.name, formals.join(", "));
                self.line(&format!("{head} {{"));
                self.indent += 1;
                if let Some(node) = c.body.forced_node() {
                    self.node(&node);
                } else {
                    self.line("<lazy body>");
                }
                self.indent -= 1;
                self.line("}");
            }
            Decl::Field(fd) => {
                let mut out = String::new();
                if fd.modifiers.iter().next().is_some() {
                    let _ = write!(out, "{} ", fd.modifiers);
                }
                let _ = write!(out, "{} {}", fd.ty, fd.name);
                if let Some(init) = &fd.init {
                    let _ = write!(out, " = {}", expr_str(init));
                }
                out.push(';');
                self.line(&out);
            }
            Decl::Production(p) => {
                self.line(&format!("abstract {} syntax{};", p.lhs, p.pattern));
            }
            Decl::Mayan(m) => {
                self.line(&format!("{} syntax {}{} {{ … }}", m.lhs, m.name, m.params));
            }
            Decl::Use(target, rest) => {
                match target {
                    UseTarget::Named(path) => {
                        let s: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
                        self.line(&format!("use {};", s.join(".")));
                    }
                    UseTarget::Instance(_) => self.line("use <instance>;"),
                }
                for d in rest {
                    self.decl(d);
                }
            }
            Decl::Import(i) => {
                let s: Vec<&str> = i.path.iter().map(|x| x.as_str()).collect();
                let star = if i.wildcard { ".*" } else { "" };
                self.line(&format!("import {}{star};", s.join(".")));
            }
            Decl::Empty => self.line(";"),
            Decl::Error(_) => self.line("<error>;"),
        }
    }
}

fn formal_str(f: &Formal) -> String {
    let mut s = String::new();
    if f.is_final {
        s.push_str("final ");
    }
    let _ = write!(s, "{}", f.ty);
    if let Some(spec) = &f.specializer {
        let _ = write!(s, "@{spec}");
    }
    let _ = write!(s, " {}", f.name);
    s
}

fn method_name_str(m: &MethodName) -> String {
    let mut s = String::new();
    if m.super_recv {
        s.push_str("super.");
    } else if let Some(r) = &m.receiver {
        let _ = write!(s, "{}.", expr_str(r));
    }
    s.push_str(m.name.as_str());
    s
}

/// Renders an expression on one line. Nested non-primary expressions are
/// parenthesized, so output is unambiguous without a precedence table.
pub fn expr_str(e: &Expr) -> String {
    fn sub(e: &Expr) -> String {
        match &e.kind {
            ExprKind::Literal(_)
            | ExprKind::Name(_)
            | ExprKind::FieldAccess(..)
            | ExprKind::Call(..)
            | ExprKind::ArrayAccess(..)
            | ExprKind::This
            | ExprKind::VarRef(_)
            | ExprKind::ClassRef(_)
            | ExprKind::New(..)
            | ExprKind::NewArray { .. } => expr_str(e),
            _ => format!("({})", expr_str(e)),
        }
    }
    match &e.kind {
        ExprKind::Literal(l) => l.to_string(),
        ExprKind::Name(i) => i.as_str().to_owned(),
        ExprKind::FieldAccess(t, name) => format!("{}.{}", sub(t), name),
        ExprKind::Call(mn, args) => {
            let a: Vec<String> = args.iter().map(expr_str).collect();
            format!("{}({})", method_name_str(mn), a.join(", "))
        }
        ExprKind::ArrayAccess(a, i) => format!("{}[{}]", sub(a), expr_str(i)),
        ExprKind::New(ty, args) => {
            let a: Vec<String> = args.iter().map(expr_str).collect();
            format!("new {ty}({})", a.join(", "))
        }
        ExprKind::NewArray {
            elem,
            dims,
            extra_dims,
        } => {
            let mut s = format!("new {elem}");
            for d in dims {
                let _ = write!(s, "[{}]", expr_str(d));
            }
            for _ in 0..*extra_dims {
                s.push_str("[]");
            }
            s
        }
        ExprKind::Binary(op, l, r) => format!("{} {op} {}", sub(l), sub(r)),
        ExprKind::Unary(op, x) => format!("{op}{}", sub(x)),
        ExprKind::IncDec(op, prefix, x) => {
            if *prefix {
                format!("{op}{}", sub(x))
            } else {
                format!("{}{op}", sub(x))
            }
        }
        ExprKind::Assign(op, l, r) => {
            let op_s = match op {
                Some(op) => format!("{op}="),
                None => "=".to_owned(),
            };
            format!("{} {op_s} {}", sub(l), sub(r))
        }
        ExprKind::Cond(c, t, f) => format!("{} ? {} : {}", sub(c), sub(t), sub(f)),
        ExprKind::Cast(ty, x) => format!("({ty}) {}", sub(x)),
        ExprKind::Instanceof(x, ty) => format!("{} instanceof {ty}", sub(x)),
        ExprKind::This => "this".to_owned(),
        ExprKind::VarRef(s) => s.as_str().to_owned(),
        ExprKind::ClassRef(s) => s.as_str().to_owned(),
        ExprKind::Template(t) => format!("new {} {}", t.goal.name(), t.body),
        ExprKind::Lazy(l) => match l.forced_node().and_then(|n| n.into_expr()) {
            Some(inner) => expr_str(&inner),
            None => "<lazy expr>".to_owned(),
        },
        ExprKind::TypeDims(base) => format!("{}[]", sub(base)),
    }
}

/// Pretty-prints a node to a string.
pub fn pretty_node(n: &Node) -> String {
    let mut p = Pretty::new();
    p.node(n);
    p.finish()
}

/// Replaces generated names (`foo$12`) with stable placeholders (`g$1`,
/// `g$2`, …) in first-occurrence order, so printed trees can be compared
/// independently of gensym counters.
pub fn normalize_generated_names(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut map: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            let word = &text[start..i];
            if let Some(dollar) = word.find('$') {
                if word[dollar + 1..].chars().all(|c| c.is_ascii_digit())
                    && !word[dollar + 1..].is_empty()
                {
                    let replacement = match map.iter().find(|(w, _)| w == word) {
                        Some((_, r)) => r.clone(),
                        None => {
                            let r = format!("g${}", map.len() + 1);
                            map.push((word.to_owned(), r.clone()));
                            r
                        }
                    };
                    out.push_str(&replacement);
                    continue;
                }
            }
            out.push_str(word);
        } else {
            out.push(c);
            i += c.len_utf8();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Ident, TypeName};

    #[test]
    fn expr_rendering() {
        let e = Expr::synth(ExprKind::Binary(
            BinOp::Add,
            Box::new(Expr::int(1)),
            Box::new(Expr::synth(ExprKind::Binary(
                BinOp::Mul,
                Box::new(Expr::int(2)),
                Box::new(Expr::int(3)),
            ))),
        ));
        assert_eq!(expr_str(&e), "1 + (2 * 3)");
    }

    #[test]
    fn stmt_rendering() {
        let s = Stmt::synth(StmtKind::If(
            Expr::name("x"),
            Box::new(Stmt::synth(StmtKind::Return(Some(Expr::int(1))))),
            Some(Box::new(Stmt::synth(StmtKind::Return(None)))),
        ));
        let mut p = Pretty::new();
        p.stmt(&s);
        let text = p.finish();
        assert!(text.contains("if (x)"));
        assert!(text.contains("return 1;"));
        assert!(text.contains("else"));
    }

    #[test]
    fn call_rendering() {
        let e = Expr::call_on(Expr::name("h"), "get", vec![Expr::name("st")]);
        assert_eq!(expr_str(&e), "h.get(st)");
    }

    #[test]
    fn normalization_is_consistent() {
        let a = "Enumeration enumVar$7 = x; enumVar$7.next(); other$2 = enumVar$7;";
        let b = "Enumeration enumVar$1 = x; enumVar$1.next(); other$9 = enumVar$1;";
        assert_eq!(
            normalize_generated_names(a),
            normalize_generated_names(b)
        );
        // Distinct gensyms stay distinct.
        let c = "a$1 b$2 a$1";
        assert_eq!(normalize_generated_names(c), "g$1 g$2 g$1");
    }

    #[test]
    fn normalization_leaves_plain_names() {
        assert_eq!(normalize_generated_names("foo bar$ baz"), "foo bar$ baz");
        assert_eq!(normalize_generated_names("m$1(x)"), "g$1(x)");
    }

    #[test]
    fn field_decl_rendering() {
        let d = Decl::Field(crate::FieldDecl {
            span: maya_lexer::Span::DUMMY,
            modifiers: crate::Modifiers::just(crate::Modifier::Private),
            ty: TypeName::named("String"),
            name: Ident::from_str("name"),
            init: Some(Expr::str_lit("hi")),
        });
        let mut p = Pretty::new();
        p.decl(&d);
        assert_eq!(p.finish(), "private String name = \"hi\";\n");
    }
}
