//! [`Node`]: the universal semantic value.
//!
//! Every production's semantic action — built-in or Mayan — consumes and
//! produces `Node`s. They appear on the parser stack, as Mayan arguments, and
//! as `maya.tree` values inside interpreted metaprograms.

use crate::{
    Block, Decl, Expr, Formal, Ident, LazyNode, LocalDeclarator, MethodName, Modifiers, NodeKind,
    Stmt, TypeName,
};
use maya_lexer::{Token, TokenTree};

/// A semantic value: one of the node categories of the MayaJava AST, or one
/// of the carrier forms (tokens, raw trees, lists, lazy nodes).
#[derive(Clone, PartialEq, Debug)]
pub enum Node {
    /// No interesting value.
    Unit,
    /// A shifted terminal.
    Token(Token),
    /// A raw delimiter subtree (shifted as a terminal).
    Tree(TokenTree),
    Ident(Ident),
    Expr(Expr),
    Stmt(Stmt),
    /// A statement sequence (`BlockStmts`).
    Block(Block),
    Type(TypeName),
    MethodName(MethodName),
    Formal(Formal),
    Formals(Vec<Formal>),
    /// An argument list.
    Args(Vec<Expr>),
    Decl(Decl),
    Decls(Vec<Decl>),
    Modifiers(Modifiers),
    LocalDecl(LocalDeclarator),
    /// A qualified name (`a.b.c`) in a non-expression position.
    Name(Vec<Ident>),
    Lazy(LazyNode),
    /// A homogeneous list produced by `list(...)` symbols.
    List(Vec<Node>),
}

impl Node {
    /// The node kind, for dispatch.
    pub fn node_kind(&self) -> NodeKind {
        match self {
            Node::Unit => NodeKind::UnitNode,
            Node::Token(_) => NodeKind::TokenNode,
            Node::Tree(_) => NodeKind::TokenNode,
            Node::Ident(_) => NodeKind::Identifier,
            Node::Expr(e) => e.node_kind(),
            Node::Stmt(s) => s.node_kind(),
            Node::Block(_) => NodeKind::BlockStmts,
            Node::Type(t) => t.node_kind(),
            Node::MethodName(_) => NodeKind::MethodName,
            Node::Formal(_) => NodeKind::Formal,
            Node::Formals(_) => NodeKind::FormalList,
            Node::Args(_) => NodeKind::ArgumentList,
            Node::Decl(d) => d.node_kind(),
            Node::Decls(_) => NodeKind::ClassBody,
            Node::Modifiers(_) => NodeKind::ModifierList,
            Node::LocalDecl(_) => NodeKind::LocalDeclarator,
            Node::Name(_) => NodeKind::QualifiedName,
            Node::Lazy(_) => NodeKind::LazyNode,
            Node::List(_) => NodeKind::ListNode,
        }
    }

    /// The expression, if this node is one (forced lazies included).
    pub fn as_expr(&self) -> Option<&Expr> {
        match self {
            Node::Expr(e) => Some(e),
            _ => None,
        }
    }

    /// Consumes the node into an expression, adapting compatible shapes:
    /// an `Ident` becomes a name expression, a lazy expression stays lazy.
    pub fn into_expr(self) -> Option<Expr> {
        match self {
            Node::Expr(e) => Some(e),
            Node::Ident(i) => Some(Expr::new(i.span, crate::ExprKind::Name(i))),
            Node::Lazy(l) if l.goal.is_subkind_of(NodeKind::Expression) => {
                Some(Expr::synth(crate::ExprKind::Lazy(l)))
            }
            _ => None,
        }
    }

    /// Consumes the node into a statement, adapting compatible shapes:
    /// a `Block` becomes a block statement, a lazy block stays lazy.
    pub fn into_stmt(self) -> Option<Stmt> {
        match self {
            Node::Stmt(s) => Some(s),
            Node::Block(b) => {
                let span = b.span;
                Some(Stmt::new(span, crate::StmtKind::Block(b)))
            }
            Node::Lazy(l)
                if l.goal.is_subkind_of(NodeKind::Statement)
                    || l.goal == NodeKind::BlockStmts =>
            {
                Some(Stmt::synth(crate::StmtKind::Lazy(l)))
            }
            _ => None,
        }
    }

    /// Consumes the node into a block of statements.
    pub fn into_block(self) -> Option<Block> {
        match self {
            Node::Block(b) => Some(b),
            Node::Stmt(s) => Some(Block::new(s.span, vec![s])),
            Node::Lazy(l) => {
                let stmt = Node::Lazy(l).into_stmt()?;
                Some(Block::new(stmt.span, vec![stmt]))
            }
            _ => None,
        }
    }

    /// The identifier, if this node is one.
    pub fn as_ident(&self) -> Option<Ident> {
        match self {
            Node::Ident(i) => Some(*i),
            Node::Token(t) if t.kind == maya_lexer::TokenKind::Ident => {
                Some(Ident::new(t.text, t.span))
            }
            _ => None,
        }
    }

    /// The token, if this node carries one.
    pub fn as_token(&self) -> Option<&Token> {
        match self {
            Node::Token(t) => Some(t),
            _ => None,
        }
    }

    /// The type name, if this node is one.
    pub fn as_type(&self) -> Option<&TypeName> {
        match self {
            Node::Type(t) => Some(t),
            _ => None,
        }
    }

    /// The lazy node, if unforced laziness is visible here.
    pub fn as_lazy(&self) -> Option<&LazyNode> {
        match self {
            Node::Lazy(l) => Some(l),
            Node::Expr(Expr {
                kind: crate::ExprKind::Lazy(l),
                ..
            }) => Some(l),
            Node::Stmt(Stmt {
                kind: crate::StmtKind::Lazy(l),
                ..
            }) => Some(l),
            _ => None,
        }
    }
}

impl From<Expr> for Node {
    fn from(e: Expr) -> Node {
        Node::Expr(e)
    }
}

impl From<Stmt> for Node {
    fn from(s: Stmt) -> Node {
        Node::Stmt(s)
    }
}

impl From<Block> for Node {
    fn from(b: Block) -> Node {
        Node::Block(b)
    }
}

impl From<Ident> for Node {
    fn from(i: Ident) -> Node {
        Node::Ident(i)
    }
}

impl From<TypeName> for Node {
    fn from(t: TypeName) -> Node {
        Node::Type(t)
    }
}

impl From<Decl> for Node {
    fn from(d: Decl) -> Node {
        Node::Decl(d)
    }
}

impl From<MethodName> for Node {
    fn from(m: MethodName) -> Node {
        Node::MethodName(m)
    }
}

impl From<Formal> for Node {
    fn from(f: Formal) -> Node {
        Node::Formal(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExprKind, StmtKind};

    #[test]
    fn kind_mapping() {
        assert_eq!(Node::Unit.node_kind(), NodeKind::UnitNode);
        assert_eq!(Node::from(Expr::int(1)).node_kind(), NodeKind::LiteralExpr);
        assert_eq!(
            Node::from(Stmt::synth(StmtKind::Empty)).node_kind(),
            NodeKind::EmptyStmt
        );
        assert_eq!(
            Node::from(Ident::from_str("x")).node_kind(),
            NodeKind::Identifier
        );
    }

    #[test]
    fn adaptations() {
        let e = Node::Ident(Ident::from_str("x")).into_expr().unwrap();
        assert!(matches!(e.kind, ExprKind::Name(_)));

        let b = Node::Block(Block::synth(vec![])).into_stmt().unwrap();
        assert!(matches!(b.kind, StmtKind::Block(_)));

        let s = Node::Stmt(Stmt::synth(StmtKind::Empty)).into_block().unwrap();
        assert_eq!(s.stmts.len(), 1);

        assert!(Node::Unit.into_expr().is_none());
        assert!(Node::Unit.into_stmt().is_none());
    }

    #[test]
    fn lazy_adaptation() {
        use maya_lexer::{Delim, DelimTree};
        let lazy = LazyNode::new(
            NodeKind::BlockStmts,
            DelimTree::synth(Delim::Brace, vec![]),
            None,
        );
        let stmt = Node::Lazy(lazy.clone()).into_stmt().unwrap();
        assert!(matches!(stmt.kind, StmtKind::Lazy(_)));
        assert!(Node::Stmt(stmt).as_lazy().is_some());
        let not_expr = Node::Lazy(lazy).into_expr();
        assert!(not_expr.is_none(), "BlockStmts lazy is not an expression");
    }
}
