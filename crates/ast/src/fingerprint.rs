//! Structural fingerprints for method bodies.
//!
//! The runtime lowering layer (crate `maya-interp`) caches lowered bodies in
//! the session force cache so that warm `mayad` runs skip re-lowering.  The
//! cache key must identify a body *structurally*: two compilations of the
//! same unchanged file produce distinct `Block` allocations but the same
//! syntax.  `fingerprint_block` hashes the full shape of a block — every
//! statement, expression, operator, literal, name, **and span** — into a
//! 128-bit FNV-1a value.  Spans participate because lowered code reuses them
//! for runtime error messages; two bodies that differ only in position must
//! not share a lowered form.
//!
//! Returns `None` when the body contains syntax the lowerer cannot commit to
//! a stable shape: unforced lazy nodes (the tree is not final), templates
//! (carry opaque compiled state), or poison nodes from error recovery.

use crate::{
    Block, CatchClause, Expr, ExprKind, ForInit, Formal, Ident, Lit, LocalDeclarator, MethodName,
    Stmt, StmtKind, TypeName, TypeNameKind, UseTarget,
};
use maya_lexer::Span;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Incremental 128-bit FNV-1a.
struct Fnv(u128);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u128::from(b)).wrapping_mul(FNV_PRIME);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// A discriminant tag; separates variants and guards against
    /// concatenation ambiguity between sibling lists.
    fn tag(&mut self, t: u8) {
        self.byte(t);
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn span(&mut self, s: Span) {
        self.u32(s.file.0);
        self.u32(s.lo);
        self.u32(s.hi);
    }

    fn ident(&mut self, i: &Ident) {
        self.str(i.sym.as_str());
        self.span(i.span);
    }
}

/// `Err(Opaque)` aborts the walk: the body has no stable structural identity.
struct Opaque;

type Walk = Result<(), Opaque>;

/// Fingerprints a statement block, or `None` if it contains opaque syntax
/// (lazy nodes, templates, poison nodes).
pub fn fingerprint_block(block: &Block) -> Option<u128> {
    let mut h = Fnv::new();
    hash_block(&mut h, block).ok()?;
    Some(h.0)
}

fn hash_block(h: &mut Fnv, b: &Block) -> Walk {
    h.tag(0xB0);
    h.span(b.span);
    h.usize(b.stmts.len());
    for s in &b.stmts {
        hash_stmt(h, s)?;
    }
    Ok(())
}

fn hash_stmt(h: &mut Fnv, s: &Stmt) -> Walk {
    h.span(s.span);
    match &s.kind {
        StmtKind::Block(b) => {
            h.tag(1);
            hash_block(h, b)
        }
        StmtKind::Expr(e) => {
            h.tag(2);
            hash_expr(h, e)
        }
        StmtKind::Decl(ty, decls) => {
            h.tag(3);
            hash_tyname(h, ty);
            h.usize(decls.len());
            for d in decls {
                hash_declarator(h, d)?;
            }
            Ok(())
        }
        StmtKind::If(c, t, e) => {
            h.tag(4);
            hash_expr(h, c)?;
            hash_stmt(h, t)?;
            hash_opt(h, e.as_deref(), hash_stmt)
        }
        StmtKind::While(c, body) => {
            h.tag(5);
            hash_expr(h, c)?;
            hash_stmt(h, body)
        }
        StmtKind::Do(body, c) => {
            h.tag(6);
            hash_stmt(h, body)?;
            hash_expr(h, c)
        }
        StmtKind::For {
            init,
            cond,
            update,
            body,
        } => {
            h.tag(7);
            match init {
                ForInit::None => h.tag(0),
                ForInit::Decl(ty, decls) => {
                    h.tag(1);
                    hash_tyname(h, ty);
                    h.usize(decls.len());
                    for d in decls {
                        hash_declarator(h, d)?;
                    }
                }
                ForInit::Exprs(es) => {
                    h.tag(2);
                    h.usize(es.len());
                    for e in es {
                        hash_expr(h, e)?;
                    }
                }
            }
            hash_opt(h, cond.as_ref(), hash_expr)?;
            h.usize(update.len());
            for e in update {
                hash_expr(h, e)?;
            }
            hash_stmt(h, body)
        }
        StmtKind::Return(e) => {
            h.tag(8);
            hash_opt(h, e.as_ref(), hash_expr)
        }
        StmtKind::Break => {
            h.tag(9);
            Ok(())
        }
        StmtKind::Continue => {
            h.tag(10);
            Ok(())
        }
        StmtKind::Throw(e) => {
            h.tag(11);
            hash_expr(h, e)
        }
        StmtKind::Try {
            body,
            catches,
            finally,
        } => {
            h.tag(12);
            hash_block(h, body)?;
            h.usize(catches.len());
            for c in catches {
                hash_catch(h, c)?;
            }
            hash_opt(h, finally.as_ref(), hash_block)
        }
        StmtKind::Use(target, body) => {
            h.tag(13);
            match target {
                // The interpreter treats `use` as a scope; the target only
                // matters at expansion time, so a constant tag for opaque
                // instances cannot make behaviourally different bodies
                // collide.
                UseTarget::Named(path) => {
                    h.tag(1);
                    h.usize(path.len());
                    for i in path {
                        h.ident(i);
                    }
                }
                UseTarget::Instance(_) => h.tag(2),
            }
            hash_block(h, body)
        }
        StmtKind::Empty => {
            h.tag(14);
            Ok(())
        }
        StmtKind::Lazy(_) | StmtKind::Error => Err(Opaque),
    }
}

fn hash_declarator(h: &mut Fnv, d: &LocalDeclarator) -> Walk {
    h.ident(&d.name);
    h.u32(d.dims);
    hash_opt(h, d.init.as_ref(), hash_expr)
}

fn hash_catch(h: &mut Fnv, c: &CatchClause) -> Walk {
    hash_formal(h, &c.param)?;
    hash_block(h, &c.body)
}

fn hash_formal(h: &mut Fnv, f: &Formal) -> Walk {
    h.span(f.span);
    h.byte(u8::from(f.is_final));
    hash_tyname(h, &f.ty);
    h.ident(&f.name);
    match &f.specializer {
        None => h.tag(0),
        Some(t) => {
            h.tag(1);
            hash_tyname(h, t);
        }
    }
    Ok(())
}

fn hash_expr(h: &mut Fnv, e: &Expr) -> Walk {
    h.span(e.span);
    match &e.kind {
        ExprKind::Literal(l) => {
            h.tag(1);
            hash_lit(h, l);
            Ok(())
        }
        ExprKind::Name(i) => {
            h.tag(2);
            h.ident(i);
            Ok(())
        }
        ExprKind::FieldAccess(t, name) => {
            h.tag(3);
            hash_expr(h, t)?;
            h.ident(name);
            Ok(())
        }
        ExprKind::Call(mn, args) => {
            h.tag(4);
            hash_method_name(h, mn)?;
            h.usize(args.len());
            for a in args {
                hash_expr(h, a)?;
            }
            Ok(())
        }
        ExprKind::ArrayAccess(a, i) => {
            h.tag(5);
            hash_expr(h, a)?;
            hash_expr(h, i)
        }
        ExprKind::New(ty, args) => {
            h.tag(6);
            hash_tyname(h, ty);
            h.usize(args.len());
            for a in args {
                hash_expr(h, a)?;
            }
            Ok(())
        }
        ExprKind::NewArray {
            elem,
            dims,
            extra_dims,
        } => {
            h.tag(7);
            hash_tyname(h, elem);
            h.u32(*extra_dims);
            h.usize(dims.len());
            for d in dims {
                hash_expr(h, d)?;
            }
            Ok(())
        }
        ExprKind::Binary(op, l, r) => {
            h.tag(8);
            h.byte(*op as u8);
            hash_expr(h, l)?;
            hash_expr(h, r)
        }
        ExprKind::Unary(op, x) => {
            h.tag(9);
            h.byte(*op as u8);
            hash_expr(h, x)
        }
        ExprKind::IncDec(op, prefix, x) => {
            h.tag(10);
            h.byte(*op as u8);
            h.byte(u8::from(*prefix));
            hash_expr(h, x)
        }
        ExprKind::Assign(op, lhs, rhs) => {
            h.tag(11);
            match op {
                None => h.tag(0),
                Some(o) => {
                    h.tag(1);
                    h.byte(*o as u8);
                }
            }
            hash_expr(h, lhs)?;
            hash_expr(h, rhs)
        }
        ExprKind::Cond(c, t, f) => {
            h.tag(12);
            hash_expr(h, c)?;
            hash_expr(h, t)?;
            hash_expr(h, f)
        }
        ExprKind::Cast(ty, x) => {
            h.tag(13);
            hash_tyname(h, ty);
            hash_expr(h, x)
        }
        ExprKind::Instanceof(x, ty) => {
            h.tag(14);
            hash_expr(h, x)?;
            hash_tyname(h, ty);
            Ok(())
        }
        ExprKind::This => {
            h.tag(15);
            Ok(())
        }
        ExprKind::VarRef(s) => {
            h.tag(16);
            h.str(s.as_str());
            Ok(())
        }
        ExprKind::ClassRef(s) => {
            h.tag(17);
            h.str(s.as_str());
            Ok(())
        }
        ExprKind::Template(_) | ExprKind::Lazy(_) | ExprKind::TypeDims(_) => Err(Opaque),
    }
}

fn hash_method_name(h: &mut Fnv, mn: &MethodName) -> Walk {
    h.span(mn.span);
    h.byte(u8::from(mn.super_recv));
    hash_opt(h, mn.receiver.as_deref(), hash_expr)?;
    h.ident(&mn.name);
    Ok(())
}

fn hash_lit(h: &mut Fnv, l: &Lit) {
    match l {
        Lit::Int(v) => {
            h.tag(1);
            h.u32(*v as u32);
        }
        Lit::Long(v) => {
            h.tag(2);
            h.u64(*v as u64);
        }
        Lit::Float(v) => {
            h.tag(3);
            h.u32(v.to_bits());
        }
        Lit::Double(v) => {
            h.tag(4);
            h.u64(v.to_bits());
        }
        Lit::Bool(v) => {
            h.tag(5);
            h.byte(u8::from(*v));
        }
        Lit::Char(c) => {
            h.tag(6);
            h.u32(*c as u32);
        }
        Lit::Str(s) => {
            h.tag(7);
            h.str(s.as_str());
        }
        Lit::Null => h.tag(8),
    }
}

fn hash_tyname(h: &mut Fnv, t: &TypeName) {
    h.span(t.span);
    match &t.kind {
        TypeNameKind::Prim(p) => {
            h.tag(1);
            h.byte(*p as u8);
        }
        TypeNameKind::Void => h.tag(2),
        TypeNameKind::Named(parts) => {
            h.tag(3);
            h.usize(parts.len());
            for p in parts {
                h.ident(p);
            }
        }
        TypeNameKind::Array(el) => {
            h.tag(4);
            hash_tyname(h, el);
        }
        TypeNameKind::Strict(fqcn) => {
            h.tag(5);
            h.str(fqcn.as_str());
        }
    }
}

fn hash_opt<T>(h: &mut Fnv, v: Option<&T>, f: impl FnOnce(&mut Fnv, &T) -> Walk) -> Walk {
    match v {
        None => {
            h.tag(0);
            Ok(())
        }
        Some(x) => {
            h.tag(1);
            f(h, x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, StmtKind};

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::synth(ExprKind::Binary(op, Box::new(l), Box::new(r)))
    }

    #[test]
    fn identical_blocks_agree() {
        let mk = || Block::synth(vec![Stmt::expr(bin(BinOp::Add, Expr::int(1), Expr::int(2)))]);
        assert_eq!(fingerprint_block(&mk()), fingerprint_block(&mk()));
        assert!(fingerprint_block(&mk()).is_some());
    }

    #[test]
    fn structure_and_spans_distinguish() {
        let a = Block::synth(vec![Stmt::expr(Expr::int(1))]);
        let b = Block::synth(vec![Stmt::expr(Expr::int(2))]);
        assert_ne!(fingerprint_block(&a), fingerprint_block(&b));

        let spanned = Block::new(
            Span::new(maya_lexer::FileId(0), 0, 5),
            vec![Stmt::expr(Expr::int(1))],
        );
        assert_ne!(fingerprint_block(&a), fingerprint_block(&spanned));
    }

    #[test]
    fn poison_is_opaque() {
        let b = Block::synth(vec![Stmt::synth(StmtKind::Error)]);
        assert_eq!(fingerprint_block(&b), None);
    }
}
