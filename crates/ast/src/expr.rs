//! Expressions, identifiers, literals, method names, and formals.

use crate::{BinOp, IncDecOp, LazyNode, NodeKind, TypeName, UnOp};
use maya_lexer::{sym, DelimTree, Span, Symbol};
use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// An identifier occurrence: interned name plus source span.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ident {
    pub sym: Symbol,
    pub span: Span,
}

impl Ident {
    /// Builds an identifier.
    pub fn new(sym: Symbol, span: Span) -> Ident {
        Ident { sym, span }
    }

    /// Builds a synthesized identifier (dummy span).
    pub fn synth(sym: Symbol) -> Ident {
        Ident::new(sym, Span::DUMMY)
    }

    /// Convenience: intern `name` and synthesize.
    pub fn from_str(name: &str) -> Ident {
        Ident::synth(sym(name))
    }

    /// The identifier's text.
    pub fn as_str(&self) -> &'static str {
        self.sym.as_str()
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sym.as_str())
    }
}

/// A literal value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Lit {
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    Bool(bool),
    Char(char),
    /// Interned *unescaped* string contents.
    Str(Symbol),
    Null,
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Long(v) => write!(f, "{v}L"),
            Lit::Float(v) => write!(f, "{v}f"),
            Lit::Double(v) => write!(f, "{v}"),
            Lit::Bool(v) => write!(f, "{v}"),
            Lit::Char(c) => write!(f, "{:?}", c),
            Lit::Str(s) => write!(f, "{:?}", s.as_str()),
            Lit::Null => f.write_str("null"),
        }
    }
}

/// Everything left of `(` in a method invocation (paper §3.1).
///
/// `MethodName` is a first-class node type so that productions like the
/// `foreach` statement can reuse it, and so Mayans can specialize on its
/// substructure (an explicit receiver) and on the name token's value.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodName {
    pub span: Span,
    /// Explicit receiver expression (`h.keys()` in `h.keys().foreach`).
    pub receiver: Option<Box<Expr>>,
    /// True for `super.name(...)`.
    pub super_recv: bool,
    pub name: Ident,
}

impl MethodName {
    /// A bare method name (implicit `this` or static context).
    pub fn simple(name: Ident) -> MethodName {
        MethodName {
            span: name.span,
            receiver: None,
            super_recv: false,
            name,
        }
    }

    /// A method name with an explicit receiver.
    pub fn with_receiver(receiver: Expr, name: Ident) -> MethodName {
        MethodName {
            span: receiver.span.to(name.span),
            receiver: Some(Box::new(receiver)),
            super_recv: false,
            name,
        }
    }

    /// `super.name`.
    pub fn super_call(name: Ident) -> MethodName {
        MethodName {
            span: name.span,
            receiver: None,
            super_recv: true,
            name,
        }
    }
}

/// A formal parameter.
///
/// `specializer` holds a MultiJava `@`-specializer (`C@D c`); it is `None`
/// for base MayaJava and is populated by the MultiJava extension's `Formal`
/// production (paper §5.2).
#[derive(Clone, PartialEq, Debug)]
pub struct Formal {
    pub span: Span,
    pub is_final: bool,
    pub ty: TypeName,
    pub name: Ident,
    pub specializer: Option<TypeName>,
}

impl Formal {
    /// Builds a plain formal.
    pub fn new(ty: TypeName, name: Ident) -> Formal {
        Formal {
            span: ty.span.to(name.span),
            is_final: false,
            ty,
            name,
            specializer: None,
        }
    }
}

/// A template (quasiquote) literal: `new Statement { ... }`.
///
/// The body is kept as an unparsed token tree; the template compiler (crate
/// `maya-template`) pattern-parses it once and stores the compiled recipe in
/// `compiled` (an opaque handle, downcast by that crate).
#[derive(Clone)]
pub struct TemplateLit {
    pub span: Span,
    pub goal: NodeKind,
    pub body: DelimTree,
    pub compiled: Rc<RefCell<Option<Rc<dyn Any>>>>,
}

impl TemplateLit {
    /// Builds an uncompiled template literal.
    pub fn new(span: Span, goal: NodeKind, body: DelimTree) -> TemplateLit {
        TemplateLit {
            span,
            goal,
            body,
            compiled: Rc::new(RefCell::new(None)),
        }
    }
}

impl PartialEq for TemplateLit {
    fn eq(&self, other: &TemplateLit) -> bool {
        self.goal == other.goal && self.body == other.body
    }
}

impl fmt::Debug for TemplateLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TemplateLit")
            .field("goal", &self.goal)
            .field("body", &self.body.to_string())
            .field("compiled", &self.compiled.borrow().is_some())
            .finish()
    }
}

/// The shape of an expression.
#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    Literal(Lit),
    /// A simple name, resolved lexically (local, field, or class prefix).
    Name(Ident),
    /// `target.name` — field access or a qualified-name prefix; the checker
    /// reclassifies.
    FieldAccess(Box<Expr>, Ident),
    /// A method invocation.
    Call(MethodName, Vec<Expr>),
    ArrayAccess(Box<Expr>, Box<Expr>),
    /// `new C(args)`.
    New(TypeName, Vec<Expr>),
    /// `new T[d0][d1]…[]` — `dims` are the sized dimensions, `extra_dims`
    /// counts trailing empty brackets.
    NewArray {
        elem: TypeName,
        dims: Vec<Expr>,
        extra_dims: u32,
    },
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    IncDec(IncDecOp, bool, Box<Expr>),
    /// `lhs op= rhs`; `op` is `None` for plain `=`.
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    Cast(TypeName, Box<Expr>),
    Instanceof(Box<Expr>, TypeName),
    This,
    /// A direct reference to the local variable with exactly this name —
    /// `Reference.makeExpr` in the paper (Figure 2 line 13); immune to
    /// hygienic renaming and to field shadowing.
    VarRef(Symbol),
    /// A direct reference to the class with this fully qualified name —
    /// referential transparency for class names (paper §4.3).
    ClassRef(Symbol),
    /// A quasiquote template, `new Statement { ... }`.
    Template(TemplateLit),
    /// A lazily parsed expression (e.g. a field initializer).
    Lazy(LazyNode),
    /// `base[]` in expression position: syntactically an empty array access,
    /// reinterpreted as an array *type* by declaration statements (the
    /// `Vector[] v;` trick — statements parse their leading type as an
    /// expression and reinterpret it; see maya-core).
    TypeDims(Box<Expr>),
}

/// An expression with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Expr {
    pub span: Span,
    pub kind: ExprKind,
}

impl Expr {
    /// Builds an expression.
    pub fn new(span: Span, kind: ExprKind) -> Expr {
        Expr { span, kind }
    }

    /// Builds a synthesized expression (dummy span).
    pub fn synth(kind: ExprKind) -> Expr {
        Expr::new(Span::DUMMY, kind)
    }

    /// A simple-name expression.
    pub fn name(n: &str) -> Expr {
        Expr::synth(ExprKind::Name(Ident::from_str(n)))
    }

    /// An `int` literal.
    pub fn int(v: i32) -> Expr {
        Expr::synth(ExprKind::Literal(Lit::Int(v)))
    }

    /// A string literal.
    pub fn str_lit(s: &str) -> Expr {
        Expr::synth(ExprKind::Literal(Lit::Str(sym(s))))
    }

    /// A call `recv.name(args)`.
    pub fn call_on(recv: Expr, name: &str, args: Vec<Expr>) -> Expr {
        Expr::synth(ExprKind::Call(
            MethodName::with_receiver(recv, Ident::from_str(name)),
            args,
        ))
    }

    /// Field access `target.name`.
    pub fn field(target: Expr, name: &str) -> Expr {
        Expr::synth(ExprKind::FieldAccess(Box::new(target), Ident::from_str(name)))
    }

    /// The node kind of this expression in the dispatch lattice.
    pub fn node_kind(&self) -> NodeKind {
        match &self.kind {
            ExprKind::Literal(_) => NodeKind::LiteralExpr,
            ExprKind::Name(_) => NodeKind::NameExpr,
            ExprKind::FieldAccess(..) => NodeKind::FieldAccessExpr,
            ExprKind::Call(..) => NodeKind::CallExpr,
            ExprKind::ArrayAccess(..) => NodeKind::ArrayAccessExpr,
            ExprKind::New(..) => NodeKind::NewExpr,
            ExprKind::NewArray { .. } => NodeKind::NewArrayExpr,
            ExprKind::Binary(..) => NodeKind::BinaryExpr,
            ExprKind::Unary(..) => NodeKind::UnaryExpr,
            ExprKind::IncDec(..) => NodeKind::IncDecExpr,
            ExprKind::Assign(..) => NodeKind::AssignExpr,
            ExprKind::Cond(..) => NodeKind::CondExpr,
            ExprKind::Cast(..) => NodeKind::CastExpr,
            ExprKind::Instanceof(..) => NodeKind::InstanceofExpr,
            ExprKind::This => NodeKind::ThisExpr,
            ExprKind::VarRef(_) => NodeKind::VarRefExpr,
            ExprKind::ClassRef(_) => NodeKind::ClassRefExpr,
            ExprKind::Template(_) => NodeKind::TemplateExpr,
            ExprKind::Lazy(_) => NodeKind::Expression,
            ExprKind::TypeDims(_) => NodeKind::Expression,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let e = Expr::call_on(Expr::name("h"), "keys", vec![]);
        match &e.kind {
            ExprKind::Call(mn, args) => {
                assert!(mn.receiver.is_some());
                assert_eq!(mn.name.as_str(), "keys");
                assert!(args.is_empty());
            }
            _ => panic!("expected call"),
        }
        assert_eq!(e.node_kind(), NodeKind::CallExpr);
    }

    #[test]
    fn kinds_are_expression_subkinds() {
        let exprs = [
            Expr::int(1),
            Expr::name("x"),
            Expr::field(Expr::name("a"), "b"),
            Expr::synth(ExprKind::This),
        ];
        for e in &exprs {
            assert!(e.node_kind().is_subkind_of(NodeKind::Expression));
        }
    }

    #[test]
    fn literal_display() {
        assert_eq!(Lit::Int(3).to_string(), "3");
        assert_eq!(Lit::Str(sym("hi")).to_string(), "\"hi\"");
        assert_eq!(Lit::Null.to_string(), "null");
        assert_eq!(Lit::Long(7).to_string(), "7L");
    }
}
