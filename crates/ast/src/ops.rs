//! Operators of the MayaJava expression language.

use maya_lexer::TokenKind;
use std::fmt;

/// Binary operators (also used as the `op` of compound assignments).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Ushr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    And,
    Or,
}

impl BinOp {
    /// Maps an operator token to its `BinOp`, if it is one.
    pub fn from_token(kind: TokenKind) -> Option<BinOp> {
        use TokenKind::*;
        Some(match kind {
            Plus => BinOp::Add,
            Minus => BinOp::Sub,
            Star => BinOp::Mul,
            Slash => BinOp::Div,
            Percent => BinOp::Rem,
            Shl => BinOp::Shl,
            Shr => BinOp::Shr,
            Ushr => BinOp::Ushr,
            Lt => BinOp::Lt,
            Gt => BinOp::Gt,
            Le => BinOp::Le,
            Ge => BinOp::Ge,
            EqEq => BinOp::Eq,
            Ne => BinOp::Ne,
            Amp => BinOp::BitAnd,
            Caret => BinOp::BitXor,
            Pipe => BinOp::BitOr,
            AndAnd => BinOp::And,
            OrOr => BinOp::Or,
            _ => return None,
        })
    }

    /// The compound-assignment token for this operator (`+` → `+=`), if any.
    pub fn compound_assign_token(self) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match self {
            BinOp::Add => PlusEq,
            BinOp::Sub => MinusEq,
            BinOp::Mul => StarEq,
            BinOp::Div => SlashEq,
            BinOp::Rem => PercentEq,
            BinOp::Shl => ShlEq,
            BinOp::Shr => ShrEq,
            BinOp::Ushr => UshrEq,
            BinOp::BitAnd => AmpEq,
            BinOp::BitXor => CaretEq,
            BinOp::BitOr => PipeEq,
            _ => return None,
        })
    }

    /// The source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Ushr => ">>>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::BitAnd => "&",
            BinOp::BitXor => "^",
            BinOp::BitOr => "|",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unary prefix operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
    BitNot,
}

impl UnOp {
    /// The source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Plus => "+",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Increment/decrement operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IncDecOp {
    Inc,
    Dec,
}

impl IncDecOp {
    /// The source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            IncDecOp::Inc => "++",
            IncDecOp::Dec => "--",
        }
    }
}

impl fmt::Display for IncDecOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_mapping() {
        assert_eq!(BinOp::from_token(TokenKind::Plus), Some(BinOp::Add));
        assert_eq!(BinOp::from_token(TokenKind::Ushr), Some(BinOp::Ushr));
        assert_eq!(BinOp::from_token(TokenKind::Semi), None);
    }

    #[test]
    fn compound_assignment() {
        assert_eq!(BinOp::Add.compound_assign_token(), Some(TokenKind::PlusEq));
        assert_eq!(BinOp::And.compound_assign_token(), None);
    }

    #[test]
    fn display() {
        assert_eq!(BinOp::Ushr.to_string(), ">>>");
        assert_eq!(UnOp::BitNot.to_string(), "~");
        assert_eq!(IncDecOp::Inc.to_string(), "++");
    }
}
