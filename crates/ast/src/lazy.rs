//! Lazy nodes: unparsed delimiter subtrees plus the environment they must be
//! parsed under.
//!
//! Lazy parsing (paper §4) is what lets Mayans be imported anywhere and lets
//! a Mayan dispatch on the static type of one argument while another is not
//! yet parsed. A [`LazyNode`] stores the raw [`DelimTree`], the goal node
//! kind, and an *opaque environment snapshot* (`Rc<dyn Any>`) installed by
//! the compiler: the grammar version and Mayan-import scope current where the
//! tree appeared. Forcing is performed by the compiler (crate `maya-core`),
//! which knows how to interpret the snapshot.

use crate::{Node, NodeKind};
use maya_lexer::DelimTree;
use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The state of a lazy node.
pub enum LazyCell {
    /// Not yet parsed: the raw tree and the captured environment.
    Unforced {
        tree: DelimTree,
        env: Option<Rc<dyn Any>>,
    },
    /// Currently being forced (used for cycle detection).
    InProgress,
    /// Parsed.
    Forced(Node),
}

impl fmt::Debug for LazyCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LazyCell::Unforced { tree, .. } => {
                write!(f, "Unforced({})", tree.delim.tree_name())
            }
            LazyCell::InProgress => f.write_str("InProgress"),
            LazyCell::Forced(n) => write!(f, "Forced({:?})", n.node_kind()),
        }
    }
}

/// A lazily parsed node. Cloning shares the cell, so forcing one clone
/// forces them all — exactly the sharing the paper's thunks have.
#[derive(Clone, Debug)]
pub struct LazyNode {
    pub goal: NodeKind,
    pub cell: Rc<RefCell<LazyCell>>,
}

impl LazyNode {
    /// Builds an unforced lazy node.
    pub fn new(goal: NodeKind, tree: DelimTree, env: Option<Rc<dyn Any>>) -> LazyNode {
        maya_telemetry::count(maya_telemetry::Counter::LazyNodesCreated);
        maya_telemetry::trace(maya_telemetry::TraceKind::MakeLazy, || {
            (goal.name().to_owned(), format!("{} deferred", tree.delim.tree_name()))
        });
        LazyNode {
            goal,
            cell: Rc::new(RefCell::new(LazyCell::Unforced { tree, env })),
        }
    }

    /// Builds an already-forced lazy node (used when a template splices an
    /// eager value where lazy syntax is expected).
    pub fn forced(goal: NodeKind, node: Node) -> LazyNode {
        LazyNode {
            goal,
            cell: Rc::new(RefCell::new(LazyCell::Forced(node))),
        }
    }

    /// True if the node has been parsed.
    pub fn is_forced(&self) -> bool {
        matches!(*self.cell.borrow(), LazyCell::Forced(_))
    }

    /// The raw delimiter tree, if not yet forced (peek without forcing).
    pub fn unforced_tree(&self) -> Option<DelimTree> {
        match &*self.cell.borrow() {
            LazyCell::Unforced { tree, .. } => Some(tree.clone()),
            _ => None,
        }
    }

    /// The parsed node, if forced.
    pub fn forced_node(&self) -> Option<Node> {
        match &*self.cell.borrow() {
            LazyCell::Forced(n) => Some(n.clone()),
            _ => None,
        }
    }

    /// Takes the unforced payload, marking the cell in-progress.
    ///
    /// Returns `None` when already forced or in progress. The caller must
    /// follow up with [`LazyNode::fulfill`].
    pub fn begin_force(&self) -> Option<(DelimTree, Option<Rc<dyn Any>>)> {
        let mut cell = self.cell.borrow_mut();
        match &*cell {
            LazyCell::Unforced { .. } => {
                let prev = std::mem::replace(&mut *cell, LazyCell::InProgress);
                match prev {
                    LazyCell::Unforced { tree, env } => Some((tree, env)),
                    _ => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Stores the parse result.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not in progress.
    pub fn fulfill(&self, node: Node) {
        let mut cell = self.cell.borrow_mut();
        assert!(
            matches!(*cell, LazyCell::InProgress),
            "fulfill on a lazy node that is not being forced"
        );
        maya_telemetry::count(maya_telemetry::Counter::LazyNodesForced);
        *cell = LazyCell::Forced(node);
    }

    /// Restores the unforced state after a failed force attempt.
    pub fn abandon(&self, tree: DelimTree, env: Option<Rc<dyn Any>>) {
        let mut cell = self.cell.borrow_mut();
        *cell = LazyCell::Unforced { tree, env };
    }
}

impl PartialEq for LazyNode {
    fn eq(&self, other: &LazyNode) -> bool {
        Rc::ptr_eq(&self.cell, &other.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::Delim;

    fn dummy_tree() -> DelimTree {
        DelimTree::synth(Delim::Brace, vec![])
    }

    #[test]
    fn force_protocol() {
        let lazy = LazyNode::new(NodeKind::BlockStmts, dummy_tree(), None);
        assert!(!lazy.is_forced());
        let (tree, env) = lazy.begin_force().expect("unforced");
        assert!(env.is_none());
        assert!(lazy.begin_force().is_none(), "reentrant force blocked");
        assert_eq!(tree.delim, Delim::Brace);
        lazy.fulfill(Node::Unit);
        assert!(lazy.is_forced());
        assert_eq!(lazy.forced_node(), Some(Node::Unit));
        assert!(lazy.begin_force().is_none());
    }

    #[test]
    fn clones_share_the_cell() {
        let lazy = LazyNode::new(NodeKind::BlockStmts, dummy_tree(), None);
        let clone = lazy.clone();
        let (t, e) = lazy.begin_force().unwrap();
        lazy.fulfill(Node::Unit);
        let _ = (t, e);
        assert!(clone.is_forced());
        assert_eq!(lazy, clone);
    }

    #[test]
    fn abandon_restores() {
        let lazy = LazyNode::new(NodeKind::BlockStmts, dummy_tree(), None);
        let (tree, env) = lazy.begin_force().unwrap();
        lazy.abandon(tree, env);
        assert!(lazy.begin_force().is_some());
    }

    #[test]
    fn pre_forced() {
        let lazy = LazyNode::forced(NodeKind::BlockStmts, Node::Unit);
        assert!(lazy.is_forced());
    }
}
