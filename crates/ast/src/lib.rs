//! Abstract syntax for MayaJava.
//!
//! Maya operates on *typed abstract syntax*, not token streams (paper §1–2):
//! Mayans receive well-typed AST nodes and must produce valid ASTs. This crate
//! defines:
//!
//! * the **node-kind lattice** ([`NodeKind`]) — the paper's AST node-type
//!   hierarchy, used both as grammar nonterminals and as Mayan parameter
//!   specializers;
//! * the node data structures ([`Expr`], [`Stmt`], [`Decl`], …);
//! * the universal semantic value [`Node`] that flows through the parser
//!   stack, Mayan dispatch, and the interpreter bridge;
//! * **lazy nodes** ([`LazyNode`]) — unparsed delimiter subtrees carrying the
//!   environment snapshot they must eventually be parsed under;
//! * a pretty printer and an α-normalizer used by golden tests (hygienic
//!   fresh names `x$N` are compared up to consistent renaming).

mod decl;
mod expr;
mod fingerprint;
mod kind;
mod lazy;
mod node;
mod ops;
mod pretty;
mod stmt;
mod tyname;

pub use decl::{
    ClassDecl, CompilationUnit, CtorDecl, Decl, FieldDecl, ImportDecl, InterfaceDecl, MayanDecl,
    MethodDecl, Modifier, Modifiers, ProductionDecl,
};
pub use expr::{Expr, ExprKind, Formal, Ident, Lit, MethodName, TemplateLit};
pub use fingerprint::fingerprint_block;
pub use kind::NodeKind;
pub use lazy::{LazyCell, LazyNode};
pub use node::Node;
pub use ops::{BinOp, IncDecOp, UnOp};
pub use pretty::{expr_str, normalize_generated_names, pretty_node, Pretty};
pub use stmt::{Block, CatchClause, ForInit, LocalDeclarator, Stmt, StmtKind, UseTarget};
pub use tyname::{PrimKind, TypeName, TypeNameKind};
