//! Declarations: compilation units, classes, interfaces, members, and the
//! syntax-extension declaration forms (`abstract … syntax(…)` productions and
//! `… syntax Name(params) { body }` Mayans).

use crate::{Expr, Formal, Ident, LazyNode, NodeKind, TypeName, UseTarget};
use maya_lexer::{DelimTree, Span};
use std::fmt;

/// A single modifier keyword.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Modifier {
    Public,
    Private,
    Protected,
    Static,
    Final,
    Abstract,
    Native,
    Synchronized,
    Transient,
    Volatile,
}

impl Modifier {
    /// The keyword text.
    pub fn as_str(self) -> &'static str {
        match self {
            Modifier::Public => "public",
            Modifier::Private => "private",
            Modifier::Protected => "protected",
            Modifier::Static => "static",
            Modifier::Final => "final",
            Modifier::Abstract => "abstract",
            Modifier::Native => "native",
            Modifier::Synchronized => "synchronized",
            Modifier::Transient => "transient",
            Modifier::Volatile => "volatile",
        }
    }

    const ALL: [Modifier; 10] = [
        Modifier::Public,
        Modifier::Private,
        Modifier::Protected,
        Modifier::Static,
        Modifier::Final,
        Modifier::Abstract,
        Modifier::Native,
        Modifier::Synchronized,
        Modifier::Transient,
        Modifier::Volatile,
    ];
}

/// A set of modifiers.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Modifiers {
    bits: u16,
}

impl Modifiers {
    /// The empty modifier set.
    pub fn none() -> Modifiers {
        Modifiers::default()
    }

    /// A set with a single modifier.
    pub fn just(m: Modifier) -> Modifiers {
        let mut s = Modifiers::none();
        s.add(m);
        s
    }

    /// Adds a modifier (idempotent).
    pub fn add(&mut self, m: Modifier) {
        self.bits |= 1 << m as u16;
    }

    /// Adds a modifier, builder-style.
    pub fn with(mut self, m: Modifier) -> Modifiers {
        self.add(m);
        self
    }

    /// Tests membership.
    pub fn has(&self, m: Modifier) -> bool {
        self.bits & (1 << m as u16) != 0
    }

    /// True for `static` members.
    pub fn is_static(&self) -> bool {
        self.has(Modifier::Static)
    }

    /// True for `abstract` declarations.
    pub fn is_abstract(&self) -> bool {
        self.has(Modifier::Abstract)
    }

    /// Iterates the contained modifiers in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Modifier> + '_ {
        Modifier::ALL.into_iter().filter(|m| self.has(*m))
    }
}

impl fmt::Display for Modifiers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for m in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            f.write_str(m.as_str())?;
            first = false;
        }
        Ok(())
    }
}

/// `import a.b.C;` or `import a.b.*;`.
#[derive(Clone, PartialEq, Debug)]
pub struct ImportDecl {
    pub span: Span,
    pub path: Vec<Ident>,
    pub wildcard: bool,
}

/// A class declaration. `body_tree` holds the unshaped `BraceTree`; the class
/// shaper replaces it with parsed `members` (paper Figure 4).
#[derive(Clone, PartialEq, Debug)]
pub struct ClassDecl {
    pub span: Span,
    pub modifiers: Modifiers,
    pub name: Ident,
    pub superclass: Option<TypeName>,
    pub interfaces: Vec<TypeName>,
    pub body_tree: Option<DelimTree>,
    pub members: Vec<Decl>,
}

/// An interface declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct InterfaceDecl {
    pub span: Span,
    pub modifiers: Modifiers,
    pub name: Ident,
    pub extends: Vec<TypeName>,
    pub body_tree: Option<DelimTree>,
    pub members: Vec<Decl>,
}

/// A method declaration. The body is lazy; `None` for `abstract`/`native`
/// methods and interface members.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodDecl {
    pub span: Span,
    pub modifiers: Modifiers,
    pub ret: TypeName,
    pub name: Ident,
    pub formals: Vec<Formal>,
    pub throws: Vec<TypeName>,
    pub body: Option<LazyNode>,
}

/// A constructor declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct CtorDecl {
    pub span: Span,
    pub modifiers: Modifiers,
    pub name: Ident,
    pub formals: Vec<Formal>,
    pub throws: Vec<TypeName>,
    pub body: LazyNode,
}

/// A field declaration (one declarator per node).
#[derive(Clone, PartialEq, Debug)]
pub struct FieldDecl {
    pub span: Span,
    pub modifiers: Modifiers,
    pub ty: TypeName,
    pub name: Ident,
    pub init: Option<Expr>,
}

/// `abstract LHS syntax(rhs…);` — declares a grammar production whose
/// left-hand side is the node type `lhs` (paper §3.1). The right-hand side is
/// kept as an unparsed tree and interpreted by the metagrammar reader.
#[derive(Clone, PartialEq, Debug)]
pub struct ProductionDecl {
    pub span: Span,
    pub modifiers: Modifiers,
    pub lhs: Ident,
    pub pattern: DelimTree,
}

/// `LHS syntax Name(params…) { body }` — declares a Mayan (semantic action /
/// multimethod) on the production matching `params` (paper §3.2).
#[derive(Clone, PartialEq, Debug)]
pub struct MayanDecl {
    pub span: Span,
    pub modifiers: Modifiers,
    pub lhs: Ident,
    pub name: Ident,
    pub params: DelimTree,
    pub body: DelimTree,
}

/// A declaration.
#[derive(Clone, PartialEq, Debug)]
pub enum Decl {
    Class(ClassDecl),
    Interface(InterfaceDecl),
    Method(MethodDecl),
    Ctor(CtorDecl),
    Field(FieldDecl),
    Production(ProductionDecl),
    Mayan(MayanDecl),
    /// `use M;` at class-body or top level, with the declarations it scopes
    /// over.
    Use(UseTarget, Vec<Decl>),
    Import(ImportDecl),
    /// A declaration that expands to nothing.
    Empty,
    /// A poison node: a member or top-level declaration that failed to
    /// parse. Spliced in during panic-mode recovery; downstream phases
    /// skip it without cascading errors.
    Error(Span),
}

impl Decl {
    /// The node kind of this declaration in the dispatch lattice.
    pub fn node_kind(&self) -> NodeKind {
        match self {
            Decl::Class(_) => NodeKind::ClassDecl,
            Decl::Interface(_) => NodeKind::InterfaceDecl,
            Decl::Method(_) => NodeKind::MethodDecl,
            Decl::Ctor(_) => NodeKind::CtorDecl,
            Decl::Field(_) => NodeKind::FieldDecl,
            Decl::Production(_) => NodeKind::ProductionDecl,
            Decl::Mayan(_) => NodeKind::MayanDecl,
            Decl::Use(..) => NodeKind::UseDecl,
            Decl::Import(_) => NodeKind::ImportDecl,
            Decl::Empty => NodeKind::EmptyDecl,
            Decl::Error(_) => NodeKind::ErrorDecl,
        }
    }

    /// The declared name, when the declaration has one.
    pub fn name(&self) -> Option<Ident> {
        match self {
            Decl::Class(c) => Some(c.name),
            Decl::Interface(i) => Some(i.name),
            Decl::Method(m) => Some(m.name),
            Decl::Ctor(c) => Some(c.name),
            Decl::Field(f) => Some(f.name),
            Decl::Mayan(m) => Some(m.name),
            _ => None,
        }
    }
}

/// A source file after the file reader: package, imports, declarations.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CompilationUnit {
    pub package: Option<Vec<Ident>>,
    pub imports: Vec<ImportDecl>,
    pub decls: Vec<Decl>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modifier_sets() {
        let mut m = Modifiers::none();
        assert!(!m.has(Modifier::Public));
        m.add(Modifier::Public);
        m.add(Modifier::Static);
        assert!(m.has(Modifier::Public));
        assert!(m.is_static());
        assert!(!m.is_abstract());
        assert_eq!(m.to_string(), "public static");
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn modifiers_are_idempotent() {
        let m = Modifiers::just(Modifier::Final).with(Modifier::Final);
        assert_eq!(m.iter().count(), 1);
    }

    #[test]
    fn decl_kinds() {
        assert_eq!(Decl::Empty.node_kind(), NodeKind::EmptyDecl);
        assert!(Decl::Empty.node_kind().is_subkind_of(NodeKind::Declaration));
        assert_eq!(Decl::Empty.name(), None);
    }
}
