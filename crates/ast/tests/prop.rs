//! Property-style tests: the node-kind lattice and name normalization.
//!
//! Lattice laws are checked exhaustively over all kind pairs; string inputs
//! come from a deterministic xorshift PRNG (no registry access in the build
//! container, so `proptest` is unavailable).

use maya_ast::{normalize_generated_names, NodeKind};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn word(&mut self, max_len: u64) -> String {
        let len = 1 + self.below(max_len);
        (0..len).map(|_| (b'a' + self.below(26) as u8) as char).collect()
    }
}

#[test]
fn subkind_is_reflexive_and_antisymmetric() {
    // Exhaustive over all ordered pairs — stronger than sampling.
    for &a in NodeKind::all() {
        assert!(a.is_subkind_of(a));
        for &b in NodeKind::all() {
            if a != b && a.is_subkind_of(b) {
                assert!(!b.is_subkind_of(a), "{a:?} <:> {b:?}");
            }
        }
    }
}

#[test]
fn subkind_is_transitive() {
    for &a in NodeKind::all() {
        // Walk to the root; every ancestor relation must hold transitively.
        let mut chain = vec![a];
        let mut k = a;
        while let Some(p) = k.parent() {
            chain.push(p);
            k = p;
        }
        for i in 0..chain.len() {
            for j in i..chain.len() {
                assert!(chain[i].is_subkind_of(chain[j]));
            }
        }
        assert_eq!(*chain.last().unwrap(), NodeKind::Top);
    }
}

#[test]
fn normalization_is_idempotent() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n = rng.below(20);
        let words: Vec<String> = (0..n)
            .map(|_| {
                let mut w = rng.word(6);
                if rng.below(2) == 0 {
                    w.push('$');
                    w.push_str(&rng.below(1000).to_string());
                }
                w
            })
            .collect();
        let text = words.join(" ");
        let once = normalize_generated_names(&text);
        let twice = normalize_generated_names(&once);
        assert_eq!(once, twice, "seed {seed} text {text:?}");
    }
}

#[test]
fn normalization_preserves_nongenerated_text() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n = rng.below(20);
        let words: Vec<String> = (0..n).map(|_| rng.word(8)).collect();
        let text = words.join(" ");
        assert_eq!(normalize_generated_names(&text), text, "seed {seed}");
    }
}
