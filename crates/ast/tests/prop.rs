//! Property tests: the node-kind lattice and name normalization.

use maya_ast::{normalize_generated_names, NodeKind};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = NodeKind> {
    proptest::sample::select(NodeKind::all().to_vec())
}

proptest! {
    #[test]
    fn subkind_is_reflexive_and_antisymmetric(a in any_kind(), b in any_kind()) {
        prop_assert!(a.is_subkind_of(a));
        if a != b && a.is_subkind_of(b) {
            prop_assert!(!b.is_subkind_of(a), "{a:?} <:> {b:?}");
        }
    }

    #[test]
    fn subkind_is_transitive(a in any_kind()) {
        // Walk to the root; every ancestor relation must hold transitively.
        let mut chain = vec![a];
        let mut k = a;
        while let Some(p) = k.parent() {
            chain.push(p);
            k = p;
        }
        for i in 0..chain.len() {
            for j in i..chain.len() {
                prop_assert!(chain[i].is_subkind_of(chain[j]));
            }
        }
        prop_assert_eq!(*chain.last().unwrap(), NodeKind::Top);
    }

    #[test]
    fn normalization_is_idempotent(words in proptest::collection::vec("[a-z]{1,6}(\\$[0-9]{1,3})?", 0..20)) {
        let text = words.join(" ");
        let once = normalize_generated_names(&text);
        let twice = normalize_generated_names(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalization_preserves_nongenerated_text(words in proptest::collection::vec("[a-z]{1,8}", 0..20)) {
        let text = words.join(" ");
        prop_assert_eq!(normalize_generated_names(&text), text);
    }
}
