//! The concurrent compile service behind `mayad`.
//!
//! A [`CompilePool`] owns N worker threads, each holding one incremental
//! [`Session`] *per client* it has seen. Requests enter through
//! [`CompilePool::submit`], which routes every client to one sticky
//! worker (round-robin at first sight) over a bounded per-worker queue —
//! so each client's requests execute in order on one thread, against one
//! warm session, and its replies are a pure function of its own request
//! stream. That is the determinism contract: a pool of 8 workers answers
//! every client byte-identically to a pool of 1.
//!
//! ## What the workers share
//!
//! The read-mostly compiler state is layered so a pool is N warm services,
//! not N cold ones:
//!
//! * the **string interner** is process-global already (`RwLock`);
//! * the **LALR table memo** gains an opt-in process-global tier
//!   (`maya_grammar::set_table_cache_shared`) — `Tables` is immutable
//!   plain data behind `Arc`, keyed by grammar content hash, so sharing
//!   needs no invalidation;
//! * **lexed token trees** gain the same treatment
//!   ([`crate::session::set_lex_share_enabled`]): lexing is pure in
//!   (content, positional `FileId`), so a 128-bit content hash plus the
//!   `FileId` is a sound global key;
//! * the **force cache / lower store** hold `Rc`-based ASTs and
//!   `Cell`-based inline caches and stay thread-confined — but each
//!   worker shares one across *all its clients' sessions*, so client A's
//!   parse of an unchanged stdlib body serves client B too.
//!
//! ## Quotas and backpressure
//!
//! [`submit`] never blocks indefinitely and never hangs a client:
//!
//! * a request larger than `max_request_bytes` is refused with a
//!   structured JSON error (`"quota": "request_bytes"`);
//! * a client with `max_inflight` requests already queued or running is
//!   refused (`"quota": "max_inflight"`);
//! * a full worker queue is retried up to `overload_wait_ms`, then
//!   refused with `"overloaded": true`.
//!
//! Every refusal is delivered through the same reply channel as a real
//! answer, so per-client reply order always matches request order.
//!
//! [`submit`]: CompilePool::submit

use crate::json::{parse_json, Json};
use crate::{CompileOptions, Compiler, ErrorFormat, Outcome, RequestOpts, Session, SessionStats};
use maya_telemetry as telemetry;
use maya_telemetry::{CacheId, CacheStats, Counter, Histogram, JsonWriter, Phase, Report};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration; every knob has a safe default.
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker threads (each owns its clients' sessions).
    pub workers: usize,
    /// Bounded depth of each worker's request queue.
    pub queue_cap: usize,
    /// Per-client cap on queued-or-running requests.
    pub max_inflight: usize,
    /// Per-request size cap for protocol lines, in bytes.
    pub max_request_bytes: usize,
    /// How long a submit waits on a full queue before answering
    /// "overloaded".
    pub overload_wait_ms: u64,
    /// Front-end lexer parallelism inside one request (`--jobs`).
    pub jobs: usize,
    /// Server-side Mayan expansion fuel cap. A request's own `fuel` can
    /// lower its budget below this, never raise it.
    pub fuel: u64,
    /// Maximum nested Mayan expansion depth (see [`CompileOptions`]).
    pub max_expand_depth: u32,
    /// Interpreter steps per metaprogram invocation or program run.
    pub interp_step_limit: u64,
    /// Interpreter call-stack depth.
    pub interp_stack_limit: u32,
    /// Registers native metaprograms on each fresh compiler.
    pub installer: Option<Arc<dyn Fn(&Compiler) + Send + Sync>>,
    /// The persistent artifact store shared by every worker
    /// (`mayad --cache-dir`). `None` keeps the service memory-only.
    pub store: Option<Arc<crate::store::ArtifactStore>>,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 1,
            queue_cap: 32,
            max_inflight: 8,
            max_request_bytes: 4 << 20,
            overload_wait_ms: 500,
            jobs: 1,
            fuel: CompileOptions::default().expand_fuel,
            max_expand_depth: CompileOptions::default().max_expand_depth,
            interp_step_limit: CompileOptions::default().interp_step_limit,
            interp_stack_limit: CompileOptions::default().interp_stack_limit,
            installer: None,
            store: None,
        }
    }
}

/// One unit of work for a worker.
pub enum PoolRequest {
    /// A raw NDJSON protocol line (the `mayad` front end).
    Line(String),
    /// In-memory sources plus options (tests, fuzzing, benches); answered
    /// with the same JSON a protocol compile would produce.
    Sources {
        sources: Vec<(String, String)>,
        opts: RequestOpts,
    },
}

struct Job {
    client: String,
    request: PoolRequest,
    reply: mpsc::Sender<String>,
    inflight: Arc<AtomicUsize>,
}

enum Msg {
    Job(Box<Job>),
    Stop,
}

struct ClientInfo {
    worker: usize,
    inflight: Arc<AtomicUsize>,
}

#[derive(Default)]
struct ClientMap {
    map: HashMap<String, ClientInfo>,
    next_worker: usize,
}

/// Lifetime aggregates over every request served by any worker.
#[derive(Default)]
struct PoolMetrics {
    /// Wall time of each compile request, in nanoseconds.
    latency: Histogram,
    /// Every per-request telemetry [`Report`] merged together.
    aggregate: Option<Report>,
    /// Session counters summed across every client session.
    stats: SessionStats,
}

impl PoolMetrics {
    fn record(&mut self, report: Report, delta: SessionStats) {
        if let Some(h) = report.hist("request_ns") {
            self.latency.merge(h);
        }
        match &mut self.aggregate {
            Some(agg) => agg.merge(&report),
            None => self.aggregate = Some(report),
        }
        let s = &mut self.stats;
        s.requests += delta.requests;
        s.full_reuses += delta.full_reuses;
        s.files_changed += delta.files_changed;
        s.files_reused += delta.files_reused;
        s.files_recompiled += delta.files_recompiled;
        s.grammar_reuses += delta.grammar_reuses;
    }
}

/// The worker pool. See the module docs.
pub struct CompilePool {
    queues: Vec<mpsc::SyncSender<Msg>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    clients: Mutex<ClientMap>,
    metrics: Arc<Mutex<PoolMetrics>>,
    closing: Arc<AtomicBool>,
    max_inflight: usize,
    max_request_bytes: usize,
    overload_wait_ms: u64,
}

impl CompilePool {
    /// Starts `config.workers` worker threads.
    pub fn start(config: PoolConfig) -> CompilePool {
        let workers = config.workers.max(1);
        let metrics = Arc::new(Mutex::new(PoolMetrics::default()));
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::sync_channel::<Msg>(config.queue_cap.max(1));
            let cfg = config.clone();
            let metrics = metrics.clone();
            let handle = std::thread::Builder::new()
                .name(format!("mayad-worker-{i}"))
                .spawn(move || worker_main(rx, &cfg, &metrics))
                .expect("spawn worker");
            queues.push(tx);
            handles.push(handle);
        }
        CompilePool {
            queues,
            handles: Mutex::new(handles),
            clients: Mutex::new(ClientMap::default()),
            metrics,
            closing: Arc::new(AtomicBool::new(false)),
            max_inflight: config.max_inflight.max(1),
            max_request_bytes: config.max_request_bytes,
            overload_wait_ms: config.overload_wait_ms,
        }
    }

    /// Submits one request on behalf of `client` and returns the channel
    /// its single reply will arrive on. Quota violations, overload, and
    /// shutdown are *replies on that same channel* (already sent by the
    /// time this returns), so callers can treat every submit uniformly
    /// and per-client reply order is preserved by construction.
    pub fn submit(&self, client: &str, request: PoolRequest) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        if self.closing.load(Ordering::SeqCst) {
            let _ = tx.send(error_response("server is shutting down"));
            return rx;
        }
        if let PoolRequest::Line(line) = &request {
            if line.len() > self.max_request_bytes {
                let _ = tx.send(quota_response(
                    &format!(
                        "request of {} bytes exceeds the {} byte limit",
                        line.len(),
                        self.max_request_bytes
                    ),
                    "request_bytes",
                ));
                return rx;
            }
        }
        let (worker, inflight) = self.client_slot(client);
        // Optimistic increment: the slot is released by the worker right
        // before it sends the reply, or below on any refusal.
        if inflight.fetch_add(1, Ordering::SeqCst) >= self.max_inflight {
            inflight.fetch_sub(1, Ordering::SeqCst);
            let _ = tx.send(quota_response(
                &format!(
                    "client has {} requests in flight (limit {})",
                    self.max_inflight, self.max_inflight
                ),
                "max_inflight",
            ));
            return rx;
        }
        let mut msg = Msg::Job(Box::new(Job {
            client: client.to_owned(),
            request,
            reply: tx,
            inflight: inflight.clone(),
        }));
        // `std::sync::mpsc` has no `send_timeout`; a bounded retry loop
        // turns queue saturation into an explicit reply within
        // `overload_wait_ms` instead of an unbounded block.
        let deadline = Instant::now() + Duration::from_millis(self.overload_wait_ms);
        loop {
            match self.queues[worker].try_send(msg) {
                Ok(()) => return rx,
                Err(mpsc::TrySendError::Full(m)) => {
                    if Instant::now() >= deadline {
                        if let Msg::Job(job) = m {
                            job.inflight.fetch_sub(1, Ordering::SeqCst);
                            let _ = job.reply.send(overloaded_response());
                        }
                        return rx;
                    }
                    msg = m;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(mpsc::TrySendError::Disconnected(m)) => {
                    if let Msg::Job(job) = m {
                        job.inflight.fetch_sub(1, Ordering::SeqCst);
                        let _ = job.reply.send(error_response("server is shutting down"));
                    }
                    return rx;
                }
            }
        }
    }

    /// The sticky worker for `client`, assigned round-robin on first
    /// sight so load spreads without breaking per-client ordering.
    fn client_slot(&self, client: &str) -> (usize, Arc<AtomicUsize>) {
        let mut c = self.clients.lock().expect("client map poisoned");
        let n_workers = self.queues.len();
        if !c.map.contains_key(client) {
            let worker = c.next_worker % n_workers;
            c.next_worker += 1;
            c.map.insert(
                client.to_owned(),
                ClientInfo {
                    worker,
                    inflight: Arc::new(AtomicUsize::new(0)),
                },
            );
        }
        let info = &c.map[client];
        (info.worker, info.inflight.clone())
    }

    /// Stops accepting work, drains every queue, and joins the workers.
    /// Queued requests are all answered before their worker exits.
    /// Returns the merged lifetime telemetry report, if any request ran.
    /// Idempotent: later calls (including the implicit one in `Drop`)
    /// are no-ops.
    pub fn shutdown(&self) -> Option<Report> {
        self.closing.store(true, Ordering::SeqCst);
        // A blocking send of Stop lands *behind* everything already
        // queued, so the worker answers its backlog first: shutdown
        // drains, it does not drop.
        for q in &self.queues {
            let _ = q.send(Msg::Stop);
        }
        let handles: Vec<JoinHandle<()>> =
            self.handles.lock().expect("handles poisoned").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.metrics.lock().expect("metrics poisoned").aggregate.take()
    }
}

impl Drop for CompilePool {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Builds one client's fresh session on a worker thread. Every session a
/// worker creates shares that worker's force cache, so pure parse results
/// cross client boundaries (they are content-keyed and soundness-gated).
fn new_session(
    cfg: &PoolConfig,
    force_cache: &Rc<crate::compiler::ForceCache>,
    installer: &Option<Rc<dyn Fn(&Compiler)>>,
) -> Session {
    Session::new(
        CompileOptions {
            echo_output: false,
            jobs: cfg.jobs,
            expand_fuel: cfg.fuel,
            max_expand_depth: cfg.max_expand_depth,
            interp_step_limit: cfg.interp_step_limit,
            interp_stack_limit: cfg.interp_stack_limit,
            force_cache: Some(force_cache.clone()),
            ..CompileOptions::default()
        },
        installer.clone(),
    )
}

fn worker_main(rx: mpsc::Receiver<Msg>, cfg: &PoolConfig, metrics: &Arc<Mutex<PoolMetrics>>) {
    // Opt this thread into the process-global warm tiers; see module docs.
    maya_grammar::set_table_cache_shared(true);
    crate::session::set_lex_share_enabled(true);
    // And into the persistent store, when the daemon was given one: all
    // workers share the directory, and a restarted daemon starts warm.
    crate::store::install_thread(cfg.store.clone());
    let force_cache = Rc::new(crate::compiler::ForceCache::new());
    let installer: Option<Rc<dyn Fn(&Compiler)>> = cfg.installer.clone().map(|f| {
        Rc::new(move |c: &Compiler| f(c)) as Rc<dyn Fn(&Compiler)>
    });
    let mut sessions: HashMap<String, Session> = HashMap::new();
    for msg in rx {
        let Msg::Job(job) = msg else { break };
        let t = telemetry::Session::start(telemetry::Config::default());
        let session = sessions
            .entry(job.client.clone())
            .or_insert_with(|| new_session(cfg, &force_cache, &installer));
        let before = session.stats();
        // The session sandboxes the compile pipeline itself, but a panic
        // in request decoding, change detection, or response rendering
        // would otherwise kill this worker for every client pinned to it.
        // Isolate it: the one client gets an error reply and a reset
        // (cold) session; the worker keeps serving.
        let response = match crate::catch_ice(std::panic::AssertUnwindSafe(|| {
            handle_request(session, metrics, &job.request)
        })) {
            Ok(r) => r,
            Err(panic_msg) => {
                telemetry::count(Counter::ServerPanicsIsolated);
                session.reset();
                error_response(&format!("request panicked (isolated): {panic_msg}"))
            }
        };
        let after = session.stats();
        let delta = SessionStats {
            requests: after.requests - before.requests,
            full_reuses: after.full_reuses - before.full_reuses,
            files_changed: after.files_changed - before.files_changed,
            files_reused: after.files_reused - before.files_reused,
            files_recompiled: after.files_recompiled - before.files_recompiled,
            grammar_reuses: after.grammar_reuses - before.grammar_reuses,
        };
        metrics
            .lock()
            .expect("metrics poisoned")
            .record(t.finish(), delta);
        // Release the quota slot before replying, so a strictly
        // synchronous client never collides with its own last request.
        job.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = job.reply.send(response);
    }
}

fn handle_request(
    session: &mut Session,
    metrics: &Arc<Mutex<PoolMetrics>>,
    request: &PoolRequest,
) -> String {
    match request {
        PoolRequest::Line(line) => handle_line(session, metrics, line),
        PoolRequest::Sources { sources, opts } => {
            let outcome = session.compile_sources(sources, opts);
            compile_response(&outcome)
        }
    }
}

/// Decodes one protocol line, runs it, encodes the response. Never panics
/// the worker on bad input: a malformed request is an `ok: false` reply,
/// and the session converts compiler panics into ICE diagnostics itself.
fn handle_line(
    session: &mut Session,
    metrics: &Arc<Mutex<PoolMetrics>>,
    line: &str,
) -> String {
    let parsed = match parse_json(line) {
        Ok(v) => v,
        Err(e) => return error_response(&format!("malformed request: {e}")),
    };
    match parsed.get("cmd").and_then(Json::as_str) {
        Some("ping") => return r#"{"ok": true, "pong": true}"#.to_owned(),
        Some("stats") => {
            return stats_response(&metrics.lock().expect("metrics poisoned"));
        }
        Some("sleep") => {
            // A deliberate stall for backpressure tests: occupies this
            // worker for up to one second without compiling anything.
            let ms = parsed
                .get("ms")
                .and_then(Json::as_u64)
                .unwrap_or(10)
                .min(1000);
            std::thread::sleep(Duration::from_millis(ms));
            let mut w = JsonWriter::new();
            w.begin_obj()
                .field_bool("ok", true)
                .field_u64("slept_ms", ms)
                .end_obj();
            return w.finish();
        }
        Some(other) => return error_response(&format!("unknown cmd {other:?}")),
        None => {}
    }
    let Some(files) = parsed.get("files").and_then(Json::as_arr) else {
        return error_response("missing \"files\" array");
    };
    let mut paths = Vec::new();
    for f in files {
        match f.as_str() {
            Some(s) => paths.push(s.to_owned()),
            None => return error_response("\"files\" entries must be strings"),
        }
    }
    if paths.is_empty() {
        return error_response("\"files\" must not be empty");
    }
    let mut opts = RequestOpts::default();
    if let Some(m) = parsed.get("main").and_then(Json::as_str) {
        opts.main_class = m.to_owned();
    }
    if let Some(r) = parsed.get("run").and_then(Json::as_bool) {
        opts.run = r;
    }
    if let Some(x) = parsed.get("expand").and_then(Json::as_bool) {
        opts.expand = x;
    }
    if let Some(d) = parsed.get("deny_warnings").and_then(Json::as_bool) {
        opts.deny_warnings = d;
    }
    if let Some(n) = parsed.get("max_errors").and_then(Json::as_u64) {
        if n == 0 {
            return error_response("\"max_errors\" must be positive");
        }
        opts.max_errors = n as usize;
    }
    if let Some(f) = parsed.get("fuel").and_then(Json::as_u64) {
        if f == 0 {
            return error_response("\"fuel\" must be positive");
        }
        opts.fuel = Some(f);
    }
    match parsed.get("error_format").and_then(Json::as_str) {
        None | Some("human") => opts.error_format = ErrorFormat::Human,
        Some("json") => opts.error_format = ErrorFormat::Json,
        Some(other) => return error_response(&format!("unknown error format {other:?}")),
    }
    if let Some(uses) = parsed.get("uses").and_then(Json::as_arr) {
        for u in uses {
            match u.as_str() {
                Some(s) => opts.uses.push(s.to_owned()),
                None => return error_response("\"uses\" entries must be strings"),
            }
        }
    }
    // Fault site for the worker-level isolation above: a panic here is
    // outside the session's compile sandbox, exactly the class of failure
    // the catch in the worker loop exists for.
    if let Err(e) = crate::faults::trip("server") {
        return error_response(&e);
    }
    let outcome = session.compile(&paths, &opts);
    compile_response(&outcome)
}

/// A structured `ok: false` reply.
pub fn error_response(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_bool("ok", false)
        .field_str("error", message)
        .end_obj();
    w.finish()
}

/// A quota refusal: `ok: false` plus the machine-readable quota name.
fn quota_response(message: &str, quota: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_bool("ok", false)
        .field_str("error", message)
        .field_str("quota", quota)
        .end_obj();
    w.finish()
}

/// The queue-saturation refusal.
fn overloaded_response() -> String {
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_bool("ok", false)
        .field_str("error", "overloaded")
        .field_bool("overloaded", true)
        .end_obj();
    w.finish()
}

/// Encodes a compile [`Outcome`] as the protocol reply.
pub fn compile_response(o: &Outcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_bool("ok", true)
        .field_bool("success", o.success)
        .field_str("stdout", &o.stdout)
        .field_str("stderr", &o.stderr)
        .field_bool("full_reuse", o.full_reuse)
        .field_u64("files_changed", o.files_changed as u64)
        .field_u64("files_reused", o.files_reused as u64)
        .field_u64("files_recompiled", o.files_recompiled as u64)
        .field_u64("grammar_reuses", o.grammar_reuses as u64)
        .end_obj();
    w.finish()
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the `stats` reply from the pool-wide aggregates: summed session
/// counters, the merged request-latency histogram, per-phase times, and
/// cache gauges merged from every worker's per-request reports.
fn stats_response(m: &PoolMetrics) -> String {
    let s = &m.stats;
    let mut w = JsonWriter::new();
    w.begin_obj().field_bool("ok", true).key("stats").begin_obj();
    w.field_u64("requests", s.requests)
        .field_u64("full_reuses", s.full_reuses)
        .field_u64("files_changed", s.files_changed)
        .field_u64("files_reused", s.files_reused)
        .field_u64("files_recompiled", s.files_recompiled)
        .field_u64("grammar_reuses", s.grammar_reuses)
        .field_u64("table_memo", maya_grammar::table_cache_len() as u64);

    // Compile-request latency: percentiles over every served request.
    let h = &m.latency;
    w.key("latency").begin_obj();
    w.field_u64("count", h.count())
        .field_f64("mean_ms", h.mean() / 1e6)
        .field_f64("p50_ms", ns_to_ms(h.percentile(50.0)))
        .field_f64("p95_ms", ns_to_ms(h.percentile(95.0)))
        .field_f64("p99_ms", ns_to_ms(h.percentile(99.0)))
        .field_f64("max_ms", ns_to_ms(h.max()));
    w.key("buckets").begin_arr();
    for (lo, hi, n) in h.buckets() {
        w.begin_obj()
            .field_f64("lo_ms", ns_to_ms(lo))
            .field_f64("hi_ms", ns_to_ms(hi))
            .field_u64("count", n)
            .end_obj();
    }
    w.end_arr().end_obj();

    // Per-phase breakdown, aggregated across requests and workers.
    w.key("phases").begin_obj();
    if let Some(agg) = &m.aggregate {
        for p in Phase::ALL {
            let calls = agg.phase_calls(p);
            if calls == 0 {
                continue;
            }
            w.key(p.name()).begin_obj();
            w.field_f64("ms", agg.phase_time(p).as_secs_f64() * 1e3)
                .field_u64("calls", calls)
                .end_obj();
        }
    }
    w.end_obj();

    // Cache gauges merged across workers (hit/miss totals accumulate;
    // sizes reflect the most recent request's absolute count).
    w.key("caches").begin_obj();
    for id in CacheId::ALL {
        let cs = match &m.aggregate {
            Some(agg) => agg.cache(id),
            None => CacheStats::default(),
        };
        w.key(id.name()).begin_obj();
        w.field_u64("hits", cs.hits)
            .field_u64("misses", cs.misses)
            .field_u64("size", cs.size)
            .field_u64("evictions", cs.evictions)
            .field_f64("hit_ratio", cs.hit_ratio())
            .end_obj();
    }
    w.end_obj();

    w.end_obj().end_obj();
    w.finish()
}
