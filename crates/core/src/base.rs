//! The base MayaJava grammar, precedence relations, and hygiene spec.
//!
//! Every node-type production dispatches through the Mayan dispatcher; the
//! built-in semantic actions (crate module `builtins`) are ordinary Mayans
//! imported into the base environment, so user Mayans can override base
//! syntax by lexical tie-breaking — exactly how the paper's MultiJava
//! implementation retranslates ordinary method declarations (§5.2).

use crate::builtins;
use maya_ast::NodeKind;
use maya_dispatch::DispatchEnv;
use maya_grammar::{Assoc, Grammar, GrammarBuilder, ProdId, RhsItem, Terminal};
use maya_lexer::{Delim, TokenKind};
use maya_template::HygieneSpec;
use std::cell::RefCell;
use std::collections::HashMap;

// Precedence bands. Conflicts compare a production's precedence (explicit,
// or its rightmost terminal's) against the lookahead terminal's.
pub(crate) const P_IF: u16 = 1;
pub(crate) const P_ELSE: u16 = 2;
pub(crate) const P_EXT: u16 = 2;
pub(crate) const P_ASSIGN: u16 = 3;
pub(crate) const P_COND: u16 = 4;
pub(crate) const P_OROR: u16 = 5;
pub(crate) const P_ANDAND: u16 = 6;
pub(crate) const P_BITOR: u16 = 7;
pub(crate) const P_BITXOR: u16 = 8;
pub(crate) const P_BITAND: u16 = 9;
pub(crate) const P_EQ: u16 = 10;
pub(crate) const P_REL: u16 = 11;
pub(crate) const P_SHIFT: u16 = 12;
pub(crate) const P_ADD: u16 = 13;
pub(crate) const P_MUL: u16 = 14;
pub(crate) const P_UNARY: u16 = 20;
pub(crate) const P_POSTFIX: u16 = 22;
pub(crate) const P_PAREN: u16 = 30;
pub(crate) const P_SUFFIX: u16 = 40; // `.` and `[...]`
pub(crate) const P_ATOM: u16 = 50; // cast-disambiguation band

/// The built base environment: grammar snapshot, dispatch environment with
/// the built-in Mayans imported, hygiene information, and the production
/// name table.
#[derive(Clone)]
pub struct Base {
    pub grammar: Grammar,
    pub denv: DispatchEnv,
    pub hygiene: HygieneSpec,
    pub prods: BaseProds,
    /// The production-less marker nonterminal for statement-level `use`
    /// tails: only the ParseRest protocol can shift it, so the grammar has
    /// no list/continuation conflicts for use bodies.
    pub use_tail_stmts: maya_grammar::NtId,
    /// Likewise for declaration-level `use` tails.
    pub use_tail_decls: maya_grammar::NtId,
}

impl Base {
    /// Builds the base environment from scratch.
    pub fn build() -> Base {
        build_base()
    }

    /// A thread-cached clone of the base environment (grammar snapshots and
    /// dispatch environments are persistent, so sharing is safe and makes
    /// `Compiler::new` cheap).
    pub fn cached() -> Base {
        thread_local! {
            static BASE: std::cell::OnceCell<Base> = const { std::cell::OnceCell::new() };
        }
        BASE.with(|b| b.get_or_init(build_base).clone())
    }
}

/// Named access to the base productions.
#[derive(Clone, Default, Debug)]
pub struct BaseProds {
    by_name: HashMap<&'static str, ProdId>,
    names: Vec<(&'static str, ProdId)>,
}

impl BaseProds {
    /// The production named `name`.
    ///
    /// # Panics
    ///
    /// Panics on unknown names — base production names are compile-time
    /// constants of this crate.
    pub fn id(&self, name: &str) -> ProdId {
        *self
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("unknown base production {name}"))
    }

    /// The name of a base production, if it is one.
    pub fn name_of(&self, id: ProdId) -> Option<&'static str> {
        self.names.iter().find(|(_, p)| *p == id).map(|(n, _)| *n)
    }

    /// All `(name, id)` pairs.
    pub fn all(&self) -> &[(&'static str, ProdId)] {
        &self.names
    }
}

fn t(kind: TokenKind) -> RhsItem {
    RhsItem::tok(kind)
}

fn k(kind: NodeKind) -> RhsItem {
    RhsItem::Kind(kind)
}

fn sub(d: Delim, inner: NodeKind) -> RhsItem {
    RhsItem::Subtree(d, vec![RhsItem::Kind(inner)])
}

fn lazy(d: Delim, inner: NodeKind) -> RhsItem {
    RhsItem::Lazy(d, inner)
}

fn tree(d: Delim) -> RhsItem {
    RhsItem::Term(Terminal::Tree(d))
}

fn list(inner: NodeKind, sep: Option<TokenKind>) -> RhsItem {
    RhsItem::List(Box::new(RhsItem::Kind(inner)), sep.map(Terminal::Tok))
}

/// Builds the base grammar and environment.
pub fn build_base() -> Base {
    use Delim::*;
    use NodeKind::*;
    use TokenKind::*;

    let mut b = GrammarBuilder::new();

    // ---- terminal precedence ------------------------------------------------
    let prec_table: &[(&[TokenKind], u16, Assoc)] = &[
        (&[KwElse], P_ELSE, Assoc::Right),
        (&[KwExtends], P_EXT, Assoc::Left),
        (
            &[
                Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq, AmpEq, PipeEq, CaretEq,
                ShlEq, ShrEq, UshrEq,
            ],
            P_ASSIGN,
            Assoc::Right,
        ),
        (&[Question, Colon], P_COND, Assoc::Right),
        (&[OrOr], P_OROR, Assoc::Left),
        (&[AndAnd], P_ANDAND, Assoc::Left),
        (&[Pipe], P_BITOR, Assoc::Left),
        (&[Caret], P_BITXOR, Assoc::Left),
        (&[Amp], P_BITAND, Assoc::Left),
        (&[EqEq, Ne], P_EQ, Assoc::Left),
        (&[Lt, Gt, Le, Ge, KwInstanceof], P_REL, Assoc::Left),
        (&[Shl, Shr, Ushr], P_SHIFT, Assoc::Left),
        (&[Plus, Minus], P_ADD, Assoc::Left),
        (&[Star, Slash, Percent], P_MUL, Assoc::Left),
        (&[PlusPlus, MinusMinus], P_POSTFIX, Assoc::Left),
        (&[Dot], P_SUFFIX, Assoc::Left),
        // Cast-disambiguation band: tokens that may start the operand of a
        // cast (see the `paren`/`cast` productions below).
        (
            &[
                Ident, IntLit, LongLit, FloatLit, DoubleLit, CharLit, StringLit, KwTrue,
                KwFalse, KwNull, KwThis, KwNew, KwSuper, Bang, Tilde,
            ],
            P_ATOM,
            Assoc::Left,
        ),
    ];
    for (toks, level, assoc) in prec_table {
        for tk in *toks {
            b.set_prec(Terminal::Tok(*tk), *level, *assoc);
        }
    }
    b.set_prec(Terminal::Tree(Paren), P_ATOM, Assoc::Left);
    b.set_prec(Terminal::Tree(Brack), P_SUFFIX, Assoc::Left);

    // ---- productions ---------------------------------------------------------
    type Def = (
        &'static str,
        NodeKind,
        Vec<RhsItem>,
        Option<(u16, Assoc)>,
    );
    let defs: RefCell<Vec<Def>> = RefCell::new(Vec::new());
    let def = |name: &'static str, lhs: NodeKind, rhs: Vec<RhsItem>| {
        defs.borrow_mut().push((name, lhs, rhs, None));
    };
    let defp = |name: &'static str, lhs: NodeKind, rhs: Vec<RhsItem>, prec: (u16, Assoc)| {
        defs.borrow_mut().push((name, lhs, rhs, Some(prec)));
    };

    // Identifiers and names.
    def("identifier", Identifier, vec![t(Ident)]);
    def("unbound_local", UnboundLocal, vec![t(Ident)]);
    def("qname_single", QualifiedName, vec![k(Identifier)]);
    def(
        "qname_dot",
        QualifiedName,
        vec![k(QualifiedName), t(Dot), k(Identifier)],
    );

    // Type names. The production precedence is below `.`/`[` so dotted
    // names and array brackets extend the type rather than ending it
    // (`x instanceof a.b.c`).
    defp("type_qname", TypeName, vec![k(QualifiedName)], (P_EQ, Assoc::Left));
    def("type_prim", TypeName, vec![k(PrimitiveTypeName)]);
    def("type_void", TypeName, vec![t(KwVoid)]);
    def("type_array", TypeName, vec![k(TypeName), tree(Brack)]);
    for (name, kw) in [
        ("prim_boolean", KwBoolean),
        ("prim_byte", KwByte),
        ("prim_short", KwShort),
        ("prim_char", KwChar),
        ("prim_int", KwInt),
        ("prim_long", KwLong),
        ("prim_float", KwFloat),
        ("prim_double", KwDouble),
    ] {
        def(name, PrimitiveTypeName, vec![t(kw)]);
    }

    // Literal expressions.
    for (name, kw) in [
        ("lit_int", IntLit),
        ("lit_long", LongLit),
        ("lit_float", FloatLit),
        ("lit_double", DoubleLit),
        ("lit_char", CharLit),
        ("lit_string", StringLit),
        ("lit_true", KwTrue),
        ("lit_false", KwFalse),
        ("lit_null", KwNull),
    ] {
        def(name, Expression, vec![t(kw)]);
    }

    // Primary expressions.
    def("expr_name", Expression, vec![k(Identifier)]);
    def("expr_this", Expression, vec![t(KwThis)]);
    def(
        "field_access",
        Expression,
        vec![k(Expression), t(Dot), k(Identifier)],
    );
    def("mn_simple", MethodName, vec![k(Identifier)]);
    def(
        "mn_recv",
        MethodName,
        vec![k(Expression), t(Dot), k(Identifier)],
    );
    def(
        "mn_super",
        MethodName,
        vec![t(KwSuper), t(Dot), k(Identifier)],
    );
    def("call", Expression, vec![k(MethodName), sub(Paren, ArgumentList)]);
    def("args", ArgumentList, vec![list(Expression, Some(Comma))]);
    def("array_access", Expression, vec![k(Expression), tree(Brack)]);
    // `new` takes a non-array type head (QualifiedName or primitive):
    // `new T[n][]` folds extra dimensions through the array-access
    // production, avoiding the `new int[]`-vs-dimension ambiguity.
    def(
        "new_object",
        Expression,
        vec![t(KwNew), k(QualifiedName), sub(Paren, ArgumentList)],
    );
    def(
        "new_array",
        Expression,
        vec![t(KwNew), k(QualifiedName), sub(Brack, Expression)],
    );
    def(
        "new_array_prim",
        Expression,
        vec![t(KwNew), k(PrimitiveTypeName), sub(Brack, Expression)],
    );
    def(
        "template",
        Expression,
        vec![t(KwNew), k(QualifiedName), tree(Brace)],
    );
    // Parenthesized expression vs. cast: see DESIGN.md. The paren production
    // reduces below the "atom" band (so `(a) - b` is subtraction) and above
    // the operator bands; atoms shift into the cast production.
    defp("paren", Expression, vec![tree(Paren)], (P_PAREN, Assoc::Left));
    defp(
        "cast",
        Expression,
        vec![tree(Paren), k(Expression)],
        (P_UNARY, Assoc::Right),
    );

    // Operators.
    let binops: &[(&'static str, TokenKind)] = &[
        ("binary_add", Plus),
        ("binary_sub", Minus),
        ("binary_mul", Star),
        ("binary_div", Slash),
        ("binary_rem", Percent),
        ("binary_shl", Shl),
        ("binary_shr", Shr),
        ("binary_ushr", Ushr),
        ("binary_lt", Lt),
        ("binary_gt", Gt),
        ("binary_le", Le),
        ("binary_ge", Ge),
        ("binary_eq", EqEq),
        ("binary_ne", Ne),
        ("binary_bitand", Amp),
        ("binary_bitxor", Caret),
        ("binary_bitor", Pipe),
        ("binary_andand", AndAnd),
        ("binary_oror", OrOr),
    ];
    for (name, op) in binops {
        def(name, Expression, vec![k(Expression), t(*op), k(Expression)]);
    }
    let assigns: &[(&'static str, TokenKind)] = &[
        ("assign", Assign),
        ("assign_add", PlusEq),
        ("assign_sub", MinusEq),
        ("assign_mul", StarEq),
        ("assign_div", SlashEq),
        ("assign_rem", PercentEq),
        ("assign_bitand", AmpEq),
        ("assign_bitor", PipeEq),
        ("assign_bitxor", CaretEq),
        ("assign_shl", ShlEq),
        ("assign_shr", ShrEq),
        ("assign_ushr", UshrEq),
    ];
    for (name, op) in assigns {
        def(name, Expression, vec![k(Expression), t(*op), k(Expression)]);
    }
    def(
        "cond",
        Expression,
        vec![
            k(Expression),
            t(Question),
            k(Expression),
            t(Colon),
            k(Expression),
        ],
    );
    def(
        "instanceof",
        Expression,
        vec![k(Expression), t(KwInstanceof), k(TypeName)],
    );
    for (name, op) in [
        ("unary_neg", Minus),
        ("unary_plus", Plus),
        ("unary_not", Bang),
        ("unary_bitnot", Tilde),
        ("preinc", PlusPlus),
        ("predec", MinusMinus),
    ] {
        defp(
            name,
            Expression,
            vec![t(op), k(Expression)],
            (P_UNARY, Assoc::Right),
        );
    }
    def("postinc", Expression, vec![k(Expression), t(PlusPlus)]);
    def("postdec", Expression, vec![k(Expression), t(MinusMinus)]);

    // Statements.
    def("block_stmts", BlockStmts, vec![list(Statement, None)]);
    def("stmt_block", Statement, vec![sub(Brace, BlockStmts)]);
    def("stmt_expr", Statement, vec![k(Expression), t(Semi)]);
    def(
        "stmt_decl",
        Statement,
        vec![k(Expression), k(LocalDeclarator), t(Semi)],
    );
    def(
        "stmt_decl_prim",
        Statement,
        vec![k(PrimitiveTypeName), k(LocalDeclarator), t(Semi)],
    );
    def(
        "stmt_decl_prim_arr",
        Statement,
        vec![k(PrimitiveTypeName), tree(Brack), k(LocalDeclarator), t(Semi)],
    );
    def("local_decl", LocalDeclarator, vec![k(UnboundLocal)]);
    def(
        "local_decl_init",
        LocalDeclarator,
        vec![k(UnboundLocal), t(Assign), k(Expression)],
    );
    def(
        "local_decl_arr",
        LocalDeclarator,
        vec![k(UnboundLocal), tree(Brack)],
    );
    def(
        "local_decl_arr_init",
        LocalDeclarator,
        vec![k(UnboundLocal), tree(Brack), t(Assign), k(Expression)],
    );
    defp(
        "stmt_if",
        Statement,
        vec![t(KwIf), sub(Paren, Expression), k(Statement)],
        (P_IF, Assoc::Left),
    );
    def(
        "stmt_if_else",
        Statement,
        vec![
            t(KwIf),
            sub(Paren, Expression),
            k(Statement),
            t(KwElse),
            k(Statement),
        ],
    );
    def(
        "stmt_while",
        Statement,
        vec![t(KwWhile), sub(Paren, Expression), k(Statement)],
    );
    def(
        "stmt_do",
        Statement,
        vec![
            t(KwDo),
            k(Statement),
            t(KwWhile),
            sub(Paren, Expression),
            t(Semi),
        ],
    );
    def(
        "stmt_for",
        Statement,
        vec![t(KwFor), sub(Paren, ForControl), k(Statement)],
    );
    def(
        "for_control",
        ForControl,
        vec![
            k(ForInit),
            t(Semi),
            list(Expression, Some(Comma)),
            t(Semi),
            list(Expression, Some(Comma)),
        ],
    );
    def("for_init_empty", ForInit, vec![]);
    def("for_init_expr", ForInit, vec![k(Expression)]);
    def(
        "for_init_decl",
        ForInit,
        vec![k(Expression), k(LocalDeclarator)],
    );
    def(
        "for_init_prim",
        ForInit,
        vec![k(PrimitiveTypeName), k(LocalDeclarator)],
    );
    def("stmt_return_void", Statement, vec![t(KwReturn), t(Semi)]);
    def(
        "stmt_return",
        Statement,
        vec![t(KwReturn), k(Expression), t(Semi)],
    );
    def("stmt_break", Statement, vec![t(KwBreak), t(Semi)]);
    def("stmt_continue", Statement, vec![t(KwContinue), t(Semi)]);
    def(
        "stmt_throw",
        Statement,
        vec![t(KwThrow), k(Expression), t(Semi)],
    );
    def("stmt_empty", Statement, vec![t(Semi)]);
    def(
        "stmt_try",
        Statement,
        vec![t(KwTry), sub(Brace, BlockStmts), list(CatchClause, None)],
    );
    def(
        "stmt_try_finally",
        Statement,
        vec![
            t(KwTry),
            sub(Brace, BlockStmts),
            list(CatchClause, None),
            t(KwFinally),
            sub(Brace, BlockStmts),
        ],
    );
    def(
        "catch_clause",
        CatchClause,
        vec![t(KwCatch), sub(Paren, Formal), sub(Brace, BlockStmts)],
    );
    def(
        "use_head",
        UseHead,
        vec![t(KwUse), k(QualifiedName), t(Semi)],
    );
    // stmt_use is registered after lowering (it references a fresh marker
    // nonterminal); see below.

    // Formals and modifiers.
    def(
        "formal",
        Formal,
        vec![k(ModifierList), k(TypeName), k(UnboundLocal)],
    );
    def("formal_list", FormalList, vec![list(Formal, Some(Comma))]);
    def("modifiers", ModifierList, vec![list(Modifier, None)]);
    for (name, kw) in [
        ("modifier_public", KwPublic),
        ("modifier_private", KwPrivate),
        ("modifier_protected", KwProtected),
        ("modifier_static", KwStatic),
        ("modifier_final", KwFinal),
        ("modifier_abstract", KwAbstract),
        ("modifier_native", KwNative),
        ("modifier_synchronized", KwSynchronized),
        ("modifier_transient", KwTransient),
        ("modifier_volatile", KwVolatile),
    ] {
        def(name, Modifier, vec![t(kw)]);
    }
    def("throws_none", Throws, vec![]);
    def(
        "throws_some",
        Throws,
        vec![t(KwThrows), list(TypeName, Some(Comma))],
    );

    // Member declarations.
    def(
        "method_decl",
        Declaration,
        vec![
            k(ModifierList),
            k(TypeName),
            k(Identifier),
            sub(Paren, FormalList),
            k(Throws),
            lazy(Brace, BlockStmts),
        ],
    );
    def(
        "method_decl_abs",
        Declaration,
        vec![
            k(ModifierList),
            k(TypeName),
            k(Identifier),
            sub(Paren, FormalList),
            k(Throws),
            t(Semi),
        ],
    );
    def(
        "ctor_decl",
        Declaration,
        vec![
            k(ModifierList),
            k(Identifier),
            sub(Paren, FormalList),
            k(Throws),
            lazy(Brace, BlockStmts),
        ],
    );
    def(
        "field_decl",
        Declaration,
        vec![k(ModifierList), k(TypeName), k(LocalDeclarator), t(Semi)],
    );
    defp("extends_none", ExtendsClause, vec![], (P_IF, Assoc::Left));
    def("extends_some", ExtendsClause, vec![t(KwExtends), k(TypeName)]);
    def("impls_none", ImplementsClause, vec![]);
    def(
        "impls_some",
        ImplementsClause,
        vec![t(KwImplements), list(TypeName, Some(Comma))],
    );
    def(
        "impls_extends",
        ImplementsClause,
        vec![t(KwExtends), list(TypeName, Some(Comma))],
    );
    def(
        "class_decl",
        Declaration,
        vec![
            k(ModifierList),
            t(KwClass),
            k(Identifier),
            k(ExtendsClause),
            k(ImplementsClause),
            tree(Brace),
        ],
    );
    def(
        "iface_decl",
        Declaration,
        vec![
            k(ModifierList),
            t(KwInterface),
            k(Identifier),
            k(ImplementsClause),
            tree(Brace),
        ],
    );
    def(
        "prod_decl",
        Declaration,
        vec![
            k(ModifierList),
            k(QualifiedName),
            t(KwSyntax),
            tree(Paren),
            t(Semi),
        ],
    );
    def(
        "mayan_decl",
        Declaration,
        vec![
            k(ModifierList),
            k(QualifiedName),
            t(KwSyntax),
            k(Identifier),
            tree(Paren),
            tree(Brace),
        ],
    );
    // use_decl is registered after lowering; see below.
    def("class_body", ClassBody, vec![list(Declaration, None)]);

    // Compilation units.
    def("package_none", PackageDecl, vec![]);
    def(
        "package_some",
        PackageDecl,
        vec![t(KwPackage), k(QualifiedName), t(Semi)],
    );
    def(
        "import_plain",
        ImportDecl,
        vec![t(KwImport), k(QualifiedName), t(Semi)],
    );
    def(
        "import_star",
        ImportDecl,
        vec![t(KwImport), k(QualifiedName), t(Dot), t(Star), t(Semi)],
    );
    def(
        "comp_unit",
        CompilationUnit,
        vec![k(PackageDecl), list(ImportDecl, None), k(ClassBody)],
    );

    // Register everything.
    let defs = defs.into_inner();
    let mut prods = BaseProds::default();
    for (name, lhs, rhs, prec) in &defs {
        let id = b
            .add_production(*lhs, rhs, *prec)
            .unwrap_or_else(|e| panic!("base production {name}: {e}"));
        prods.by_name.insert(name, id);
        prods.names.push((name, id));
    }

    // `use` tails: production-less marker nonterminals shifted only through
    // the ParseRest protocol, so nested `use` bodies cannot conflict with
    // their surrounding statement/declaration lists.
    let use_tail_stmts = b.fresh_nonterminal("%use-tail-stmts");
    let use_tail_decls = b.fresh_nonterminal("%use-tail-decls");
    for (name, lhs, tail) in [
        ("stmt_use", Statement, use_tail_stmts),
        ("use_decl", Declaration, use_tail_decls),
    ] {
        let id = b
            .add_production(lhs, &[k(UseHead), RhsItem::Nt(tail)], None)
            .unwrap_or_else(|e| panic!("base production {name}: {e}"));
        prods.by_name.insert(name, id);
        prods.names.push((name, id));
    }

    let grammar = b.finish();

    // Hygiene: binding constructs are explicit in the grammar (§4.3).
    let hygiene = HygieneSpec {
        binder_nts: vec![grammar.nt_for_kind(UnboundLocal).expect("UnboundLocal nt")],
        name_ref_prods: vec![prods.id("expr_name")],
        type_name_prods: vec![prods.id("type_qname")],
        dotted_ref_prods: vec![prods.id("field_access")],
        raw_tree_goals: vec![
            (prods.id("paren"), 0, Expression),
            (prods.id("cast"), 0, TypeName),
            (prods.id("array_access"), 1, Expression),
        ],
    };

    // Import built-in Mayans and register destructors.
    let mut env = DispatchEnv::new().extend();
    builtins::install(&grammar, &prods, &mut env);
    let denv = env.finish();

    Base {
        grammar,
        denv,
        hygiene,
        prods,
        use_tail_stmts,
        use_tail_decls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_grammar_is_lalr1() {
        let base = build_base();
        let tables = base
            .grammar
            .tables()
            .expect("the base MayaJava grammar must be conflict-free");
        assert!(tables.n_states() > 100);
        assert!(base.grammar.productions().len() > 100);
    }

    #[test]
    fn builtins_cover_every_dispatch_production() {
        let base = build_base();
        for (i, p) in base.grammar.productions().iter().enumerate() {
            if matches!(p.action, maya_grammar::Action::Dispatch) {
                let id = ProdId(i as u32);
                assert!(
                    !base.denv.mayans_for(id).is_empty(),
                    "production {:?} ({}) has no built-in Mayan",
                    base.prods.name_of(id),
                    i
                );
            }
        }
    }

    #[test]
    fn prod_names_resolve() {
        let base = build_base();
        for name in ["use_head", "expr_name", "call", "method_decl", "comp_unit"] {
            let id = base.prods.id(name);
            assert_eq!(base.prods.name_of(id), Some(name));
        }
    }
}
