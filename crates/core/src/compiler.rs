//! The `Compiler`: mayac's pipeline (file reader → class shaper → class
//! compiler) and the embedding API.

use crate::base::Base;
use crate::diag::{Diagnostic, Diagnostics};
use crate::driver::{force_lazy, Cx, EnvPair, ForceHost};
use crate::CompileError;
use maya_ast::{
    Decl, Ident, LazyNode, Node, NodeKind, TypeName,
};
use maya_dispatch::{DestructorFn, DispatchError, ImportEnv, Mayan, MetaProgram};
use maya_grammar::{Grammar, GrammarBuilder, ProdId, RhsItem};
use maya_interp::{install_runtime, Interp};
use maya_lexer::{
    stream_lex, stream_lex_send, FileId, LexError, SendTree, SourceMap, Span, Symbol, TokenTree,
};
use maya_telemetry as telemetry;
use maya_template::__private_fresh::FreshNames;
use maya_types::{
    Checker, ClassId, ClassInfo, ClassTable, CtorInfo, FieldInfo, MethodInfo, ResolveCtx, Scope,
    Type, VarBinding, VarKind,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Options for a compilation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Echo interpreted output to the real stdout.
    pub echo_output: bool,
    /// Metaprogram names imported for every unit (the paper's `-use`
    /// command-line option, §3.3).
    pub uses: Vec<String>,
    /// Maximum nested Mayan expansion depth before the compiler gives up
    /// with a diagnostic (a Mayan expanding to syntax it matches itself).
    pub max_expand_depth: u32,
    /// Total nodes semantic actions may materialize in one compilation
    /// (bounds Mayans that expand to ever-growing syntax).
    pub expand_fuel: u64,
    /// Interpreter steps allowed per metaprogram invocation or program run
    /// (bounds `while (true)` in a metaprogram body).
    pub interp_step_limit: u64,
    /// Interpreter call-stack depth.
    pub interp_stack_limit: u32,
    /// Worker threads for the front end (lexing + token-tree construction
    /// of independent files in [`Compiler::add_sources_diags`]). `1`
    /// disables the thread pool; output is identical either way.
    pub jobs: usize,
    /// A cross-compilation memo of pure lazy-body parses (see
    /// [`ForceCache`]); an incremental [`crate::Session`] threads one
    /// cache through every compiler it creates.
    pub force_cache: Option<Rc<ForceCache>>,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            echo_output: false,
            uses: Vec::new(),
            max_expand_depth: 200,
            expand_fuel: 10_000_000,
            interp_step_limit: 20_000_000,
            interp_stack_limit: 128,
            jobs: 1,
            force_cache: None,
        }
    }
}

/// A memo of **pure** lazy-body parses, keyed by goal kind and the token
/// trees' content hash (spans included).
///
/// Forcing a lazy node re-parses its deferred token trees under the
/// environment captured at creation time. When that environment is the
/// compiler's pristine base environment (no syntax extensions in scope),
/// and the parse neither imports a metaprogram, creates a nested lazy
/// node, nor emits a diagnostic, the result is a pure function of the
/// tokens — every semantic action that ran was a built-in constructor.
/// Such results are safe to replay in a *different* compiler given the
/// same tokens, which is exactly what an incremental [`crate::Session`]
/// does: unchanged files keep their spans, so their method bodies hit this
/// cache and skip the parse/dispatch machinery entirely on warm
/// recompiles. Impure parses (anything under a `use`, anything that
/// expands a Mayan) are recomputed every time, preserving byte-identical
/// diagnostics and expansion behaviour.
pub struct ForceCache {
    map: RefCell<HashMap<(NodeKind, u128), Node>>,
    /// Lowered method/ctor bodies keyed by structural fingerprint (see
    /// `maya_interp::LowerStore`).  Lowered code is environment-free, so it
    /// is shared verbatim across the session's compilers — warm runs skip
    /// re-lowering entirely.
    lowered: Rc<maya_interp::LowerStore>,
    /// Whole-file compilation-unit parses, keyed by the file's token-tree
    /// hash. Templates are stored with unforced lazy cells; every lookup
    /// rebuilds the lazies with fresh cells and a payload pointing at the
    /// borrowing compiler's own pristine environment (see
    /// `driver::refresh_unit`), so no state is shared across compilers.
    units: RefCell<HashMap<u128, Node>>,
    /// Class-body member-list parses, keyed by the body's delimiter-tree
    /// hash. Stored and refreshed exactly like `units` (the member
    /// signatures and their nested formal-list sub-parses dominate warm
    /// recompiles once units and lazy bodies are cached).
    bodies: RefCell<HashMap<u128, Node>>,
}

impl ForceCache {
    /// An empty cache.
    pub fn new() -> ForceCache {
        ForceCache {
            map: RefCell::new(HashMap::new()),
            lowered: Rc::new(maya_interp::LowerStore::new()),
            units: RefCell::new(HashMap::new()),
            bodies: RefCell::new(HashMap::new()),
        }
    }

    /// The session-shared lowered-body store.
    pub fn lower_store(&self) -> Rc<maya_interp::LowerStore> {
        self.lowered.clone()
    }

    pub(crate) fn get(&self, key: &(NodeKind, u128)) -> Option<Node> {
        let hit = self.map.borrow().get(key).cloned();
        if hit.is_some() {
            telemetry::cache_hit(telemetry::CacheId::ForceCache);
        } else {
            telemetry::cache_miss(telemetry::CacheId::ForceCache);
        }
        hit
    }

    pub(crate) fn insert(&self, key: (NodeKind, u128), node: Node) {
        self.map.borrow_mut().insert(key, node);
        telemetry::cache_sized(telemetry::CacheId::ForceCache, self.map.borrow().len());
    }

    pub(crate) fn get_unit(&self, key: u128) -> Option<Node> {
        let hit = self.units.borrow().get(&key).cloned();
        if hit.is_some() {
            telemetry::cache_hit(telemetry::CacheId::UnitCache);
        } else {
            telemetry::cache_miss(telemetry::CacheId::UnitCache);
        }
        hit
    }

    pub(crate) fn insert_unit(&self, key: u128, node: Node) {
        self.units.borrow_mut().insert(key, node);
        telemetry::cache_sized(telemetry::CacheId::UnitCache, self.units.borrow().len());
    }

    pub(crate) fn get_body(&self, key: u128) -> Option<Node> {
        let hit = self.bodies.borrow().get(&key).cloned();
        if hit.is_some() {
            telemetry::cache_hit(telemetry::CacheId::ClassBodyCache);
        } else {
            telemetry::cache_miss(telemetry::CacheId::ClassBodyCache);
        }
        hit
    }

    pub(crate) fn insert_body(&self, key: u128, node: Node) {
        self.bodies.borrow_mut().insert(key, node);
        telemetry::cache_sized(telemetry::CacheId::ClassBodyCache, self.bodies.borrow().len());
    }

    /// Number of memoized parses (lazy bodies, class bodies, whole units).
    pub fn len(&self) -> usize {
        self.map.borrow().len() + self.units.borrow().len() + self.bodies.borrow().len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ForceCache {
    fn default() -> ForceCache {
        ForceCache::new()
    }
}

impl std::fmt::Debug for ForceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ForceCache({} entries)", self.len())
    }
}

/// One recorded syntax-import event (`use Name;` with a real source span):
/// which file imported which metaprogram, where that metaprogram was
/// declared, and the grammar/dispatch identity that resulted.
///
/// The incremental session replays this log after every compilation to
/// rebuild its file-dependency graph: an edge `importer → origin` means
/// editing `origin` must recompile `importer`, while the grammar content
/// hash and dispatch-env version identify the environment snapshot the
/// import produced (invalidation keys on grammar identity, not file
/// identity).
#[derive(Clone, Debug)]
pub struct DepEdge {
    /// File containing the `use` directive.
    pub importer: FileId,
    /// Dotted metaprogram name as written in the directive.
    pub name: String,
    /// File whose source `syntax` declaration registered the metaprogram;
    /// `None` for native (built-in) metaprograms, which have no source file.
    pub origin: Option<FileId>,
    /// Content hash of the grammar snapshot the import produced.
    pub grammar_hash: u128,
    /// Version of the dispatch environment the import produced.
    pub denv_version: u64,
}

/// Per-class compile metadata.
#[derive(Clone)]
pub(crate) struct ClassMeta {
    pub env: EnvPair,
    pub ctx: ResolveCtx,
}

struct Unit {
    #[allow(dead_code)]
    file: FileId,
    ctx: ResolveCtx,
    package: Option<String>,
    decls: Vec<Decl>,
}

/// Shared compiler state (reference-counted so drivers, Mayan bodies, and
/// hooks can all hold it).
pub struct CompilerInner {
    pub classes: Rc<ClassTable>,
    pub interp: Rc<Interp>,
    pub sm: RefCell<SourceMap>,
    pub base: Base,
    pub global: RefCell<EnvPair>,
    fresh: RefCell<FreshNames>,
    registry: RefCell<HashMap<String, (Rc<dyn MetaProgram>, Option<FileId>)>>,
    /// Syntax-import events observed during this compilation, in import
    /// order (see [`DepEdge`]).
    pub(crate) dep_log: RefCell<Vec<DepEdge>>,
    pub(crate) class_meta: RefCell<HashMap<ClassId, ClassMeta>>,
    /// Environment snapshots captured when class declarations were parsed,
    /// keyed by the body tree's span start (a `use` earlier in the file may
    /// have extended the grammar the body must be shaped under).
    pub(crate) decl_envs: RefCell<HashMap<(maya_lexer::FileId, u32), EnvPair>>,
    units: RefCell<Vec<Unit>>,
    /// Current nesting of Mayan expansions (depth guard state).
    pub(crate) expand_depth: Cell<u32>,
    /// Remaining expansion fuel (counts down; see `CompileOptions`).
    pub(crate) expand_fuel: Cell<u64>,
    /// Dotted names of imports currently being applied (cycle detection).
    imports_in_progress: RefCell<Vec<String>>,
    /// The active multi-error sink, when compiling through the
    /// diagnostics API; `None` keeps the legacy fail-fast behavior.
    pub(crate) diags: RefCell<Option<Diagnostics>>,
    /// Grammar content hash and dispatch-env version of the pristine base
    /// environment this compiler was constructed with (before any global
    /// `-use` import); the force cache only serves parses performed under
    /// exactly this environment.
    pub(crate) pristine_env: (u128, u64),
    /// Lazy nodes created so far (the force cache's purity gate: a parse
    /// that defers work captures an environment and is not memoizable).
    pub(crate) lazy_created: Cell<u64>,
    /// Class-processing hooks, run as a class declaration leaves the shaper
    /// (paper §4: "Maya provides class-processing hooks").
    pub class_hooks: RefCell<Vec<Rc<dyn Fn(&Rc<CompilerInner>, ClassId) -> Result<(), CompileError>>>>,
    pub(crate) options: CompileOptions,
    uses_applied: RefCell<bool>,
    /// Source-level `abstract … syntax(…)` declarations, in declaration
    /// order (extension compilation; see `source_mayan`).
    pub(crate) declared_prods: RefCell<Vec<(maya_ast::NodeKind, Vec<RhsItem>)>>,
    /// The stack of active Mayan expansions; the `maya.tree` bridge reads
    /// the top to service `nextRewrite`, templates, and the reflection API
    /// from interpreted metaprogram bodies.
    pub expand_stack: RefCell<Vec<crate::driver::ExpandSnapshot>>,
}

impl CompilerInner {
    /// A fresh `base$N` name, unique in this compilation.
    pub fn fresh(&self, base: &str) -> Symbol {
        self.fresh.borrow_mut().fresh(base)
    }

    /// Registers an importable metaprogram under a dotted name.
    pub fn register_metaprogram(&self, name: &str, program: Rc<dyn MetaProgram>) {
        self.register_metaprogram_at(name, program, None);
    }

    /// [`CompilerInner::register_metaprogram`], recording the source file
    /// whose declaration produced the metaprogram (dependency tracking for
    /// incremental recompilation).
    pub fn register_metaprogram_at(
        &self,
        name: &str,
        program: Rc<dyn MetaProgram>,
        origin: Option<FileId>,
    ) {
        self.registry
            .borrow_mut()
            .insert(name.to_owned(), (program, origin));
    }

    /// Looks up a metaprogram by the name used in a `use` directive.
    pub fn lookup_metaprogram(&self, path: &[Ident]) -> Option<Rc<dyn MetaProgram>> {
        let dotted: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
        let dotted = dotted.join(".");
        self.registry.borrow().get(&dotted).map(|(p, _)| p.clone())
    }

    /// The source file that declared the metaprogram `dotted`, if any.
    pub fn metaprogram_origin(&self, dotted: &str) -> Option<FileId> {
        self.registry.borrow().get(dotted).and_then(|(_, o)| *o)
    }

    /// Runs a metaprogram against an environment pair, producing the
    /// extended pair (tables are validated eagerly so conflicts are
    /// reported at the import).
    ///
    /// # Errors
    ///
    /// Reports grammar conflicts and metaprogram failures.
    pub fn run_import(
        &self,
        pair: &EnvPair,
        program: &dyn MetaProgram,
    ) -> Result<EnvPair, DispatchError> {
        let mut env = CoreImportEnv {
            grammar: pair.grammar.clone(),
            builder: None,
            denv: pair.denv.extend(),
        };
        program.run(&mut env)?;
        let grammar = match env.builder {
            Some(b) => {
                let g = b.finish();
                if g.content_hash() == pair.grammar.content_hash() {
                    // Every added production deduplicated into an existing
                    // one: keep the old snapshot (and its already-built,
                    // already-validated tables).
                    pair.grammar.clone()
                } else {
                    g.tables()
                        .map_err(|e| DispatchError::new(e.to_string(), Span::DUMMY))?;
                    g
                }
            }
            None => env.grammar,
        };
        Ok(EnvPair {
            grammar,
            denv: env.denv.finish(),
        })
    }

    /// Resolves and runs the metaprogram behind `use path;`.
    ///
    /// # Errors
    ///
    /// Unknown names and import failures.
    pub fn import_named(
        &self,
        pair: &EnvPair,
        _ctx: &ResolveCtx,
        path: &[Ident],
        span: Span,
    ) -> Result<EnvPair, DispatchError> {
        let dotted = {
            let parts: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
            parts.join(".")
        };
        // Cycle guard: importing A can compile A's extension classes, which
        // may `use` B, which may `use` A again. Without this the import
        // recursion never terminates.
        {
            let stack = self.imports_in_progress.borrow();
            if stack.contains(&dotted) {
                maya_telemetry::count(maya_telemetry::Counter::ImportCycles);
                return Err(DispatchError::new(
                    format!(
                        "import cycle detected: {} → {dotted}",
                        stack.join(" → ")
                    ),
                    span,
                ));
            }
        }
        let program = self.lookup_metaprogram(path).ok_or_else(|| {
            DispatchError::new(
                format!("unknown metaprogram {dotted} in use directive"),
                span,
            )
        })?;
        self.imports_in_progress.borrow_mut().push(dotted);
        let result = self.run_import(pair, program.as_ref());
        self.imports_in_progress.borrow_mut().pop();
        // Table-construction failures (grammar conflicts) have no source
        // span of their own; point them at the `use` directive.
        let new = result.map_err(|e| {
            if e.span.is_dummy() {
                DispatchError::new(e.message, span)
            } else {
                e
            }
        })?;
        maya_telemetry::trace(maya_telemetry::TraceKind::Import, || {
            let dotted: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
            (
                dotted.join("."),
                format!(
                    "metaprogram imported; grammar now has {} production(s)",
                    new.grammar.productions().len()
                ),
            )
        });
        Ok(new)
    }
}

/// Lexes `files` (already registered in `sm`) to `Send`-safe token trees,
/// fanning the work out to scoped worker threads when `jobs > 1`. Results
/// are returned in `files` order regardless of completion order; worker
/// telemetry is merged into this thread's session.
///
/// This is the whole front end as a pure function of the source map, so
/// both [`Compiler::add_sources_diags`] and the incremental
/// [`crate::Session`] (which lexes changed files into a scratch map to
/// compare token streams) share one implementation.
pub fn lex_files(
    sm: &SourceMap,
    files: &[FileId],
    jobs: usize,
) -> Vec<Result<Vec<SendTree>, LexError>> {
    let jobs = jobs.max(1).min(files.len());
    if jobs <= 1 {
        return files.iter().map(|&f| lex_one(sm, f)).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let telemetry_on = maya_telemetry::enabled();
    // Workers inherit the driving session's span capture so a merged
    // `--jobs=N` trace shows every per-file lex on its worker's track.
    let capture_spans = maya_telemetry::spans_enabled();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<Vec<SendTree>, LexError>>>> =
        files.iter().map(|_| Mutex::new(None)).collect();
    let mut reports: Vec<maya_telemetry::Report> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                let slots = &slots;
                scope.spawn(move || {
                    // Workers have their own thread-local telemetry;
                    // collect into a session and hand the report back
                    // for merging.
                    let session = telemetry_on.then(|| {
                        maya_telemetry::Session::start(maya_telemetry::Config {
                            capture_spans,
                            ..maya_telemetry::Config::default()
                        })
                    });
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&file) = files.get(i) else { break };
                        let r = lex_one(sm, file);
                        *slots[i].lock().expect("lex slot poisoned") = Some(r);
                    }
                    session.map(maya_telemetry::Session::finish)
                })
            })
            .collect();
        for h in handles {
            if let Some(report) = h.join().expect("lexer worker panicked") {
                reports.push(report);
            }
        }
    });
    for r in &reports {
        maya_telemetry::absorb(r);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("lex slot poisoned")
                .expect("every file was lexed")
        })
        .collect()
}

/// Lexes one file under a `lex_file` span (tagged with the file name) and
/// records the duration into the `lex_file_ns` histogram.
fn lex_one(sm: &SourceMap, file: FileId) -> Result<Vec<SendTree>, LexError> {
    let span = telemetry::span_with("lex_file", || {
        vec![("file", sm.file(file).name.clone())]
    });
    let t0 = std::time::Instant::now();
    let r = stream_lex_send(sm, file);
    telemetry::record_hist("lex_file_ns", t0.elapsed().as_nanos() as u64);
    drop(span);
    r
}

struct CoreImportEnv {
    grammar: Grammar,
    builder: Option<GrammarBuilder>,
    denv: maya_dispatch::EnvBuilder,
}

impl ImportEnv for CoreImportEnv {
    fn add_production(&mut self, lhs: NodeKind, rhs: &[RhsItem]) -> Result<ProdId, DispatchError> {
        let b = self
            .builder
            .get_or_insert_with(|| self.grammar.extend());
        b.add_production(lhs, rhs, None)
            .map_err(|e| DispatchError::new(e.to_string(), e.span()))
    }

    fn import_mayan(&mut self, mayan: Rc<Mayan>) {
        self.denv.import(mayan);
    }

    fn register_destructor(&mut self, prod: ProdId, produced: NodeKind, f: DestructorFn) {
        self.denv.register_destructor(prod, produced, f);
    }

    fn grammar(&self) -> Grammar {
        self.grammar.clone()
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The Maya compiler.
///
/// # Example
///
/// ```
/// use maya_core::Compiler;
///
/// let compiler = Compiler::new();
/// let out = compiler
///     .compile_and_run(
///         "Main.maya",
///         r#"class Main { static void main() { System.out.println(6 * 7); } }"#,
///         "Main",
///     )
///     .unwrap();
/// assert_eq!(out, "42\n");
/// ```
#[derive(Clone)]
pub struct Compiler {
    inner: Rc<CompilerInner>,
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler::new()
    }
}

impl Compiler {
    /// Creates a compiler with default options.
    pub fn new() -> Compiler {
        Compiler::with_options(CompileOptions::default())
    }

    /// Creates a compiler.
    pub fn with_options(options: CompileOptions) -> Compiler {
        let classes = Rc::new(ClassTable::new());
        install_runtime(&classes);
        let interp = Rc::new(Interp::new(classes.clone()));
        if let Some(cache) = &options.force_cache {
            interp.set_lower_store(cache.lower_store());
        }
        let base = Base::cached();
        let global = EnvPair {
            grammar: base.grammar.clone(),
            denv: base.denv.clone(),
        };
        let pristine_env = (global.grammar.content_hash(), global.denv.version());
        let inner = Rc::new(CompilerInner {
            classes,
            interp,
            sm: RefCell::new(SourceMap::new()),
            base,
            global: RefCell::new(global),
            fresh: RefCell::new(FreshNames::new()),
            registry: RefCell::new(HashMap::new()),
            dep_log: RefCell::new(Vec::new()),
            class_meta: RefCell::new(HashMap::new()),
            decl_envs: RefCell::new(HashMap::new()),
            units: RefCell::new(Vec::new()),
            expand_depth: Cell::new(0),
            expand_fuel: Cell::new(options.expand_fuel),
            imports_in_progress: RefCell::new(Vec::new()),
            diags: RefCell::new(None),
            pristine_env,
            lazy_created: Cell::new(0),
            class_hooks: RefCell::new(Vec::new()),
            options,
            uses_applied: RefCell::new(false),
            declared_prods: RefCell::new(Vec::new()),
            expand_stack: RefCell::new(Vec::new()),
        });
        inner
            .interp
            .set_stack_limit(inner.options.interp_stack_limit);
        inner.interp.set_step_limit(inner.options.interp_step_limit);
        crate::extension::install_tree_bridge(&inner);
        let compiler = Compiler { inner };
        compiler.install_runtime_forcer();
        compiler.install_frame_provider();
        compiler
    }

    /// The shared state (for extension crates).
    pub fn inner(&self) -> &Rc<CompilerInner> {
        &self.inner
    }

    /// Syntax-import events recorded during this compilation, in import
    /// order (see [`DepEdge`]).
    pub fn dep_log(&self) -> Vec<DepEdge> {
        self.inner.dep_log.borrow().clone()
    }

    /// The class table.
    pub fn classes(&self) -> Rc<ClassTable> {
        self.inner.classes.clone()
    }

    /// The interpreter.
    pub fn interp(&self) -> Rc<Interp> {
        self.inner.interp.clone()
    }

    /// The base environment (for tests and extension authors).
    pub fn base(&self) -> &Base {
        &self.inner.base
    }

    /// Registers a compiled extension under a dotted name, making it
    /// importable with `use name;`.
    pub fn register_metaprogram(&self, name: &str, program: Rc<dyn MetaProgram>) {
        self.inner.register_metaprogram(name, program);
    }

    /// Adds a class-processing hook.
    pub fn add_class_hook(
        &self,
        hook: Rc<dyn Fn(&Rc<CompilerInner>, ClassId) -> Result<(), CompileError>>,
    ) {
        self.inner.class_hooks.borrow_mut().push(hook);
    }

    /// Applies `use name;` to the *global* environment (the `-use`
    /// command-line option).
    ///
    /// # Errors
    ///
    /// Unknown names and import failures.
    pub fn use_globally(&self, name: &str) -> Result<(), CompileError> {
        let path: Vec<Ident> = name.split('.').map(Ident::from_str).collect();
        let pair = self.inner.global.borrow().clone();
        let new = self
            .inner
            .import_named(&pair, &ResolveCtx::default(), &path, Span::DUMMY)?;
        *self.inner.global.borrow_mut() = new;
        Ok(())
    }

    /// Applies the global `-use` imports once per compilation (the first
    /// source added triggers it).
    fn ensure_uses_applied(&self) -> Result<(), CompileError> {
        if !*self.inner.uses_applied.borrow() {
            *self.inner.uses_applied.borrow_mut() = true;
            for u in &self.inner.options.uses.clone() {
                self.use_globally(u)?;
            }
        }
        Ok(())
    }

    /// Reads one source file: lexes, parses the compilation unit (class
    /// bodies are left raw for the shaper), records imports.
    ///
    /// # Errors
    ///
    /// Lexical and syntax errors.
    pub fn add_source(&self, name: &str, text: &str) -> Result<(), CompileError> {
        self.ensure_uses_applied()?;
        let file = self.inner.sm.borrow_mut().add_file(name, text);
        let trees = {
            let sm = self.inner.sm.borrow();
            let span = telemetry::span_with("lex_file", || {
                vec![("file", sm.file(file).name.clone())]
            });
            let t0 = std::time::Instant::now();
            let r = stream_lex(&sm, file);
            telemetry::record_hist("lex_file_ns", t0.elapsed().as_nanos() as u64);
            drop(span);
            r?
        };
        self.process_lexed(file, trees)
    }

    /// The post-lex half of [`Compiler::add_source`]: parse the compilation
    /// unit and record it. Runs strictly in file order even when lexing was
    /// parallel, because parsing can extend the global environment.
    fn process_lexed(&self, file: FileId, trees: Vec<TokenTree>) -> Result<(), CompileError> {
        if let Err(m) = crate::faults::trip("lex") {
            return Err(CompileError::new(m, Span::DUMMY));
        }
        let pair = self.inner.global.borrow().clone();
        let cx = Cx {
            cx: self.inner.clone(),
            pair: pair.clone(),
            ctx: ResolveCtx::default(),
            class: None,
            scope: Rc::new(RefCell::new(Scope::new())),
        };
        let goal = pair
            .grammar
            .nt_for_kind(NodeKind::CompilationUnit)
            .expect("CompilationUnit nt");
        // In multi-error mode, recover at member boundaries so every
        // top-level syntax error in the file is reported.
        let diags = self.inner.diags.borrow().clone();
        // Unit cache: under the pristine base environment a unit parse is a
        // pure function of the token trees, so a session can replay it into
        // this compiler (with fresh lazy cells) instead of re-parsing.
        let cache = self.inner.options.force_cache.clone();
        let unit_key = match &cache {
            Some(_)
                if (pair.grammar.content_hash(), pair.denv.version())
                    == self.inner.pristine_env =>
            {
                Some(crate::fingerprint::token_trees_hash(&trees))
            }
            _ => None,
        };
        let fresh_payload = Rc::new(crate::driver::LazyEnvPayload {
            pair: pair.clone(),
            ctx: ResolveCtx::default(),
            class: None,
        });
        let cached_unit = match (&cache, unit_key) {
            (Some(c), Some(key)) => c.get_unit(key).and_then(|template| {
                crate::driver::refresh_unit(&template, self.inner.pristine_env, &fresh_payload)
            }),
            _ => None,
        };
        let unit_node = if let Some(unit) = cached_unit {
            maya_telemetry::count(maya_telemetry::Counter::UnitCacheHits);
            unit
        } else {
            let deps_before = self.inner.dep_log.borrow().len();
            let diags_before = diags.as_ref().map(|d| (d.error_count(), d.warning_count()));
            let unit_node = match &diags {
                Some(d) => crate::recover::parse_trees_recovering(
                    &cx,
                    &trees,
                    goal,
                    crate::recover::Poison::Decl,
                    d,
                )
                .ok_or_else(|| CompileError::reported(Span::DUMMY))?,
                None => cx.parse_trees(&trees, goal)?,
            };
            let diags_after = diags.as_ref().map(|d| (d.error_count(), d.warning_count()));
            if let (Some(c), Some(key)) = (&cache, unit_key) {
                let global = self.inner.global.borrow();
                let still_pristine = (global.grammar.content_hash(), global.denv.version())
                    == self.inner.pristine_env;
                drop(global);
                if still_pristine
                    && self.inner.dep_log.borrow().len() == deps_before
                    && diags_before == diags_after
                {
                    if let Some(template) = crate::driver::refresh_unit(
                        &unit_node,
                        self.inner.pristine_env,
                        &fresh_payload,
                    ) {
                        c.insert_unit(key, template);
                    }
                }
            }
            unit_node
        };
        let Node::List(parts) = unit_node else {
            return Err(CompileError::new("internal: compilation unit shape", Span::DUMMY));
        };
        if parts.len() != 3 {
            return Err(CompileError::new("internal: compilation unit shape", Span::DUMMY));
        }
        let package = match &parts[0] {
            Node::Name(p) => {
                let s: Vec<&str> = p.iter().map(|i| i.as_str()).collect();
                Some(s.join("."))
            }
            _ => None,
        };
        let mut ctx = ResolveCtx::default();
        if let Some(p) = &package {
            ctx.package = Some(maya_lexer::sym(p));
        }
        if let Node::List(imports) = &parts[1] {
            for imp in imports {
                if let Node::Decl(Decl::Import(i)) = imp {
                    let s: Vec<&str> = i.path.iter().map(|x| x.as_str()).collect();
                    if i.wildcard {
                        ctx.wildcard_imports.push(maya_lexer::sym(&s.join(".")));
                    } else {
                        ctx.single_imports.push(maya_lexer::sym(&s.join(".")));
                    }
                }
            }
        }
        // Always visible packages.
        ctx.wildcard_imports.push(maya_lexer::sym("java.lang"));
        let decls = match &parts[2] {
            Node::Decls(d) => d.clone(),
            _ => return Err(CompileError::new("internal: declarations shape", Span::DUMMY)),
        };
        self.inner.units.borrow_mut().push(Unit {
            file,
            ctx,
            package,
            decls,
        });
        Ok(())
    }

    /// [`Compiler::add_source`] in multi-error mode: errors are reported
    /// into `diags` (with parser recovery at member boundaries) instead of
    /// stopping at the first, and a panic becomes an internal-compiler-error
    /// diagnostic. Returns `false` when the unit could not be added at all.
    pub fn add_source_diags(&self, name: &str, text: &str, diags: &Diagnostics) -> bool {
        *self.inner.diags.borrow_mut() = Some(diags.clone());
        let result = crate::sandbox::catch(|| self.add_source(name, text));
        *self.inner.diags.borrow_mut() = None;
        match result {
            Ok(Ok(())) => true,
            Ok(Err(e)) => {
                diags.compile_error(e);
                false
            }
            Err(panic_msg) => {
                diags.error(format!("internal: {panic_msg}"), Span::DUMMY);
                false
            }
        }
    }

    /// Adds a batch of sources in multi-error mode, lexing independent
    /// files on worker threads when [`CompileOptions::jobs`] `> 1`.
    ///
    /// Files are registered, parsed, and reported strictly in argument
    /// order, so the observable output (units, diagnostics, expanded code)
    /// is byte-identical to calling [`Compiler::add_source_diags`] once per
    /// file — only lexing and token-tree construction, which are pure per
    /// file, run concurrently. Returns `true` when every file was added
    /// cleanly.
    pub fn add_sources_diags(&self, sources: &[(String, String)], diags: &Diagnostics) -> bool {
        let prelexed = sources.iter().map(|_| None).collect();
        self.add_sources_prelexed_diags(sources, prelexed, diags)
    }

    /// [`Compiler::add_sources_diags`] with some files already lexed.
    ///
    /// `prelexed[i]`, when `Some`, is the lex result for `sources[i]` —
    /// typically a cached token-tree vector from an incremental
    /// [`crate::Session`] whose file content did not change. Those slots
    /// skip the front end entirely (their lex telemetry was counted when
    /// they were first lexed); `None` slots are lexed here, in parallel
    /// when [`CompileOptions::jobs`] `> 1`. Everything downstream —
    /// registration order, parsing, diagnostics — is byte-identical to the
    /// all-`None` call, because lexing is pure per file.
    pub fn add_sources_prelexed_diags(
        &self,
        sources: &[(String, String)],
        prelexed: Vec<Option<Result<Vec<SendTree>, LexError>>>,
        diags: &Diagnostics,
    ) -> bool {
        assert_eq!(sources.len(), prelexed.len(), "one prelexed slot per source");
        *self.inner.diags.borrow_mut() = Some(diags.clone());
        // Global `-use` imports first, exactly as the first `add_source`
        // call would.
        match crate::sandbox::catch(|| self.ensure_uses_applied()) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                diags.compile_error(e);
                *self.inner.diags.borrow_mut() = None;
                return false;
            }
            Err(p) => {
                diags.error(format!("internal: {p}"), Span::DUMMY);
                *self.inner.diags.borrow_mut() = None;
                return false;
            }
        }
        // Register every file up front: FileIds (and thus every span in
        // every diagnostic) depend only on argument order.
        let files: Vec<FileId> = sources
            .iter()
            .map(|(name, text)| self.inner.sm.borrow_mut().add_file(name, text))
            .collect();
        // Lex only the files without a prelexed result, then stitch the
        // two result sets back into registration order.
        let need: Vec<FileId> = files
            .iter()
            .zip(&prelexed)
            .filter(|(_, p)| p.is_none())
            .map(|(&f, _)| f)
            .collect();
        let mut fresh = {
            let sm = self.inner.sm.borrow();
            lex_files(&sm, &need, self.inner.options.jobs).into_iter()
        };
        let lexed: Vec<Result<Vec<SendTree>, LexError>> = prelexed
            .into_iter()
            .map(|p| p.unwrap_or_else(|| fresh.next().expect("one lex result per needed file")))
            .collect();
        // Everything after lexing stays sequential in file order: parsing
        // a unit can extend the global environment (`use` at top level),
        // and diagnostics must come out in file order.
        let mut all_ok = true;
        for (file, result) in files.into_iter().zip(lexed) {
            if diags.at_cap() {
                all_ok = false;
                break;
            }
            let r = crate::sandbox::catch(|| -> Result<(), CompileError> {
                let trees: Vec<TokenTree> =
                    result?.into_iter().map(SendTree::into_tree).collect();
                self.process_lexed(file, trees)
            });
            match r {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    diags.compile_error(e);
                    all_ok = false;
                }
                Err(p) => {
                    diags.error(format!("internal: {p}"), Span::DUMMY);
                    all_ok = false;
                }
            }
        }
        *self.inner.diags.borrow_mut() = None;
        all_ok
    }

    /// [`Compiler::compile`] in multi-error mode: classes compile
    /// independently, every error lands in `diags`, and a panic in any
    /// phase becomes an internal-compiler-error diagnostic instead of an
    /// abort.
    pub fn compile_diags(&self, diags: &Diagnostics) {
        *self.inner.diags.borrow_mut() = Some(diags.clone());
        self.compile_diags_inner(diags);
        *self.inner.diags.borrow_mut() = None;
    }

    fn compile_diags_inner(&self, diags: &Diagnostics) {
        use std::collections::HashSet;
        // Pass 1: declare every class, one unit at a time so a bad unit
        // doesn't hide its siblings.
        let mut shaped: Vec<(ClassId, Decl, ResolveCtx, usize)> = Vec::new();
        let unit_count = self.inner.units.borrow().len();
        for ui in 0..unit_count {
            if diags.at_cap() {
                return;
            }
            let (decls, ctx, package) = {
                let units = self.inner.units.borrow();
                (
                    units[ui].decls.clone(),
                    units[ui].ctx.clone(),
                    units[ui].package.clone(),
                )
            };
            match crate::sandbox::catch(|| {
                self.declare_decls(&decls, &ctx, package.as_deref(), ui, &mut shaped)
            }) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => diags.compile_error(e),
                Err(p) => diags.error(
                    format!("internal: declaring classes panicked: {p}"),
                    Span::DUMMY,
                ),
            }
        }
        // Pass 2: shape each class; a broken class is excluded from later
        // passes so its errors don't cascade.
        let mut broken: HashSet<ClassId> = HashSet::new();
        for (class, decl, ctx, _ui) in &shaped {
            if diags.at_cap() {
                break;
            }
            match crate::sandbox::catch(|| self.shape_class(*class, decl, ctx)) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    broken.insert(*class);
                    diags.compile_error(e);
                }
                Err(p) => {
                    broken.insert(*class);
                    diags.error(
                        format!("internal: class shaping panicked: {p}"),
                        Span::DUMMY,
                    );
                }
            }
        }
        // Pass 3: class-processing hooks.
        let hooks = self.inner.class_hooks.borrow().clone();
        for (class, ..) in &shaped {
            if broken.contains(class) || diags.at_cap() {
                continue;
            }
            for h in &hooks {
                match crate::sandbox::catch(|| h(&self.inner, *class)) {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        broken.insert(*class);
                        diags.compile_error(e);
                        break;
                    }
                    Err(p) => {
                        broken.insert(*class);
                        diags.error(
                            format!("internal: class hook panicked: {p}"),
                            Span::DUMMY,
                        );
                        break;
                    }
                }
            }
        }
        // Pass 4: force + check every member, continuing across members.
        for (class, ..) in &shaped {
            if broken.contains(class) || diags.at_cap() {
                continue;
            }
            if let Err(m) = crate::faults::trip("type_check") {
                diags.error(m, Span::DUMMY);
                continue;
            }
            match crate::sandbox::catch(|| self.check_class_with(*class, Some(diags))) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => diags.compile_error(e),
                Err(p) => diags.error(
                    format!("internal: type checking panicked: {p}"),
                    Span::DUMMY,
                ),
            }
        }
    }

    /// [`Compiler::run_main`] in multi-error mode: a runtime failure
    /// becomes a diagnostic carrying the Mayan expansion frames that were
    /// active when the error surfaced.
    pub fn run_main_diags(&self, class_fqcn: &str, diags: &Diagnostics) -> Option<String> {
        *self.inner.diags.borrow_mut() = Some(diags.clone());
        let result = crate::sandbox::catch(|| {
            if let Err(m) = crate::faults::trip("interp") {
                return Err(maya_interp::RuntimeError::new(m, Span::DUMMY));
            }
            self.inner.interp.reset_steps();
            self.inner.interp.run_main(class_fqcn)
        });
        *self.inner.diags.borrow_mut() = None;
        match result {
            Ok(Ok(out)) => Some(out),
            Ok(Err(e)) => {
                let mut d = Diagnostic::error(e.message.clone(), e.span);
                d.frames = e.frames.clone();
                diags.report(d);
                None
            }
            Err(p) => {
                diags.error(format!("internal: {p}"), Span::DUMMY);
                None
            }
        }
    }

    /// Runs the shaper and class compiler over everything added so far.
    ///
    /// # Errors
    ///
    /// Any compile error in any unit.
    pub fn compile(&self) -> Result<(), CompileError> {
        // Pass 1: declare every class (forward references).
        let mut shaped: Vec<(ClassId, Decl, ResolveCtx, usize)> = Vec::new();
        let unit_count = self.inner.units.borrow().len();
        for ui in 0..unit_count {
            let (decls, ctx, package) = {
                let units = self.inner.units.borrow();
                (
                    units[ui].decls.clone(),
                    units[ui].ctx.clone(),
                    units[ui].package.clone(),
                )
            };
            self.declare_decls(&decls, &ctx, package.as_deref(), ui, &mut shaped)?;
        }
        // Pass 2: shape each class (parse bodies, compute member types).
        for (class, decl, ctx, _ui) in &shaped {
            self.shape_class(*class, decl, ctx)?;
        }
        // Pass 3: class-processing hooks.
        let hooks = self.inner.class_hooks.borrow().clone();
        for (class, ..) in &shaped {
            for h in &hooks {
                h(&self.inner, *class)?;
            }
        }
        // Pass 4: compile (force + check) every member.
        for (class, ..) in &shaped {
            self.check_class(*class)?;
        }
        Ok(())
    }

    fn declare_decls(
        &self,
        decls: &[Decl],
        ctx: &ResolveCtx,
        package: Option<&str>,
        ui: usize,
        shaped: &mut Vec<(ClassId, Decl, ResolveCtx, usize)>,
    ) -> Result<(), CompileError> {
        for d in decls {
            match d {
                Decl::Class(c) => {
                    let fqcn = match package {
                        Some(p) => format!("{p}.{}", c.name),
                        None => c.name.to_string(),
                    };
                    let id = self
                        .inner
                        .classes
                        .declare(ClassInfo::new(&fqcn, false))
                        .map_err(|e| CompileError::new(e.message, c.span))?;
                    shaped.push((id, d.clone(), ctx.clone(), ui));
                }
                Decl::Interface(i) => {
                    let fqcn = match package {
                        Some(p) => format!("{p}.{}", i.name),
                        None => i.name.to_string(),
                    };
                    let id = self
                        .inner
                        .classes
                        .declare(ClassInfo::new(&fqcn, true))
                        .map_err(|e| CompileError::new(e.message, i.span))?;
                    shaped.push((id, d.clone(), ctx.clone(), ui));
                }
                Decl::Use(_, inner) => {
                    self.declare_decls(inner, ctx, package, ui, shaped)?;
                }
                Decl::Production(p) => {
                    crate::extension::register_production_decl(&self.inner, p, ctx)?;
                }
                Decl::Mayan(m) => {
                    crate::extension::register_mayan_decl(&self.inner, m, ctx, package)?;
                }
                Decl::Import(_) | Decl::Empty => {}
                // Poison node from parser recovery: already reported.
                Decl::Error(_) => {}
                other => {
                    return Err(CompileError::new(
                        format!(
                            "unsupported top-level declaration {}",
                            other.node_kind().name()
                        ),
                        Span::DUMMY,
                    ))
                }
            }
        }
        Ok(())
    }

    fn env_for_body(&self, tree_span: Span) -> EnvPair {
        if !tree_span.is_dummy() {
            if let Some(p) = self
                .inner
                .decl_envs
                .borrow()
                .get(&(tree_span.file, tree_span.lo))
            {
                return p.clone();
            }
        }
        self.inner.global.borrow().clone()
    }

    fn shape_class(&self, class: ClassId, decl: &Decl, ctx: &ResolveCtx) -> Result<(), CompileError> {
        let (body_tree, superclass, interfaces, modifiers, is_interface) = match decl {
            Decl::Class(c) => (
                c.body_tree.clone(),
                c.superclass.clone(),
                c.interfaces.clone(),
                c.modifiers,
                false,
            ),
            Decl::Interface(i) => (
                i.body_tree.clone(),
                None,
                i.extends.clone(),
                i.modifiers,
                true,
            ),
            _ => return Ok(()),
        };
        let resolve = |tn: &TypeName| -> Result<ClassId, CompileError> {
            match self.inner.classes.resolve_type_name(tn, ctx)? {
                Type::Class(c) => Ok(c),
                other => Err(CompileError::new(
                    format!(
                        "{} is not a class type",
                        self.inner.classes.describe(&other)
                    ),
                    tn.span,
                )),
            }
        };
        {
            let info = self.inner.classes.info(class);
            let mut info = info.borrow_mut();
            info.modifiers = modifiers;
            info.superclass = match &superclass {
                Some(tn) => Some(resolve(tn)?),
                None if !is_interface => self.inner.classes.by_fqcn_str("java.lang.Object"),
                None => None,
            };
            info.interfaces = interfaces
                .iter()
                .map(resolve)
                .collect::<Result<Vec<_>, _>>()?;
        }

        let Some(tree) = body_tree else {
            return Ok(());
        };
        let pair = self.env_for_body(tree.span());
        // Record per-class metadata before parsing members, so nested
        // lookups see it.
        let mut class_ctx = ctx.clone();
        class_ctx
            .local_classes
            .push((self.inner.classes.info(class).borrow().simple, class));
        self.inner.class_meta.borrow_mut().insert(
            class,
            ClassMeta {
                env: pair.clone(),
                ctx: class_ctx.clone(),
            },
        );
        self.inner.interp.set_class_ctx(class, class_ctx.clone());

        let cx = Cx {
            cx: self.inner.clone(),
            pair: pair.clone(),
            ctx: class_ctx.clone(),
            class: Some(class),
            scope: Rc::new(RefCell::new(Scope::new())),
        };
        let goal = pair
            .grammar
            .nt_for_kind(NodeKind::ClassBody)
            .expect("ClassBody nt");
        // Class-body cache: under the pristine base environment the member
        // list is a pure function of the body tree; replay it (with fresh
        // lazy cells bound to *this* class) instead of re-parsing.
        let cache = self.inner.options.force_cache.clone();
        let body_key = match &cache {
            Some(_)
                if (pair.grammar.content_hash(), pair.denv.version())
                    == self.inner.pristine_env =>
            {
                Some(crate::fingerprint::delim_tree_hash(&tree))
            }
            _ => None,
        };
        // Templates are stored class-agnostic (`class: None` payloads):
        // class ids are per-compiler and shift under edits, so the borrower
        // rebinds every lazy to its own class id here.
        let fresh_payload = Rc::new(crate::driver::LazyEnvPayload {
            pair: pair.clone(),
            ctx: class_ctx.clone(),
            class: Some(class),
        });
        let cached_members = match (&cache, body_key) {
            (Some(c), Some(key)) => c.get_body(key).and_then(|template| {
                crate::driver::refresh_members(
                    &template,
                    self.inner.pristine_env,
                    &fresh_payload,
                    None,
                )
            }),
            _ => None,
        };
        let members_node = if let Some(m) = cached_members {
            maya_telemetry::count(maya_telemetry::Counter::ClassBodyCacheHits);
            m
        } else {
            let deps_before = self.inner.dep_log.borrow().len();
            let diags_before = self
                .inner
                .diags
                .borrow()
                .as_ref()
                .map(|d| (d.error_count(), d.warning_count()));
            let members_node = cx.parse_trees(&tree.trees, goal)?;
            let diags_after = self
                .inner
                .diags
                .borrow()
                .as_ref()
                .map(|d| (d.error_count(), d.warning_count()));
            if let (Some(c), Some(key)) = (&cache, body_key) {
                let global = self.inner.global.borrow();
                let still_pristine = (global.grammar.content_hash(), global.denv.version())
                    == self.inner.pristine_env;
                drop(global);
                if still_pristine
                    && self.inner.dep_log.borrow().len() == deps_before
                    && diags_before == diags_after
                {
                    let canonical = Rc::new(crate::driver::LazyEnvPayload {
                        pair: pair.clone(),
                        ctx: ResolveCtx::default(),
                        class: None,
                    });
                    if let Some(template) = crate::driver::refresh_members(
                        &members_node,
                        self.inner.pristine_env,
                        &canonical,
                        Some(class),
                    ) {
                        c.insert_body(key, template);
                    }
                }
            }
            members_node
        };
        let members = match members_node {
            Node::Decls(d) => d,
            Node::List(items) => items
                .into_iter()
                .filter_map(|n| match n {
                    Node::Decl(d) => Some(d),
                    _ => None,
                })
                .collect(),
            _ => {
                return Err(CompileError::new(
                    "internal: class body shape",
                    tree.span(),
                ))
            }
        };
        self.install_members(class, &members, &class_ctx)?;
        Ok(())
    }

    fn install_members(
        &self,
        class: ClassId,
        members: &[Decl],
        ctx: &ResolveCtx,
    ) -> Result<(), CompileError> {
        let classes = &self.inner.classes;
        let simple = classes.info(class).borrow().simple;
        for m in members {
            match m {
                Decl::Method(md) => {
                    let ret = classes.resolve_type_name(&md.ret, ctx)?;
                    let mut params = Vec::new();
                    let mut names = Vec::new();
                    let mut specializers = Vec::new();
                    for f in &md.formals {
                        params.push(classes.resolve_type_name(&f.ty, ctx)?);
                        names.push(f.name.sym);
                        specializers.push(match &f.specializer {
                            Some(tn) => Some(classes.resolve_type_name(tn, ctx)?),
                            None => None,
                        });
                    }
                    classes.add_method(
                        class,
                        MethodInfo {
                            name: md.name.sym,
                            params,
                            param_names: names,
                            ret,
                            modifiers: md.modifiers,
                            body: md.body.clone(),
                            native: None,
                            specializers,
                        },
                    );
                }
                Decl::Ctor(cd) => {
                    if cd.name.sym != simple {
                        return Err(CompileError::new(
                            format!(
                                "constructor name {} does not match class {}",
                                cd.name, simple
                            ),
                            cd.span,
                        ));
                    }
                    let mut params = Vec::new();
                    let mut names = Vec::new();
                    for f in &cd.formals {
                        params.push(classes.resolve_type_name(&f.ty, ctx)?);
                        names.push(f.name.sym);
                    }
                    classes.add_ctor(
                        class,
                        CtorInfo {
                            params,
                            param_names: names,
                            modifiers: cd.modifiers,
                            body: Some(cd.body.clone()),
                            native: None,
                        },
                    );
                }
                Decl::Field(fd) => {
                    let ty = classes.resolve_type_name(&fd.ty, ctx)?;
                    classes.add_field(
                        class,
                        FieldInfo {
                            name: fd.name.sym,
                            ty,
                            modifiers: fd.modifiers,
                            init: fd.init.clone(),
                        },
                    );
                }
                Decl::Use(_, inner) => {
                    self.install_members(class, inner, ctx)?;
                }
                Decl::Production(p) => {
                    crate::extension::register_production_decl(&self.inner, p, ctx)?;
                }
                Decl::Mayan(md) => {
                    crate::extension::register_mayan_decl(&self.inner, md, ctx, None)?;
                }
                Decl::Empty | Decl::Import(_) => {}
                // Poison node from parser recovery: already reported.
                Decl::Error(_) => {}
                other => {
                    return Err(CompileError::new(
                        format!("unsupported member {}", other.node_kind().name()),
                        Span::DUMMY,
                    ))
                }
            }
        }
        Ok(())
    }

    /// Forces and type-checks every member of a class.
    fn check_class(&self, class: ClassId) -> Result<(), CompileError> {
        self.check_class_with(class, None)
    }

    /// [`Compiler::check_class`], continuing past member errors when a
    /// diagnostics sink is given (each member fails independently).
    fn check_class_with(
        &self,
        class: ClassId,
        diags: Option<&Diagnostics>,
    ) -> Result<(), CompileError> {
        // Ok(true) = reported and at the error cap, stop checking.
        let settle = |r: Result<(), CompileError>| -> Result<bool, CompileError> {
            match r {
                Ok(()) => Ok(false),
                Err(e) => match diags {
                    Some(d) => {
                        d.compile_error(e);
                        Ok(d.at_cap())
                    }
                    None => Err(e),
                },
            }
        };
        let meta = self
            .inner
            .class_meta
            .borrow()
            .get(&class)
            .cloned()
            .unwrap_or_else(|| ClassMeta {
                env: self.inner.global.borrow().clone(),
                ctx: ResolveCtx::default(),
            });
        let classes = &self.inner.classes;
        let (methods, ctors, fields): (Vec<MethodInfo>, Vec<CtorInfo>, Vec<FieldInfo>) = {
            let info = classes.info(class);
            let info = info.borrow();
            (
                info.methods.clone(),
                info.ctors.clone(),
                info.fields.clone(),
            )
        };
        let cxc = Cx {
            cx: self.inner.clone(),
            pair: meta.env.clone(),
            ctx: meta.ctx.clone(),
            class: Some(class),
            scope: Rc::new(RefCell::new(Scope::new())),
        };
        let check_body = |body: &LazyNode,
                          params: &[(Symbol, Type)],
                          ret: Type,
                          is_static: bool|
         -> Result<(), CompileError> {
            let mut scope = Scope::new();
            scope.this_class = Some(class);
            scope.static_ctx = is_static;
            scope.return_type = ret;
            for (name, ty) in params {
                scope.declare(
                    *name,
                    VarBinding {
                        ty: ty.clone(),
                        kind: VarKind::Param,
                        is_final: false,
                    },
                );
            }
            // Force with a scratch copy (parse-time dispatch bindings),
            // then check with the clean scope.
            let cell = Rc::new(RefCell::new(scope.clone()));
            force_lazy(&self.inner, body, cell)?;
            let node = body
                .forced_node()
                .ok_or_else(|| CompileError::new("internal: body not forced", Span::DUMMY))?;
            let mut host = ForceHost { c: cxc.clone() };
            let mut checker = Checker::new(classes, &meta.ctx, &mut host);
            let mut clean_scope = scope;
            checker.check_node(&node, &mut clean_scope)?;
            Ok(())
        };

        for m in &methods {
            if let Some(body) = &m.body {
                let params: Vec<(Symbol, Type)> = m
                    .param_names
                    .iter()
                    .copied()
                    .zip(m.params.iter().cloned())
                    .collect();
                if settle(check_body(body, &params, m.ret.clone(), m.is_static()))? {
                    return Ok(());
                }
            }
        }
        for c in &ctors {
            if let Some(body) = &c.body {
                let params: Vec<(Symbol, Type)> = c
                    .param_names
                    .iter()
                    .copied()
                    .zip(c.params.iter().cloned())
                    .collect();
                if settle(check_body(body, &params, Type::Void, false))? {
                    return Ok(());
                }
            }
        }
        for f in &fields {
            if let Some(init) = &f.init {
                let r = (|| -> Result<(), CompileError> {
                    let mut scope = Scope::new();
                    scope.this_class = Some(class);
                    scope.static_ctx = f.modifiers.is_static();
                    let mut host = ForceHost { c: cxc.clone() };
                    let mut checker = Checker::new(classes, &meta.ctx, &mut host);
                    let ty = checker.type_of_expr(init, &mut scope)?;
                    if !classes.is_assignable(&ty, &f.ty) {
                        return Err(CompileError::new(
                            format!(
                                "cannot initialize field {} : {} with {}",
                                f.name,
                                classes.describe(&f.ty),
                                classes.describe(&ty)
                            ),
                            init.span,
                        ));
                    }
                    Ok(())
                })();
                if settle(r)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Compiles everything and runs `Class.main()`, returning captured
    /// output.
    ///
    /// # Errors
    ///
    /// Compile errors, runtime errors, and uncaught exceptions.
    pub fn run_main(&self, class_fqcn: &str) -> Result<String, CompileError> {
        if let Err(m) = crate::faults::trip("interp") {
            return Err(CompileError::new(m, Span::DUMMY));
        }
        self.inner.interp.reset_steps();
        Ok(self.inner.interp.run_main(class_fqcn)?)
    }

    fn install_runtime_forcer(&self) {
        let inner = self.inner.clone();
        self.inner.interp.set_forcer(Rc::new(move |_i, lazy, class| {
            let meta = inner.class_meta.borrow().get(&class).cloned();
            let _ = meta; // env is captured in the lazy payload itself
            let cell = Rc::new(RefCell::new(Scope::new()));
            force_lazy(&inner, lazy, cell)
                .map_err(|e| maya_interp::RuntimeError::new(e.message, e.span))
        }));
    }

    /// Points the interpreter's error-frame provider at the live Mayan
    /// expansion stack, so runtime errors raised inside `expand` bodies
    /// carry "in expansion of ..." notes.
    fn install_frame_provider(&self) {
        let w = Rc::downgrade(&self.inner);
        self.inner.interp.set_frame_provider(Rc::new(move || {
            let Some(inner) = w.upgrade() else {
                return Vec::new();
            };
            let sm = inner.sm.borrow();
            let frames: Vec<String> = inner
                .expand_stack
                .borrow()
                .iter()
                .rev()
                .map(|s| {
                    let (mayan, _) = &s.chain[s.idx];
                    format!("Mayan {} at {}", mayan.name, sm.describe(s.span))
                })
                .collect();
            frames
        }));
    }

    /// One-call convenience for tests and examples: add a source, compile,
    /// run `main`.
    ///
    /// # Errors
    ///
    /// See [`Compiler::add_source`], [`Compiler::compile`],
    /// [`Compiler::run_main`].
    pub fn compile_and_run(&self, name: &str, text: &str, main: &str) -> Result<String, CompileError> {
        self.add_source(name, text)?;
        self.compile()?;
        self.run_main(main)
    }
}
