//! The `Compiler`: mayac's pipeline (file reader → class shaper → class
//! compiler) and the embedding API.

use crate::base::Base;
use crate::driver::{force_lazy, Cx, EnvPair, ForceHost};
use crate::CompileError;
use maya_ast::{
    Decl, Ident, LazyNode, Node, NodeKind, TypeName,
};
use maya_dispatch::{DestructorFn, DispatchError, ImportEnv, Mayan, MetaProgram};
use maya_grammar::{Grammar, GrammarBuilder, ProdId, RhsItem};
use maya_interp::{install_runtime, Interp};
use maya_lexer::{stream_lex, FileId, SourceMap, Span, Symbol};
use maya_template::__private_fresh::FreshNames;
use maya_types::{
    Checker, ClassId, ClassInfo, ClassTable, CtorInfo, FieldInfo, MethodInfo, ResolveCtx, Scope,
    Type, VarBinding, VarKind,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Options for a compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    /// Echo interpreted output to the real stdout.
    pub echo_output: bool,
    /// Metaprogram names imported for every unit (the paper's `-use`
    /// command-line option, §3.3).
    pub uses: Vec<String>,
}

/// Per-class compile metadata.
#[derive(Clone)]
pub(crate) struct ClassMeta {
    pub env: EnvPair,
    pub ctx: ResolveCtx,
}

struct Unit {
    #[allow(dead_code)]
    file: FileId,
    ctx: ResolveCtx,
    package: Option<String>,
    decls: Vec<Decl>,
}

/// Shared compiler state (reference-counted so drivers, Mayan bodies, and
/// hooks can all hold it).
pub struct CompilerInner {
    pub classes: Rc<ClassTable>,
    pub interp: Rc<Interp>,
    pub sm: RefCell<SourceMap>,
    pub base: Base,
    pub global: RefCell<EnvPair>,
    fresh: RefCell<FreshNames>,
    registry: RefCell<HashMap<String, Rc<dyn MetaProgram>>>,
    pub(crate) class_meta: RefCell<HashMap<ClassId, ClassMeta>>,
    /// Environment snapshots captured when class declarations were parsed,
    /// keyed by the body tree's span start (a `use` earlier in the file may
    /// have extended the grammar the body must be shaped under).
    pub(crate) decl_envs: RefCell<HashMap<(maya_lexer::FileId, u32), EnvPair>>,
    units: RefCell<Vec<Unit>>,
    /// Class-processing hooks, run as a class declaration leaves the shaper
    /// (paper §4: "Maya provides class-processing hooks").
    pub class_hooks: RefCell<Vec<Rc<dyn Fn(&Rc<CompilerInner>, ClassId) -> Result<(), CompileError>>>>,
    options: CompileOptions,
    uses_applied: RefCell<bool>,
    /// Source-level `abstract … syntax(…)` declarations, in declaration
    /// order (extension compilation; see `source_mayan`).
    pub(crate) declared_prods: RefCell<Vec<(maya_ast::NodeKind, Vec<RhsItem>)>>,
    /// The stack of active Mayan expansions; the `maya.tree` bridge reads
    /// the top to service `nextRewrite`, templates, and the reflection API
    /// from interpreted metaprogram bodies.
    pub expand_stack: RefCell<Vec<crate::driver::ExpandSnapshot>>,
}

impl CompilerInner {
    /// A fresh `base$N` name, unique in this compilation.
    pub fn fresh(&self, base: &str) -> Symbol {
        self.fresh.borrow_mut().fresh(base)
    }

    /// Registers an importable metaprogram under a dotted name.
    pub fn register_metaprogram(&self, name: &str, program: Rc<dyn MetaProgram>) {
        self.registry.borrow_mut().insert(name.to_owned(), program);
    }

    /// Looks up a metaprogram by the name used in a `use` directive.
    pub fn lookup_metaprogram(&self, path: &[Ident]) -> Option<Rc<dyn MetaProgram>> {
        let dotted: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
        let dotted = dotted.join(".");
        self.registry.borrow().get(&dotted).cloned()
    }

    /// Runs a metaprogram against an environment pair, producing the
    /// extended pair (tables are validated eagerly so conflicts are
    /// reported at the import).
    ///
    /// # Errors
    ///
    /// Reports grammar conflicts and metaprogram failures.
    pub fn run_import(
        &self,
        pair: &EnvPair,
        program: &dyn MetaProgram,
    ) -> Result<EnvPair, DispatchError> {
        let mut env = CoreImportEnv {
            grammar: pair.grammar.clone(),
            builder: None,
            denv: pair.denv.extend(),
        };
        program.run(&mut env)?;
        let grammar = match env.builder {
            Some(b) => {
                let g = b.finish();
                g.tables()
                    .map_err(|e| DispatchError::new(e.to_string(), Span::DUMMY))?;
                g
            }
            None => env.grammar,
        };
        Ok(EnvPair {
            grammar,
            denv: env.denv.finish(),
        })
    }

    /// Resolves and runs the metaprogram behind `use path;`.
    ///
    /// # Errors
    ///
    /// Unknown names and import failures.
    pub fn import_named(
        &self,
        pair: &EnvPair,
        _ctx: &ResolveCtx,
        path: &[Ident],
        span: Span,
    ) -> Result<EnvPair, DispatchError> {
        let program = self.lookup_metaprogram(path).ok_or_else(|| {
            let dotted: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
            DispatchError::new(
                format!("unknown metaprogram {} in use directive", dotted.join(".")),
                span,
            )
        })?;
        let new = self.run_import(pair, program.as_ref())?;
        maya_telemetry::trace(maya_telemetry::TraceKind::Import, || {
            let dotted: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
            (
                dotted.join("."),
                format!(
                    "metaprogram imported; grammar now has {} production(s)",
                    new.grammar.productions().len()
                ),
            )
        });
        Ok(new)
    }
}

struct CoreImportEnv {
    grammar: Grammar,
    builder: Option<GrammarBuilder>,
    denv: maya_dispatch::EnvBuilder,
}

impl ImportEnv for CoreImportEnv {
    fn add_production(&mut self, lhs: NodeKind, rhs: &[RhsItem]) -> Result<ProdId, DispatchError> {
        let b = self
            .builder
            .get_or_insert_with(|| self.grammar.extend());
        b.add_production(lhs, rhs, None)
            .map_err(|e| DispatchError::new(e.to_string(), Span::DUMMY))
    }

    fn import_mayan(&mut self, mayan: Rc<Mayan>) {
        self.denv.import(mayan);
    }

    fn register_destructor(&mut self, prod: ProdId, produced: NodeKind, f: DestructorFn) {
        self.denv.register_destructor(prod, produced, f);
    }

    fn grammar(&self) -> Grammar {
        self.grammar.clone()
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The Maya compiler.
///
/// # Example
///
/// ```
/// use maya_core::Compiler;
///
/// let compiler = Compiler::new();
/// let out = compiler
///     .compile_and_run(
///         "Main.maya",
///         r#"class Main { static void main() { System.out.println(6 * 7); } }"#,
///         "Main",
///     )
///     .unwrap();
/// assert_eq!(out, "42\n");
/// ```
#[derive(Clone)]
pub struct Compiler {
    inner: Rc<CompilerInner>,
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler::new()
    }
}

impl Compiler {
    /// Creates a compiler with default options.
    pub fn new() -> Compiler {
        Compiler::with_options(CompileOptions::default())
    }

    /// Creates a compiler.
    pub fn with_options(options: CompileOptions) -> Compiler {
        let classes = Rc::new(ClassTable::new());
        install_runtime(&classes);
        let interp = Rc::new(Interp::new(classes.clone()));
        let base = Base::cached();
        let global = EnvPair {
            grammar: base.grammar.clone(),
            denv: base.denv.clone(),
        };
        let inner = Rc::new(CompilerInner {
            classes,
            interp,
            sm: RefCell::new(SourceMap::new()),
            base,
            global: RefCell::new(global),
            fresh: RefCell::new(FreshNames::new()),
            registry: RefCell::new(HashMap::new()),
            class_meta: RefCell::new(HashMap::new()),
            decl_envs: RefCell::new(HashMap::new()),
            units: RefCell::new(Vec::new()),
            class_hooks: RefCell::new(Vec::new()),
            options,
            uses_applied: RefCell::new(false),
            declared_prods: RefCell::new(Vec::new()),
            expand_stack: RefCell::new(Vec::new()),
        });
        crate::extension::install_tree_bridge(&inner);
        let compiler = Compiler { inner };
        compiler.install_runtime_forcer();
        compiler
    }

    /// The shared state (for extension crates).
    pub fn inner(&self) -> &Rc<CompilerInner> {
        &self.inner
    }

    /// The class table.
    pub fn classes(&self) -> Rc<ClassTable> {
        self.inner.classes.clone()
    }

    /// The interpreter.
    pub fn interp(&self) -> Rc<Interp> {
        self.inner.interp.clone()
    }

    /// The base environment (for tests and extension authors).
    pub fn base(&self) -> &Base {
        &self.inner.base
    }

    /// Registers a compiled extension under a dotted name, making it
    /// importable with `use name;`.
    pub fn register_metaprogram(&self, name: &str, program: Rc<dyn MetaProgram>) {
        self.inner.register_metaprogram(name, program);
    }

    /// Adds a class-processing hook.
    pub fn add_class_hook(
        &self,
        hook: Rc<dyn Fn(&Rc<CompilerInner>, ClassId) -> Result<(), CompileError>>,
    ) {
        self.inner.class_hooks.borrow_mut().push(hook);
    }

    /// Applies `use name;` to the *global* environment (the `-use`
    /// command-line option).
    ///
    /// # Errors
    ///
    /// Unknown names and import failures.
    pub fn use_globally(&self, name: &str) -> Result<(), CompileError> {
        let path: Vec<Ident> = name.split('.').map(Ident::from_str).collect();
        let pair = self.inner.global.borrow().clone();
        let new = self
            .inner
            .import_named(&pair, &ResolveCtx::default(), &path, Span::DUMMY)?;
        *self.inner.global.borrow_mut() = new;
        Ok(())
    }

    /// Reads one source file: lexes, parses the compilation unit (class
    /// bodies are left raw for the shaper), records imports.
    ///
    /// # Errors
    ///
    /// Lexical and syntax errors.
    pub fn add_source(&self, name: &str, text: &str) -> Result<(), CompileError> {
        if !*self.inner.uses_applied.borrow() {
            *self.inner.uses_applied.borrow_mut() = true;
            for u in &self.inner.options.uses.clone() {
                self.use_globally(u)?;
            }
        }
        let file = self.inner.sm.borrow_mut().add_file(name, text);
        let trees = {
            let sm = self.inner.sm.borrow();
            stream_lex(&sm, file)?
        };
        let pair = self.inner.global.borrow().clone();
        let cx = Cx {
            cx: self.inner.clone(),
            pair: pair.clone(),
            ctx: ResolveCtx::default(),
            class: None,
            scope: Rc::new(RefCell::new(Scope::new())),
        };
        let goal = pair
            .grammar
            .nt_for_kind(NodeKind::CompilationUnit)
            .expect("CompilationUnit nt");
        let unit_node = cx.parse_trees(&trees, goal)?;
        let Node::List(parts) = unit_node else {
            return Err(CompileError::new("internal: compilation unit shape", Span::DUMMY));
        };
        let package = match &parts[0] {
            Node::Name(p) => {
                let s: Vec<&str> = p.iter().map(|i| i.as_str()).collect();
                Some(s.join("."))
            }
            _ => None,
        };
        let mut ctx = ResolveCtx::default();
        if let Some(p) = &package {
            ctx.package = Some(maya_lexer::sym(p));
        }
        if let Node::List(imports) = &parts[1] {
            for imp in imports {
                if let Node::Decl(Decl::Import(i)) = imp {
                    let s: Vec<&str> = i.path.iter().map(|x| x.as_str()).collect();
                    if i.wildcard {
                        ctx.wildcard_imports.push(maya_lexer::sym(&s.join(".")));
                    } else {
                        ctx.single_imports.push(maya_lexer::sym(&s.join(".")));
                    }
                }
            }
        }
        // Always visible packages.
        ctx.wildcard_imports.push(maya_lexer::sym("java.lang"));
        let decls = match &parts[2] {
            Node::Decls(d) => d.clone(),
            _ => return Err(CompileError::new("internal: declarations shape", Span::DUMMY)),
        };
        self.inner.units.borrow_mut().push(Unit {
            file,
            ctx,
            package,
            decls,
        });
        Ok(())
    }

    /// Runs the shaper and class compiler over everything added so far.
    ///
    /// # Errors
    ///
    /// Any compile error in any unit.
    pub fn compile(&self) -> Result<(), CompileError> {
        // Pass 1: declare every class (forward references).
        let mut shaped: Vec<(ClassId, Decl, ResolveCtx, usize)> = Vec::new();
        let unit_count = self.inner.units.borrow().len();
        for ui in 0..unit_count {
            let (decls, ctx, package) = {
                let units = self.inner.units.borrow();
                (
                    units[ui].decls.clone(),
                    units[ui].ctx.clone(),
                    units[ui].package.clone(),
                )
            };
            self.declare_decls(&decls, &ctx, package.as_deref(), ui, &mut shaped)?;
        }
        // Pass 2: shape each class (parse bodies, compute member types).
        for (class, decl, ctx, _ui) in &shaped {
            self.shape_class(*class, decl, ctx)?;
        }
        // Pass 3: class-processing hooks.
        let hooks = self.inner.class_hooks.borrow().clone();
        for (class, ..) in &shaped {
            for h in &hooks {
                h(&self.inner, *class)?;
            }
        }
        // Pass 4: compile (force + check) every member.
        for (class, ..) in &shaped {
            self.check_class(*class)?;
        }
        Ok(())
    }

    fn declare_decls(
        &self,
        decls: &[Decl],
        ctx: &ResolveCtx,
        package: Option<&str>,
        ui: usize,
        shaped: &mut Vec<(ClassId, Decl, ResolveCtx, usize)>,
    ) -> Result<(), CompileError> {
        for d in decls {
            match d {
                Decl::Class(c) => {
                    let fqcn = match package {
                        Some(p) => format!("{p}.{}", c.name),
                        None => c.name.to_string(),
                    };
                    let id = self
                        .inner
                        .classes
                        .declare(ClassInfo::new(&fqcn, false))
                        .map_err(|e| CompileError::new(e.message, c.span))?;
                    shaped.push((id, d.clone(), ctx.clone(), ui));
                }
                Decl::Interface(i) => {
                    let fqcn = match package {
                        Some(p) => format!("{p}.{}", i.name),
                        None => i.name.to_string(),
                    };
                    let id = self
                        .inner
                        .classes
                        .declare(ClassInfo::new(&fqcn, true))
                        .map_err(|e| CompileError::new(e.message, i.span))?;
                    shaped.push((id, d.clone(), ctx.clone(), ui));
                }
                Decl::Use(_, inner) => {
                    self.declare_decls(inner, ctx, package, ui, shaped)?;
                }
                Decl::Production(p) => {
                    crate::extension::register_production_decl(&self.inner, p, ctx)?;
                }
                Decl::Mayan(m) => {
                    crate::extension::register_mayan_decl(&self.inner, m, ctx, package)?;
                }
                Decl::Import(_) | Decl::Empty => {}
                other => {
                    return Err(CompileError::new(
                        format!(
                            "unsupported top-level declaration {}",
                            other.node_kind().name()
                        ),
                        Span::DUMMY,
                    ))
                }
            }
        }
        Ok(())
    }

    fn env_for_body(&self, tree_span: Span) -> EnvPair {
        if !tree_span.is_dummy() {
            if let Some(p) = self
                .inner
                .decl_envs
                .borrow()
                .get(&(tree_span.file, tree_span.lo))
            {
                return p.clone();
            }
        }
        self.inner.global.borrow().clone()
    }

    fn shape_class(&self, class: ClassId, decl: &Decl, ctx: &ResolveCtx) -> Result<(), CompileError> {
        let (body_tree, superclass, interfaces, modifiers, is_interface) = match decl {
            Decl::Class(c) => (
                c.body_tree.clone(),
                c.superclass.clone(),
                c.interfaces.clone(),
                c.modifiers,
                false,
            ),
            Decl::Interface(i) => (
                i.body_tree.clone(),
                None,
                i.extends.clone(),
                i.modifiers,
                true,
            ),
            _ => return Ok(()),
        };
        let resolve = |tn: &TypeName| -> Result<ClassId, CompileError> {
            match self.inner.classes.resolve_type_name(tn, ctx)? {
                Type::Class(c) => Ok(c),
                other => Err(CompileError::new(
                    format!(
                        "{} is not a class type",
                        self.inner.classes.describe(&other)
                    ),
                    tn.span,
                )),
            }
        };
        {
            let info = self.inner.classes.info(class);
            let mut info = info.borrow_mut();
            info.modifiers = modifiers;
            info.superclass = match &superclass {
                Some(tn) => Some(resolve(tn)?),
                None if !is_interface => self.inner.classes.by_fqcn_str("java.lang.Object"),
                None => None,
            };
            info.interfaces = interfaces
                .iter()
                .map(resolve)
                .collect::<Result<Vec<_>, _>>()?;
        }

        let Some(tree) = body_tree else {
            return Ok(());
        };
        let pair = self.env_for_body(tree.span());
        // Record per-class metadata before parsing members, so nested
        // lookups see it.
        let mut class_ctx = ctx.clone();
        class_ctx
            .local_classes
            .push((self.inner.classes.info(class).borrow().simple, class));
        self.inner.class_meta.borrow_mut().insert(
            class,
            ClassMeta {
                env: pair.clone(),
                ctx: class_ctx.clone(),
            },
        );
        self.inner.interp.set_class_ctx(class, class_ctx.clone());

        let cx = Cx {
            cx: self.inner.clone(),
            pair: pair.clone(),
            ctx: class_ctx.clone(),
            class: Some(class),
            scope: Rc::new(RefCell::new(Scope::new())),
        };
        let goal = pair
            .grammar
            .nt_for_kind(NodeKind::ClassBody)
            .expect("ClassBody nt");
        let members_node = cx.parse_trees(&tree.trees, goal)?;
        let members = match members_node {
            Node::Decls(d) => d,
            Node::List(items) => items
                .into_iter()
                .filter_map(|n| match n {
                    Node::Decl(d) => Some(d),
                    _ => None,
                })
                .collect(),
            _ => {
                return Err(CompileError::new(
                    "internal: class body shape",
                    tree.span(),
                ))
            }
        };
        self.install_members(class, &members, &class_ctx)?;
        Ok(())
    }

    fn install_members(
        &self,
        class: ClassId,
        members: &[Decl],
        ctx: &ResolveCtx,
    ) -> Result<(), CompileError> {
        let classes = &self.inner.classes;
        let simple = classes.info(class).borrow().simple;
        for m in members {
            match m {
                Decl::Method(md) => {
                    let ret = classes.resolve_type_name(&md.ret, ctx)?;
                    let mut params = Vec::new();
                    let mut names = Vec::new();
                    let mut specializers = Vec::new();
                    for f in &md.formals {
                        params.push(classes.resolve_type_name(&f.ty, ctx)?);
                        names.push(f.name.sym);
                        specializers.push(match &f.specializer {
                            Some(tn) => Some(classes.resolve_type_name(tn, ctx)?),
                            None => None,
                        });
                    }
                    classes.add_method(
                        class,
                        MethodInfo {
                            name: md.name.sym,
                            params,
                            param_names: names,
                            ret,
                            modifiers: md.modifiers,
                            body: md.body.clone(),
                            native: None,
                            specializers,
                        },
                    );
                }
                Decl::Ctor(cd) => {
                    if cd.name.sym != simple {
                        return Err(CompileError::new(
                            format!(
                                "constructor name {} does not match class {}",
                                cd.name, simple
                            ),
                            cd.span,
                        ));
                    }
                    let mut params = Vec::new();
                    let mut names = Vec::new();
                    for f in &cd.formals {
                        params.push(classes.resolve_type_name(&f.ty, ctx)?);
                        names.push(f.name.sym);
                    }
                    classes.add_ctor(
                        class,
                        CtorInfo {
                            params,
                            param_names: names,
                            modifiers: cd.modifiers,
                            body: Some(cd.body.clone()),
                            native: None,
                        },
                    );
                }
                Decl::Field(fd) => {
                    let ty = classes.resolve_type_name(&fd.ty, ctx)?;
                    classes.add_field(
                        class,
                        FieldInfo {
                            name: fd.name.sym,
                            ty,
                            modifiers: fd.modifiers,
                            init: fd.init.clone(),
                        },
                    );
                }
                Decl::Use(_, inner) => {
                    self.install_members(class, inner, ctx)?;
                }
                Decl::Production(p) => {
                    crate::extension::register_production_decl(&self.inner, p, ctx)?;
                }
                Decl::Mayan(md) => {
                    crate::extension::register_mayan_decl(&self.inner, md, ctx, None)?;
                }
                Decl::Empty | Decl::Import(_) => {}
                other => {
                    return Err(CompileError::new(
                        format!("unsupported member {}", other.node_kind().name()),
                        Span::DUMMY,
                    ))
                }
            }
        }
        Ok(())
    }

    /// Forces and type-checks every member of a class.
    fn check_class(&self, class: ClassId) -> Result<(), CompileError> {
        let meta = self
            .inner
            .class_meta
            .borrow()
            .get(&class)
            .cloned()
            .unwrap_or_else(|| ClassMeta {
                env: self.inner.global.borrow().clone(),
                ctx: ResolveCtx::default(),
            });
        let classes = &self.inner.classes;
        let (methods, ctors, fields): (Vec<MethodInfo>, Vec<CtorInfo>, Vec<FieldInfo>) = {
            let info = classes.info(class);
            let info = info.borrow();
            (
                info.methods.clone(),
                info.ctors.clone(),
                info.fields.clone(),
            )
        };
        let cxc = Cx {
            cx: self.inner.clone(),
            pair: meta.env.clone(),
            ctx: meta.ctx.clone(),
            class: Some(class),
            scope: Rc::new(RefCell::new(Scope::new())),
        };
        let check_body = |body: &LazyNode,
                          params: &[(Symbol, Type)],
                          ret: Type,
                          is_static: bool|
         -> Result<(), CompileError> {
            let mut scope = Scope::new();
            scope.this_class = Some(class);
            scope.static_ctx = is_static;
            scope.return_type = ret;
            for (name, ty) in params {
                scope.declare(
                    *name,
                    VarBinding {
                        ty: ty.clone(),
                        kind: VarKind::Param,
                        is_final: false,
                    },
                );
            }
            // Force with a scratch copy (parse-time dispatch bindings),
            // then check with the clean scope.
            let cell = Rc::new(RefCell::new(scope.clone()));
            force_lazy(&self.inner, body, cell)?;
            let node = body
                .forced_node()
                .ok_or_else(|| CompileError::new("internal: body not forced", Span::DUMMY))?;
            let mut host = ForceHost { c: cxc.clone() };
            let mut checker = Checker::new(classes, &meta.ctx, &mut host);
            let mut clean_scope = scope;
            checker.check_node(&node, &mut clean_scope)?;
            Ok(())
        };

        for m in &methods {
            if let Some(body) = &m.body {
                let params: Vec<(Symbol, Type)> = m
                    .param_names
                    .iter()
                    .copied()
                    .zip(m.params.iter().cloned())
                    .collect();
                check_body(body, &params, m.ret.clone(), m.is_static())?;
            }
        }
        for c in &ctors {
            if let Some(body) = &c.body {
                let params: Vec<(Symbol, Type)> = c
                    .param_names
                    .iter()
                    .copied()
                    .zip(c.params.iter().cloned())
                    .collect();
                check_body(body, &params, Type::Void, false)?;
            }
        }
        for f in &fields {
            if let Some(init) = &f.init {
                let mut scope = Scope::new();
                scope.this_class = Some(class);
                scope.static_ctx = f.modifiers.is_static();
                let mut host = ForceHost { c: cxc.clone() };
                let mut checker = Checker::new(classes, &meta.ctx, &mut host);
                let ty = checker.type_of_expr(init, &mut scope)?;
                if !classes.is_assignable(&ty, &f.ty) {
                    return Err(CompileError::new(
                        format!(
                            "cannot initialize field {} : {} with {}",
                            f.name,
                            classes.describe(&f.ty),
                            classes.describe(&ty)
                        ),
                        init.span,
                    ));
                }
            }
        }
        Ok(())
    }

    /// Compiles everything and runs `Class.main()`, returning captured
    /// output.
    ///
    /// # Errors
    ///
    /// Compile errors, runtime errors, and uncaught exceptions.
    pub fn run_main(&self, class_fqcn: &str) -> Result<String, CompileError> {
        Ok(self.inner.interp.run_main(class_fqcn)?)
    }

    fn install_runtime_forcer(&self) {
        let inner = self.inner.clone();
        self.inner.interp.set_forcer(Rc::new(move |_i, lazy, class| {
            let meta = inner.class_meta.borrow().get(&class).cloned();
            let _ = meta; // env is captured in the lazy payload itself
            let cell = Rc::new(RefCell::new(Scope::new()));
            force_lazy(&inner, lazy, cell)
                .map_err(|e| maya_interp::RuntimeError::new(e.message, e.span))
        }));
    }

    /// One-call convenience for tests and examples: add a source, compile,
    /// run `main`.
    ///
    /// # Errors
    ///
    /// See [`Compiler::add_source`], [`Compiler::compile`],
    /// [`Compiler::run_main`].
    pub fn compile_and_run(&self, name: &str, text: &str, main: &str) -> Result<String, CompileError> {
        self.add_source(name, text)?;
        self.compile()?;
        self.run_main(main)
    }
}
