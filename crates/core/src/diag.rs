//! Multi-error diagnostics.
//!
//! The compiler historically stopped at the first `CompileError`. This
//! module is the accumulating replacement used at the driver boundary:
//! phases report into a shared [`Diagnostics`] sink and the driver keeps
//! going (parser recovery, per-class isolation) until the error budget is
//! exhausted, then renders every diagnostic at once — either as
//! `file:line:col: severity: message` lines or as a JSON document.
//!
//! Internal errors (messages starting with `internal:`) are promoted to
//! *internal compiler error* diagnostics that name the pipeline phase that
//! was running (from `maya_telemetry`) and carry a "please report" note.

use crate::error::CompileError;
use maya_lexer::{SourceMap, Span};
use maya_telemetry::{self as telemetry, json_string};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Compilation cannot succeed.
    Error,
    /// Suspicious but not fatal (fatal under `--deny-warnings`).
    Warning,
    /// Additional context attached to a preceding diagnostic.
    Note,
}

impl Severity {
    /// Lowercase label used in rendered output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One reported problem.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    pub span: Span,
    /// True for internal compiler errors (bugs in mayac, not in user code).
    pub ice: bool,
    /// Pipeline phase that was running when the problem was detected.
    pub phase: Option<&'static str>,
    /// Mayan expansion frames (innermost first), when the error surfaced
    /// inside a metaprogram.
    pub frames: Vec<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            ice: false,
            phase: None,
            frames: Vec::new(),
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(message, span)
        }
    }
}

/// Message prefix that marks a compiler bug rather than a user error.
const ICE_PREFIX: &str = "internal:";

struct State {
    diags: Vec<Diagnostic>,
    /// Errors beyond this count are dropped (the cap itself is reported).
    max_errors: usize,
    errors: usize,
    warnings: usize,
    deny_warnings: bool,
    /// Errors dropped because the cap was reached.
    suppressed: usize,
}

/// Accumulating diagnostic sink, cheaply clonable (shared handle).
#[derive(Clone)]
pub struct Diagnostics {
    state: Rc<RefCell<State>>,
}

impl Default for Diagnostics {
    fn default() -> Diagnostics {
        Diagnostics::new()
    }
}

impl Diagnostics {
    /// A sink with the default error budget (20, matching `--max-errors`).
    pub fn new() -> Diagnostics {
        Diagnostics::with_limits(20, false)
    }

    /// A sink with an explicit error cap and warning policy.
    pub fn with_limits(max_errors: usize, deny_warnings: bool) -> Diagnostics {
        Diagnostics {
            state: Rc::new(RefCell::new(State {
                diags: Vec::new(),
                max_errors: max_errors.max(1),
                errors: 0,
                warnings: 0,
                deny_warnings,
                suppressed: 0,
            })),
        }
    }

    /// Reports a diagnostic, applying the error cap and ICE promotion.
    pub fn report(&self, mut d: Diagnostic) {
        // Recovery sites report in place and still propagate a sentinel
        // failure; dropping it here prevents double reporting.
        if d.message == crate::error::ALREADY_REPORTED {
            return;
        }
        // Promote `internal:`-prefixed messages to ICEs tagged with the
        // phase that was running (sticky: the phase guard has usually
        // unwound by the time the error reaches the sink).
        if let Some(rest) = d.message.strip_prefix(ICE_PREFIX) {
            d.ice = true;
            d.message = rest.trim_start().to_owned();
        }
        if d.phase.is_none() {
            d.phase = telemetry::current_phase()
                .or_else(telemetry::last_phase)
                .map(|p| p.name());
        }
        let mut s = self.state.borrow_mut();
        // Adjacent-duplicate suppression: independent passes over the same
        // broken member tend to rediscover the identical failure.
        if let Some(last) = s.diags.last() {
            if last.severity == d.severity && last.message == d.message && last.span == d.span {
                return;
            }
        }
        match d.severity {
            Severity::Error => {
                if s.errors >= s.max_errors {
                    s.suppressed += 1;
                    return;
                }
                s.errors += 1;
            }
            Severity::Warning => s.warnings += 1,
            Severity::Note => {}
        }
        s.diags.push(d);
    }

    /// Reports a `CompileError` as an error diagnostic. Sentinels from
    /// recovery sites (already reported in place) are dropped.
    pub fn compile_error(&self, e: CompileError) {
        if e.is_reported_sentinel() {
            return;
        }
        self.report(Diagnostic::error(e.message, e.span));
    }

    /// Reports an error with a message and span.
    pub fn error(&self, message: impl Into<String>, span: Span) {
        self.report(Diagnostic::error(message, span));
    }

    /// Reports a warning with a message and span.
    pub fn warning(&self, message: impl Into<String>, span: Span) {
        self.report(Diagnostic::warning(message, span));
    }

    /// Number of errors reported so far (capped reports included).
    pub fn error_count(&self) -> usize {
        let s = self.state.borrow();
        s.errors + s.suppressed
    }

    /// Number of warnings reported so far.
    pub fn warning_count(&self) -> usize {
        self.state.borrow().warnings
    }

    /// True once the error budget is exhausted; the driver should stop
    /// starting new work (already-started work may still report).
    pub fn at_cap(&self) -> bool {
        let s = self.state.borrow();
        s.errors >= s.max_errors
    }

    /// True when compilation must fail: any error, or any warning under
    /// `--deny-warnings`.
    pub fn should_fail(&self) -> bool {
        let s = self.state.borrow();
        s.errors > 0 || s.suppressed > 0 || (s.deny_warnings && s.warnings > 0)
    }

    /// True when nothing at all has been reported.
    pub fn is_empty(&self) -> bool {
        self.state.borrow().diags.is_empty()
    }

    /// Snapshot of the accumulated diagnostics, in report order.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.state.borrow().diags.clone()
    }

    /// The first error, converted back to a `CompileError`, for callers of
    /// the legacy fail-fast API.
    pub fn first_error(&self) -> Option<CompileError> {
        let s = self.state.borrow();
        s.diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| {
                let msg = if d.ice {
                    format!("internal: {}", d.message)
                } else {
                    d.message.clone()
                };
                CompileError::new(msg, d.span)
            })
    }

    /// Renders every diagnostic as human-readable lines.
    pub fn render_human(&self, sm: &SourceMap) -> String {
        let s = self.state.borrow();
        let mut out = String::new();
        for d in &s.diags {
            let loc = sm.describe(d.span);
            if d.ice {
                let _ = writeln!(out, "{loc}: error: internal compiler error: {}", d.message);
                let phase = d.phase.unwrap_or("unknown");
                let _ = writeln!(
                    out,
                    "{loc}: note: this is a compiler bug, please report it (phase: {phase})"
                );
            } else {
                let _ = writeln!(out, "{loc}: {}: {}", d.severity.label(), d.message);
            }
            for f in &d.frames {
                let _ = writeln!(out, "{loc}: note: in expansion of {f}");
            }
        }
        if s.suppressed > 0 {
            let _ = writeln!(
                out,
                "error: too many errors ({} not shown, --max-errors={})",
                s.suppressed, s.max_errors
            );
        }
        if s.errors > 0 || s.suppressed > 0 {
            let total = s.errors + s.suppressed;
            let _ = writeln!(
                out,
                "error: aborting due to {total} previous error{}",
                if total == 1 { "" } else { "s" }
            );
        } else if s.deny_warnings && s.warnings > 0 {
            let _ = writeln!(
                out,
                "error: aborting due to {} warning{} (--deny-warnings)",
                s.warnings,
                if s.warnings == 1 { "" } else { "s" }
            );
        }
        out
    }

    /// Renders every diagnostic as a single-document JSON report
    /// (schema `maya-diagnostics/1`).
    pub fn render_json(&self, sm: &SourceMap) -> String {
        let s = self.state.borrow();
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"maya-diagnostics/1\",");
        let _ = writeln!(out, "  \"errors\": {},", s.errors + s.suppressed);
        let _ = writeln!(out, "  \"warnings\": {},", s.warnings);
        let _ = writeln!(out, "  \"suppressed\": {},", s.suppressed);
        out.push_str("  \"diagnostics\": [");
        for (i, d) in s.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"severity\": {}", json_string(d.severity.label()));
            let _ = write!(out, ", \"message\": {}", json_string(&d.message));
            if !d.span.is_dummy() {
                let f = sm.file(d.span.file);
                let lc = f.line_col(d.span.lo);
                let _ = write!(out, ", \"file\": {}", json_string(&f.name));
                let _ = write!(out, ", \"line\": {}, \"col\": {}", lc.line, lc.col);
            }
            let _ = write!(out, ", \"ice\": {}", d.ice);
            if let Some(p) = d.phase {
                let _ = write!(out, ", \"phase\": {}", json_string(p));
            }
            if !d.frames.is_empty() {
                out.push_str(", \"frames\": [");
                for (j, fr) in d.frames.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_string(fr));
                }
                out.push(']');
            }
            out.push('}');
        }
        if !s.diags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm_with(src: &str) -> (SourceMap, Span) {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.maya", src);
        (sm, Span::new(f, 0, 1))
    }

    #[test]
    fn accumulates_multiple_errors() {
        let d = Diagnostics::new();
        let (sm, span) = sm_with("class A {}\n");
        d.error("first", span);
        d.error("second", span);
        assert_eq!(d.error_count(), 2);
        assert!(d.should_fail());
        let text = d.render_human(&sm);
        assert!(text.contains("t.maya:1:1: error: first"));
        assert!(text.contains("t.maya:1:1: error: second"));
        assert!(text.contains("aborting due to 2 previous errors"));
    }

    #[test]
    fn max_errors_caps_reports() {
        let d = Diagnostics::with_limits(1, false);
        let (sm, span) = sm_with("x\n");
        d.error("first", span);
        d.error("second", span);
        assert!(d.at_cap());
        assert_eq!(d.error_count(), 2);
        let text = d.render_human(&sm);
        assert!(text.contains("first"));
        assert!(!text.contains("second"));
        assert!(text.contains("too many errors"));
    }

    #[test]
    fn internal_prefix_becomes_ice() {
        let d = Diagnostics::new();
        let (sm, _) = sm_with("x\n");
        d.error("internal: bad table", Span::DUMMY);
        let text = d.render_human(&sm);
        assert!(text.contains("internal compiler error: bad table"));
        assert!(text.contains("this is a compiler bug, please report it"));
    }

    #[test]
    fn deny_warnings_fails_without_errors() {
        let d = Diagnostics::with_limits(20, true);
        let (sm, span) = sm_with("x\n");
        d.warning("sketchy", span);
        assert!(d.should_fail());
        assert_eq!(d.error_count(), 0);
        let text = d.render_human(&sm);
        assert!(text.contains("warning: sketchy"));
        assert!(text.contains("--deny-warnings"));
    }

    #[test]
    fn json_report_has_locations() {
        let d = Diagnostics::new();
        let (sm, span) = sm_with("class A\n");
        d.error("missing brace", span);
        d.warning("odd", Span::DUMMY);
        let doc = d.render_json(&sm);
        assert!(doc.contains("\"schema\": \"maya-diagnostics/1\""));
        assert!(doc.contains("\"errors\": 1"));
        assert!(doc.contains("\"file\": \"t.maya\""));
        assert!(doc.contains("\"line\": 1, \"col\": 1"));
        // Dummy span omits the location keys entirely.
        assert!(doc.contains("{\"severity\": \"warning\", \"message\": \"odd\", \"ice\": false"));
    }
}
