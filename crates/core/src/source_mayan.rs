//! Compiling source-level `syntax` declarations into metaprograms — the
//! full pipeline of paper Figure 1: extension source is compiled by mayac
//! into `MetaProgram` objects whose bodies run *on the interpreter* at
//! application compile time.
//!
//! * `abstract LHS syntax(rhs…);` records a production declaration.
//! * `LHS syntax Name(params…) { body }` pattern-parses the parameter list
//!   to infer the production it implements (Figure 5), converts the
//!   parameters to dispatch specializers, and compiles the body into a
//!   hidden extension class whose `expand` method the interpreter executes
//!   each time the Mayan fires. Templates, `nextRewrite`, and the
//!   `maya.tree` reflection API are serviced by the bridge.

use crate::bridge::{ext_resolve_ctx, tree_value};
use crate::compiler::CompilerInner;
use crate::driver::{tree_class_fqcn, CoreExpand, EnvPair, LazyEnvPayload};
use crate::extension::TreeValue;
use crate::metagrammar::{parse_mayan_params, parse_rhs};
use crate::CompileError;
use maya_ast::{LazyNode, MayanDecl, Node, NodeKind, ProductionDecl};
use maya_dispatch::{
    params_from_pattern, Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param,
};
use maya_grammar::{ProdId, RhsItem};
use maya_interp::{native_as, Control};
use maya_lexer::{sym, Symbol};
use maya_parser::trace::trace_parse;
use maya_types::{ClassId, ClassInfo, MethodInfo, ResolveCtx, Type};
use std::rc::Rc;

/// Registers `abstract LHS syntax(rhs…);` (paper §3.1). The production
/// takes effect for application code when an extension using it is
/// imported; within this compilation it is visible to later Mayan
/// declarations for parameter-list inference.
///
/// # Errors
///
/// Unknown LHS node types and malformed metagrammar.
pub fn register_production(
    cx: &Rc<CompilerInner>,
    decl: &ProductionDecl,
    _ctx: &ResolveCtx,
) -> Result<(), CompileError> {
    let lhs = NodeKind::from_symbol(decl.lhs.sym).ok_or_else(|| {
        CompileError::new(
            format!("unknown node type {} in production declaration", decl.lhs),
            decl.span,
        )
    })?;
    if !lhs.is_definable() {
        return Err(CompileError::new(
            format!("productions may not be defined on {}", decl.lhs),
            decl.span,
        ));
    }
    let rhs = parse_rhs(&decl.pattern.trees)?;
    cx.declared_prods.borrow_mut().push((lhs, rhs));
    Ok(())
}

/// How an imported Mayan finds its production.
enum ProdRef {
    /// A production already present in the base grammar (stable id).
    Existing(ProdId),
    /// A declared production added (or found) at import time.
    Declared(NodeKind, Vec<RhsItem>),
}

/// The compiled form of one source-level Mayan.
struct SourceMayan {
    name: String,
    prod: ProdRef,
    params: Vec<Param>,
    ext_class: ClassId,
    /// Named parameters in method-argument order.
    arg_names: Vec<Symbol>,
}

impl MetaProgram for SourceMayan {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = match &self.prod {
            ProdRef::Existing(id) => *id,
            ProdRef::Declared(lhs, rhs) => env.add_production(*lhs, rhs)?,
        };
        let ext_class = self.ext_class;
        let arg_names = self.arg_names.clone();
        let name = self.name.clone();
        let body = move |b: &Bindings, ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let cx = ctx
                .as_any()
                .downcast_mut::<CoreExpand>()
                .expect("source Mayans run under the core compiler");
            let inner = cx.c.cx.clone();
            let span = cx.span;
            // Arguments: the named parameters as maya.tree values.
            let mut args = Vec::with_capacity(arg_names.len());
            for n in &arg_names {
                let node = b.get(n.as_str()).cloned().ok_or_else(|| {
                    DispatchError::new(format!("internal: unbound Mayan parameter {n}"), span)
                })?;
                args.push(tree_value(node));
            }
            // Run the body on the interpreter with this expansion on the
            // bridge's stack. Each invocation gets a fresh step budget so
            // one well-behaved expansion can't starve the next.
            inner.interp.reset_steps();
            inner.expand_stack.borrow_mut().push(cx.snapshot());
            let result = inner
                .interp
                .invoke_static(ext_class, sym("expand"), args, span);
            inner.expand_stack.borrow_mut().pop();
            match result {
                Ok(v) => native_as::<TreeValue>(&v)
                    .map(|t| t.node.clone())
                    .ok_or_else(|| {
                        DispatchError::new(
                            format!("Mayan {name} returned a non-tree value: {v:?}"),
                            span,
                        )
                    }),
                Err(Control::Error(e)) => {
                    // Anchor unlocated failures at the expansion site and
                    // name the Mayan (once — nested expansions of the same
                    // failure keep the innermost attribution).
                    let err_span = if e.span.is_dummy() { span } else { e.span };
                    let msg = if e.message.starts_with("error in expansion of Mayan ") {
                        e.message
                    } else {
                        format!("error in expansion of Mayan {name}: {}", e.message)
                    };
                    Err(DispatchError::new(msg, err_span))
                }
                Err(Control::Throw(v)) => Err(DispatchError::new(
                    format!("Mayan {name} threw: {}", inner.interp.display(&v)),
                    span,
                )),
                Err(other) => Err(DispatchError::new(
                    format!("Mayan {name} completed abnormally: {other:?}"),
                    span,
                )),
            }
        };
        env.import_mayan(Mayan::new(
            &self.name,
            prod,
            self.params.clone(),
            Rc::new(body),
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Compiles `LHS syntax Name(params…) { body }` and registers it as an
/// importable metaprogram under `Name` (and `package.Name`).
///
/// # Errors
///
/// Unknown node kinds, unresolvable specializer types, parameter lists
/// that do not match any production, and body compilation failures.
pub fn register_mayan(
    cx: &Rc<CompilerInner>,
    decl: &MayanDecl,
    ctx: &ResolveCtx,
    package: Option<&str>,
) -> Result<(), CompileError> {
    let lhs = NodeKind::from_symbol(decl.lhs.sym).ok_or_else(|| {
        CompileError::new(
            format!("unknown node type {} in Mayan declaration", decl.lhs),
            decl.span,
        )
    })?;
    let ext_ctx = ext_resolve_ctx(ctx);
    let global = cx.global.borrow().clone();

    // Build the declaration grammar: the current environment plus every
    // production declared so far, so the parameter list can be
    // pattern-parsed against them (Figure 5).
    let declared = cx.declared_prods.borrow().clone();
    let mut gb = global.grammar.extend();
    let mut declared_ids = Vec::new();
    for (dlhs, rhs) in &declared {
        declared_ids.push(
            gb.add_production(*dlhs, rhs, None)
                .map_err(|e| CompileError::new(e.to_string(), decl.span))?,
        );
    }
    let dg = gb.finish();
    dg.tables()
        .map_err(|e| CompileError::new(e.to_string(), decl.span))?;

    // Pattern-parse the parameter list.
    let (inputs, specs) = parse_mayan_params(&dg, &cx.classes, &ext_ctx, &decl.params.trees)?;
    let goal = dg.nt_for_kind_lattice(lhs).ok_or_else(|| {
        CompileError::new(format!("no grammar nonterminal for {}", decl.lhs), decl.span)
    })?;
    let pat = trace_parse(&dg, &inputs, goal).map_err(|e| {
        CompileError::new(
            format!("Mayan parameter list does not parse: {}", e.message),
            decl.span,
        )
    })?;
    let (prod, params) = params_from_pattern(&dg, &global.denv, &pat, &specs)
        .map_err(|e| CompileError::new(e.message, e.span))?;

    let prod_ref = if let Some(i) = declared_ids.iter().position(|d| *d == prod) {
        let (dlhs, rhs) = declared[i].clone();
        ProdRef::Declared(dlhs, rhs)
    } else if (prod.0 as usize) < global.grammar.productions().len() {
        ProdRef::Existing(prod)
    } else {
        return Err(CompileError::new(
            "Mayan parameter list matched an internal helper production",
            decl.span,
        ));
    };

    // Compile the body into a hidden extension class.
    let mut ext_name = match package {
        Some(p) => format!("{p}.maya$ext${}", decl.name),
        None => format!("maya$ext${}", decl.name),
    };
    while cx.classes.by_fqcn_str(&ext_name).is_some() {
        ext_name.push('x');
    }
    let mut info = ClassInfo::new(&ext_name, false);
    info.superclass = cx.classes.by_fqcn_str("java.lang.Object");
    let ext_class = cx
        .classes
        .declare(info)
        .map_err(|e| CompileError::new(e.message, decl.span))?;

    // nextRewrite() is callable inside the body (receiverless static).
    let node_t = Type::Class(cx.classes.by_fqcn_str("maya.tree.Node").expect("bridge"));
    let mut next = MethodInfo::native("nextRewrite", vec![], node_t.clone(), "tree.nextRewrite");
    next.modifiers.add(maya_ast::Modifier::Static);
    cx.classes.add_method(ext_class, next);

    // The expand method: named parameters in order, typed with their
    // maya.tree classes.
    let arg_names: Vec<Symbol> = specs.iter().filter_map(|s| s.name).collect();
    let mut param_tys = Vec::new();
    for s in &specs {
        if s.name.is_none() {
            continue;
        }
        let fq = tree_class_fqcn(s.kind);
        param_tys.push(Type::Class(
            cx.classes.by_fqcn_str(fq).expect("bridge class"),
        ));
    }
    cx.lazy_created.set(cx.lazy_created.get() + 1);
    let body = LazyNode::new(
        NodeKind::BlockStmts,
        decl.body.clone(),
        Some(Rc::new(LazyEnvPayload {
            pair: EnvPair {
                grammar: global.grammar.clone(),
                denv: global.denv.clone(),
            },
            ctx: ext_ctx.clone(),
            class: Some(ext_class),
        })),
    );
    let mut expand = MethodInfo {
        name: sym("expand"),
        params: param_tys,
        param_names: arg_names.clone(),
        ret: node_t,
        modifiers: maya_ast::Modifiers::just(maya_ast::Modifier::Public),
        body: Some(body),
        native: None,
        specializers: vec![],
    };
    expand.modifiers.add(maya_ast::Modifier::Static);
    cx.classes.add_method(ext_class, expand);
    cx.class_meta.borrow_mut().insert(
        ext_class,
        crate::compiler::ClassMeta {
            env: global.clone(),
            ctx: ext_ctx.clone(),
        },
    );
    cx.interp.set_class_ctx(ext_class, ext_ctx);

    let program = Rc::new(SourceMayan {
        name: decl.name.to_string(),
        prod: prod_ref,
        params,
        ext_class,
        arg_names,
    });
    let origin = (!decl.span.is_dummy()).then_some(decl.span.file);
    cx.register_metaprogram_at(&decl.name.to_string(), program.clone(), origin);
    if let Some(p) = package {
        cx.register_metaprogram_at(&format!("{p}.{}", decl.name), program, origin);
    }
    Ok(())
}
