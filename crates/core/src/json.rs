//! A minimal JSON reader for the `mayad` wire protocol.
//!
//! The compile server speaks newline-delimited JSON over a unix socket;
//! this is the decoding half (encoding reuses
//! [`maya_telemetry::json_string`] plus plain `write!`). It parses one
//! complete value per call, strictly: any trailing non-whitespace, control
//! character in a string, or malformed escape is an error. Numbers are
//! kept as `f64`, which covers every field the protocol defines.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// A decode failure, with a byte offset into the input.
#[derive(Debug)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parses one JSON value; the whole input must be consumed (modulo
/// whitespace).
///
/// # Errors
///
/// Any syntax error, with the byte offset where decoding stopped.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

/// Nesting depth bound: the protocol needs 3 levels; 64 tolerates clients
/// while keeping adversarial input from recursing the stack away.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(a));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u', "expected 'u' in surrogate pair")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed (input is a &str, so it is valid).
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    self.pos = start + c.len_utf8();
                    s.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = parse_json(
            r#"{"files": ["a.maya", "b.maya"], "run": true, "max_errors": 20, "main": "Main"}"#,
        )
        .unwrap();
        assert_eq!(v.get("main").and_then(Json::as_str), Some("Main"));
        assert_eq!(v.get("run").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("max_errors").and_then(Json::as_u64), Some(20));
        assert_eq!(v.get("files").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse_json(r#""a\n\t\"\\ \u0041 \uD83D\uDE00 é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ A 😀 é"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "\"x", "{\"a\" 1}", "tru", "1 2", "\u{1}\"\"",
            "{\"a\":}", "[01e]", "\"\\q\"", "\"\\uD800\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_json(&deep).is_err());
    }
}
