//! The content-addressed persistent artifact store (`--cache-dir`).
//!
//! Cold starts repeat work whose inputs rarely change between runs: LALR
//! table construction for already-seen grammars, lexing of unchanged
//! files, lowering + bytecode compilation of unchanged bodies, and — when
//! nothing at all changed — the entire compile. This module persists each
//! of those artifacts on disk, keyed purely by content hash, so a fresh
//! process (or a restarted `mayad`) starts warm.
//!
//! **Soundness model.** Every key is a content hash of everything the
//! artifact is a function of — bytes, spans, options, format versions —
//! so an equal key means the cached value is interchangeable with a
//! recomputation. Nothing environment- or process-dependent is stored:
//! table payloads are index-based, token trees re-intern their symbols on
//! load, and lowered bodies recreate their (empty) inline-cache sites.
//! The four kinds:
//!
//! * [`Kind::Tables`] — LALR tables keyed by the grammar content hash
//!   (the generalization of the old `--table-cache` flag);
//! * [`Kind::Lex`] — lexed token trees keyed by (content `hash128`,
//!   positional `FileId`), the same key as the in-process lex share;
//! * [`Kind::Outcome`] — whole-request compile outcomes (the compiled
//!   extension closure: stdout, stderr, exit status) keyed by the
//!   source-closure hash — every file's span-inclusive token-stream hash
//!   plus the full request options, so imports are folded in;
//! * [`Kind::Body`] — lowered bodies + cold bytecode keyed by the
//!   span-inclusive body fingerprint and parameter names.
//!
//! **Robustness.** Every entry carries a magic, a format version, its own
//! key, and a trailing checksum; a mismatch on any of them is a silent
//! miss (the entry is deleted and rebuilt). Writes go to a unique temp
//! file in the store directory and are `rename`d into place, so readers
//! never observe a torn entry and concurrent writers of the same key are
//! idempotent. Eviction is LRU by file mtime (loads touch their entry):
//! `mayac cache gc` evicts to the configured cap, and saves trigger the
//! same sweep automatically once the store grows past it.

use maya_lexer::{sym, Delim, FileId, LexError, SendTree, Span, Token, TokenKind};
use maya_telemetry::CacheId;
use std::cell::RefCell;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

use crate::fingerprint::Fnv2;

/// Bumped whenever the container layout changes. Payload layers carry
/// their own versions (table/lex/body payloads), so this only guards the
/// envelope itself.
const STORE_FORMAT_VERSION: u32 = 1;

/// Container magic: identifies store entries regardless of extension.
const MAGIC: &[u8; 8] = b"MAYASTOR";

/// Bumped whenever the lex payload layout changes — including the
/// `TokenKind::code()` table it embeds.
const LEX_PAYLOAD_VERSION: u32 = 1;

/// Bumped whenever the outcome payload layout or key derivation changes.
const OUTCOME_PAYLOAD_VERSION: u32 = 1;

/// The artifact kinds the store persists. Each kind maps to a file
/// extension (so `stats`/`gc` can attribute entries without opening them)
/// and a telemetry cache id (`store_*` hit/miss/eviction gauges).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// LALR tables keyed by grammar content hash.
    Tables,
    /// Lexed token trees keyed by (content hash, `FileId`).
    Lex,
    /// Whole-request compile outcomes keyed by the source-closure hash.
    Outcome,
    /// Lowered bodies + cold bytecode keyed by body fingerprint + params.
    Body,
}

impl Kind {
    pub const ALL: [Kind; 4] = [Kind::Tables, Kind::Lex, Kind::Outcome, Kind::Body];

    /// File extension for entries of this kind.
    pub fn ext(self) -> &'static str {
        match self {
            Kind::Tables => "tbl",
            Kind::Lex => "lex",
            Kind::Outcome => "out",
            Kind::Body => "body",
        }
    }

    /// Human label used by `mayac cache stats`.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Tables => "tables",
            Kind::Lex => "lex",
            Kind::Outcome => "outcome",
            Kind::Body => "body",
        }
    }

    fn cache_id(self) -> CacheId {
        match self {
            Kind::Tables => CacheId::StoreTables,
            Kind::Lex => CacheId::StoreLex,
            Kind::Outcome => CacheId::StoreOutcome,
            Kind::Body => CacheId::StoreBody,
        }
    }

    /// Container tag byte (also what `from_ext` recovers for GC).
    fn tag(self) -> u8 {
        match self {
            Kind::Tables => 0,
            Kind::Lex => 1,
            Kind::Outcome => 2,
            Kind::Body => 3,
        }
    }

    fn from_ext(ext: &str) -> Option<Kind> {
        Kind::ALL.iter().copied().find(|k| k.ext() == ext)
    }
}

/// Per-kind usage as reported by [`ArtifactStore::stats`].
#[derive(Clone, Copy, Default, Debug)]
pub struct KindStats {
    pub entries: u64,
    pub bytes: u64,
}

/// A handle to one on-disk store directory. Cheap to clone via `Arc`;
/// safe to share across the `mayad` worker pool (all filesystem-level
/// operations are atomic-rename based).
pub struct ArtifactStore {
    dir: PathBuf,
    /// Automatic-GC threshold; `None` disables automatic sweeps.
    max_bytes: Option<u64>,
    /// Bytes written since open plus the size found at open — an estimate
    /// that triggers the (exact, directory-scanning) automatic GC.
    approx_bytes: AtomicU64,
    /// Temp-file uniquifier within this handle.
    tmp_seq: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store at `dir`. `max_mb` caps the
    /// store size: saves that push past it trigger an LRU sweep.
    pub fn open(dir: impl Into<PathBuf>, max_mb: Option<u64>) -> io::Result<Arc<ArtifactStore>> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = ArtifactStore {
            dir,
            max_bytes: max_mb.map(|mb| mb.saturating_mul(1024 * 1024)),
            approx_bytes: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        };
        let used: u64 = store.entries().iter().map(|e| e.bytes).sum();
        store.approx_bytes.store(used, Ordering::Relaxed);
        Ok(Arc::new(store))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, kind: Kind, key: u128) -> PathBuf {
        self.dir.join(format!("{key:032x}.{}", kind.ext()))
    }

    /// Loads the payload stored under (`kind`, `key`). Any mismatch —
    /// missing file, torn write, stale version, checksum failure, foreign
    /// content — is a miss; corrupt entries are deleted so the follow-up
    /// save rebuilds them. A hit touches the entry's mtime (the GC's LRU
    /// clock).
    pub fn load(&self, kind: Kind, key: u128) -> Option<Vec<u8>> {
        let path = self.path_of(kind, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                maya_telemetry::cache_miss(kind.cache_id());
                return None;
            }
        };
        match decode_entry(&bytes, kind, key) {
            Some(payload) => {
                maya_telemetry::cache_hit(kind.cache_id());
                let _ = fs::File::options()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_modified(SystemTime::now()));
                Some(payload.to_vec())
            }
            None => {
                // Corrupt or stale: silently rebuild.
                maya_telemetry::cache_miss(kind.cache_id());
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Saves `payload` under (`kind`, `key`) via temp-file + rename.
    /// Content-addressed: an existing entry is left in place (equal key
    /// implies an interchangeable value). I/O errors are swallowed — the
    /// store is an accelerator, never a correctness dependency.
    pub fn save(&self, kind: Kind, key: u128, payload: &[u8]) {
        let path = self.path_of(kind, key);
        if path.exists() {
            return;
        }
        let bytes = encode_entry(kind, key, payload);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, &bytes).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        let used = self
            .approx_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed)
            + bytes.len() as u64;
        if let Some(cap) = self.max_bytes {
            if used > cap {
                self.gc(cap);
            }
        }
    }

    /// Every store entry in the directory (temp files and foreign files
    /// excluded), with its kind, size, and mtime.
    fn entries(&self) -> Vec<Entry> {
        let mut out = Vec::new();
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return out;
        };
        for item in rd.flatten() {
            let path = item.path();
            let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
                continue;
            };
            let Some(kind) = Kind::from_ext(ext) else {
                continue;
            };
            let Ok(meta) = item.metadata() else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            out.push(Entry {
                path,
                kind,
                bytes: meta.len(),
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        out
    }

    /// Per-kind entry counts and byte totals (exact, from a directory
    /// scan), in [`Kind::ALL`] order.
    pub fn stats(&self) -> [(Kind, KindStats); 4] {
        let mut out = Kind::ALL.map(|k| (k, KindStats::default()));
        for e in self.entries() {
            let slot = &mut out[usize::from(e.kind.tag())].1;
            slot.entries += 1;
            slot.bytes += e.bytes;
        }
        out
    }

    /// Evicts least-recently-used entries (oldest mtime first) until the
    /// store fits in `cap_bytes`. Returns (entries evicted, bytes freed).
    pub fn gc(&self, cap_bytes: u64) -> (u64, u64) {
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        entries.sort_by_key(|e| e.mtime);
        let (mut evicted, mut freed) = (0u64, 0u64);
        for e in &entries {
            if total <= cap_bytes {
                break;
            }
            if fs::remove_file(&e.path).is_ok() {
                maya_telemetry::cache_eviction(e.kind.cache_id());
                total = total.saturating_sub(e.bytes);
                evicted += 1;
                freed += e.bytes;
            }
        }
        self.approx_bytes.store(total, Ordering::Relaxed);
        (evicted, freed)
    }

    /// Deletes every entry. Returns the number removed.
    pub fn clear(&self) -> u64 {
        let mut removed = 0;
        for e in self.entries() {
            if fs::remove_file(&e.path).is_ok() {
                removed += 1;
            }
        }
        self.approx_bytes.store(0, Ordering::Relaxed);
        removed
    }
}

struct Entry {
    path: PathBuf,
    kind: Kind,
    bytes: u64,
    mtime: SystemTime,
}

// ---- the container codec -----------------------------------------------------
//
// entry := MAGIC version:u32 kind:u8 key:u128 payload checksum:u64
//
// The checksum (single-stream FNV-1a over everything before it) rejects
// bit flips and truncation; the key echo rejects renamed files; the
// version rejects entries written by an older layout.

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_entry(kind: Kind, key: u128, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(MAGIC.len() + 29 + payload.len() + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    buf.push(kind.tag());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_entry(bytes: &[u8], kind: Kind, key: u128) -> Option<&[u8]> {
    let header = MAGIC.len() + 4 + 1 + 16;
    if bytes.len() < header + 8 {
        return None;
    }
    let (body, sum) = bytes.split_at(bytes.len() - 8);
    if fnv64(body) != u64::from_le_bytes(sum.try_into().ok()?) {
        return None;
    }
    let (magic, rest) = body.split_at(MAGIC.len());
    if magic != MAGIC {
        return None;
    }
    let (ver, rest) = rest.split_at(4);
    if u32::from_le_bytes(ver.try_into().ok()?) != STORE_FORMAT_VERSION {
        return None;
    }
    let (tag, rest) = rest.split_at(1);
    if tag[0] != kind.tag() {
        return None;
    }
    let (echo, payload) = rest.split_at(16);
    if u128::from_le_bytes(echo.try_into().ok()?) != key {
        return None;
    }
    Some(payload)
}

// ---- the thread-active store -------------------------------------------------
//
// Sessions and the grammar/interp disk hooks read the store through a
// thread-local handle: `mayac` installs it once on the main thread,
// `mayad` installs it on every pool worker. No handle installed (the
// default) means every probe short-circuits with zero filesystem I/O.

thread_local! {
    static ACTIVE: RefCell<Option<Arc<ArtifactStore>>> = const { RefCell::new(None) };
}

struct TableAdapter(Arc<ArtifactStore>);

impl maya_grammar::TableDisk for TableAdapter {
    fn load(&self, hash: u128) -> Option<Vec<u8>> {
        self.0.load(Kind::Tables, hash)
    }

    fn save(&self, hash: u128, payload: &[u8]) {
        self.0.save(Kind::Tables, hash, payload);
    }
}

struct BodyAdapter(Arc<ArtifactStore>);

impl maya_interp::BodyDisk for BodyAdapter {
    fn load(&self, key: u128) -> Option<Vec<u8>> {
        self.0.load(Kind::Body, key)
    }

    fn save(&self, key: u128, payload: &[u8]) {
        self.0.save(Kind::Body, key, payload);
    }
}

/// Installs `store` as this thread's artifact store — wiring the grammar
/// crate's table-disk hook and the interpreter's body-disk hook to it —
/// or uninstalls everything with `None`.
pub fn install_thread(store: Option<Arc<ArtifactStore>>) {
    ACTIVE.with(|a| a.borrow_mut().clone_from(&store));
    match store {
        Some(s) => {
            maya_grammar::set_table_disk(Some(Rc::new(TableAdapter(Arc::clone(&s)))));
            maya_interp::set_body_disk(Some(Rc::new(BodyAdapter(s))));
        }
        None => {
            maya_grammar::set_table_disk(None);
            maya_interp::set_body_disk(None);
        }
    }
}

/// The store installed on this thread, if any.
pub fn active() -> Option<Arc<ArtifactStore>> {
    ACTIVE.with(|a| a.borrow().clone())
}

// ---- payload codecs ----------------------------------------------------------
//
// Minimal little-endian helpers; every reader path is bounds-checked and
// returns `Option` so malformed payloads decode as misses, never panics.

struct Buf {
    b: Vec<u8>,
}

impl Buf {
    fn new() -> Buf {
        Buf { b: Vec::new() }
    }

    fn u8(&mut self, x: u8) {
        self.b.push(x);
    }

    fn u32(&mut self, x: u32) {
        self.b.extend_from_slice(&x.to_le_bytes());
    }

    fn str(&mut self, s: &str) -> Option<()> {
        self.u32(u32::try_from(s.len()).ok()?);
        self.b.extend_from_slice(s.as_bytes());
        Some(())
    }

    fn span(&mut self, s: Span) {
        self.u32(s.file.0);
        self.u32(s.lo);
        self.u32(s.hi);
    }
}

struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.b.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        if n > self.b.len() {
            return None; // bounds any allocation by the payload size
        }
        Some(n)
    }

    fn str(&mut self) -> Option<&'a str> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?).ok()
    }

    fn span(&mut self) -> Option<Span> {
        let file = FileId(self.u32()?);
        let lo = self.u32()?;
        Some(Span::new(file, lo, self.u32()?))
    }

    fn done(&self) -> bool {
        self.at == self.b.len()
    }
}

// ---- lex artifacts -----------------------------------------------------------

/// The store key for a lexed file: content hash, the positional `FileId`
/// its spans were minted under (the in-process lex share's key), and the
/// payload version, so a token-code reshuffle invalidates cleanly.
pub(crate) fn lex_key(content: u128, file: u32) -> u128 {
    let mut h = Fnv2::new();
    h.str("store-lex");
    h.u32(LEX_PAYLOAD_VERSION);
    h.bytes(&content.to_le_bytes());
    h.u32(file);
    h.finish()
}

/// Encodes a front-end result (token trees or the lex error).
pub(crate) fn encode_lex(result: &Result<Vec<SendTree>, LexError>) -> Option<Vec<u8>> {
    let mut w = Buf::new();
    w.u32(LEX_PAYLOAD_VERSION);
    match result {
        Ok(trees) => {
            w.u8(1);
            w.u32(u32::try_from(trees.len()).ok()?);
            for t in trees {
                enc_send_tree(&mut w, t)?;
            }
        }
        Err(e) => {
            w.u8(0);
            w.str(&e.message)?;
            w.span(e.span);
        }
    }
    Some(w.b)
}

/// Decodes a front-end result; `None` = corrupt or stale (a miss).
pub(crate) fn decode_lex(bytes: &[u8]) -> Option<Result<Vec<SendTree>, LexError>> {
    let mut r = Cur::new(bytes);
    if r.u32()? != LEX_PAYLOAD_VERSION {
        return None;
    }
    let out = match r.u8()? {
        0 => {
            let message = r.str()?.to_owned();
            Err(LexError {
                message,
                span: r.span()?,
            })
        }
        1 => {
            let n = r.len()?;
            let mut trees = Vec::with_capacity(n);
            for _ in 0..n {
                trees.push(dec_send_tree(&mut r)?);
            }
            Ok(trees)
        }
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some(out)
}

fn delim_tag(d: Delim) -> u8 {
    match d {
        Delim::Paren => 0,
        Delim::Brace => 1,
        Delim::Brack => 2,
    }
}

fn delim_from(tag: u8) -> Option<Delim> {
    match tag {
        0 => Some(Delim::Paren),
        1 => Some(Delim::Brace),
        2 => Some(Delim::Brack),
        _ => None,
    }
}

fn enc_send_tree(w: &mut Buf, t: &SendTree) -> Option<()> {
    match t {
        SendTree::Token(t) => {
            w.u8(0);
            w.u8(t.kind.code());
            w.str(t.text.as_str())?;
            w.span(t.span);
        }
        SendTree::Delim {
            delim,
            trees,
            open,
            close,
        } => {
            w.u8(1);
            w.u8(delim_tag(*delim));
            w.span(*open);
            w.span(*close);
            w.u32(u32::try_from(trees.len()).ok()?);
            for t in trees {
                enc_send_tree(w, t)?;
            }
        }
    }
    Some(())
}

fn dec_send_tree(r: &mut Cur) -> Option<SendTree> {
    Some(match r.u8()? {
        0 => {
            let kind = TokenKind::from_code(r.u8()?)?;
            let text = sym(r.str()?);
            SendTree::Token(Token::new(kind, text, r.span()?))
        }
        1 => {
            let delim = delim_from(r.u8()?)?;
            let open = r.span()?;
            let close = r.span()?;
            let n = r.len()?;
            let mut trees = Vec::with_capacity(n);
            for _ in 0..n {
                trees.push(dec_send_tree(r)?);
            }
            SendTree::Delim {
                delim,
                trees,
                open,
                close,
            }
        }
        _ => return None,
    })
}

// ---- outcome artifacts -------------------------------------------------------

/// A hasher pre-seeded for outcome keys; `Session` folds the source
/// closure and request options into it.
pub(crate) fn outcome_key_hasher() -> Fnv2 {
    let mut h = Fnv2::new();
    h.str("store-outcome");
    h.u32(OUTCOME_PAYLOAD_VERSION);
    h
}

/// Encodes a compile outcome's replayable fields.
pub(crate) fn encode_outcome_payload(stdout: &str, stderr: &str, success: bool) -> Option<Vec<u8>> {
    let mut w = Buf::new();
    w.u32(OUTCOME_PAYLOAD_VERSION);
    w.u8(u8::from(success));
    w.str(stdout)?;
    w.str(stderr)?;
    Some(w.b)
}

/// Decodes (stdout, stderr, success); `None` = corrupt or stale.
pub(crate) fn decode_outcome_payload(bytes: &[u8]) -> Option<(String, String, bool)> {
    let mut r = Cur::new(bytes);
    if r.u32()? != OUTCOME_PAYLOAD_VERSION {
        return None;
    }
    let success = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let stdout = r.str()?.to_owned();
    let stderr = r.str()?.to_owned();
    if !r.done() {
        return None;
    }
    Some((stdout, stderr, success))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "maya-store-unit-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn container_round_trip_and_corruption_tolerance() {
        let dir = tmp_dir("container");
        let store = ArtifactStore::open(&dir, None).unwrap();
        store.save(Kind::Tables, 42, b"payload");
        assert_eq!(store.load(Kind::Tables, 42).as_deref(), Some(&b"payload"[..]));
        // Wrong kind and wrong key are misses, not mixups.
        assert_eq!(store.load(Kind::Lex, 42), None);
        assert_eq!(store.load(Kind::Tables, 43), None);

        // A bit flip is silently dropped and rebuilt.
        let path = store.path_of(Kind::Tables, 42);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(Kind::Tables, 42), None);
        assert!(!path.exists(), "corrupt entry deleted");
        store.save(Kind::Tables, 42, b"payload");
        assert!(store.load(Kind::Tables, 42).is_some());

        // Truncation is a miss too.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(store.load(Kind::Tables, 42), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_oldest_until_under_cap() {
        let dir = tmp_dir("gc");
        let store = ArtifactStore::open(&dir, None).unwrap();
        for key in 0u128..4 {
            store.save(Kind::Body, key, &[0u8; 100]);
            let when = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1000 + key as u64);
            fs::File::options()
                .write(true)
                .open(store.path_of(Kind::Body, key))
                .unwrap()
                .set_modified(when)
                .unwrap();
        }
        let per = fs::metadata(store.path_of(Kind::Body, 0)).unwrap().len();
        let (evicted, freed) = store.gc(per * 2);
        assert_eq!(evicted, 2);
        assert_eq!(freed, per * 2);
        // Oldest mtimes went first.
        assert_eq!(store.load(Kind::Body, 0), None);
        assert_eq!(store.load(Kind::Body, 1), None);
        assert!(store.load(Kind::Body, 2).is_some());
        assert!(store.load(Kind::Body, 3).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_count_per_kind_and_clear_empties() {
        let dir = tmp_dir("stats");
        let store = ArtifactStore::open(&dir, None).unwrap();
        store.save(Kind::Tables, 1, b"t");
        store.save(Kind::Lex, 2, b"l");
        store.save(Kind::Lex, 3, b"l2");
        let stats = store.stats();
        let of = |k: Kind| stats.iter().find(|(q, _)| *q == k).unwrap().1;
        assert_eq!(of(Kind::Tables).entries, 1);
        assert_eq!(of(Kind::Lex).entries, 2);
        assert_eq!(of(Kind::Outcome).entries, 0);
        assert!(of(Kind::Lex).bytes > 0);
        assert_eq!(store.clear(), 3);
        assert!(store.stats().iter().all(|(_, s)| s.entries == 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lex_payload_round_trips() {
        let span = |lo, hi| Span::new(FileId(2), lo, hi);
        let trees = vec![
            SendTree::Token(Token::new(TokenKind::Ident, sym("x"), span(0, 1))),
            SendTree::Delim {
                delim: Delim::Paren,
                trees: vec![SendTree::Token(Token::new(
                    TokenKind::IntLit,
                    sym("7"),
                    span(3, 4),
                ))],
                open: span(2, 3),
                close: span(4, 5),
            },
        ];
        let ok: Result<Vec<SendTree>, LexError> = Ok(trees);
        let bytes = encode_lex(&ok).unwrap();
        let back = decode_lex(&bytes).unwrap().unwrap();
        assert_eq!(back.len(), 2);
        match &back[1] {
            SendTree::Delim { delim, trees, .. } => {
                assert_eq!(*delim, Delim::Paren);
                assert_eq!(trees.len(), 1);
            }
            SendTree::Token(_) => panic!("expected delim"),
        }

        let err: Result<Vec<SendTree>, LexError> = Err(LexError {
            message: "unterminated string".to_owned(),
            span: span(9, 10),
        });
        let bytes = encode_lex(&err).unwrap();
        let back = decode_lex(&bytes).unwrap().unwrap_err();
        assert_eq!(back.message, "unterminated string");
        assert_eq!(back.span, span(9, 10));

        assert!(decode_lex(&bytes[..bytes.len() - 1]).is_none(), "truncated");
    }

    #[test]
    fn outcome_payload_round_trips() {
        let bytes = encode_outcome_payload("out\n", "mayac: err\n", false).unwrap();
        let (stdout, stderr, success) = decode_outcome_payload(&bytes).unwrap();
        assert_eq!(stdout, "out\n");
        assert_eq!(stderr, "mayac: err\n");
        assert!(!success);
        let mut stale = bytes.clone();
        stale[0] ^= 0xff;
        assert!(decode_outcome_payload(&stale).is_none());
    }
}
