//! Fault injection for robustness testing.
//!
//! The `MAYA_FAULTS` environment variable arms faults at named sites inside
//! the compiler, e.g. `MAYA_FAULTS=dispatch:panic,type_check:error`. Each
//! phase calls [`check`] at its fault site; the configured action then
//! fires *once* per process. Release builds with the variable unset pay a
//! single `OnceLock` read and an always-empty slice scan.
//!
//! Supported actions:
//!
//! - `panic` — `panic!` at the site (must surface as an ICE diagnostic,
//!   never an abort).
//! - `error` — return an `internal:` error from the site.
//! - `loop` — enter an unbounded loop *in interpreted code terms*: the site
//!   reports a poisoned value that makes the surrounding guard (step limit,
//!   expansion fuel) trip. Sites that cannot loop safely treat it as
//!   `panic`.
//!
//! This is test machinery, not a user feature; it is deliberately tiny and
//! dependency-free.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// What an armed fault does when its site is reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Panic at the site.
    Panic,
    /// Return an `internal:` error from the site.
    Error,
    /// Ask the site to consume unbounded resources (so a guard must trip).
    Loop,
}

struct Fault {
    site: String,
    action: FaultAction,
    fired: AtomicBool,
}

fn faults() -> &'static [Fault] {
    static FAULTS: OnceLock<Vec<Fault>> = OnceLock::new();
    FAULTS.get_or_init(|| {
        let Ok(spec) = std::env::var("MAYA_FAULTS") else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((site, action)) = part.split_once(':') else {
                continue;
            };
            let Some(action) = parse_action(action) else {
                continue;
            };
            out.push(Fault {
                site: site.trim().to_owned(),
                action,
                fired: AtomicBool::new(false),
            });
        }
        out
    })
}

thread_local! {
    /// Programmatically armed faults, scoped to the arming thread so
    /// in-process harnesses (fuzzer, tests) cannot interfere with each
    /// other across test threads. Each entry fires once per [`arm`] call.
    static ARMED: RefCell<Vec<(String, FaultAction, bool)>> = const { RefCell::new(Vec::new()) };
}

fn parse_action(action: &str) -> Option<FaultAction> {
    match action.trim() {
        "panic" => Some(FaultAction::Panic),
        "error" => Some(FaultAction::Error),
        "loop" => Some(FaultAction::Loop),
        _ => None,
    }
}

/// Arms faults programmatically on the *current thread*, replacing any
/// previous programmatic arming. `spec` uses the same grammar as
/// `MAYA_FAULTS` (`site:action[,site:action…]`); unknown actions are
/// ignored. Each armed fault fires at most once per call to `arm`.
///
/// Compilations driven with `jobs=1` run entirely on the calling thread,
/// so thread-locality makes in-process fault campaigns deterministic and
/// isolated from concurrently running tests.
pub fn arm(spec: &str) {
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        if let Some((site, action)) = part.split_once(':') {
            if let Some(action) = parse_action(action) {
                out.push((site.trim().to_owned(), action, false));
            }
        }
    }
    ARMED.with(|a| *a.borrow_mut() = out);
}

/// Clears any programmatic arming on the current thread.
pub fn disarm() {
    ARMED.with(|a| a.borrow_mut().clear());
}

/// True when any fault is armed — programmatically on this thread or via
/// `MAYA_FAULTS`. The persistent store checks this to keep
/// fault-perturbed runs out of the outcome cache (in both directions).
pub fn any_armed() -> bool {
    ARMED.with(|a| !a.borrow().is_empty()) || !faults().is_empty()
}

fn check_armed(site: &str) -> Option<FaultAction> {
    ARMED.with(|a| {
        let mut armed = a.borrow_mut();
        for (s, action, fired) in armed.iter_mut() {
            if s == site && !*fired {
                *fired = true;
                return Some(*action);
            }
        }
        None
    })
}

/// Returns the armed action for `site`: programmatic faults fire at most
/// once per [`arm`] call on the arming thread; `MAYA_FAULTS` faults fire
/// at most once per process per site.
pub fn check(site: &str) -> Option<FaultAction> {
    if let Some(action) = check_armed(site) {
        return Some(action);
    }
    for f in faults() {
        if f.site == site && !f.fired.swap(true, Ordering::Relaxed) {
            return Some(f.action);
        }
    }
    None
}

/// Panics if a `panic` fault is armed at `site`; returns an `internal:`
/// message for an `error` fault. The common prologue for fault sites that
/// cannot loop.
pub fn trip(site: &str) -> Result<(), String> {
    match check(site) {
        Some(FaultAction::Panic) | Some(FaultAction::Loop) => {
            panic!("injected fault at {site}")
        }
        Some(FaultAction::Error) => Err(format!("internal: injected fault at {site}")),
        None => Ok(()),
    }
}
