//! Fault injection for robustness testing.
//!
//! The `MAYA_FAULTS` environment variable arms faults at named sites inside
//! the compiler, e.g. `MAYA_FAULTS=dispatch:panic,type_check:error`. Each
//! phase calls [`check`] at its fault site; the configured action then
//! fires *once* per process. Release builds with the variable unset pay a
//! single `OnceLock` read and an always-empty slice scan.
//!
//! Supported actions:
//!
//! - `panic` — `panic!` at the site (must surface as an ICE diagnostic,
//!   never an abort).
//! - `error` — return an `internal:` error from the site.
//! - `loop` — enter an unbounded loop *in interpreted code terms*: the site
//!   reports a poisoned value that makes the surrounding guard (step limit,
//!   expansion fuel) trip. Sites that cannot loop safely treat it as
//!   `panic`.
//!
//! This is test machinery, not a user feature; it is deliberately tiny and
//! dependency-free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// What an armed fault does when its site is reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Panic at the site.
    Panic,
    /// Return an `internal:` error from the site.
    Error,
    /// Ask the site to consume unbounded resources (so a guard must trip).
    Loop,
}

struct Fault {
    site: String,
    action: FaultAction,
    fired: AtomicBool,
}

fn faults() -> &'static [Fault] {
    static FAULTS: OnceLock<Vec<Fault>> = OnceLock::new();
    FAULTS.get_or_init(|| {
        let Ok(spec) = std::env::var("MAYA_FAULTS") else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((site, action)) = part.split_once(':') else {
                continue;
            };
            let action = match action.trim() {
                "panic" => FaultAction::Panic,
                "error" => FaultAction::Error,
                "loop" => FaultAction::Loop,
                _ => continue,
            };
            out.push(Fault {
                site: site.trim().to_owned(),
                action,
                fired: AtomicBool::new(false),
            });
        }
        out
    })
}

/// Returns the armed action for `site`, at most once per process per site.
pub fn check(site: &str) -> Option<FaultAction> {
    for f in faults() {
        if f.site == site && !f.fired.swap(true, Ordering::Relaxed) {
            return Some(f.action);
        }
    }
    None
}

/// Panics if a `panic` fault is armed at `site`; returns an `internal:`
/// message for an `error` fault. The common prologue for fault sites that
/// cannot loop.
pub fn trip(site: &str) -> Result<(), String> {
    match check(site) {
        Some(FaultAction::Panic) | Some(FaultAction::Loop) => {
            panic!("injected fault at {site}")
        }
        Some(FaultAction::Error) => Err(format!("internal: injected fault at {site}")),
        None => Ok(()),
    }
}
