//! Source-level extensions: compiling `abstract … syntax(…)` productions
//! and `… syntax Name(params) { body }` Mayans written in MayaJava, plus
//! the `maya.tree` bridge that exposes AST values to interpreted
//! metaprograms.
//!
//! This is the full pipeline of paper Figure 1: extension source is
//! compiled by mayac into `MetaProgram` objects whose bodies run on the
//! interpreter at application compile time.

use crate::compiler::CompilerInner;
use crate::CompileError;
use maya_ast::{MayanDecl, Node, ProductionDecl};
use maya_types::ResolveCtx;
use std::rc::Rc;

/// A `maya.tree` value: an AST node held by interpreted metaprogram code.
pub struct TreeValue {
    pub node: Node,
}

impl maya_interp::NativeObject for TreeValue {
    fn class_fqcn(&self) -> &str {
        match &self.node {
            // An unforced lazy tree is classified by its goal symbol.
            maya_ast::Node::Lazy(l) => crate::driver::tree_class_fqcn(l.goal),
            other => crate::driver::tree_class_fqcn(other.node_kind()),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn display(&self) -> String {
        maya_ast::pretty_node(&self.node)
    }
}

/// Installs the `maya.tree` classes and natives (populated incrementally as
/// the interpreted-Mayan support grows).
pub fn install_tree_bridge(cx: &Rc<CompilerInner>) {
    crate::bridge::install(cx);
}

/// Registers a source-level production declaration.
///
/// # Errors
///
/// Propagates metagrammar errors.
pub fn register_production_decl(
    cx: &Rc<CompilerInner>,
    decl: &ProductionDecl,
    ctx: &ResolveCtx,
) -> Result<(), CompileError> {
    crate::source_mayan::register_production(cx, decl, ctx)
}

/// Registers a source-level Mayan declaration as an importable metaprogram.
///
/// # Errors
///
/// Propagates metagrammar and template errors.
pub fn register_mayan_decl(
    cx: &Rc<CompilerInner>,
    decl: &MayanDecl,
    ctx: &ResolveCtx,
    package: Option<&str>,
) -> Result<(), CompileError> {
    crate::source_mayan::register_mayan(cx, decl, ctx, package)
}
