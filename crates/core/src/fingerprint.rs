//! Content fingerprints for incremental reuse.
//!
//! One dual-stream FNV-1a hasher (the same construction as the grammar
//! crate's content hash) serves both reuse layers: the [`crate::Session`]
//! hashes raw bytes and lexed token streams to detect changed files, and
//! the force cache hashes the token trees of individual lazy bodies to
//! memoize pure parses. Collision resistance across processes is not
//! required (hashes never leave the process), but determinism within one
//! is — spans are hashed too, so two streams with equal hashes are
//! interchangeable everywhere downstream, diagnostics included.

use maya_lexer::{DelimTree, LexError, SendTree, Span, Token, TokenTree};

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    pub(crate) fn new() -> Fnv2 {
        Fnv2 {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    pub(crate) fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(x.rotate_left(3))).wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn bytes(&mut self, bs: &[u8]) {
        for &x in bs {
            self.byte(x);
        }
    }

    pub(crate) fn u32(&mut self, x: u32) {
        self.bytes(&x.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    pub(crate) fn span(&mut self, s: Span) {
        self.u32(s.file.0);
        self.u32(s.lo);
        self.u32(s.hi);
    }

    pub(crate) fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// 64-bit byte hash (the cheap first-level change check).
pub(crate) fn hash64(bytes: &[u8]) -> u64 {
    let mut h = Fnv2::new();
    h.bytes(bytes);
    h.a
}

/// 128-bit byte hash — the process-global lex-share key. Both FNV streams
/// are kept because entries are shared across every client of a compile
/// service, a far larger collision surface than one session's files.
pub(crate) fn hash128(bytes: &[u8]) -> u128 {
    let mut h = Fnv2::new();
    h.bytes(bytes);
    h.finish()
}

/// Hashes a lex result, spans included.
pub(crate) fn token_stream_hash(result: &Result<Vec<SendTree>, LexError>) -> u128 {
    let mut h = Fnv2::new();
    match result {
        Ok(trees) => {
            h.byte(1);
            for t in trees {
                hash_send_tree(&mut h, t);
            }
        }
        Err(e) => {
            h.byte(0);
            h.str(&e.message);
            h.span(e.span);
        }
    }
    h.finish()
}

fn hash_send_tree(h: &mut Fnv2, tree: &SendTree) {
    match tree {
        SendTree::Token(t) => hash_token(h, t),
        SendTree::Delim {
            delim,
            trees,
            open,
            close,
        } => {
            h.byte(3);
            h.str(delim.open_kind().name());
            h.span(*open);
            h.span(*close);
            h.u32(trees.len() as u32);
            for t in trees {
                hash_send_tree(h, t);
            }
        }
    }
}

fn hash_token(h: &mut Fnv2, Token { kind, text, span }: &Token) {
    h.byte(2);
    h.str(kind.name());
    h.str(text.as_str());
    h.span(*span);
}

/// Hashes a file's token trees, spans included — the unit-cache key. A
/// compilation-unit parse is a function of these trees (and the
/// environment, which the cache gates on separately), so equal hashes
/// mean the cached parse is interchangeable.
pub(crate) fn token_trees_hash(trees: &[TokenTree]) -> u128 {
    let mut h = Fnv2::new();
    h.u32(trees.len() as u32);
    for t in trees {
        hash_token_tree(&mut h, t);
    }
    h.finish()
}

/// Hashes a delimiter subtree (a lazy body's deferred tokens), spans
/// included — the force-cache key. Identical hashes mean the parser sees
/// identical input, so a memoized pure parse is interchangeable.
pub(crate) fn delim_tree_hash(tree: &DelimTree) -> u128 {
    let mut h = Fnv2::new();
    h.str(tree.delim.open_kind().name());
    h.span(tree.open);
    h.span(tree.close);
    for t in tree.trees.iter() {
        hash_token_tree(&mut h, t);
    }
    h.finish()
}

fn hash_token_tree(h: &mut Fnv2, tree: &TokenTree) {
    match tree {
        TokenTree::Token(t) => hash_token(h, t),
        TokenTree::Delim(d) => {
            h.byte(3);
            h.str(d.delim.open_kind().name());
            h.span(d.open);
            h.span(d.close);
            h.u32(d.trees.len() as u32);
            for t in d.trees.iter() {
                hash_token_tree(h, t);
            }
        }
    }
}
